"""Quickstart: profile one GNN training workload on the simulated V100.

Run:  python examples/quickstart.py [WORKLOAD]

Picks a workload from the GNNMark registry (default ARGA), trains it for two
epochs under the full profiling toolchain, and prints the nvprof-style
summary: top kernels, operation breakdown, instruction mix, cache behaviour
and transfer sparsity.
"""

import sys

from repro import GNNMark, profile_workload


def main() -> None:
    key = sys.argv[1] if len(sys.argv) > 1 else "ARGA"
    mark = GNNMark()
    if key not in mark.workloads():
        raise SystemExit(f"unknown workload {key!r}; pick from {mark.workloads()}")

    spec = mark.spec(key)
    print(f"== {key}: {spec.model} — {spec.domain}")
    print(f"   dataset {spec.dataset} / framework style {spec.framework}\n")

    profile = profile_workload(key, epochs=2)

    print(f"simulated training time : {profile.sim_time_s * 1e3:8.2f} ms")
    print(f"kernel launches         : {profile.launch_count:8d}")
    print(f"avg epoch (sim)         : {sum(profile.epoch_times) / len(profile.epoch_times) * 1e3:8.2f} ms")
    print(f"final train metrics     : {profile.train_metrics[-1]}\n")

    print("-- top kernels by GPU time " + "-" * 38)
    for s in profile.kernels.top_kernels(8):
        share = s.total_time_s / profile.kernels.total_time_s * 100
        print(f"  {s.name:<28} {s.op_class.value:<12} x{s.launches:<5}"
              f" {s.total_time_s * 1e6:9.1f} us ({share:4.1f}%)")

    print("\n-- operation breakdown (Figure 2 view) " + "-" * 26)
    for cat, share in profile.op_breakdown().items():
        if share > 0.004:
            print(f"  {cat:<12} {share * 100:5.1f}%")

    mix = profile.instruction_mix()
    th = profile.throughput()
    cache = profile.cache()
    print("\n-- architecture counters " + "-" * 40)
    print(f"  instruction mix : {mix['int32'] * 100:4.1f}% int32 /"
          f" {mix['fp32'] * 100:4.1f}% fp32 / {mix['other'] * 100:4.1f}% other")
    print(f"  throughput      : {th['gflops']:7.1f} GFLOPS, {th['giops']:7.1f} GIOPS,"
          f" IPC {th['ipc']:.2f}")
    print(f"  caches          : L1 {cache['l1_hit'] * 100:4.1f}% hit,"
          f" L2 {cache['l2_hit'] * 100:4.1f}% hit,"
          f" divergent loads {cache['divergent_loads'] * 100:4.1f}%")
    print(f"  H2D sparsity    : {profile.transfer_sparsity() * 100:4.1f}% zeros")


if __name__ == "__main__":
    main()
