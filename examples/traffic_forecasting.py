"""Traffic forecasting with STGCN on the synthetic METR-LA sensor network.

Run:  python examples/traffic_forecasting.py

Trains the spatio-temporal graph convolutional network to predict sensor
speeds 15 minutes ahead from one hour of history, reports the validation
MAE each epoch, and shows why this workload is convolution-dominated.
"""

import numpy as np

from repro.datasets import load_metr_la
from repro.gpu import SimulatedGPU
from repro.models import STGCNWorkload
from repro.profiling import KernelProfiler


def main() -> None:
    dataset = load_metr_la(num_steps=400)
    print(f"dataset: {dataset.info.substitutes_for}")
    print(f"  sensors {dataset.graph.num_nodes}, timesteps {dataset.signal.shape[0]},"
          f" history {dataset.history} steps, horizon {dataset.horizon} steps\n")

    device = SimulatedGPU()
    workload = STGCNWorkload.build(dataset, device=device, batch_size=8,
                                   batches_per_epoch=8, lr=2e-3)
    profiler = KernelProfiler().attach(device)

    rng = np.random.default_rng(0)
    print(f"{'epoch':>5} {'train mse':>12} {'val MAE':>10} {'sim ms/epoch':>14}")
    for epoch in range(5):
        t0 = device.elapsed_s()
        metrics = workload.train_epoch(rng)
        mae = workload.evaluate_mae(num_batches=2)
        sim_ms = (device.elapsed_s() - t0) * 1e3
        print(f"{epoch:>5} {metrics['loss']:>12.4f} {mae:>10.4f} {sim_ms:>14.2f}")

    print("\noperation breakdown (conv dominates, as in the paper's Figure 2):")
    for cat, share in profiler.op_time_breakdown().items():
        if share > 0.01:
            print(f"  {cat:<12} {share * 100:5.1f}%")


if __name__ == "__main__":
    main()
