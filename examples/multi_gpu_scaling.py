"""Multi-GPU strong scaling with simulated DDP (the paper's Figure 9).

Run:  python examples/multi_gpu_scaling.py [WORKLOAD ...]

Trains each workload on 1, 2 and 4 simulated V100s connected by NVLink,
using PyTorch-DDP semantics (split global batch, ring allreduce per step),
and prints the time-per-epoch speedups.  Defaults to a contrasting trio:
one workload that scales (STGCN), one that stays flat (TLSTM) and one that
degrades (PSAGE-MVL, whose sampler replicates data across devices).
"""

import sys

from repro.profiling import format_scaling
from repro.train import run_scaling_point


def main() -> None:
    keys = sys.argv[1:] or ["STGCN", "TLSTM", "PSAGE-MVL"]
    times: dict[str, dict[int, float]] = {}
    for key in keys:
        times[key] = {}
        for gpus in (1, 2, 4):
            point = run_scaling_point(key, gpus, scale="scaling", epochs=1)
            times[key][gpus] = point.epoch_time_s
            print(f"{key:<11} {gpus} GPU(s): epoch {point.epoch_time_s * 1e3:8.2f} ms"
                  f"  (compute {point.compute_time_s * 1e3:7.2f},"
                  f" allreduce {point.allreduce_time_s * 1e3:6.2f},"
                  f" {point.steps} steps x {point.grad_bytes / 1e6:.2f} MB grads)")
    print()
    print(format_scaling(times))


if __name__ == "__main__":
    main()
