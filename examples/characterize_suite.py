"""Regenerate every table and figure of the paper in one run.

Run:  python examples/characterize_suite.py

Profiles one training epoch of all nine workload/dataset pairs on the
simulated V100 and prints Table I plus the Figure 2-8 views, then runs the
Figure 9 multi-GPU scaling study.  This is the script behind EXPERIMENTS.md.
"""

import time

from repro import GNNMark


def main() -> None:
    mark = GNNMark()

    print("=" * 70)
    print("Table I: the GNNMark suite")
    print("=" * 70)
    print(mark.render_table1())

    t0 = time.time()
    suite = mark.characterize_suite(epochs=1)
    print(f"\n(suite profiled in {time.time() - t0:.0f}s wall clock)\n")

    for render in (
        mark.render_op_breakdown,
        mark.render_instruction_mix,
        mark.render_throughput,
        mark.render_stalls,
        mark.render_cache,
        mark.render_sparsity,
        mark.render_sparsity_timeline,
    ):
        print("=" * 70)
        print(render(suite))
        print()

    print("=" * 70)
    t0 = time.time()
    times = mark.scaling_study(epochs=1)
    print(f"(scaling study in {time.time() - t0:.0f}s wall clock)")
    print(mark.render_scaling(times))


if __name__ == "__main__":
    main()
