"""The paper's future-work features, evaluated: fp16 training, transfer
compression, time-to-train, weak scaling, inference profiling.

Run:  python examples/extensions_ablation.py

GNNMark's conclusion lists four planned extensions — half-precision
training, compression of sparse transfers, the MLPerf time-to-train metric
and weak-scaling studies — plus inference characterization from pretrained
models.  All five are implemented here; this script demonstrates each on a
representative workload.
"""

import numpy as np

from repro.core import profile_inference, profile_workload, registry
from repro.gpu import SimulatedGPU, SimulationConfig
from repro.train import Trainer, run_weak_scaling_point


def main() -> None:
    # -- 1. half-precision training ---------------------------------------
    fp32 = profile_workload("ARGA", scale="test", epochs=1)
    fp16 = profile_workload("ARGA", scale="test", epochs=1,
                            sim=SimulationConfig(precision="fp16"))
    print("1) half-precision training (ARGA):")
    print(f"   kernel time  {fp32.kernels.total_time_s * 1e3:7.2f} ms (fp32)"
          f" -> {fp16.kernels.total_time_s * 1e3:7.2f} ms (fp16)")
    print(f"   L1 hit rate  {fp32.cache()['l1_hit'] * 100:5.1f}%"
          f" -> {fp16.cache()['l1_hit'] * 100:5.1f}%\n")

    # -- 2. sparsity-exploiting transfer compression ----------------------
    zvc = profile_workload("ARGA", scale="test", epochs=1,
                           sim=SimulationConfig(transfer_compression="zvc"))
    print("2) zero-value transfer compression (ARGA, 98% sparse labels):")
    print(f"   logical H2D  {zvc.sparsity.total_bytes() / 1e6:7.2f} MB")
    print(f"   wire traffic {zvc.sparsity.total_wire_bytes() / 1e6:7.2f} MB"
          f"  (x{zvc.sparsity.compression_ratio():.1f} reduction)\n")

    # -- 3. time-to-train --------------------------------------------------
    device = SimulatedGPU()
    workload = registry.get("KGNNL").build(device=device, scale="test")
    trainer = Trainer(workload=workload, device=device)
    result = trainer.train_to_target("loss", 0.68, mode="min", max_epochs=25)
    print("3) time-to-train (KGNNL to cross-entropy 0.68):")
    print(f"   converged={result.converged} in {result.epochs} epochs,"
          f" {result.sim_time_s * 1e3:.2f} ms simulated GPU time\n")

    # -- 4. weak scaling ----------------------------------------------------
    print("4) weak scaling (STGCN, per-GPU batch fixed):")
    base = run_weak_scaling_point("STGCN", 1, scale="test")
    for n in (1, 2, 4):
        point = run_weak_scaling_point("STGCN", n, scale="test")
        eff = base.epoch_time_s / point.epoch_time_s
        print(f"   {n} GPU(s): epoch {point.epoch_time_s * 1e3:7.2f} ms,"
              f" efficiency {eff:.2f}")
    print()

    # -- 5. inference characterization --------------------------------------
    print("5) inference profiling (forward-only after a warm-up epoch):")
    for key in ("DGCN", "TLSTM", "GW"):
        infer = profile_inference(key, scale="test")
        mix = infer.kernels.instruction_mix()
        print(f"   {key:<6} {infer.kernels.total_time_s * 1e3:7.2f} ms,"
              f" {infer.launch_count:4d} kernels,"
              f" {mix['fp32'] * 100:4.1f}% fp32 instructions")


if __name__ == "__main__":
    main()
