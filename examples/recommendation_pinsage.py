"""Item recommendation with PinSAGE on the synthetic MovieLens graph.

Run:  python examples/recommendation_pinsage.py

Trains PinSAGE with max-margin ranking on random-walk-sampled neighborhoods
of the item-item co-interaction graph, then retrieves nearest neighbors for
a few query movies — and shows the sampler's sorting cost, the effect the
paper highlights for this workload.
"""

import numpy as np

from repro.datasets import load_movielens
from repro.gpu import SimulatedGPU
from repro.models import PinSAGEWorkload
from repro.profiling import KernelProfiler


def main() -> None:
    dataset = load_movielens()
    print(f"dataset: {dataset.info.substitutes_for}")
    print(f"  users {dataset.num_users}, items {dataset.num_items},"
          f" interactions {dataset.users.size}, feature dim {dataset.feature_dim}\n")

    device = SimulatedGPU()
    workload = PinSAGEWorkload.build(dataset, device=device, batch_size=64,
                                     batches_per_epoch=6, lr=5e-3)
    profiler = KernelProfiler().attach(device)
    print(f"item-item co-interaction graph: {workload.item_graph}\n")

    rng = np.random.default_rng(0)
    for epoch in range(4):
        metrics = workload.train_epoch(rng)
        print(f"epoch {epoch}: margin loss {metrics['loss']:.4f}")

    # retrieval: embed a catalog slice and find neighbors for queries
    catalog = np.arange(min(256, dataset.num_items))
    embeddings = workload.embed_items(catalog, rng)
    embeddings /= np.linalg.norm(embeddings, axis=1, keepdims=True) + 1e-9

    print("\nnearest neighbors by embedding similarity:")
    for query in (3, 17, 42):
        scores = embeddings @ embeddings[query]
        top = np.argsort(-scores)[1:4]
        pretty = ", ".join(f"item {catalog[i]} ({scores[i]:.2f})" for i in top)
        print(f"  item {catalog[query]:>3} -> {pretty}")

    shares = profiler.op_time_breakdown()
    print(f"\nsampler sorting cost: {shares['Sort'] * 100:.1f}% of GPU time"
          f" (the paper reports 20.7% for PSAGE-MVL)")


if __name__ == "__main__":
    main()
