"""Synthetic dataset equivalents of the GNNMark inputs (Table I).

Each ``load_*`` is deterministic given its seed and returns a dataclass with
graphs/features/labels plus a :class:`~repro.datasets.base.DatasetInfo`
documenting the substitution and scale factor.
"""

from .agenda import KGTextDataset, KGTextSample, load_agenda
from .base import DatasetInfo, sparse_bag_of_words, train_val_test_split
from .citation import CitationDataset, load_citation
from .molecules import MoleculeDataset, load_molhiv
from .movielens import InteractionDataset, load_movielens, load_nowplaying
from .proteins import ProteinDataset, load_proteins
from .sst import SSTDataset, SentimentTree, load_sst
from .traffic import TrafficDataset, load_metr_la

__all__ = [
    "CitationDataset",
    "DatasetInfo",
    "InteractionDataset",
    "KGTextDataset",
    "KGTextSample",
    "MoleculeDataset",
    "ProteinDataset",
    "SSTDataset",
    "SentimentTree",
    "TrafficDataset",
    "load_agenda",
    "load_citation",
    "load_metr_la",
    "load_molhiv",
    "load_movielens",
    "load_nowplaying",
    "load_proteins",
    "load_sst",
    "sparse_bag_of_words",
    "train_val_test_split",
]
