"""Synthetic traffic-sensor dataset (METR-LA equivalent) for STGCN.

207 sensors on a k-NN road graph (as in METR-LA's Gaussian-kernel
adjacency), with speed signals built from a daily periodic profile, spatial
diffusion along the graph, and congestion events — the nonlinear dynamic
signal the paper's Section II motivates modeling with dynamic-graph GNNs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph import Graph, TemporalSignal, generators
from .base import DatasetInfo


@dataclass
class TrafficDataset:
    info: DatasetInfo
    graph: Graph
    #: (time, nodes) mean-speed signal, z-normalized
    signal: np.ndarray
    history: int
    horizon: int

    def temporal(self) -> TemporalSignal:
        return TemporalSignal(self.graph, self.signal, self.history, self.horizon)


def load_metr_la(
    num_sensors: int = 207,
    num_steps: int = 1440,
    history: int = 12,
    horizon: int = 3,
    seed: int = 0,
) -> TrafficDataset:
    """METR-LA-scale sensors; time axis scaled ~24x down (1440 of 34k steps)."""
    rng = np.random.default_rng(seed)
    graph, _ = generators.sensor_network(num_sensors, k_nearest=6, rng=rng)

    steps_per_day = 288  # 5-minute bins
    t = np.arange(num_steps)
    daily = 55.0 + 10.0 * np.sin(2 * np.pi * t / steps_per_day)
    rush = -12.0 * (np.exp(-((t % steps_per_day - 96) ** 2) / 200.0)
                    + np.exp(-((t % steps_per_day - 216) ** 2) / 300.0))
    base = daily + rush

    sensor_offset = rng.normal(0, 4.0, size=num_sensors)
    signal = base[:, None] + sensor_offset[None, :]
    signal += rng.normal(0, 2.0, size=signal.shape)

    # Congestion shocks that diffuse over the road graph for a few steps.
    adj = graph.adjacency("rw").scipy()
    num_events = num_steps // 120
    for _ in range(num_events):
        start = int(rng.integers(0, num_steps - 24))
        epicenter = int(rng.integers(0, num_sensors))
        impact = np.zeros(num_sensors, dtype=np.float64)
        impact[epicenter] = -25.0
        for step in range(24):
            signal[start + step] += impact
            impact = 0.6 * impact + 0.4 * (adj @ impact)

    signal = signal.astype(np.float32)
    mean, std = signal.mean(), signal.std()
    signal = (signal - mean) / (std + 1e-8)
    # METR-LA publishes missing readings as exact zeros (~8% of entries) and
    # the standard pipeline keeps them; they are what little H2D sparsity the
    # traffic workload shows.
    missing = rng.random(signal.shape) < 0.08
    signal[missing] = 0.0

    info = DatasetInfo(
        name="metr-la",
        substitutes_for="METR-LA traffic speeds (207 sensors, 34k steps)",
        scale=num_steps / 34272,
        notes="kNN sensor graph + periodic/diffusive synthetic speeds",
    )
    return TrafficDataset(info=info, graph=graph, signal=signal,
                          history=history, horizon=horizon)
