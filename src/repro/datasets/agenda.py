"""Synthetic knowledge-graph-to-text dataset (AGENDA equivalent) for the
GraphWriter workload: per-sample scientific-abstract knowledge graphs
(entities + typed relations), a title token sequence as conditioning input,
and an abstract token sequence as the generation target."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import DatasetInfo, train_val_test_split

NUM_RELATIONS = 7  # AGENDA's relation vocabulary (used-for, part-of, ...)
PAD, BOS, EOS = 0, 1, 2


@dataclass
class KGTextSample:
    """One abstract: entity ids, relation triples, title and target tokens."""

    entities: np.ndarray          # (num_entities,) entity-name token ids
    entity_types: np.ndarray      # (num_entities,) type ids
    triples: np.ndarray           # (num_triples, 3) = (head, relation, tail)
    title: np.ndarray             # (title_len,) token ids
    abstract: np.ndarray          # (abstract_len,) token ids, EOS-terminated


@dataclass
class KGTextDataset:
    info: DatasetInfo
    samples: list[KGTextSample]
    vocab_size: int
    num_entity_types: int
    train_idx: np.ndarray
    val_idx: np.ndarray
    test_idx: np.ndarray

    def __len__(self) -> int:
        return len(self.samples)


def load_agenda(
    num_samples: int = 192,
    vocab_size: int = 12000,
    num_entity_types: int = 4,
    seed: int = 0,
) -> KGTextDataset:
    """~200x scaled AGENDA (40k abstracts, mean 12 entities, 141 words).

    Abstract length is scaled to ~44 tokens (0.3x) so the decoder still
    dominates sample time like the original's 141-word targets.
    """
    rng = np.random.default_rng(seed)
    # Zipfian token popularity for realistic embedding-gather locality.
    ranks = np.arange(1, vocab_size - 3 + 1, dtype=np.float64)
    probs = ranks ** (-1.05)
    probs /= probs.sum()

    def tokens(length: int) -> np.ndarray:
        return (rng.choice(vocab_size - 3, size=length, p=probs) + 3).astype(np.int64)

    samples = []
    for _ in range(num_samples):
        num_entities = int(np.clip(rng.normal(12, 3), 4, 24))
        num_triples = int(np.clip(rng.normal(num_entities * 0.8, 2), 2, 40))
        heads = rng.integers(0, num_entities, size=num_triples)
        tails = rng.integers(0, num_entities, size=num_triples)
        keep = heads != tails
        heads, tails = heads[keep], tails[keep]
        rels = rng.integers(0, NUM_RELATIONS, size=heads.size)
        samples.append(
            KGTextSample(
                entities=tokens(num_entities),
                entity_types=rng.integers(0, num_entity_types,
                                          size=num_entities).astype(np.int64),
                triples=np.stack([heads, rels, tails], axis=1).astype(np.int64),
                title=tokens(int(np.clip(rng.normal(9, 2), 4, 16))),
                abstract=np.concatenate(
                    [tokens(int(np.clip(rng.normal(44, 8), 20, 70))),
                     [EOS]]
                ).astype(np.int64),
            )
        )

    train_idx, val_idx, test_idx = train_val_test_split(num_samples, rng,
                                                        train=0.8, val=0.1)
    info = DatasetInfo(
        name="agenda",
        substitutes_for="AGENDA (knowledge graph -> abstract generation)",
        scale=num_samples / 40000,
        notes="Zipfian token ids; entity KGs with 7 relation types",
    )
    return KGTextDataset(
        info=info,
        samples=samples,
        vocab_size=vocab_size,
        num_entity_types=num_entity_types,
        train_idx=train_idx,
        val_idx=val_idx,
        test_idx=test_idx,
    )
