"""Synthetic citation networks standing in for Cora / CiteSeer / PubMed.

These drive the ARGA workload (node clustering on homogeneous graphs).  We
match the originals' node counts, feature widths and class counts (PubMed is
scaled 5x down), generate community structure with an SBM, and give each
node sparse bag-of-words features correlated with its community — the same
~99%-zero feature tensors whose H2D transfers make citation workloads
sparsity-friendly in the paper's Figure 7.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from ..graph import Graph, generators
from .base import DatasetInfo, sparse_bag_of_words, train_val_test_split


@dataclass
class CitationDataset:
    info: DatasetInfo
    graph: Graph
    features: np.ndarray
    labels: np.ndarray
    train_idx: np.ndarray
    val_idx: np.ndarray
    test_idx: np.ndarray

    @property
    def num_classes(self) -> int:
        return int(self.labels.max() + 1)

    @property
    def feature_dim(self) -> int:
        return int(self.features.shape[1])


#: name -> (nodes, feature dim, classes, mean bag size, scale vs original)
_SPECS = {
    "cora": (2708, 1433, 7, 18, 1.0),
    "citeseer": (3327, 3703, 6, 21, 1.0),
    "pubmed": (3944, 500, 3, 25, 0.2),
}


def load_citation(name: str = "cora", seed: int = 0) -> CitationDataset:
    if name not in _SPECS:
        raise KeyError(f"unknown citation dataset {name!r}; have {sorted(_SPECS)}")
    nodes, feat_dim, classes, bag, scale = _SPECS[name]
    # crc32, not hash(): python string hashing is salted per process, which
    # would make the generated graph differ between runs of the same seed.
    rng = np.random.default_rng(seed + zlib.crc32(name.encode()) % 65536)

    sizes = [nodes // classes] * classes
    sizes[-1] += nodes - sum(sizes)
    avg_degree = 3.9  # Cora's mean degree
    p_in = avg_degree * 0.75 / (nodes / classes)
    p_out = avg_degree * 0.25 / (nodes * (classes - 1) / classes)
    graph, labels = generators.stochastic_block_model(sizes, p_in, p_out, rng)

    # Community-correlated vocabularies: each class favors its own word slice.
    features = sparse_bag_of_words(nodes, feat_dim, bag, rng)
    slice_width = feat_dim // classes
    for c in range(classes):
        members = np.nonzero(labels == c)[0]
        lo = c * slice_width
        extra = rng.integers(lo, lo + slice_width, size=(members.size, 4))
        features[members[:, None], extra] = 1.0

    train_idx, val_idx, test_idx = train_val_test_split(nodes, rng)
    info = DatasetInfo(
        name=name,
        substitutes_for=f"{name.capitalize()} citation network",
        scale=scale,
        notes="SBM topology + Zipfian bag-of-words features",
    )
    return CitationDataset(
        info=info,
        graph=graph,
        features=features,
        labels=labels.astype(np.int64),
        train_idx=train_idx,
        val_idx=val_idx,
        test_idx=test_idx,
    )
