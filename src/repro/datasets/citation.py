"""Synthetic citation networks standing in for Cora / CiteSeer / PubMed.

These drive the ARGA workload (node clustering on homogeneous graphs).  We
match the originals' node counts, feature widths and class counts (PubMed is
scaled 5x down), generate community structure with an SBM, and give each
node sparse bag-of-words features correlated with its community — the same
~99%-zero feature tensors whose H2D transfers make citation workloads
sparsity-friendly in the paper's Figure 7.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from ..graph import Graph, generators
from .base import DatasetInfo, sparse_bag_of_words, train_val_test_split


@dataclass
class CitationDataset:
    info: DatasetInfo
    graph: Graph
    features: np.ndarray
    labels: np.ndarray
    train_idx: np.ndarray
    val_idx: np.ndarray
    test_idx: np.ndarray

    @property
    def num_classes(self) -> int:
        return int(self.labels.max() + 1)

    @property
    def feature_dim(self) -> int:
        return int(self.features.shape[1])


#: name -> (nodes, feature dim, classes, mean bag size, scale vs original)
_SPECS = {
    "cora": (2708, 1433, 7, 18, 1.0),
    "citeseer": (3327, 3703, 6, 21, 1.0),
    "pubmed": (3944, 500, 3, 25, 0.2),
}


class HashedFeatures:
    """Lazy deterministic node features for graphs too large to materialize.

    A 10^6-node citation graph at bag-of-words width would need terabytes
    dense, so mini-batch loaders materialize features per batch instead:
    ``features[node_ids]`` computes a ``(len(ids), dim)`` float32 block from
    an integer hash of ``(node id, column, seed)``.  Pure integer splitmix
    arithmetic — bit-identical across platforms and repeat runs — thresholded
    to ``density`` nonzeros, matching the sparse H2D profile of the dense
    citation feature tensors.
    """

    _MASK = np.uint64(0xFFFFFFFFFFFFFFFF)

    def __init__(self, num_nodes: int, dim: int, seed: int = 0,
                 density: float = 0.05) -> None:
        self.num_nodes = int(num_nodes)
        self.dim = int(dim)
        self.seed = int(seed)
        self.density = float(density)

    @property
    def shape(self) -> tuple[int, int]:
        return (self.num_nodes, self.dim)

    @staticmethod
    def _mix(x: np.ndarray) -> np.ndarray:
        # splitmix64 finalizer; uint64 multiplication wraps (mod 2^64)
        x = (x + np.uint64(0x9E3779B97F4A7C15))
        x ^= x >> np.uint64(30)
        x *= np.uint64(0xBF58476D1CE4E5B9)
        x ^= x >> np.uint64(27)
        x *= np.uint64(0x94D049BB133111EB)
        x ^= x >> np.uint64(31)
        return x

    def __getitem__(self, ids) -> np.ndarray:
        ids = np.asarray(ids, dtype=np.uint64).reshape(-1)
        cell = (ids[:, None] * np.uint64(self.dim)
                + np.arange(self.dim, dtype=np.uint64)[None, :]
                + np.uint64(self.seed) * np.uint64(0x9E3779B9))
        h = self._mix(cell)
        # top 53 bits -> uniform in [0, 1); threshold picks the nonzeros
        u = (h >> np.uint64(11)).astype(np.float64) * (1.0 / (1 << 53))
        return np.where(u < self.density, np.float32(1.0),
                        np.float32(0.0)).astype(np.float32)


def synthetic_citation(num_nodes: int, feat_dim: int = 128,
                       num_classes: int = 8, avg_degree: float = 3.9,
                       train_cap: int = 2048,
                       seed: int = 0) -> CitationDataset:
    """A citation-style SBM at an arbitrary node count with lazy features.

    Scales the `load_citation` recipe to 10^6+ nodes: the SBM generator is
    O(edges) (binomial edge counts per block pair), the train split is capped
    at ``train_cap`` seeds so a mini-batch epoch stays bounded, and features
    come from :class:`HashedFeatures` so nothing of size ``nodes x dim`` is
    ever materialized.
    """
    if num_nodes < num_classes:
        raise ValueError(f"need at least {num_classes} nodes, got {num_nodes}")
    rng = np.random.default_rng(seed + zlib.crc32(b"synthetic") % 65536)
    sizes = [num_nodes // num_classes] * num_classes
    sizes[-1] += num_nodes - sum(sizes)
    p_in = avg_degree * 0.75 / (num_nodes / num_classes)
    p_out = avg_degree * 0.25 / (num_nodes * (num_classes - 1) / num_classes)
    graph, labels = generators.stochastic_block_model(sizes, p_in, p_out, rng)
    train_idx, val_idx, test_idx = train_val_test_split(num_nodes, rng)
    train_idx = train_idx[:train_cap]
    info = DatasetInfo(
        name=f"synthetic-{num_nodes}",
        substitutes_for="web-scale citation network",
        scale=num_nodes / 2708,
        notes="SBM topology + lazy hashed features (mini-batch only)",
    )
    return CitationDataset(
        info=info,
        graph=graph,
        features=HashedFeatures(num_nodes, feat_dim, seed=seed),
        labels=labels.astype(np.int64),
        train_idx=train_idx,
        val_idx=val_idx,
        test_idx=test_idx,
    )


def load_citation(name: str = "cora", seed: int = 0) -> CitationDataset:
    if name not in _SPECS:
        raise KeyError(f"unknown citation dataset {name!r}; have {sorted(_SPECS)}")
    nodes, feat_dim, classes, bag, scale = _SPECS[name]
    # crc32, not hash(): python string hashing is salted per process, which
    # would make the generated graph differ between runs of the same seed.
    rng = np.random.default_rng(seed + zlib.crc32(name.encode()) % 65536)

    sizes = [nodes // classes] * classes
    sizes[-1] += nodes - sum(sizes)
    avg_degree = 3.9  # Cora's mean degree
    p_in = avg_degree * 0.75 / (nodes / classes)
    p_out = avg_degree * 0.25 / (nodes * (classes - 1) / classes)
    graph, labels = generators.stochastic_block_model(sizes, p_in, p_out, rng)

    # Community-correlated vocabularies: each class favors its own word slice.
    features = sparse_bag_of_words(nodes, feat_dim, bag, rng)
    slice_width = feat_dim // classes
    for c in range(classes):
        members = np.nonzero(labels == c)[0]
        lo = c * slice_width
        extra = rng.integers(lo, lo + slice_width, size=(members.size, 4))
        features[members[:, None], extra] = 1.0

    train_idx, val_idx, test_idx = train_val_test_split(nodes, rng)
    info = DatasetInfo(
        name=name,
        substitutes_for=f"{name.capitalize()} citation network",
        scale=scale,
        notes="SBM topology + Zipfian bag-of-words features",
    )
    return CitationDataset(
        info=info,
        graph=graph,
        features=features,
        labels=labels.astype(np.int64),
        train_idx=train_idx,
        val_idx=val_idx,
        test_idx=test_idx,
    )
