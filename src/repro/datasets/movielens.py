"""Synthetic MovieLens-style user-item graph (the paper's MVL dataset) for
the PinSAGE workload.

A bipartite heterograph with "watched"/"watched-by" edge types, Zipfian item
popularity, dense item features (genre one-hots + title embedding block) and
integer timestamps, scaled ~5x down from MovieLens-1M.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph import HeteroGraph, generators
from .base import DatasetInfo


@dataclass
class InteractionDataset:
    info: DatasetInfo
    graph: HeteroGraph
    item_features: np.ndarray
    user_features: np.ndarray
    #: per-interaction arrays, time-ordered
    users: np.ndarray
    items: np.ndarray
    timestamps: np.ndarray

    @property
    def num_users(self) -> int:
        return self.graph.num_nodes("user")

    @property
    def num_items(self) -> int:
        return self.graph.num_nodes("item")

    @property
    def feature_dim(self) -> int:
        return int(self.item_features.shape[1])


def _build(
    name: str,
    substitutes_for: str,
    num_users: int,
    num_items: int,
    num_interactions: int,
    feature_dim: int,
    scale: float,
    seed: int,
    feature_sparsity: float,
) -> InteractionDataset:
    rng = np.random.default_rng(seed)
    users, items = generators.bipartite_interactions(
        num_users, num_items, num_interactions, rng
    )
    order = rng.permutation(users.size)
    users, items = users[order], items[order]
    timestamps = np.sort(rng.integers(0, 1 << 30, size=users.size))

    # Dense item features: a low-rank "embedding" block plus categorical
    # one-hots; zero entries controlled so H2D sparsity matches the family.
    latent = rng.normal(size=(num_items, feature_dim)).astype(np.float32)
    mask = rng.random((num_items, feature_dim)) < feature_sparsity
    latent[mask] = 0.0
    user_features = rng.normal(size=(num_users, feature_dim)).astype(np.float32)
    umask = rng.random((num_users, feature_dim)) < feature_sparsity
    user_features[umask] = 0.0

    graph = HeteroGraph(
        num_nodes={"user": num_users, "item": num_items},
        edges={
            ("user", "watched", "item"): (users, items),
            ("item", "watched-by", "user"): (items, users),
        },
    )
    info = DatasetInfo(name=name, substitutes_for=substitutes_for, scale=scale,
                       notes="Zipfian item popularity; dense low-rank features")
    return InteractionDataset(
        info=info,
        graph=graph,
        item_features=latent,
        user_features=user_features,
        users=users,
        items=items,
        timestamps=timestamps,
    )


def load_movielens(seed: int = 0) -> InteractionDataset:
    """MVL: ~5x scaled MovieLens-1M (6040 users / 3706 movies / 1M ratings)."""
    return _build(
        name="movielens",
        substitutes_for="MovieLens-1M (MVL)",
        num_users=1208,
        num_items=741,
        num_interactions=30000,
        feature_dim=256,
        scale=0.2,
        seed=seed,
        feature_sparsity=0.26,
    )


def load_nowplaying(seed: int = 0) -> InteractionDataset:
    """NWP: NowPlaying-RS equivalent.

    The property the paper's analysis hinges on: NWP item feature vectors are
    10x wider than MVL's (which flips PSAGE's op mix toward elementwise) and
    its transfers are denser (11% vs 22% zeros in Figure 7).
    """
    return _build(
        name="nowplaying",
        substitutes_for="NowPlaying-RS (NWP)",
        num_users=2000,
        num_items=8000,  # NowPlaying's track catalog dwarfs MVL's movies
        num_interactions=90000,
        feature_dim=2560,  # exactly 10x MVL
        scale=0.02,
        seed=seed + 1,
        feature_sparsity=0.115,
    )
