"""Synthetic molecular graph-property dataset (ogbg-molhiv equivalent) for
the DeepGCN workload: many small molecule graphs, categorical atom/bond
features, and a binary graph-level label correlated with substructure
statistics so training actually learns."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph import Graph, generators
from .base import DatasetInfo, train_val_test_split

#: categorical atom feature cardinalities (subset of the OGB atom encoder)
ATOM_FEATURE_DIMS = (24, 4, 7, 5, 5)
BOND_FEATURE_DIMS = (4, 3)


@dataclass
class MoleculeDataset:
    info: DatasetInfo
    graphs: list[Graph]
    #: per-graph integer atom features, shape (num_atoms, len(ATOM_FEATURE_DIMS))
    atom_features: list[np.ndarray]
    bond_features: list[np.ndarray]
    labels: np.ndarray
    train_idx: np.ndarray
    val_idx: np.ndarray
    test_idx: np.ndarray

    def __len__(self) -> int:
        return len(self.graphs)


def load_molhiv(num_graphs: int = 384, seed: int = 0) -> MoleculeDataset:
    """~100x scaled ogbg-molhiv (41k molecules, mean 25.5 atoms)."""
    rng = np.random.default_rng(seed)
    graphs, atoms, bonds, labels = [], [], [], []
    for _ in range(num_graphs):
        g = generators.random_molecule(rng, min_atoms=10, max_atoms=34)
        graphs.append(g)
        # OGB atom features skew heavily toward category 0 (carbon, formal
        # charge 0, not aromatic, ...), so the transferred tensors are sparse
        af = np.stack(
            [np.minimum(rng.geometric(0.55, size=g.num_nodes) - 1, d - 1)
             for d in ATOM_FEATURE_DIMS],
            axis=1,
        ).astype(np.int64)
        bf = np.stack(
            [np.minimum(rng.geometric(0.6, size=g.num_edges) - 1, d - 1)
             for d in BOND_FEATURE_DIMS],
            axis=1,
        ).astype(np.int64)
        atoms.append(af)
        bonds.append(bf)
        # Label correlates with ring density and heavy-atom fraction so the
        # classification task is learnable.
        ring_excess = g.num_edges / 2 - (g.num_nodes - 1)
        heavy = (af[:, 0] >= 2).mean()
        score = 0.35 * ring_excess + 4.0 * heavy - 2.1 + rng.normal(0, 0.5)
        labels.append(1 if score > 0 else 0)

    labels_arr = np.asarray(labels, dtype=np.int64)
    train_idx, val_idx, test_idx = train_val_test_split(num_graphs, rng,
                                                        train=0.8, val=0.1)
    info = DatasetInfo(
        name="molhiv",
        substitutes_for="ogbg-molhiv (graph property prediction)",
        scale=num_graphs / 41127,
        notes="tree+ring-closure molecules, OGB-style categorical features",
    )
    return MoleculeDataset(
        info=info,
        graphs=graphs,
        atom_features=atoms,
        bond_features=bonds,
        labels=labels_arr,
        train_idx=train_idx,
        val_idx=val_idx,
        test_idx=test_idx,
    )
