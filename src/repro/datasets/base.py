"""Shared dataset plumbing.

Every dataset module exposes a ``load_*`` function returning a small
dataclass with the graphs/features/labels plus a :class:`DatasetInfo`
recording what it substitutes for and how far it is scaled down from the
original (single-CPU-core environment).  Inter-dataset ratios that the
paper's findings depend on — e.g. NowPlaying feature vectors being 10x wider
than MovieLens — are preserved exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class DatasetInfo:
    """Provenance record for a synthetic dataset."""

    name: str
    substitutes_for: str
    #: linear scale factor vs. the original (nodes/samples), approximate.
    scale: float
    notes: str = ""


def train_val_test_split(
    n: int, rng: np.random.Generator, train: float = 0.7, val: float = 0.15
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    order = rng.permutation(n)
    n_train = int(n * train)
    n_val = int(n * val)
    return (
        np.sort(order[:n_train]),
        np.sort(order[n_train : n_train + n_val]),
        np.sort(order[n_train + n_val :]),
    )


def sparse_bag_of_words(
    num_rows: int,
    num_features: int,
    nnz_per_row: int,
    rng: np.random.Generator,
    skew: float = 1.1,
) -> np.ndarray:
    """Binary bag-of-words features with Zipfian word popularity.

    Dense float32 output (the H2D copies the paper instruments transfer the
    dense tensor), but with realistic ~99% sparsity like citation datasets.
    """
    ranks = np.arange(1, num_features + 1, dtype=np.float64)
    probs = ranks ** (-skew)
    probs /= probs.sum()
    out = np.zeros((num_rows, num_features), dtype=np.float32)
    for row in range(num_rows):
        k = max(1, int(rng.poisson(nnz_per_row)))
        words = rng.choice(num_features, size=min(k, num_features),
                           replace=False, p=probs)
        out[row, words] = 1.0
    return out
