"""Synthetic sentiment treebank (SST equivalent) for the Tree-LSTM workload:
binary parse trees over token sequences with sentiment labels at every node
(5-class fine-grained, like SST-1)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import DatasetInfo, train_val_test_split

NUM_CLASSES = 5


@dataclass
class SentimentTree:
    """One binarized parse tree.

    Nodes 0..num_leaves-1 are leaves (in sentence order); internal nodes
    follow.  ``parent[i]`` is -1 for the root.  Labels exist for every node,
    as in SST.
    """

    parent: np.ndarray
    is_leaf: np.ndarray
    tokens: np.ndarray   # (num_leaves,) word ids for the leaves
    labels: np.ndarray   # (num_nodes,) sentiment 0..4

    @property
    def num_nodes(self) -> int:
        return int(self.parent.size)

    @property
    def num_leaves(self) -> int:
        return int(self.is_leaf.sum())

    def depths(self) -> np.ndarray:
        """Height of each node above the leaves (leaves = 0)."""
        depth = np.zeros(self.num_nodes, dtype=np.int64)
        # children appear before parents by construction, one pass suffices
        for node in range(self.num_nodes):
            p = self.parent[node]
            if p >= 0:
                depth[p] = max(depth[p], depth[node] + 1)
        return depth


@dataclass
class SSTDataset:
    info: DatasetInfo
    trees: list[SentimentTree]
    vocab_size: int
    train_idx: np.ndarray
    val_idx: np.ndarray
    test_idx: np.ndarray

    def __len__(self) -> int:
        return len(self.trees)


def load_sst(num_trees: int = 320, vocab_size: int = 3000, seed: int = 0
             ) -> SSTDataset:
    """~27x scaled SST (8544 train trees, mean ~19 leaves, 5 classes)."""
    from ..graph.generators import random_binary_tree

    rng = np.random.default_rng(seed)
    # Word sentiment polarity drives node labels so the task is learnable.
    word_polarity = rng.normal(0, 1, size=vocab_size).astype(np.float32)

    ranks = np.arange(1, vocab_size + 1, dtype=np.float64)
    probs = ranks ** (-1.05)
    probs /= probs.sum()

    trees = []
    for _ in range(num_trees):
        leaves = int(np.clip(rng.normal(19, 7), 4, 48))
        parent, _, is_leaf = random_binary_tree(leaves, rng)
        tokens = rng.choice(vocab_size, size=leaves, p=probs).astype(np.int64)
        total = parent.size
        score = np.zeros(total, dtype=np.float32)
        score[:leaves] = word_polarity[tokens]
        # propagate mean sentiment upward (children have smaller ids than
        # their parents, so one ascending pass finalizes each node in turn)
        counts = np.zeros(total, dtype=np.int64)
        sums = np.zeros(total, dtype=np.float32)
        for node in range(total):
            if not is_leaf[node]:
                score[node] = sums[node] / max(counts[node], 1)
            p = parent[node]
            if p >= 0:
                sums[p] += score[node]
                counts[p] += 1
        labels = np.clip(np.digitize(score, [-1.0, -0.3, 0.3, 1.0]), 0, 4)
        trees.append(SentimentTree(parent=parent, is_leaf=is_leaf,
                                   tokens=tokens,
                                   labels=labels.astype(np.int64)))

    train_idx, val_idx, test_idx = train_val_test_split(num_trees, rng,
                                                        train=0.8, val=0.1)
    info = DatasetInfo(
        name="sst",
        substitutes_for="Stanford Sentiment Treebank (fine-grained)",
        scale=num_trees / 8544,
        notes="random binarized parses; labels from word-polarity propagation",
    )
    return SSTDataset(info=info, trees=trees, vocab_size=vocab_size,
                      train_idx=train_idx, val_idx=val_idx, test_idx=test_idx)
