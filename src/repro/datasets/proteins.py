"""Synthetic protein-graph classification dataset (PROTEINS equivalent) for
the k-GNN workloads: medium-size graphs (mean ~39 nodes), 3 categorical node
labels (secondary-structure elements), binary enzyme/non-enzyme target."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph import Graph, generators
from .base import DatasetInfo, train_val_test_split


@dataclass
class ProteinDataset:
    info: DatasetInfo
    graphs: list[Graph]
    #: per-graph one-hot node features (num_nodes, 3)
    node_features: list[np.ndarray]
    labels: np.ndarray
    train_idx: np.ndarray
    val_idx: np.ndarray
    test_idx: np.ndarray

    def __len__(self) -> int:
        return len(self.graphs)


def load_proteins(num_graphs: int = 224, seed: int = 0) -> ProteinDataset:
    """~5x scaled PROTEINS (1113 graphs, mean 39 nodes, 3 node labels)."""
    rng = np.random.default_rng(seed)
    graphs, feats, labels = [], [], []
    for _ in range(num_graphs):
        n = int(np.clip(rng.normal(39, 12), 12, 80))
        is_enzyme = int(rng.random() < 0.5)
        # Enzymes: more helix-like chains (higher clustering); non-enzymes:
        # sparser sheet-like structure.
        avg_deg = 3.8 if is_enzyme else 2.6
        g = generators.erdos_renyi(n, avg_deg / 2, rng).to_undirected()
        # Ensure a backbone chain so graphs are connected like real proteins.
        chain = np.arange(n - 1)
        g = Graph(
            np.concatenate([g.src, chain, chain + 1]),
            np.concatenate([g.dst, chain + 1, chain]),
            num_nodes=n,
        )
        node_label = rng.choice(3, size=n, p=[0.45, 0.35, 0.2] if is_enzyme
                                else [0.3, 0.3, 0.4])
        onehot = np.zeros((n, 3), dtype=np.float32)
        onehot[np.arange(n), node_label] = 1.0
        graphs.append(g)
        feats.append(onehot)
        labels.append(is_enzyme)

    labels_arr = np.asarray(labels, dtype=np.int64)
    train_idx, val_idx, test_idx = train_val_test_split(num_graphs, rng,
                                                        train=0.8, val=0.1)
    info = DatasetInfo(
        name="proteins",
        substitutes_for="PROTEINS (protein molecule classification)",
        scale=num_graphs / 1113,
        notes="backbone chain + density-conditioned random contacts",
    )
    return ProteinDataset(
        info=info,
        graphs=graphs,
        node_features=feats,
        labels=labels_arr,
        train_idx=train_idx,
        val_idx=val_idx,
        test_idx=test_idx,
    )
