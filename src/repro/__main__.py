"""Command-line interface: regenerate the paper's tables and figures.

Usage::

    python -m repro table1                 # the suite inventory
    python -m repro fig2 ... fig8          # one characterization figure
    python -m repro fig9                   # the strong-scaling study
    python -m repro all                    # everything
    python -m repro profile TLSTM          # one workload, nvprof-style
    python -m repro profile --jobs 4       # whole suite, 4 worker processes
    python -m repro memory                 # device-memory occupancy table
    python -m repro memstats DGCN          # HBM allocator report, one workload
    python -m repro memstats               # peak_mem table, whole suite
    python -m repro golden                 # diff kernel streams vs snapshots
    python -m repro golden --update        # regenerate tests/golden/*.json
    python -m repro golden --traces        # diff timeline traces vs snapshots
    python -m repro golden --memory        # diff HBM reports vs snapshots
    python -m repro golden --fused         # diff fused replay streams
    python -m repro bench                  # cold/parallel/warm suite timings
    python -m repro bench --capture-replay # replay epochs from a captured plan
    python -m repro bench --workload ARGA  # one workload's hot path, isolated
    python -m repro trace dgcn             # Chrome-format kernel timeline
    python -m repro trace tlstm --gpus 4 -o trace.json
    python -m repro serve psage-mvl --qps 100     # serving-latency report
    python -m repro serve dgcn --arrival bursty --batch-max 16 -o serve.json
    python -m repro golden --serve         # diff serving reports vs snapshots
    python -m repro sample arga            # mini-batch sampled-training report
    python -m repro sample arga --nodes 1000000 --strict   # 10^6-node graph
    python -m repro sample psage-mvl --fanouts 10,5 --prefetch-depth 4
    python -m repro sample                 # prefetch-vs-sync BENCH_sample.json
    python -m repro golden --sample        # diff sampling reports vs snapshots
    python -m repro shard arga-p4          # partition-parallel training report
    python -m repro shard arga --parts 4 --nodes 600000 --feat-dim 8192 --strict
    python -m repro shard arga --parts 4 --offload     # out-of-core staging
    python -m repro shard                  # capacity frontier BENCH_shard.json
    python -m repro golden --shard         # diff sharded reports vs snapshots
    python -m repro insights dgcn          # roofline/bottleneck attribution
    python -m repro insights dgcn --gpus 2 -o insights.json
    python -m repro insights --diff old.json new.json  # differential diagnosis
    python -m repro golden --insights      # diff insights reports vs snapshots

Suite-level commands accept ``--jobs N`` (characterize independent
workloads on N worker processes) and ``--no-cache`` (recompute instead of
replaying unchanged profiles from the persistent on-disk cache).
``profile``, ``trace`` and ``memstats`` accept ``--metrics`` (dump the
process-wide metrics registry in Prometheus text format afterwards) and
``--metrics-output FILE`` (write the canonical-JSON snapshot there, plus a
sibling ``.prom`` Prometheus dump).
"""

from __future__ import annotations

import argparse
import json
import sys

from . import GNNMark
from .core import executor, profile_workload

FIGURES = {
    "fig2": "render_op_breakdown",
    "fig3": "render_instruction_mix",
    "fig4": "render_throughput",
    "fig5": "render_stalls",
    "fig6": "render_cache",
    "fig7": "render_sparsity",
    "fig8": "render_sparsity_timeline",
}


def _print_timeline_summary(summary: dict) -> None:
    if not summary:
        return
    phases = ", ".join(f"{name} {frac * 100:.1f}%"
                       for name, frac in summary["phase_occupancy"].items())
    print(f"   timeline: {summary['span_count']} spans,"
          f" {summary['idle_fraction'] * 100:.1f}% idle,"
          f" {summary['compute_transfer_overlap'] * 100:.1f}%"
          f" compute/transfer overlap")
    if phases:
        print(f"   phases:   {phases}")


def _resolve_workload(name: str) -> str:
    """Case-insensitive workload lookup (``dgcn`` → ``DGCN``)."""
    from .core import registry

    for key in registry.WORKLOAD_KEYS:
        if key.lower() == name.lower():
            return key
    raise SystemExit(f"unknown workload {name!r}; "
                     f"have {sorted(registry.WORKLOAD_KEYS)}")


def _print_profile_stats(key: str, profile) -> None:
    print(f"== {key} ({len(profile.epoch_times)} epoch(s),"
          f" {profile.launch_count} kernels,"
          f" {profile.sim_time_s * 1e3:.2f} ms simulated)")
    hits = getattr(profile, "analysis_hits", 0)
    misses = getattr(profile, "analysis_misses", 0)
    if hits + misses:
        print(f"   analysis cache: {hits}/{hits + misses} hits"
              f" ({hits / (hits + misses) * 100:.1f}%)")
    _print_timeline_summary(getattr(profile, "timeline_summary", {}))
    for stats in profile.kernels.top_kernels(10):
        share = stats.total_time_s / profile.kernels.total_time_s * 100
        print(f"  {stats.name:<28} {stats.op_class.value:<12}"
              f" x{stats.launches:<5} {stats.total_time_s * 1e6:9.1f} us"
              f" ({share:4.1f}%)")


def _print_profile(mark: GNNMark, key: str, epochs: int,
                   strict: bool = False) -> None:
    profile = profile_workload(key, scale=mark.scale, epochs=epochs,
                               seed=mark.seed, strict=strict)
    _print_profile_stats(key, profile)


def _print_profile_suite(mark: GNNMark, epochs: int, strict: bool,
                         jobs: int | None, cache) -> None:
    suite = executor.run_suite(scale=mark.scale, epochs=epochs,
                               seed=mark.seed, strict=strict, jobs=jobs,
                               cache=cache)
    for key, profile in suite.profiles.items():
        _print_profile_stats(key, profile)
        print()


def _print_memory(mark: GNNMark) -> None:
    print(f"{'workload':<12}{'model MB':>10}{'data MB/epoch':>15}{'data %':>8}")
    print("-" * 45)
    for key in mark.workloads():
        profile = profile_workload(key, scale=mark.scale, epochs=1,
                                   seed=mark.seed)
        mem = profile.memory_footprint()
        print(f"{key:<12}{mem['model_bytes'] / 1e6:>10.2f}"
              f"{mem['data_bytes_per_epoch'] / 1e6:>15.2f}"
              f"{mem['data_fraction'] * 100:>7.1f}%")


def _dump_metrics(output: str | None, manifest: dict | None = None) -> None:
    """Print (or write) the process-wide metrics registry.

    Without ``--metrics-output`` the Prometheus text format goes to stdout;
    with it, the canonical-JSON snapshot lands at the given path and the
    Prometheus dump beside it as ``<stem>.prom``.  When the caller knows
    which run populated the registry, its :class:`RunManifest` is embedded
    as a top-level ``runManifest`` key in the JSON export (the Prometheus
    dump and the registry digest stay manifest-free).
    """
    from pathlib import Path

    from .profiling import metrics

    reg = metrics.registry()
    if output is None:
        print(f"\n# metrics registry (digest {reg.digest()[:12]})")
        print(reg.to_prometheus(), end="")
        return
    path = Path(output)
    payload = reg.snapshot()
    if manifest is not None:
        payload = dict(payload)
        payload["runManifest"] = manifest
    path.write_text(reg.to_json(payload))
    prom = path.with_suffix(".prom")
    prom.write_text(reg.to_prometheus())
    print(f"wrote {path} and {prom} (metrics digest {reg.digest()[:12]})")


def _print_memstats(args, cache) -> int:
    from .core import characterize, executor
    from .profiling.report import format_memory_table

    scale = args.scale or "test"
    if args.workload:
        key = _resolve_workload(args.workload)
        report = characterize.measure_memory(key, scale=scale,
                                             epochs=args.epochs,
                                             seed=args.seed,
                                             strict=args.strict)
        cap = report["capacity_bytes"]
        print(f"== {key} (scale={scale}, epochs={args.epochs}): simulated HBM")
        print(f"   peak live     {report['peak_live_bytes'] / 1e6:10.2f} MB")
        print(f"   peak reserved {report['peak_reserved_bytes'] / 1e6:10.2f} MB"
              f"  ({report['utilization'] * 100:.2f}% of"
              f" {cap / 2**30:.0f} GiB capacity)")
        print(f"   live at end   {report['live_bytes'] / 1e6:10.2f} MB"
              f"  (reserved {report['reserved_bytes'] / 1e6:.2f} MB,"
              f" fragmentation {report['fragmentation'] * 100:.1f}%)")
        print(f"   allocator     {report['alloc_count']} allocs /"
              f" {report['free_count']} frees,"
              f" {report['segment_allocs']} segment allocs,"
              f" {report['bucket_reuse_count']} bucket reuses,"
              f" internal frag {report['internal_fragmentation'] * 100:.1f}%")
        if report["oom_events"]:
            print(f"   OOM           {report['oom_events']} capacity"
                  f" violation(s) — rerun with --strict to raise")
        print("   phase watermarks (peak live MB):")
        for phase, peak in report["phase_watermarks"].items():
            print(f"     {phase:<12}{peak / 1e6:10.2f}")
        epochs = ", ".join(f"{w / 1e6:.2f}" for w in report["epoch_watermarks"])
        print(f"   epoch watermarks (MB): {epochs}")
        print("   top allocation labels (MB requested, count):")
        for name, nbytes, count in report["top_labels"]:
            print(f"     {name:<20}{nbytes / 1e6:10.2f}  x{count}")
        print(f"   memory digest {report['memory_digest'][:16]}")
    else:
        reports = executor.memstats_suite(scale=scale, epochs=args.epochs,
                                          seed=args.seed, strict=args.strict,
                                          jobs=args.jobs, cache=cache)
        print(format_memory_table(reports))
    if args.metrics or args.metrics_output:
        _dump_metrics(args.metrics_output)
    return 0


def _run_golden(workload: str | None, update: bool, jobs: int | None,
                cache, traces: bool = False, memory: bool = False,
                fused: bool = False, serve: bool = False,
                sample: bool = False, shard: bool = False,
                insights: bool = False) -> int:
    from .core import registry
    from .testing import golden

    if shard:
        # shard snapshots are keyed by config name (ARGA-P4), not workload
        keys = [workload.upper()] if workload else list(golden.SHARD_GOLDEN_KEYS)
        unknown = [k for k in keys if k not in golden.SHARD_GOLDEN_KEYS]
        if unknown:
            print(f"unknown shard config(s) {unknown}; "
                  f"have {sorted(golden.SHARD_GOLDEN_KEYS)}")
            return 2
    else:
        if insights:
            keys = ([workload] if workload
                    else list(golden.INSIGHTS_GOLDEN_KEYS))
        elif sample:
            keys = [workload] if workload else list(golden.SAMPLE_GOLDEN_KEYS)
        elif serve:
            keys = [workload] if workload else list(golden.SERVE_GOLDEN_KEYS)
        else:
            keys = [workload] if workload else list(registry.WORKLOAD_KEYS)
        unknown = [k for k in keys if k not in registry.WORKLOAD_KEYS]
        if unknown:
            print(f"unknown workload(s) {unknown}; "
                  f"have {sorted(registry.WORKLOAD_KEYS)}")
            return 2
    if shard:
        update_fn = golden.update_shard_goldens
        verify_fn = golden.verify_shard_goldens
    elif insights:
        update_fn = golden.update_insights_goldens
        verify_fn = golden.verify_insights_goldens
    elif sample:
        update_fn = golden.update_sample_goldens
        verify_fn = golden.verify_sample_goldens
    elif serve:
        update_fn = golden.update_serve_goldens
        verify_fn = golden.verify_serve_goldens
    elif fused:
        update_fn = golden.update_fused_goldens
        verify_fn = golden.verify_fused_goldens
    elif memory:
        update_fn = golden.update_memory_goldens
        verify_fn = golden.verify_memory_goldens
    elif traces:
        update_fn = golden.update_trace_goldens
        verify_fn = golden.verify_trace_goldens
    else:
        update_fn = golden.update_goldens
        verify_fn = golden.verify_goldens
    if update:
        for path in update_fn(keys, jobs=jobs, cache=cache):
            print(f"wrote {path}")
        return 0
    flag = (" --shard" if shard
            else " --insights" if insights
            else " --sample" if sample
            else " --serve" if serve
            else " --fused" if fused
            else " --memory" if memory
            else " --traces" if traces else "")
    failed = 0
    for key, diffs in verify_fn(keys, jobs=jobs, cache=cache).items():
        if not diffs:
            print(f"{key}: ok")
        elif len(diffs) == 1 and diffs[0].startswith("missing snapshot"):
            failed += 1
            print(f"{key}: MISSING ({diffs[0]})")
        else:
            failed += 1
            print(f"{key}: DIFFERS")
            for line in diffs:
                print(f"  {line}")
    if failed:
        print(f"{failed} workload(s) diverged; regenerate intentionally with "
              f"`python -m repro golden{flag} --update`")
    return 1 if failed else 0


def _print_serve_report(report: dict) -> None:
    lat, wait, comp = (report["latency_us"], report["wait_us"],
                       report["compute_us"])
    print(f"== {report['workload']} (scale={report['scale']},"
          f" arrival={report['arrival']}, qps={report['qps']:g},"
          f" batch_max={report['batch_max']},"
          f" max_wait={report['max_wait_us']:g} us)")
    print(f"   served        {report['completed']} requests in"
          f" {report['duration_s'] * 1e3:.2f} ms simulated"
          f"  ({report['throughput_rps']:.1f} req/s)")
    print(f"   {'':<10}{'p50':>10}{'p95':>10}{'p99':>10}{'max':>10}")
    for name, block in (("latency", lat), ("wait", wait), ("compute", comp)):
        print(f"   {name:<10}{block['p50']:>10.1f}{block['p95']:>10.1f}"
              f"{block['p99']:>10.1f}{block['max']:>10.1f}  us")
    hist = ", ".join(
        f"{size}x{count}"
        for size, count in sorted(report["batch_size_hist"].items(),
                                  key=lambda kv: int(kv[0]))
    )
    print(f"   batches       {report['batches']}"
          f" (mean size {report['mean_batch_size']:.2f}; {hist})")
    print(f"   fast path     {report['captured_plans']} captured plan(s),"
          f" {report['replayed_batches']} replayed batch(es)")
    print(f"   HBM           peak live {report['peak_live_bytes'] / 1e6:.2f}"
          f" MB, peak reserved {report['peak_reserved_bytes'] / 1e6:.2f} MB"
          f" ({report['hbm_utilization'] * 100:.3f}% of capacity)")
    if report["oom_events"]:
        print(f"   OOM           {report['oom_events']} capacity"
              f" violation(s)")
    print(f"   serve digest  {report['serve_digest'][:16]}")


def _run_serve(args) -> int:
    from .profiling import trace as trace_mod
    from .serve import serve_run

    if not args.workload:
        print("the 'serve' command needs a workload key, e.g. "
              "`python -m repro serve psage-mvl --qps 100`")
        return 2
    key = _resolve_workload(args.workload)
    try:
        report, timeline = serve_run(
            key, scale=args.scale or "test", qps=args.qps,
            arrival=args.arrival, batch_max=args.batch_max,
            max_wait_us=args.max_wait_us, requests=args.requests,
            seed=args.seed, strict=args.strict,
            traced=args.output is not None)
    except ValueError as exc:  # contradictory knobs / unserveable workload
        print(exc)
        return 2
    _print_serve_report(report)
    if timeline is not None:
        from .profiling import insights

        manifest = insights.build_manifest(
            key, scale=args.scale or "test", epochs=1, seed=args.seed,
            capture_replay=bool(report.get("captured_plans"))).as_dict()
        trace_mod.validate_chrome(timeline.to_chrome(manifest=manifest))
        timeline.write(args.output, manifest=manifest)
        print(f"wrote {args.output}  (load in https://ui.perfetto.dev or "
              f"chrome://tracing)")
    if args.metrics or args.metrics_output:
        _dump_metrics(args.metrics_output)
    return 0


def _print_sample_report(report: dict) -> None:
    fanouts = "x".join(str(f) for f in report["fanouts"])
    print(f"== {report['workload']} (scale={report['scale']},"
          f" fanouts={fanouts}, batch={report['batch_size']},"
          f" prefetch_depth={report['prefetch_depth']},"
          f" epochs={report['epochs']})")
    print(f"   graph         {report['graph_nodes']} nodes,"
          f" {report['graph_edges']} edges,"
          f" {report['train_seeds']} train seeds")
    print(f"   sampler       {report['batches']} batches"
          f" ({report['batches_per_epoch']}/epoch),"
          f" {report['edges_sampled']} edges drawn,"
          f" {report['sample_cost_s'] * 1e3:.2f} ms host sampling")
    print(f"   loader stall  {report['loader_stall_s'] * 1e3:.2f} ms"
          f" ({report['loader_stall_fraction'] * 100:.1f}% of"
          f" {report['sim_wall_s'] * 1e3:.2f} ms simulated wall)")
    print(f"   queue         occupancy mean"
          f" {report['queue_occupancy_mean']:.2f},"
          f" max {report['queue_occupancy_max']}")
    print(f"   throughput    {report['epochs_per_sim_s']:.2f} epochs per"
          f" simulated second ({report['kernels']} kernels,"
          f" {report['h2d_bytes'] / 1e6:.2f} MB H2D)")
    print(f"   HBM           peak live {report['peak_live_bytes'] / 1e6:.2f}"
          f" MB, peak reserved {report['peak_reserved_bytes'] / 1e6:.2f} MB"
          f" ({report['hbm_utilization'] * 100:.3f}% of capacity)")
    if report["oom_events"]:
        print(f"   OOM           {report['oom_events']} capacity"
              f" violation(s)")
    print(f"   sample digest {report['sample_digest'][:16]}")


def _run_sample_cmd(args, cache) -> int:
    from .profiling import trace as trace_mod
    from .train.loader import sample_run

    fanouts = tuple(int(f) for f in args.fanouts.split(","))
    epochs = args.epochs if args.epochs > 1 else 2
    if not args.workload:
        return _run_bench_sample(args, fanouts, epochs, cache)
    key = _resolve_workload(args.workload)
    try:
        report, timeline = sample_run(
            key, scale=args.scale or "test", fanouts=fanouts,
            batch_size=args.batch_size, prefetch_depth=args.prefetch_depth,
            epochs=epochs, nodes=args.nodes, seed=args.seed,
            strict=args.strict, traced=args.output is not None)
    except ValueError as exc:  # contradictory knobs / unsampleable workload
        print(exc)
        return 2
    _print_sample_report(report)
    if timeline is not None:
        from .profiling import insights

        manifest = insights.build_manifest(
            key, scale=args.scale or "test", epochs=epochs,
            seed=args.seed).as_dict()
        trace_mod.validate_chrome(timeline.to_chrome(manifest=manifest))
        timeline.write(args.output, manifest=manifest)
        print(f"wrote {args.output}  (load in https://ui.perfetto.dev or "
              f"chrome://tracing)")
    if args.metrics or args.metrics_output:
        _dump_metrics(args.metrics_output)
    return 0


def _run_bench_sample(args, fanouts: tuple, epochs: int, cache) -> int:
    # suite mode: the prefetch-vs-synchronous comparison (BENCH_sample.json),
    # gated against a committed baseline like the launch hot-path bench —
    # except these are simulated-clock numbers, so the gate can be strict
    report = executor.benchmark_sample(scale=args.scale or "test",
                                       fanouts=fanouts,
                                       batch_size=args.batch_size,
                                       prefetch_depth=args.prefetch_depth,
                                       epochs=epochs, seed=args.seed,
                                       jobs=args.jobs, cache=cache)
    print(f"mini-batch loader: prefetch_depth={report['prefetch_depth']} vs"
          f" synchronous ({report['epochs']} epoch(s),"
          f" scale={report['scale']},"
          f" fanouts={'x'.join(str(f) for f in report['fanouts'])},"
          f" batch={report['batch_size']}):")
    print(f"  {'workload':<12}{'sync ep/s':>12}{'prefetch ep/s':>15}"
          f"{'speedup':>9}{'stall sync':>12}{'stall pre':>11}")
    for key, row in report["workloads"].items():
        print(f"  {key:<12}{row['sync_epochs_per_s']:>12.2f}"
              f"{row['prefetch_epochs_per_s']:>15.2f}"
              f"{row['speedup']:>8.2f}x"
              f"{row['sync_stall_s'] * 1e3:>10.2f}ms"
              f"{row['prefetch_stall_s'] * 1e3:>9.2f}ms")
    print(f"  {'suite':<12}{'':>12}{'':>15}{report['speedup']:>8.2f}x")
    out = args.output or "BENCH_sample.json"
    with open(out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {out}")

    if args.baseline:
        with open(args.baseline) as fh:
            baseline = json.load(fh)
        failures = executor.check_sample_regression(report, baseline)
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}")
            return 1
        print(f"baseline check ok (committed speedup"
              f" {baseline.get('speedup', 0.0):.3f}x,"
              f" measured {report['speedup']:.3f}x)")
    if args.metrics or args.metrics_output:
        _dump_metrics(args.metrics_output)
    return 0


def _print_shard_report(report: dict) -> None:
    part = report["partition"]
    print(f"== {report['name']} ({report['workload']},"
          f" mode={report['mode']}, parts={report['parts']},"
          f" gpus={report['gpus']},"
          f" offload={'yes' if report['offload'] else 'no'},"
          f" epochs={report['epochs']})")
    print(f"   graph         {report['graph_nodes']} nodes,"
          f" {report['graph_edges']} edges, feat_dim={report['feat_dim']},"
          f" {report['train_nodes']} train seeds")
    print(f"   partition     {part['method']}+lp{part['refine']}:"
          f" cut {part['edge_cut']} ({part['cut_fraction'] * 100:.1f}%),"
          f" balance {part['achieved_balance']:.3f},"
          f" replication {part['replication_factor']:.2f}x")
    print(f"   halo          {report['halo_exchanges']} exchange(s),"
          f" {report['halo_bytes'] / 1e6:.2f} MB moved,"
          f" {report['halo_time_s'] * 1e3:.3f} ms on the NVLink model")
    print(f"   staging       {report['h2d_bytes'] / 1e6:.2f} MB H2D,"
          f" {report['d2h_bytes'] / 1e6:.2f} MB D2H,"
          f" {report['allreduce_bytes'] / 1e6:.2f} MB allreduced")
    print(f"   throughput    {report['epochs_per_sim_s']:.2f} epochs per"
          f" simulated second ({report['kernels']} kernels,"
          f" {report['sim_wall_s'] * 1e3:.2f} ms wall)")
    print(f"   HBM           peak live {report['peak_live_bytes'] / 1e6:.2f}"
          f" MB, peak reserved {report['peak_reserved_bytes'] / 1e6:.2f} MB"
          f" ({report['hbm_utilization'] * 100:.3f}% of capacity)")
    if report["oom_events"]:
        print(f"   OOM           {report['oom_events']} capacity"
              f" violation(s) — rerun with --strict to raise")
    if report["losses"]:
        losses = ", ".join(f"{x:.6f}" for x in report["losses"])
        print(f"   loss          {losses}")
    print(f"   shard digest  {report['shard_digest'][:16]}"
          f"  (halo trace {report['halo_trace_digest'][:12]})")


def _run_shard_cmd(args, cache) -> int:
    from .gpu.memory import OOMError
    from .profiling import trace as trace_mod
    from .train.sharded import resolve_shard_config, shard_run

    if not args.workload:
        return _run_bench_shard(args, cache)
    try:
        key, params = resolve_shard_config(args.workload.upper())
    except ValueError as exc:
        print(exc)
        return 2
    if args.parts is not None:
        params["parts"] = args.parts
    if args.offload:
        params["offload"] = True
    if args.nodes is not None:
        params["nodes"] = args.nodes
    if args.feat_dim is not None:
        params["feat_dim"] = args.feat_dim
    if args.epochs > 1:
        params["epochs"] = args.epochs
    params["seed"] = args.seed
    params["strict"] = args.strict
    try:
        report, timeline = shard_run(key, traced=args.output is not None,
                                     **params)
    except ValueError as exc:  # contradictory knobs / unshardable workload
        print(exc)
        return 2
    except OOMError as exc:
        print(f"OOM under --strict: {exc}")
        print("shard the graph over more --parts, or stage it with --offload")
        return 1
    _print_shard_report(report)
    if timeline is not None:
        from .profiling import insights

        manifest = insights.build_manifest(
            key, scale="shard", epochs=report["epochs"], seed=args.seed,
            gpus=report["gpus"], parts=report["parts"]).as_dict()
        trace_mod.validate_chrome(timeline.to_chrome(manifest=manifest))
        timeline.write(args.output, manifest=manifest)
        print(f"wrote {args.output}  (load in https://ui.perfetto.dev or "
              f"chrome://tracing)")
    if args.metrics or args.metrics_output:
        _dump_metrics(args.metrics_output)
    return 0


def _run_bench_shard(args, cache) -> int:
    # suite mode: the capacity-frontier study (BENCH_shard.json) — largest
    # trainable node count per device configuration under the HBM model,
    # gated exactly against a committed baseline (simulated => deterministic)
    report = executor.benchmark_shard(epochs=1, seed=args.seed,
                                      jobs=args.jobs, cache=cache)
    print(f"capacity frontier (feat_dim={report['feat_dim']},"
          f" hidden={report['hidden']}, {report['epochs']} epoch(s),"
          f" ladder {report['ladder'][0]}..{report['ladder'][-1]} nodes):")
    print(f"  {'config':<10}{'parts':>6}{'offload':>9}{'frontier':>10}"
          f"{'peak GB':>9}")
    for label, cfg in report["configs"].items():
        frontier = cfg["frontier"]
        peak = (cfg["points"][str(frontier)]["peak_reserved_bytes"] / 2**30
                if frontier else 0.0)
        print(f"  {label:<10}{cfg['parts']:>6}"
              f"{'yes' if cfg['offload'] else 'no':>9}"
              f"{frontier:>10}{peak:>9.2f}")
    out = args.output or "BENCH_shard.json"
    with open(out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {out}")

    if args.baseline:
        with open(args.baseline) as fh:
            baseline = json.load(fh)
        failures = executor.check_shard_regression(report, baseline)
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}")
            return 1
        print(f"baseline check ok (frontiers"
              f" {baseline.get('frontier', {})} reproduced exactly)")
    if args.metrics or args.metrics_output:
        _dump_metrics(args.metrics_output)
    return 0


def _run_insights_cmd(args) -> int:
    from .profiling import insights
    from .profiling.report import format_insights, format_insights_diff

    if args.diff:
        ref_path, new_path = args.diff
        with open(ref_path) as fh:
            reference = json.load(fh)
        with open(new_path) as fh:
            measured = json.load(fh)
        diff = insights.diff_insights(reference, measured)
        print(format_insights_diff(diff))
        if args.output:
            with open(args.output, "w") as fh:
                json.dump(diff, fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"wrote {args.output}")
        return 0
    if not args.workload:
        print("the 'insights' command needs a workload key, e.g. "
              "`python -m repro insights dgcn` "
              "(or --diff REFERENCE.json MEASURED.json)")
        return 2
    key = _resolve_workload(args.workload)
    epochs = args.epochs if args.epochs > 1 else 2
    try:
        report = insights.insights_report(key, scale=args.scale or "test",
                                          epochs=epochs, seed=args.seed,
                                          gpus=args.gpus)
    except ValueError as exc:  # e.g. whole-graph workloads at --gpus > 1
        print(exc)
        return 2
    print(format_insights(report))
    if args.output:
        with open(args.output, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.output}  (insights digest "
              f"{report['insights_digest'][:12]})")
    if args.metrics or args.metrics_output:
        _dump_metrics(args.metrics_output, manifest=report["manifest"])
    return 0


def _run_trace(args) -> int:
    from .profiling import insights, trace

    key = _resolve_workload(args.workload) if args.workload else None
    if key is None:
        print("the 'trace' command needs a workload key, e.g. "
              "`python -m repro trace dgcn`")
        return 2
    scale = args.scale or "test"
    try:
        # memory counter tracks ride along on single-device traces only
        timeline = trace.trace_point(key, num_gpus=args.gpus, scale=scale,
                                     epochs=args.epochs, seed=args.seed,
                                     memory=args.gpus == 1)
    except ValueError as exc:  # e.g. whole-graph workloads at --gpus > 1
        print(exc)
        return 2
    manifest = insights.build_manifest(key, scale=scale, epochs=args.epochs,
                                       seed=args.seed,
                                       gpus=args.gpus).as_dict()
    chrome = timeline.to_chrome(manifest=manifest)
    trace.validate_chrome(chrome)
    out = args.output or f"{key}_trace.json"
    timeline.write(out, manifest=manifest)
    summary = timeline.summary()
    gpus = ", ".join(
        f"gpu{pid} {dev['busy_s'] * 1e3:.2f} ms busy"
        f" ({(1 - dev['idle_fraction']) * 100:.1f}%)"
        for pid, dev in summary["devices"].items()
    )
    print(f"== {key} (scale={scale}, epochs={args.epochs},"
          f" gpus={args.gpus}): {summary['wall_s'] * 1e3:.2f} ms wall")
    print(f"   {gpus}")
    _print_timeline_summary(summary)
    print(f"wrote {out}  (load in https://ui.perfetto.dev or chrome://tracing)")
    if args.metrics or args.metrics_output:
        _dump_metrics(args.metrics_output, manifest=manifest)
    return 0


def _run_bench(args) -> int:
    # the bench times the harness, not the workloads: test-scale configs by
    # default (--quick forces them), full profile scale via --scale profile
    scale = "test" if args.quick else (args.scale or "test")
    if args.bench_workload:
        # single-workload mode: reproduce one workload's hot-path numbers in
        # isolation (skips the suite-level cold/parallel/warm timings)
        key = _resolve_workload(args.bench_workload)
        return _run_bench_hotpath(args, scale, keys=[key])
    report = executor.benchmark_suite(scale=scale, epochs=args.epochs,
                                      seed=args.seed, jobs=args.jobs)
    print(f"suite of {len(report['suite'])} workloads"
          f" (scale={report['scale']}, epochs={report['epochs']},"
          f" jobs={report['jobs']}):")
    print(f"  cold serial    {report['cold_serial_s']:8.2f} s")
    print(f"  cold parallel  {report['cold_parallel_s']:8.2f} s"
          f"  ({report['parallel_speedup']:.2f}x)")
    print(f"  warm cache     {report['warm_cache_s']:8.2f} s"
          f"  ({report['warm_speedup']:.1f}x,"
          f" {report['warm_cache_hits']} hits)")
    out = args.output or "BENCH_suite.json"
    with open(out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {out}")
    return _run_bench_hotpath(args, scale)


def _run_bench_hotpath(args, scale: str,
                       keys: list[str] | None = None) -> int:
    # steady-state launch-path microbench: warm (analysis cache on) vs cold
    # (REPRO_ANALYSIS_CACHE=0 semantics) epochs/sec per workload
    hotpath_epochs = args.epochs if args.epochs > 1 else 3
    report = executor.benchmark_hotpath(keys=keys, scale=scale,
                                        epochs=hotpath_epochs,
                                        seed=args.seed,
                                        capture_replay=args.capture_replay,
                                        fuse=args.fuse)
    mode = ("capture-replay+fuse" if report["fuse"]
            else "capture-replay" if report["capture_replay"]
            else "dispatch")
    print(f"\nlaunch hot path (steady state, {report['epochs']} epoch(s)"
          f" after warm-up, scale={report['scale']}, mode={mode}):")
    print(f"  {'workload':<12}{'warm ep/s':>12}{'cold ep/s':>12}"
          f"{'speedup':>9}{'hit rate':>10}{'replayed':>10}")
    for key, row in report["workloads"].items():
        replayed = (str(row.get("replayed_epochs", 0))
                    if row["mode"] == "capture-replay" else "-")
        print(f"  {key:<12}{row['warm_epochs_per_s']:>12.2f}"
              f"{row['cold_epochs_per_s']:>12.2f}{row['speedup']:>8.2f}x"
              f"{row['hit_rate'] * 100:>9.1f}%{replayed:>10}")
    print(f"  {'suite':<12}{report['warm_epochs_per_s']:>12.2f}"
          f"{report['cold_epochs_per_s']:>12.2f}{report['speedup']:>8.2f}x")
    with open(args.hotpath_output, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.hotpath_output}")

    if args.baseline:
        with open(args.baseline) as fh:
            baseline = json.load(fh)
        failures = executor.check_hotpath_regression(report, baseline)
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}")
            return 1
        print(f"baseline check ok (committed speedup"
              f" {baseline.get('speedup', 0.0):.2f}x,"
              f" measured {report['speedup']:.2f}x)")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="GNNMark reproduction: regenerate the paper's artifacts",
    )
    parser.add_argument("command",
                        choices=["table1", *FIGURES, "fig9", "all",
                                 "profile", "memory", "memstats", "golden",
                                 "bench", "trace", "serve", "sample",
                                 "shard", "insights"],
                        help="which artifact to regenerate")
    parser.add_argument("workload", nargs="?",
                        help="workload key (for 'profile', 'memstats', "
                             "'golden', 'trace', 'serve', 'sample', 'shard' "
                             "and 'insights'; case-insensitive for 'trace', "
                             "'memstats', 'serve', 'sample', 'shard' and "
                             "'insights')")
    parser.add_argument("--epochs", type=int, default=1)
    parser.add_argument("--scale", default=None,
                        choices=["test", "profile", "scaling"],
                        help="workload configs (default: profile; "
                             "'bench' defaults to test)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes for suite-level commands "
                             "(default: $REPRO_JOBS or serial)")
    parser.add_argument("--no-cache", action="store_true",
                        help="always recompute; skip the persistent profile "
                             "cache")
    parser.add_argument("--update", action="store_true",
                        help="regenerate golden snapshots instead of diffing")
    parser.add_argument("--traces", action="store_true",
                        help="'golden': operate on timeline-trace snapshots "
                             "(tests/golden/trace_*.json) instead of kernel "
                             "streams")
    parser.add_argument("--memory", action="store_true",
                        help="'golden': operate on device-memory snapshots "
                             "(tests/golden/memory_*.json) instead of kernel "
                             "streams")
    parser.add_argument("--fused", action="store_true",
                        help="'golden': operate on fused-stream snapshots "
                             "(tests/golden/fused_*.json) — capture/replay "
                             "with elementwise fusion")
    parser.add_argument("--serve", action="store_true",
                        help="'golden': operate on serving snapshots "
                             "(tests/golden/serve_*.json) — repro.serve "
                             "latency reports")
    parser.add_argument("--sample", action="store_true",
                        help="'golden': operate on sampled-training "
                             "snapshots (tests/golden/sample_*.json) — "
                             "mini-batch loader reports")
    parser.add_argument("--shard", action="store_true",
                        help="'golden': operate on sharded-training "
                             "snapshots (tests/golden/shard_*.json) — "
                             "partition-parallel training reports")
    parser.add_argument("--insights", action="store_true",
                        help="'golden': operate on insight-engine snapshots "
                             "(tests/golden/insights_*.json) — roofline "
                             "attribution reports")
    parser.add_argument("--diff", nargs=2,
                        metavar=("REFERENCE", "MEASURED"),
                        help="'insights': diagnose the delta between two "
                             "saved reports (insights JSON or any bench "
                             "payload/baseline) instead of running a "
                             "workload")
    parser.add_argument("--parts", type=int, default=None,
                        help="'shard': number of graph partitions "
                             "(default: the named config's, else 4)")
    parser.add_argument("--offload", action="store_true",
                        help="'shard': stage partitions out-of-core through "
                             "one device's HBM instead of one GPU per part")
    parser.add_argument("--feat-dim", type=int, default=None,
                        help="'shard': synthetic feature width (default: the "
                             "named config's, else 64)")
    parser.add_argument("--fanouts", default="10,5",
                        help="'sample': comma-separated per-layer neighbor "
                             "fanouts, outermost first (default 10,5)")
    parser.add_argument("--batch-size", type=int, default=64,
                        help="'sample': seeds per mini-batch")
    parser.add_argument("--prefetch-depth", type=int, default=2,
                        help="'sample': bounded prefetch queue depth "
                             "(0 = synchronous sampling)")
    parser.add_argument("--nodes", type=int, default=None,
                        help="'sample': synthesize a citation graph of this "
                             "many nodes instead of the registry dataset "
                             "(ARGA only)")
    parser.add_argument("--qps", type=float, default=100.0,
                        help="'serve': mean request arrival rate "
                             "(requests per simulated second)")
    parser.add_argument("--arrival", choices=["poisson", "bursty"],
                        default="poisson",
                        help="'serve': arrival process (bursty = 2-state "
                             "MMPP averaging the same qps)")
    parser.add_argument("--batch-max", type=int, default=8,
                        help="'serve': dynamic batcher size cap")
    parser.add_argument("--max-wait-us", type=float, default=2000.0,
                        help="'serve': longest the batcher may hold the "
                             "queue head (simulated microseconds)")
    parser.add_argument("--requests", type=int, default=256,
                        help="'serve': number of requests to generate")
    parser.add_argument("--capture-replay", action="store_true",
                        help="'bench': capture each workload's steady-state "
                             "epoch and replay it instead of re-dispatching "
                             "(repro.gpu.graph_capture)")
    parser.add_argument("--fuse", action="store_true",
                        help="'bench': with capture/replay, also merge "
                             "adjacent elementwise launches in the replayed "
                             "plan (implies --capture-replay)")
    parser.add_argument("--workload", dest="bench_workload", default=None,
                        help="'bench': time a single workload's hot path in "
                             "isolation (case-insensitive key; skips the "
                             "suite-level timings)")
    parser.add_argument("--metrics", action="store_true",
                        help="after 'profile'/'trace'/'memstats': dump the "
                             "process-wide metrics registry (Prometheus text "
                             "format)")
    parser.add_argument("--metrics-output", default=None,
                        help="write the metrics snapshot as canonical JSON "
                             "to this file, plus a sibling .prom dump")
    parser.add_argument("--gpus", type=int, default=1,
                        help="'trace'/'insights': number of simulated "
                             "devices (multi-GPU runs trace the DDP "
                             "allreduce)")
    parser.add_argument("--strict", action="store_true",
                        help="validate GPU-model invariants on every record "
                             "(the 'profile' command)")
    parser.add_argument("--quick", action="store_true",
                        help="'bench': time the fast test-scale configs")
    parser.add_argument("-o", "--output", default=None,
                        help="output file ('trace': the Chrome JSON, default "
                             "<KEY>_trace.json; 'bench': the timing report, "
                             "default BENCH_suite.json; 'insights': the full "
                             "report or diff JSON)")
    parser.add_argument("--hotpath-output", default="BENCH_hotpath.json",
                        help="'bench': where to write the launch hot-path "
                             "microbench report")
    parser.add_argument("--baseline", default=None,
                        help="'bench': committed hot-path baseline JSON; "
                             "exit 1 if warm steady-state throughput "
                             "regresses >25%% against it. 'sample' (suite "
                             "mode): committed BENCH_sample baseline; exit 1 "
                             "unless prefetch strictly beats synchronous. "
                             "'shard' (suite mode): committed BENCH_shard "
                             "baseline; exit 1 unless capacity frontiers "
                             "reproduce exactly")
    args = parser.parse_args(argv)
    cache = False if args.no_cache else True

    if args.command == "golden":
        return _run_golden(args.workload, args.update, args.jobs, cache,
                           traces=args.traces, memory=args.memory,
                           fused=args.fused, serve=args.serve,
                           sample=args.sample, shard=args.shard,
                           insights=args.insights)
    if args.command == "bench":
        return _run_bench(args)
    if args.command == "insights":
        return _run_insights_cmd(args)
    if args.command == "trace":
        return _run_trace(args)
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "sample":
        return _run_sample_cmd(args, cache)
    if args.command == "shard":
        return _run_shard_cmd(args, cache)
    if args.command == "memstats":
        return _print_memstats(args, cache)

    mark = GNNMark(scale=args.scale or "profile", seed=args.seed)

    if args.command == "table1":
        print(mark.render_table1())
        return 0
    if args.command == "profile":
        if args.workload:
            _print_profile(mark, args.workload, args.epochs,
                           strict=args.strict)
        else:
            _print_profile_suite(mark, args.epochs, args.strict, args.jobs,
                                 cache)
        if args.metrics or args.metrics_output:
            _dump_metrics(args.metrics_output)
        return 0
    if args.command == "memory":
        _print_memory(mark)
        return 0
    if args.command == "fig9":
        print(mark.render_scaling(mark.scaling_study(
            epochs=args.epochs, jobs=args.jobs, cache=cache)))
        return 0

    wanted = list(FIGURES) if args.command == "all" else [args.command]
    suite = mark.characterize_suite(epochs=args.epochs, jobs=args.jobs,
                                    cache=cache)
    for fig in wanted:
        print(getattr(mark, FIGURES[fig])(suite))
        print()
    if args.command == "all":
        print(mark.render_table1())
        print()
        print(mark.render_scaling(mark.scaling_study(
            epochs=args.epochs, jobs=args.jobs, cache=cache)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
