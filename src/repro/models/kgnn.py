"""k-GNN: hierarchical higher-order GNNs (Morris et al.).

KGNNL is the 1-2-GNN (node level + connected-pair level), KGNNH the
1-2-3-GNN (plus connected-triple level), trained to classify protein
graphs.  Higher levels operate on set-graphs whose nodes are k-element
subsets; constructing and aggregating over them multiplies the irregular
gather/scatter work — the paper includes both variants to show how the
profile shifts as k grows.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..datasets.proteins import ProteinDataset
from ..graph import Graph, batch_graphs
from ..tensor import Tensor, functional as F, nn
from ..tensor.optim import Adam
from .layers import gather_scatter


@dataclass
class SetGraph:
    """A k-set graph: one node per k-element subset of the base graph."""

    #: (num_sets, k) member node ids (base-graph coordinates)
    members: np.ndarray
    #: set-graph edges (sets sharing k-1 members)
    edge_src: np.ndarray
    edge_dst: np.ndarray

    @property
    def num_sets(self) -> int:
        return int(self.members.shape[0])


def build_pair_graph(graph: Graph) -> SetGraph:
    """2-sets = connected node pairs; edges link pairs sharing a node."""
    mask = graph.src < graph.dst
    pairs = np.unique(
        np.stack([graph.src[mask], graph.dst[mask]], axis=1), axis=0
    )
    if pairs.size == 0:
        return SetGraph(np.empty((0, 2), np.int64), np.empty(0, np.int64),
                        np.empty(0, np.int64))
    edge_src, edge_dst = _edges_by_shared_members(pairs)
    return SetGraph(pairs.astype(np.int64), edge_src, edge_dst)


def build_triple_graph(graph: Graph, max_triples: int = 4000) -> SetGraph:
    """3-sets = connected triples (a path or triangle through the graph)."""
    csr = graph.csr()
    triples = set()
    mask = graph.src < graph.dst
    for a, b in zip(graph.src[mask], graph.dst[mask]):
        for c in csr.indices[csr.indptr[b] : csr.indptr[b + 1]]:
            if c != a and c != b:
                triples.add(tuple(sorted((int(a), int(b), int(c)))))
        for c in csr.indices[csr.indptr[a] : csr.indptr[a + 1]]:
            if c != a and c != b:
                triples.add(tuple(sorted((int(a), int(b), int(c)))))
        if len(triples) >= max_triples:
            break
    if not triples:
        return SetGraph(np.empty((0, 3), np.int64), np.empty(0, np.int64),
                        np.empty(0, np.int64))
    members = np.array(sorted(triples), dtype=np.int64)
    edge_src, edge_dst = _edges_by_shared_members(members, shared=2)
    return SetGraph(members, edge_src, edge_dst)


def _edges_by_shared_members(members: np.ndarray, shared: int | None = None
                             ) -> tuple[np.ndarray, np.ndarray]:
    """Connect sets that share ``k - 1`` members (i.e. a (k-1)-subset)."""
    from itertools import combinations

    k = members.shape[1]
    subset_size = shared if shared is not None else k - 1
    buckets: dict[tuple, list[int]] = {}
    for set_id, row in enumerate(members):
        for sub in combinations(row.tolist(), subset_size):
            buckets.setdefault(sub, []).append(set_id)
    src, dst = [], []
    for ids in buckets.values():
        if len(ids) < 2:
            continue
        arr = np.asarray(ids, dtype=np.int64)
        grid_a = np.repeat(arr, arr.size)
        grid_b = np.tile(arr, arr.size)
        keep = grid_a != grid_b
        src.append(grid_a[keep])
        dst.append(grid_b[keep])
    if not src:
        return np.empty(0, np.int64), np.empty(0, np.int64)
    src_all = np.concatenate(src)
    dst_all = np.concatenate(dst)
    pairs = np.unique(np.stack([src_all, dst_all], axis=1), axis=0)
    return pairs[:, 0], pairs[:, 1]


class GraphConvLayer(nn.Module):
    """Simple mean-aggregation graph convolution (the k-GNN layer)."""

    def __init__(self, in_features: int, out_features: int) -> None:
        super().__init__()
        self.root = nn.Linear(in_features, out_features)
        self.neighbor = nn.Linear(in_features, out_features, bias=False)

    def forward(self, x: Tensor, edge_src: np.ndarray, edge_dst: np.ndarray
                ) -> Tensor:
        agg = gather_scatter(x, edge_src, edge_dst, x.shape[0], reduce="mean")
        return F.relu(self.root(x) + self.neighbor(agg))


class KGNN(nn.Module):
    """Hierarchical 1-2(-3)-GNN with per-level pooling into the readout."""

    def __init__(self, in_features: int, hidden: int = 32,
                 num_classes: int = 2, order: int = 2,
                 layers_per_level: int = 2) -> None:
        super().__init__()
        if order not in (2, 3):
            raise ValueError("order must be 2 (KGNNL) or 3 (KGNNH)")
        self.order = order
        self.level1 = nn.ModuleList()
        dims = [in_features] + [hidden] * layers_per_level
        for i in range(layers_per_level):
            self.level1.append(GraphConvLayer(dims[i], dims[i + 1]))
        self.level2 = nn.ModuleList(
            [GraphConvLayer(hidden, hidden) for _ in range(layers_per_level)]
        )
        self.level3 = (
            nn.ModuleList(
                [GraphConvLayer(hidden, hidden) for _ in range(layers_per_level)]
            )
            if order == 3
            else None
        )
        self.head = nn.Sequential(
            nn.Linear(hidden * order, hidden),
            nn.ReLU(),
            nn.Dropout(0.2),
            nn.Linear(hidden, num_classes),
        )

    def _pool_to_sets(self, h: Tensor, members: np.ndarray) -> Tensor:
        """Initialize k-set features as the mean of member node states."""
        if members.shape[0] == 0:
            return Tensor(np.zeros((0, h.shape[1]), np.float32),
                          device=h.device, _skip_copy=True)
        k = members.shape[1]
        gathered = F.index_select(h, members.reshape(-1))
        set_ids = np.repeat(np.arange(members.shape[0]), k)
        return F.segment_mean(gathered, set_ids, members.shape[0])

    def forward(
        self,
        x: Tensor,
        graph_edges: tuple[np.ndarray, np.ndarray],
        graph_ids: np.ndarray,
        num_graphs: int,
        pair_graph: SetGraph,
        pair_graph_ids: np.ndarray,
        triple_graph: Optional[SetGraph] = None,
        triple_graph_ids: Optional[np.ndarray] = None,
    ) -> Tensor:
        h = x
        for layer in self.level1:
            h = layer(h, *graph_edges)
        pooled = [F.segment_mean(h, graph_ids, num_graphs)]

        h2 = self._pool_to_sets(h, pair_graph.members)
        for layer in self.level2:
            h2 = layer(h2, pair_graph.edge_src, pair_graph.edge_dst)
        pooled.append(F.segment_mean(h2, pair_graph_ids, num_graphs))

        if self.order == 3:
            assert triple_graph is not None and self.level3 is not None
            h3 = self._pool_to_sets(h, triple_graph.members)
            for layer in self.level3:
                h3 = layer(h3, triple_graph.edge_src, triple_graph.edge_dst)
            pooled.append(F.segment_mean(h3, triple_graph_ids, num_graphs))

        return self.head(F.cat(pooled, axis=1))


#: per-graph set graphs memoized by base-graph identity: the dataset's
#: ``Graph`` objects are immutable and recur every epoch, so the expensive
#: subset enumeration runs once per graph instead of once per batch.  Keyed
#: ``(id(graph), builder name)`` with a weakref finalizer so entries die
#: with their graph; gated on the same ``REPRO_ANALYSIS_CACHE`` escape
#: hatch as the launch-analysis cache (the cold path rebuilds every time).
_SET_GRAPH_CACHE: dict[tuple, SetGraph] = {}


def _cached_set_graph(graph: Graph, builder) -> SetGraph:
    from ..gpu import analysis_cache

    if not analysis_cache.enabled():
        return builder(graph)
    key = (id(graph), builder.__name__)
    sg = _SET_GRAPH_CACHE.get(key)
    if sg is None:
        sg = builder(graph)
        _SET_GRAPH_CACHE[key] = sg
        try:
            weakref.finalize(graph, _SET_GRAPH_CACHE.pop, key, None)
        except TypeError:  # pragma: no cover - un-weakref-able graph
            pass
    return sg


def _clear_set_graph_cache() -> None:
    _SET_GRAPH_CACHE.clear()


def _register_set_graph_hook() -> None:
    from ..gpu import analysis_cache

    analysis_cache.register_clear_hook(_clear_set_graph_cache)


_register_set_graph_hook()


def _batch_set_graph(graphs: list[Graph], builder, node_offsets: np.ndarray
                     ) -> tuple[SetGraph, np.ndarray]:
    """Build per-graph set graphs and merge them with shifted ids."""
    members, srcs, dsts, gids = [], [], [], []
    set_offset = 0
    for gid, (g, node_off) in enumerate(zip(graphs, node_offsets)):
        sg = _cached_set_graph(g, builder)
        if sg.num_sets:
            members.append(sg.members + node_off)
            srcs.append(sg.edge_src + set_offset)
            dsts.append(sg.edge_dst + set_offset)
            gids.append(np.full(sg.num_sets, gid, dtype=np.int64))
            set_offset += sg.num_sets
    k = 3 if builder is build_triple_graph else 2
    if not members:
        empty = SetGraph(np.empty((0, k), np.int64), np.empty(0, np.int64),
                         np.empty(0, np.int64))
        return empty, np.empty(0, np.int64)
    merged = SetGraph(
        np.concatenate(members),
        np.concatenate(srcs),
        np.concatenate(dsts),
    )
    return merged, np.concatenate(gids)


@dataclass
class KGNNWorkload:
    model: KGNN
    dataset: ProteinDataset
    optimizer: Adam
    order: int
    batch_size: int = 32
    device: object = None

    @classmethod
    def build(cls, dataset: ProteinDataset, order: int = 2, device=None,
              hidden: int = 32, batch_size: int = 32, lr: float = 1e-3
              ) -> "KGNNWorkload":
        in_features = dataset.node_features[0].shape[1]
        model = KGNN(in_features, hidden=hidden, order=order)
        if device is not None:
            model.to(device)
        return cls(model=model, dataset=dataset,
                   optimizer=Adam(model.parameters(), lr=lr), order=order,
                   batch_size=batch_size, device=device)

    def _forward_batch(self, batch_idx: np.ndarray) -> tuple[Tensor, np.ndarray]:
        ds = self.dataset
        graphs = [ds.graphs[i] for i in batch_idx]
        batched = batch_graphs(graphs)
        feats = np.concatenate([ds.node_features[i] for i in batch_idx])
        labels = ds.labels[batch_idx]
        if self.device is not None:
            self.device.h2d(feats, "kgnn.features")
            self.device.h2d(batched.graph.src, "kgnn.edges")
        pair_graph, pair_ids = _batch_set_graph(
            graphs, build_pair_graph, batched.offsets[:-1]
        )
        triple_graph, triple_ids = (None, None)
        if self.order == 3:
            triple_graph, triple_ids = _batch_set_graph(
                graphs, build_triple_graph, batched.offsets[:-1]
            )
        x = Tensor(feats, device=self.device, _skip_copy=True)
        logits = self.model(
            x, (batched.graph.src, batched.graph.dst), batched.graph_ids,
            batched.num_graphs, pair_graph, pair_ids, triple_graph, triple_ids,
        )
        return logits, labels

    def train_epoch(self, rng: np.random.Generator,
                    indices: np.ndarray | None = None) -> dict[str, float]:
        ds = self.dataset
        if indices is None:
            indices = ds.train_idx
        order = rng.permutation(indices)
        total, count, correct = 0.0, 0, 0
        for start in range(0, order.size, self.batch_size):
            batch_idx = order[start : start + self.batch_size]
            self.optimizer.zero_grad()
            logits, labels = self._forward_batch(batch_idx)
            loss = F.cross_entropy(logits, labels)
            loss.backward()
            self.optimizer.step()
            total += loss.item() * batch_idx.size
            count += batch_idx.size
            correct += int((logits.data.argmax(axis=1) == labels).sum())
        return {"loss": total / max(count, 1), "acc": correct / max(count, 1)}

    def evaluate(self, indices: np.ndarray) -> float:
        from ..tensor import no_grad

        correct = 0
        with no_grad():
            for start in range(0, indices.size, self.batch_size):
                batch_idx = indices[start : start + self.batch_size]
                logits, labels = self._forward_batch(batch_idx)
                correct += int((logits.data.argmax(axis=1) == labels).sum())
        return correct / max(indices.size, 1)
