"""GW: GraphWriter (Koncel-Kedziorski et al.) — knowledge-graph-to-text.

A graph-transformer encoder attends over entity states along knowledge-graph
edges; a title LSTM provides context; an attention LSTM decoder generates
the abstract with teacher forcing.  The dense attention + vocabulary
projections make this the suite's GEMM/fp32-dominated workload (the one
model whose instruction mix flips to floating point in Figure 3, reaching
~2 TFLOPS in Figure 4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..datasets.agenda import EOS, KGTextDataset, KGTextSample, NUM_RELATIONS, PAD
from ..tensor import Tensor, functional as F, nn
from ..tensor.optim import Adam

NEG_INF = -1e9


class GraphTransformerLayer(nn.Module):
    def __init__(self, dim: int, heads: int, dropout: float = 0.1) -> None:
        super().__init__()
        self.attn = nn.MultiheadAttention(dim, heads, dropout=dropout)
        self.norm1 = nn.LayerNorm(dim)
        self.norm2 = nn.LayerNorm(dim)
        self.ffn = nn.Sequential(
            nn.Linear(dim, dim * 4),
            nn.ReLU(),
            nn.Linear(dim * 4, dim),
        )
        self.dropout = nn.Dropout(dropout)

    def forward(self, x: Tensor, mask: np.ndarray) -> Tensor:
        h = self.norm1(x + self.dropout(self.attn(x, x, x, attn_mask=mask)))
        return self.norm2(h + self.dropout(self.ffn(h)))


class GraphWriter(nn.Module):
    def __init__(self, vocab_size: int, num_entity_types: int,
                 dim: int = 128, heads: int = 4, layers: int = 2) -> None:
        super().__init__()
        self.dim = dim
        self.token_embedding = nn.Embedding(vocab_size, dim)
        self.type_embedding = nn.Embedding(num_entity_types, dim)
        self.relation_embedding = nn.Embedding(NUM_RELATIONS, dim)
        self.encoder = nn.ModuleList(
            [GraphTransformerLayer(dim, heads) for _ in range(layers)]
        )
        self.title_lstm = nn.LSTMCell(dim, dim)
        self.decoder = nn.LSTMCell(dim * 2, dim)
        self.attn_query = nn.Linear(dim, dim, bias=False)
        self.out = nn.Linear(dim * 2, vocab_size)
        self.vocab_size = vocab_size

    # -- encoder ---------------------------------------------------------
    def encode_entities(self, entities: Tensor, types: Tensor,
                        adj_mask: np.ndarray) -> Tensor:
        """entities/types: (batch, max_e) ids; adj_mask additive (b,1,e,e)."""
        x = self.token_embedding(entities) + self.type_embedding(types)
        for layer in self.encoder:
            x = layer(x, adj_mask)
        return x

    def encode_title(self, title: np.ndarray, device=None) -> Tensor:
        """(batch, title_len) ids -> final LSTM hidden state."""
        emb = self.token_embedding(title)
        state = None
        for t in range(title.shape[1]):
            step = emb[:, t]
            state = self.title_lstm(step, state)
        return state[0]

    # -- decoder ----------------------------------------------------------
    def decode_step(self, prev_token_emb: Tensor, context: Tensor,
                    state, entity_states: Tensor, entity_mask: np.ndarray
                    ) -> tuple[Tensor, tuple]:
        """One teacher-forced step; returns the pre-projection state."""
        inp = F.cat([prev_token_emb, context], axis=1)
        h, c = self.decoder(inp, state)
        query = self.attn_query(h).unsqueeze(1)          # (b, 1, d)
        scores = F.matmul(query, entity_states.transpose(-2, -1)).squeeze(1)
        scores = scores + Tensor(entity_mask, device=scores.device,
                                 _skip_copy=True)
        alpha = F.softmax(scores, axis=-1).unsqueeze(1)  # (b, 1, e)
        attended = F.matmul(alpha, entity_states).squeeze(1)
        out_state = F.cat([h, attended], axis=1)
        return out_state, ((h, c), attended)

    def project_vocab(self, states: Tensor) -> Tensor:
        """(rows, 2*dim) -> (rows, vocab): ONE large GEMM for all steps.

        Real seq2seq training collects every decoder state and projects them
        in a single batched matmul — the efficient, fp32-dominated kernel
        behind GraphWriter's ~2 TFLOPS in the paper's Figure 4.
        """
        return self.out(states)


def pad_batch(samples: list[KGTextSample]) -> dict[str, np.ndarray]:
    """Pad entities/titles/abstracts and build attention masks."""
    b = len(samples)
    max_e = max(s.entities.size for s in samples)
    max_t = max(s.title.size for s in samples)
    max_a = max(s.abstract.size for s in samples)
    entities = np.zeros((b, max_e), dtype=np.int64)
    types = np.zeros((b, max_e), dtype=np.int64)
    titles = np.zeros((b, max_t), dtype=np.int64)
    abstracts = np.full((b, max_a), PAD, dtype=np.int64)
    # the structure travels to the device as a boolean adjacency (mostly
    # zeros for sparse KGs) and is converted to an additive -inf mask there
    adjacency = np.zeros((b, 1, max_e, max_e), dtype=np.float32)
    valid = np.zeros((b, max_e), dtype=np.float32)
    for i, s in enumerate(samples):
        ne = s.entities.size
        entities[i, :ne] = s.entities
        types[i, :ne] = s.entity_types
        titles[i, : s.title.size] = s.title
        abstracts[i, : s.abstract.size] = s.abstract
        valid[i, :ne] = 1.0
        adjacency[i, 0, np.arange(ne), np.arange(ne)] = 1.0
        if s.triples.size:
            heads, _, tails = s.triples[:, 0], s.triples[:, 1], s.triples[:, 2]
            adjacency[i, 0, heads, tails] = 1.0
            adjacency[i, 0, tails, heads] = 1.0
    adj_mask = np.where(adjacency > 0, 0.0, NEG_INF).astype(np.float32)
    entity_mask = np.where(valid > 0, 0.0, NEG_INF).astype(np.float32)
    return {
        "entities": entities,
        "types": types,
        "titles": titles,
        "abstracts": abstracts,
        "adjacency": adjacency,
        "valid": valid,
        "adj_mask": adj_mask,
        "entity_mask": entity_mask,
    }


@dataclass
class GraphWriterWorkload:
    model: GraphWriter
    dataset: KGTextDataset
    optimizer: Adam
    batch_size: int = 8
    batches_per_epoch: int = 6
    device: object = None
    #: truncate teacher forcing (BPTT truncation), as long-sequence trainers do
    max_decode_steps: int = 0

    @classmethod
    def build(cls, dataset: KGTextDataset, device=None, dim: int = 128,
              batch_size: int = 8, batches_per_epoch: int = 6,
              lr: float = 1e-3, max_decode_steps: int = 0
              ) -> "GraphWriterWorkload":
        model = GraphWriter(dataset.vocab_size, dataset.num_entity_types,
                            dim=dim)
        if device is not None:
            model.to(device)
        return cls(model=model, dataset=dataset,
                   optimizer=Adam(model.parameters(), lr=lr),
                   batch_size=batch_size, batches_per_epoch=batches_per_epoch,
                   device=device, max_decode_steps=max_decode_steps)

    def _loss_on_batch(self, samples: list[KGTextSample]) -> Tensor:
        batch = pad_batch(samples)
        model = self.model
        if self.device is not None:
            for key in ("entities", "titles", "abstracts", "adjacency", "valid"):
                self.device.h2d(batch[key], f"gw.{key}")
            from ..tensor.ops.base import launch_elementwise

            launch_elementwise(self.device, "ew_build_attn_mask",
                               int(batch["adjacency"].size), 1, kind="compare")

        ent = Tensor(batch["entities"], device=self.device, _skip_copy=True)
        typ = Tensor(batch["types"], device=self.device, _skip_copy=True)
        entity_states = model.encode_entities(ent, typ, batch["adj_mask"])
        context = model.encode_title(batch["titles"], device=self.device)

        abstracts = batch["abstracts"]
        if self.max_decode_steps:
            abstracts = abstracts[:, : self.max_decode_steps]
        b, steps = abstracts.shape
        state = None
        attended = context
        emb_all = model.token_embedding(abstracts)  # (b, steps, dim)
        bos = Tensor(np.zeros((b, model.dim), np.float32), device=self.device,
                     _skip_copy=True)
        prev = bos
        step_states = []
        for t in range(steps):
            out_state, (state, attended) = model.decode_step(
                prev, attended, state, entity_states, batch["entity_mask"]
            )
            step_states.append(out_state)
            prev = emb_all[:, t]
        # one (b*steps, 2d) @ (2d, vocab) projection + one fused loss
        all_states = F.cat(step_states, axis=0)
        logits = model.project_vocab(all_states)
        targets = abstracts.T.reshape(-1)  # step-major to match the cat
        valid = np.nonzero(targets != PAD)[0]
        return F.cross_entropy(F.index_select(logits, valid), targets[valid])

    def evaluate(self, indices: np.ndarray | None = None,
                 max_batches: int = 2) -> float:
        """Teacher-forced validation loss under no_grad (inference mode)."""
        from ..tensor import no_grad

        ds = self.dataset
        if indices is None:
            indices = ds.val_idx
        losses = []
        with no_grad():
            for b, start in enumerate(range(0, indices.size, self.batch_size)):
                if b >= max_batches:
                    break
                samples = [ds.samples[i]
                           for i in indices[start : start + self.batch_size]]
                losses.append(self._loss_on_batch(samples).item())
        return float(np.mean(losses)) if losses else float("nan")

    def train_epoch(self, rng: np.random.Generator) -> dict[str, float]:
        ds = self.dataset
        order = rng.permutation(ds.train_idx)
        total, count = 0.0, 0
        for start in range(0, order.size, self.batch_size):
            if count >= self.batches_per_epoch:
                break
            idx = order[start : start + self.batch_size]
            samples = [ds.samples[i] for i in idx]
            self.optimizer.zero_grad()
            loss = self._loss_on_batch(samples)
            loss.backward()
            self.optimizer.step()
            total += loss.item()
            count += 1
        return {"loss": total / max(count, 1)}
