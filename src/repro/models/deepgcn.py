"""DGCN: DeepGCN (Li et al.) for molecular graph-property prediction.

A deep stack of GENConv layers with pre-activation residual connections and
BatchNorm, on batched molecule graphs (ogbg-molhiv equivalent).  The depth
is the point: residual adds + BatchNorm + activations + Adam over dozens of
parameter tensors make the profile elementwise-dominated (~31% in the
paper's Figure 2) with a visible BatchNorm share.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..datasets.molecules import ATOM_FEATURE_DIMS, MoleculeDataset
from ..graph import batch_graphs
from ..tensor import Tensor, functional as F, nn
from ..tensor.optim import Adam
from .layers import GENConv, MLPReadout


class AtomEncoder(nn.Module):
    """OGB-style atom encoder: sum of one embedding per categorical field."""

    def __init__(self, hidden: int) -> None:
        super().__init__()
        self.tables = nn.ModuleList(
            [nn.Embedding(dim, hidden) for dim in ATOM_FEATURE_DIMS]
        )

    def forward(self, atom_features: np.ndarray, device=None) -> Tensor:
        out = None
        for i, table in enumerate(self.tables):
            emb = table(atom_features[:, i])
            out = emb if out is None else out + emb
        return out


class DeepGCN(nn.Module):
    def __init__(self, hidden: int = 64, num_layers: int = 14,
                 num_classes: int = 2, dropout: float = 0.1) -> None:
        super().__init__()
        self.atom_encoder = AtomEncoder(hidden)
        self.convs = nn.ModuleList([GENConv(hidden) for _ in range(num_layers)])
        self.norms = nn.ModuleList(
            [nn.BatchNorm1d(hidden) for _ in range(num_layers)]
        )
        self.dropout = nn.Dropout(dropout)
        self.readout = MLPReadout(hidden, num_classes)
        self.num_layers = num_layers

    def forward(self, atom_features: np.ndarray, edge_src: np.ndarray,
                edge_dst: np.ndarray, graph_ids: np.ndarray,
                num_graphs: int) -> Tensor:
        h = self.atom_encoder(atom_features)
        for conv, norm in zip(self.convs, self.norms):
            # pre-activation residual block: h + conv(relu(norm(h)))
            residual = h
            h = norm(h)
            h = F.relu(h)
            h = self.dropout(h)
            h = conv(h, edge_src, edge_dst)
            h = h + residual
        return self.readout(h, graph_ids, num_graphs)


@dataclass
class DeepGCNWorkload:
    model: DeepGCN
    dataset: MoleculeDataset
    optimizer: Adam
    batch_size: int = 32
    device: object = None

    @classmethod
    def build(cls, dataset: MoleculeDataset, device=None, hidden: int = 64,
              num_layers: int = 14, batch_size: int = 32,
              lr: float = 1e-3) -> "DeepGCNWorkload":
        model = DeepGCN(hidden=hidden, num_layers=num_layers)
        if device is not None:
            model.to(device)
        return cls(model=model, dataset=dataset,
                   optimizer=Adam(model.parameters(), lr=lr),
                   batch_size=batch_size, device=device)

    def _batches(self, indices: np.ndarray, rng: np.random.Generator):
        order = rng.permutation(indices)
        for start in range(0, order.size, self.batch_size):
            yield order[start : start + self.batch_size]

    def train_epoch(self, rng: np.random.Generator,
                    indices: np.ndarray | None = None) -> dict[str, float]:
        ds = self.dataset
        if indices is None:
            indices = ds.train_idx
        total, count, correct = 0.0, 0, 0
        for batch_idx in self._batches(indices, rng):
            batched = batch_graphs([ds.graphs[i] for i in batch_idx])
            atoms = np.concatenate([ds.atom_features[i] for i in batch_idx])
            labels = ds.labels[batch_idx]
            if self.device is not None:
                self.device.h2d(atoms, "dgcn.atom_features")
                self.device.h2d(batched.graph.src, "dgcn.edges")
                self.device.h2d(labels, "dgcn.labels")

            self.optimizer.zero_grad()
            logits = self.model(atoms, batched.graph.src, batched.graph.dst,
                                batched.graph_ids, batched.num_graphs)
            loss = F.cross_entropy(logits, labels)
            loss.backward()
            self.optimizer.step()
            total += loss.item() * batch_idx.size
            count += batch_idx.size
            correct += int((logits.data.argmax(axis=1) == labels).sum())
        return {"loss": total / max(count, 1), "acc": correct / max(count, 1)}

    def evaluate(self, indices: np.ndarray) -> float:
        from ..tensor import no_grad

        ds = self.dataset
        correct = 0
        with no_grad():
            for start in range(0, indices.size, self.batch_size):
                batch_idx = indices[start : start + self.batch_size]
                batched = batch_graphs([ds.graphs[i] for i in batch_idx])
                atoms = np.concatenate([ds.atom_features[i] for i in batch_idx])
                logits = self.model(atoms, batched.graph.src, batched.graph.dst,
                                    batched.graph_ids, batched.num_graphs)
                correct += int((logits.data.argmax(axis=1)
                                == ds.labels[batch_idx]).sum())
        return correct / max(indices.size, 1)
