"""The eight GNNMark workload models (Table I) plus shared GNN layers."""

from .arga import ARGA, ARGAWorkload
from .deepgcn import DeepGCN, DeepGCNWorkload
from .graphwriter import GraphWriter, GraphWriterWorkload
from .kgnn import KGNN, KGNNWorkload, build_pair_graph, build_triple_graph
from .layers import (
    ChebGraphConv,
    GCNConv,
    GENConv,
    GINConv,
    InnerProductDecoder,
    MLPReadout,
    SAGEConv,
    gather_scatter,
)
from .pinsage import PinSAGEModel, PinSAGEWorkload
from .stgcn import STGCN, STGCNWorkload
from .treelstm import TreeLSTM, TreeLSTMWorkload, batch_trees

__all__ = [
    "ARGA",
    "ARGAWorkload",
    "ChebGraphConv",
    "DeepGCN",
    "DeepGCNWorkload",
    "GCNConv",
    "GENConv",
    "GINConv",
    "GraphWriter",
    "GraphWriterWorkload",
    "InnerProductDecoder",
    "KGNN",
    "KGNNWorkload",
    "MLPReadout",
    "PinSAGEModel",
    "PinSAGEWorkload",
    "SAGEConv",
    "STGCN",
    "STGCNWorkload",
    "TreeLSTM",
    "TreeLSTMWorkload",
    "batch_trees",
    "build_pair_graph",
    "build_triple_graph",
    "gather_scatter",
]
