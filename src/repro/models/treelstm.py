"""TLSTM: Child-Sum Tree-LSTM (Tai et al.) for sentiment classification.

Trees from a batch are merged into one graph (DGL-style batching — the
reason this workload is in the suite) and processed level-by-level from the
leaves up.  Every level launches a frontier's worth of small gather /
scatter / GEMM / elementwise kernels, producing the many-tiny-kernels,
low-GFLOPS profile the paper reports (74 GFLOPS, no multi-GPU speedup).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..datasets.sst import NUM_CLASSES, SSTDataset, SentimentTree
from ..tensor import Tensor, functional as F, nn
from ..tensor.optim import Adam


@dataclass
class TreeBatch:
    """A forest of trees merged into one node id space."""

    parent: np.ndarray        # (total_nodes,), -1 at roots
    is_leaf: np.ndarray
    depth: np.ndarray         # height above leaves
    tokens: np.ndarray        # (num_leaf_nodes,) aligned with leaf order
    leaf_ids: np.ndarray      # node ids of the leaves (token order)
    labels: np.ndarray        # (total_nodes,)

    @property
    def num_nodes(self) -> int:
        return int(self.parent.size)


def batch_trees(trees: list[SentimentTree]) -> TreeBatch:
    parents, leaves, depths, tokens, leaf_ids, labels = [], [], [], [], [], []
    offset = 0
    for tree in trees:
        shifted = tree.parent.copy()
        shifted[shifted >= 0] += offset
        parents.append(shifted)
        leaves.append(tree.is_leaf)
        depths.append(tree.depths())
        tokens.append(tree.tokens)
        leaf_ids.append(np.nonzero(tree.is_leaf)[0] + offset)
        labels.append(tree.labels)
        offset += tree.num_nodes
    return TreeBatch(
        parent=np.concatenate(parents),
        is_leaf=np.concatenate(leaves),
        depth=np.concatenate(depths),
        tokens=np.concatenate(tokens),
        leaf_ids=np.concatenate(leaf_ids),
        labels=np.concatenate(labels),
    )


class TreeLSTM(nn.Module):
    def __init__(self, vocab_size: int, embed_dim: int = 64,
                 hidden: int = 64, num_classes: int = NUM_CLASSES,
                 dropout: float = 0.1) -> None:
        super().__init__()
        self.embedding = nn.Embedding(vocab_size, embed_dim)
        self.cell = nn.ChildSumTreeLSTMCell(embed_dim, hidden)
        self.dropout = nn.Dropout(dropout)
        self.classifier = nn.Linear(hidden, num_classes)
        self.embed_dim = embed_dim
        self.hidden = hidden

    def forward(self, batch: TreeBatch, device=None) -> Tensor:
        """Bottom-up frontier traversal; returns logits for every node."""
        total = batch.num_nodes
        x_leaf = self.embedding(batch.tokens)

        # Dense input features: leaves get embeddings, internals zeros.
        x_all = np.zeros((total, self.embed_dim), dtype=np.float32)
        x_all[batch.leaf_ids] = x_leaf.data
        x_input = Tensor(x_all, device=device, _skip_copy=True)
        # keep autograd into the embedding table: scatter leaf rows
        # x_input = zeros + index_select trick below for the leaf frontier

        h_parts: list[Tensor] = []
        c_parts: list[Tensor] = []
        row_of = -np.ones(total, dtype=np.int64)
        rows_seen = 0

        max_depth = int(batch.depth.max()) if total else 0
        for level in range(max_depth + 1):
            frontier = np.nonzero(batch.depth == level)[0]
            if frontier.size == 0:
                continue
            if level == 0:
                # all depth-0 nodes are leaves; use embeddings directly
                x_f = F.index_select(
                    x_leaf, row_lookup(batch.leaf_ids, frontier)
                )
                zero = Tensor(
                    np.zeros((frontier.size, self.hidden), np.float32),
                    device=device, _skip_copy=True,
                )
                h_f, c_f = self.cell.node_update(x_f, zero, zero)
            else:
                h_prev = F.cat(h_parts, axis=0) if len(h_parts) > 1 else h_parts[0]
                c_prev = F.cat(c_parts, axis=0) if len(c_parts) > 1 else c_parts[0]
                # children of this frontier (they are already computed)
                child_mask = np.isin(batch.parent, frontier)
                children = np.nonzero(child_mask)[0]
                parent_of_child = batch.parent[children]
                local_parent = row_lookup(frontier, parent_of_child)
                child_rows = row_of[children]
                h_child = F.index_select(h_prev, child_rows)
                c_child = F.index_select(c_prev, child_rows)

                h_sum = F.scatter_add(h_child, local_parent, frontier.size)
                x_f = F.index_select(x_input, frontier)
                x_rep = F.index_select(x_f, local_parent)
                f = self.cell.child_forget(x_rep, h_child)
                fc_sum = F.scatter_add(f * c_child, local_parent, frontier.size)
                h_f, c_f = self.cell.node_update(x_f, h_sum, fc_sum)

            row_of[frontier] = rows_seen + np.arange(frontier.size)
            rows_seen += frontier.size
            h_parts.append(h_f)
            c_parts.append(c_f)

        h_all = F.cat(h_parts, axis=0) if len(h_parts) > 1 else h_parts[0]
        # back to node order for the per-node classifier
        h_nodes = F.index_select(h_all, row_of)
        return self.classifier(self.dropout(h_nodes))


def row_lookup(universe: np.ndarray, queries: np.ndarray) -> np.ndarray:
    """Positions of ``queries`` inside ``universe`` (both unique)."""
    order = np.argsort(universe)
    pos = np.searchsorted(universe, queries, sorter=order)
    return order[pos]


@dataclass
class TreeLSTMWorkload:
    model: TreeLSTM
    dataset: SSTDataset
    optimizer: Adam
    batch_size: int = 32
    device: object = None

    @classmethod
    def build(cls, dataset: SSTDataset, device=None, hidden: int = 64,
              batch_size: int = 32, lr: float = 1e-3) -> "TreeLSTMWorkload":
        model = TreeLSTM(dataset.vocab_size, embed_dim=hidden, hidden=hidden)
        if device is not None:
            model.to(device)
        return cls(model=model, dataset=dataset,
                   optimizer=Adam(model.parameters(), lr=lr),
                   batch_size=batch_size, device=device)

    def train_epoch(self, rng: np.random.Generator,
                    indices: np.ndarray | None = None) -> dict[str, float]:
        ds = self.dataset
        if indices is None:
            indices = ds.train_idx
        order = rng.permutation(indices)
        total, count, correct, nodes = 0.0, 0, 0, 0
        for start in range(0, order.size, self.batch_size):
            idx = order[start : start + self.batch_size]
            batch = batch_trees([ds.trees[i] for i in idx])
            if self.device is not None:
                self.device.h2d(batch.tokens, "tlstm.tokens")
                self.device.h2d(batch.parent, "tlstm.structure")
                self.device.h2d(batch.labels, "tlstm.labels")
                # DGL's Tree-LSTM example ships zero-initialized per-node
                # iou/h/c buffers with the batched graph — almost-all-zero
                # transfers that dominate this workload's Figure-7 sparsity.
                n = batch.num_nodes
                state = np.zeros((n, 5 * self.model.hidden), dtype=np.float32)
                x_init = np.zeros((n, self.model.embed_dim), dtype=np.float32)
                x_init[batch.leaf_ids] = 1.0  # leaf mask columns
                self.device.h2d(state, "tlstm.init_state")
                self.device.h2d(x_init, "tlstm.init_x")
            self.optimizer.zero_grad()
            logits = self.model(batch, device=self.device)
            loss = F.cross_entropy(logits, batch.labels)
            loss.backward()
            self.optimizer.step()
            total += loss.item()
            count += 1
            correct += int((logits.data.argmax(axis=1) == batch.labels).sum())
            nodes += batch.num_nodes
        return {"loss": total / max(count, 1), "acc": correct / max(nodes, 1)}

    def evaluate(self, indices: np.ndarray | None = None) -> float:
        """Root-node sentiment accuracy under no_grad (inference mode)."""
        from ..tensor import no_grad

        ds = self.dataset
        if indices is None:
            indices = ds.val_idx
        correct, count = 0, 0
        with no_grad():
            for start in range(0, indices.size, self.batch_size):
                idx = indices[start : start + self.batch_size]
                batch = batch_trees([ds.trees[i] for i in idx])
                logits = self.model(batch, device=self.device)
                roots = np.nonzero(batch.parent == -1)[0]
                pred = logits.data[roots].argmax(axis=1)
                correct += int((pred == batch.labels[roots]).sum())
                count += roots.size
        return correct / max(count, 1)
