"""ARGA: Adversarially Regularized Graph Autoencoder (Pan et al.).

Encoder: two GCN layers producing node embeddings.  Decoder: inner-product
reconstruction of the adjacency.  A small MLP discriminator adversarially
regularizes the embedding toward a Gaussian prior.  Trained full-batch for
node clustering on citation graphs — the paper excludes it from multi-GPU
scaling because the whole graph is shipped to the GPU every iteration, which
our training step reproduces (it re-transfers features + adjacency, feeding
the Figure 7/8 sparsity measurements).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..datasets.citation import CitationDataset
from ..tensor import SparseTensor, Tensor, functional as F, nn
from ..tensor.optim import Adam
from .layers import GCNConv, InnerProductDecoder


class ARGAEncoder(nn.Module):
    def __init__(self, in_features: int, hidden: int, out: int) -> None:
        super().__init__()
        self.conv1 = GCNConv(in_features, hidden, dynamic_norm=True)
        self.conv2 = GCNConv(hidden, out, dynamic_norm=True)
        self.act = nn.PReLU()

    def forward(self, adj: SparseTensor, x: Tensor) -> Tensor:
        h = self.act(self.conv1(adj, x))
        return self.conv2(adj, h)


class Discriminator(nn.Module):
    def __init__(self, embed_dim: int, hidden: int = 64) -> None:
        super().__init__()
        self.net = nn.Sequential(
            nn.Linear(embed_dim, hidden),
            nn.ReLU(),
            nn.Linear(hidden, hidden),
            nn.ReLU(),
            nn.Linear(hidden, 1),
        )

    def forward(self, z: Tensor) -> Tensor:
        return self.net(z)


class ARGA(nn.Module):
    def __init__(self, in_features: int, hidden: int = 32, embed: int = 16) -> None:
        super().__init__()
        self.encoder = ARGAEncoder(in_features, hidden, embed)
        self.decoder = InnerProductDecoder()
        self.discriminator = Discriminator(embed)
        self.embed_dim = embed

    def encode(self, adj: SparseTensor, x: Tensor) -> Tensor:
        return self.encoder(adj, x)

    def reconstruct(self, z: Tensor) -> Tensor:
        return self.decoder(z)


@dataclass
class ARGAWorkload:
    """Full-batch ARGA training bound to one citation dataset."""

    model: ARGA
    dataset: CitationDataset
    optimizer: Adam
    disc_optimizer: Adam
    device: object = None
    #: host-side prep memo (normalized adjacency, dense label matrix, sort
    #: keys, pos_weight): the dataset graph is immutable, so this is a pure
    #: per-epoch recomputation; gated on the ``REPRO_ANALYSIS_CACHE`` escape
    #: hatch like the rest of the launch fast path
    _prep_host: object = None

    @classmethod
    def build(cls, dataset: CitationDataset, device=None, hidden: int = 32,
              embed: int = 16, lr: float = 1e-3) -> "ARGAWorkload":
        model = ARGA(dataset.feature_dim, hidden, embed)
        if device is not None:
            model.to(device)
        enc_params = list(model.encoder.parameters())
        disc_params = list(model.discriminator.parameters())
        return cls(
            model=model,
            dataset=dataset,
            optimizer=Adam(enc_params, lr=lr),
            disc_optimizer=Adam(disc_params, lr=lr),
            device=device,
        )

    def _prepare(self) -> tuple[SparseTensor, Tensor, np.ndarray, float]:
        """Ship the full graph to the device (ARGA's defining behaviour).

        The host-side artifacts (normalized adjacency, dense label matrix,
        coalesce keys) are pure functions of the immutable dataset graph and
        are memoized across epochs; every device-visible emission (the H2D
        copies, the coalesce sort, the reductions) still happens per epoch,
        so the kernel/transfer stream is identical with or without the memo.
        """
        from ..gpu import analysis_cache

        ds = self.dataset
        x = Tensor(ds.features, name="features").to(self.device, "arga.features")
        use_memo = analysis_cache.enabled()
        if use_memo and self._prep_host is not None:
            adj_host, target, keys, pos_weight = self._prep_host
        else:
            adj_host = ds.graph.adjacency("sym", add_self_loops=True)
            # seed the transpose so every epoch's .to() carries the cached
            # CSC view instead of rebuilding it device-side
            adj_host.t()
            target = (ds.graph.csr().toarray() > 0).astype(np.float32)
            np.fill_diagonal(target, 1.0)
            pos = target.sum()
            pos_weight = float((target.size - pos) / max(pos, 1.0))
            keys = ds.graph.dst * ds.graph.num_nodes + ds.graph.src
            if use_memo:
                self._prep_host = (adj_host, target, keys, pos_weight)
        adj = adj_host.to(self.device)
        if self.device is not None:
            self.device.h2d(target, "arga.adj_label")
            # PyG coalesces the freshly transferred edge index: a device
            # radix sort of the 64-bit (row, col) keys.
            from ..tensor.ops import sort as sort_ops
            from ..tensor.ops.base import launch_reduction

            sort_ops.launch_sort(self.device, "coalesce_edge_sort",
                                 int(keys.size), 2, keys=keys, key_bits=64)
            # loss normalization and pos_weight are computed on the device
            # from the dense label matrix: two full-matrix reductions
            launch_reduction(self.device, "reduce_adj_sum", int(target.size), 1)
            launch_reduction(self.device, "reduce_norm_const", int(target.size), 1)
        return adj, x, target, pos_weight

    def train_epoch(self, rng: np.random.Generator) -> dict[str, float]:
        adj, x, target, pos_weight = self._prepare()
        model = self.model

        # --- reconstruction + generator step -------------------------------
        self.optimizer.zero_grad()
        z = model.encode(adj, x)
        logits = model.reconstruct(z)
        recon = F.binary_cross_entropy_with_logits(logits, target,
                                                   pos_weight=pos_weight)
        # generator wants the discriminator to call embeddings "real"
        d_fake = model.discriminator(z)
        gen = F.binary_cross_entropy_with_logits(
            d_fake, np.ones_like(d_fake.data)
        )
        loss = recon + gen * 0.1
        loss.backward()
        self.optimizer.step()

        # --- discriminator step ----------------------------------------------
        self.disc_optimizer.zero_grad()
        prior = Tensor(
            rng.normal(size=(x.shape[0], model.embed_dim)).astype(np.float32)
        ).to(self.device, "arga.prior")
        d_real = model.discriminator(prior)
        d_fake = model.discriminator(z.detach())
        d_loss = F.binary_cross_entropy_with_logits(
            d_real, np.ones_like(d_real.data)
        ) + F.binary_cross_entropy_with_logits(
            d_fake, np.zeros_like(d_fake.data)
        )
        d_loss.backward()
        self.disc_optimizer.step()

        # reconstruction-quality metrics over the dense prediction (the
        # reference loop logs accuracy/AP each epoch): sigmoid + threshold +
        # three full-matrix reductions on the device
        if self.device is not None:
            from ..tensor.ops.base import launch_elementwise, launch_reduction

            n2 = int(target.size)
            launch_elementwise(self.device, "ew_recon_sigmoid", n2, 1,
                               kind="unary", flops_per_elem=3.0)
            launch_elementwise(self.device, "ew_recon_threshold", n2, 2,
                               kind="compare")
            launch_reduction(self.device, "reduce_recon_correct", n2, 1)
            launch_reduction(self.device, "reduce_recon_pos", n2, 1)
            launch_reduction(self.device, "reduce_recon_ap", n2, 1)

        # node-clustering evaluation (ARGA's task): a few k-means rounds on
        # the embeddings, as the reference training loop runs per epoch
        nmi_proxy = self._cluster_quality(z.detach(), rng)

        return {
            "loss": float(loss.item()),
            "recon": float(recon.item()),
            "disc": float(d_loss.item()),
            "cluster_spread": nmi_proxy,
        }

    def _cluster_quality(self, z: Tensor, rng: np.random.Generator,
                         iters: int = 3) -> float:
        """Device k-means over the embeddings (reduction-heavy, as profiled)."""
        from ..tensor import no_grad

        k = self.dataset.num_classes
        with no_grad():
            data = z.data
            centers = data[rng.choice(data.shape[0], size=k, replace=False)]
            c = Tensor(centers, device=self.device, _skip_copy=True)
            for _ in range(iters):
                # squared distances: ||z||^2 - 2 z.c + ||c||^2
                cross = F.matmul(z, c.T)
                z_norm = F.sum(z * z, axis=1, keepdims=True)
                c_norm = F.sum(c * c, axis=1, keepdims=True)
                dist = z_norm - cross * 2.0 + c_norm.T
                assign = dist.argmax(axis=1)  # reduction kernel (argmin)
                new_centers = np.stack([
                    data[assign == j].mean(axis=0) if np.any(assign == j)
                    else c.data[j]
                    for j in range(k)
                ])
                from ..tensor.ops.scattergather import launch_scatter

                launch_scatter(self.device, "kmeans_center_update",
                               np.asarray(assign).reshape(-1), data.shape[1])
                c = Tensor(new_centers.astype(np.float32), device=self.device,
                           _skip_copy=True)
            spread = float(np.mean(np.min(
                ((data[:, None, :] - c.data[None, :, :]) ** 2).sum(-1), axis=1
            )))
        return spread

    def embeddings(self) -> np.ndarray:
        from ..tensor import no_grad

        with no_grad():
            adj, x, _, _ = self._prepare()
            return self.model.encode(adj, x).data
