"""PSAGE: PinSAGE (Ying et al.) for item recommendation.

Items of a user-item heterograph are embedded by two SAGE layers over
random-walk-importance-sampled neighborhoods on the item-item co-interaction
projection; training maximizes the margin between co-interacted and random
item pairs.  The sampler's id dedup / visit-count ranking is device-side
sorting — the source of PSAGE's large Sort share in Figure 2 — and the DGL
batch-sampling design is why its DDP multi-GPU port degrades in Figure 9.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..datasets.movielens import InteractionDataset
from ..graph import Graph, pinsage_neighbors
from ..graph.sampling import SampledBlock
from ..tensor import Tensor, functional as F, nn
from ..tensor.optim import Adam
from .layers import SAGEConv


class PinSAGEModel(nn.Module):
    def __init__(self, in_features: int, hidden: int = 64,
                 embed: int = 64, feature_dropout: float = 0.2) -> None:
        super().__init__()
        self.input_proj = nn.Linear(in_features, hidden)
        self.layer1 = SAGEConv(hidden, hidden)
        self.layer2 = SAGEConv(hidden, embed)
        self.feature_dropout = nn.Dropout(feature_dropout)

    def preprocess(self, features: Tensor) -> Tensor:
        """Raw-feature assembly + standardization at full feature width.

        The DGL PinSAGE pipeline concatenates several per-item feature
        columns, standardizes, clips and drops out the result — a stack of
        elementwise passes over the *input* width.  This is why the paper
        sees PSAGE's elementwise share explode on the wide-featured
        NowPlaying dataset (78% vs 36% on MovieLens).
        """
        # Field-wise assembly: the DGL pipeline materializes each feature
        # column group (title embedding bag, genres, timestamps, ...) with
        # its own scaling before concatenating — a dozen full-width passes.
        num_fields = 4
        width = features.shape[1] // num_fields
        fields = []
        for i in range(num_fields):
            lo = i * width
            hi = features.shape[1] if i == num_fields - 1 else lo + width
            col = features[:, lo:hi]
            col = F.relu(col * (1.0 / (1.0 + i)))
            # per-field standardization + clipping, as the reference
            # pipeline normalizes each column group independently
            mean = F.mean(col, axis=1, keepdims=True)
            centered = col - mean
            var = F.mean(centered * centered, axis=1, keepdims=True)
            standardized = centered / F.sqrt(var + 1e-6)
            fields.append(F.clamp(standardized, -5.0, 5.0))
        assembled = F.cat(fields, axis=1)
        return self.feature_dropout(assembled)

    def forward(self, features: Tensor, block1: SampledBlock,
                block2: SampledBlock) -> Tensor:
        """features: rows aligned with block1.src_nodes."""
        h = F.relu(self.input_proj(self.preprocess(features)))
        h = F.relu(self.layer1(block1, h))
        return self.layer2(block2, h)


@dataclass
class PinSAGEWorkload:
    model: PinSAGEModel
    dataset: InteractionDataset
    item_graph: Graph
    optimizer: Adam
    batch_size: int = 32
    batches_per_epoch: int = 8
    num_walks: int = 24
    walk_length: int = 2
    top_t: int = 10
    device: object = None
    #: set True to emulate the DDP data replication pathology (Figure 9)
    replicate_sampling: bool = False

    @classmethod
    def build(cls, dataset: InteractionDataset, device=None, hidden: int = 64,
              batch_size: int = 32, batches_per_epoch: int = 8,
              lr: float = 1e-3) -> "PinSAGEWorkload":
        item_graph = dataset.graph.bipartite_projection(
            via=("item", "watched-by", "user"),
            back=("user", "watched", "item"),
        )
        model = PinSAGEModel(dataset.feature_dim, hidden=hidden, embed=hidden)
        if device is not None:
            model.to(device)
        return cls(model=model, dataset=dataset, item_graph=item_graph,
                   optimizer=Adam(model.parameters(), lr=lr),
                   batch_size=batch_size, batches_per_epoch=batches_per_epoch,
                   device=device)

    # -- sampling ---------------------------------------------------------
    def sample_pairs(self, rng: np.random.Generator
                     ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(seeds, positives, negatives): co-interacted vs random items."""
        g = self.item_graph
        edge_ids = rng.integers(0, g.num_edges, size=self.batch_size)
        seeds = g.dst[edge_ids]
        positives = g.src[edge_ids]
        negatives = rng.integers(0, g.num_nodes, size=self.batch_size)
        return seeds, positives, negatives

    def sample_blocks(self, heads: np.ndarray, rng: np.random.Generator
                      ) -> tuple[SampledBlock, SampledBlock, np.ndarray]:
        heads_unique, inverse = np.unique(heads, return_inverse=True)
        block2 = pinsage_neighbors(
            self.item_graph, heads_unique, self.num_walks, self.walk_length,
            self.top_t, rng, device=self.device,
        )
        block1 = pinsage_neighbors(
            self.item_graph, block2.src_nodes, self.num_walks,
            self.walk_length, self.top_t, rng, device=self.device,
        )
        return block1, block2, inverse

    # -- training -----------------------------------------------------------
    def train_batch(self, rng: np.random.Generator) -> float:
        seeds, pos, neg = self.sample_pairs(rng)
        heads = np.concatenate([seeds, pos, neg])
        block1, block2, inverse = self.sample_blocks(heads, rng)

        feats = self.dataset.item_features[block1.src_nodes]
        if self.device is not None:
            self.device.h2d(feats, "psage.features")
            self.device.h2d(block1.edge_src, "psage.block1")
            self.device.h2d(block2.edge_src, "psage.block2")
        x = Tensor(feats, device=self.device, _skip_copy=True)

        self.optimizer.zero_grad()
        emb = self.model(x, block1, block2)
        b = self.batch_size
        emb_seed = F.index_select(emb, inverse[:b])
        emb_pos = F.index_select(emb, inverse[b : 2 * b])
        emb_neg = F.index_select(emb, inverse[2 * b :])
        pos_score = F.sum(emb_seed * emb_pos, axis=1)
        neg_score = F.sum(emb_seed * emb_neg, axis=1)
        loss = F.margin_ranking_loss(pos_score, neg_score, margin=1.0)
        loss.backward()
        self.optimizer.step()
        return float(loss.item())

    def train_epoch(self, rng: np.random.Generator) -> dict[str, float]:
        total = 0.0
        reps = 2 if self.replicate_sampling else 1
        count = 0
        for _ in range(self.batches_per_epoch):
            for _ in range(reps):
                total += self.train_batch(rng)
                count += 1
        return {"loss": total / max(count, 1)}

    def evaluate(self, rng: np.random.Generator, num_pairs: int = 64) -> float:
        """Ranking quality: fraction of co-interacted pairs scored above a
        random pair (AUC-style), computed under no_grad."""
        from ..tensor import no_grad

        with no_grad():
            g = self.item_graph
            edge_ids = rng.integers(0, g.num_edges, size=num_pairs)
            seeds, pos = g.dst[edge_ids], g.src[edge_ids]
            neg = rng.integers(0, g.num_nodes, size=num_pairs)
            emb = self.embed_items(np.concatenate([seeds, pos, neg]), rng)
            e_seed = emb[:num_pairs]
            e_pos = emb[num_pairs : 2 * num_pairs]
            e_neg = emb[2 * num_pairs :]
            pos_scores = (e_seed * e_pos).sum(axis=1)
            neg_scores = (e_seed * e_neg).sum(axis=1)
            return float((pos_scores > neg_scores).mean())

    def embed_items(self, items: np.ndarray, rng: np.random.Generator
                    ) -> np.ndarray:
        from ..tensor import no_grad

        with no_grad():
            block1, block2, inverse = self.sample_blocks(items, rng)
            feats = self.dataset.item_features[block1.src_nodes]
            x = Tensor(feats, device=self.device, _skip_copy=True)
            emb = self.model(x, block1, block2)
            return emb.data[inverse]
