"""Graph neural-network layers shared by the workload models.

Two message-passing styles are implemented, matching the two frameworks the
paper draws workloads from:

* **DGL style** — fused SpMM over a cached CSR adjacency
  (:class:`GCNConv`, :class:`ChebGraphConv`);
* **PyG style** — explicit gather (edge messages) + scatter (aggregation)
  (:func:`gather_scatter`, :class:`GINConv`, :class:`GENConv`,
  :class:`SAGEConv`), which is where the paper's Scatter/Gather kernel
  shares come from.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..graph import Graph, SampledBlock
from ..tensor import SparseTensor, Tensor, functional as F, nn


def gather_scatter(
    x: Tensor,
    edge_src: np.ndarray,
    edge_dst: np.ndarray,
    num_dst: int,
    reduce: str = "sum",
    edge_weight: Optional[np.ndarray] = None,
) -> Tensor:
    """PyG-style message passing: gather source rows, scatter to dest."""
    messages = F.index_select(x, edge_src)
    if edge_weight is not None:
        w = Tensor(edge_weight.reshape(-1, *([1] * (x.ndim - 1))),
                   device=x.device, _skip_copy=True)
        messages = messages * w
    if reduce == "sum":
        return F.scatter_add(messages, edge_dst, num_dst)
    if reduce == "mean":
        return F.segment_mean(messages, edge_dst, num_dst)
    if reduce == "max":
        return F.segment_max(messages, edge_dst, num_dst)
    raise ValueError(f"unknown reduce {reduce!r}")


class GCNConv(nn.Module):
    """Kipf-Welling graph convolution: ``sym_adj @ (X W)``.

    With ``dynamic_norm=True`` the layer recomputes the symmetric GCN
    normalization on every call — PyG's ``GCNConv(cached=False)`` default,
    which ARGA uses — emitting the degree scatter-add and edge-weight
    elementwise kernels over the graph's real index arrays each forward.
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 dynamic_norm: bool = False) -> None:
        super().__init__()
        self.linear = nn.Linear(in_features, out_features, bias=bias)
        self.dynamic_norm = dynamic_norm

    def forward(self, adj: SparseTensor, x: Tensor) -> Tensor:
        if self.dynamic_norm and x.device is not None:
            self._emit_gcn_norm(adj, x.device)
        return F.spmm(adj, self.linear(x))

    @staticmethod
    def _emit_gcn_norm(adj: SparseTensor, device) -> None:
        from ..tensor.ops.base import launch_elementwise
        from ..tensor.ops.scattergather import launch_gather, launch_scatter

        cols = adj.indices
        launch_scatter(device, "gcn_norm_degree_scatter", cols, 1)
        launch_elementwise(device, "ew_rsqrt_degree", adj.shape[0], 1,
                           kind="unary", flops_per_elem=2.0)
        launch_gather(device, "gcn_norm_gather_deg", cols, 1)
        launch_elementwise(device, "ew_edge_norm_mul", adj.nnz, 3)


class ChebGraphConv(nn.Module):
    """Chebyshev graph convolution of order K (the STGCN spatial layer)."""

    def __init__(self, in_features: int, out_features: int, k: int = 3) -> None:
        super().__init__()
        self.k = k
        self.linears = nn.ModuleList(
            [nn.Linear(in_features, out_features, bias=(i == 0)) for i in range(k)]
        )

    def forward(self, laplacian: SparseTensor, x: Tensor) -> Tensor:
        """x: (num_nodes, features...) with node axis first."""
        t_prev_prev = x
        out = self.linears[0](x)
        if self.k == 1:
            return out
        t_prev = F.spmm(laplacian, x)
        out = out + self.linears[1](t_prev)
        for i in range(2, self.k):
            t_cur = F.spmm(laplacian, t_prev) * 2.0 - t_prev_prev
            out = out + self.linears[i](t_cur)
            t_prev_prev, t_prev = t_prev, t_cur
        return out


class SAGEConv(nn.Module):
    """GraphSAGE convolution over a sampled block (PinSAGE's base layer).

    Aggregates (optionally importance-weighted) neighbor features, then
    combines with the destination node's own features.
    """

    def __init__(self, in_features: int, out_features: int) -> None:
        super().__init__()
        self.neighbor = nn.Linear(in_features, out_features)
        self.self_loop = nn.Linear(in_features, out_features)

    def forward(self, block: SampledBlock, x_src: Tensor) -> Tensor:
        agg = gather_scatter(
            x_src, block.edge_src, block.edge_dst, block.num_dst,
            reduce="sum" if block.edge_weight is not None else "mean",
            edge_weight=block.edge_weight,
        )
        x_dst = F.index_select(x_src, np.arange(block.num_dst))
        out = self.neighbor(agg) + self.self_loop(x_dst)
        # L2 normalization, as in PinSAGE
        norm = F.sqrt(F.sum(out * out, axis=-1, keepdims=True) + 1e-6)
        return out / norm


class GINConv(nn.Module):
    """Graph Isomorphism Network layer (the k-GNN building block)."""

    def __init__(self, in_features: int, out_features: int) -> None:
        super().__init__()
        self.eps = nn.Parameter(np.zeros(1, dtype=np.float32))
        self.mlp = nn.Sequential(
            nn.Linear(in_features, out_features),
            nn.ReLU(),
            nn.Linear(out_features, out_features),
        )

    def forward(self, x: Tensor, edge_src: np.ndarray, edge_dst: np.ndarray
                ) -> Tensor:
        agg = gather_scatter(x, edge_src, edge_dst, x.shape[0], reduce="sum")
        one = Tensor(np.float32(1.0), device=x.device, _skip_copy=True)
        return self.mlp(agg + (one + self.eps) * x)


class GENConv(nn.Module):
    """Generalized aggregation conv from the DeepGCN line of work.

    Softmax-weighted neighbor aggregation with a learnable temperature, plus
    message normalization — elementwise-heavy by construction, which is why
    DGCN's Figure-2 profile is dominated by elementwise kernels.
    """

    def __init__(self, features: int) -> None:
        super().__init__()
        self.beta = nn.Parameter(np.ones(1, dtype=np.float32))
        self.mlp = nn.Sequential(
            nn.Linear(features, features * 2),
            nn.ReLU(),
            nn.Linear(features * 2, features),
        )

    def forward(self, x: Tensor, edge_src: np.ndarray, edge_dst: np.ndarray
                ) -> Tensor:
        messages = F.relu(F.index_select(x, edge_src)) + 1e-7
        # softmax over incoming edges of each node, temperature beta
        scaled = messages * self.beta
        seg_max = F.segment_max(scaled, edge_dst, x.shape[0])
        shifted = scaled - F.index_select(seg_max, edge_dst)
        exp = F.exp(shifted)
        denom = F.scatter_add(exp, edge_dst, x.shape[0])
        weights = exp / (F.index_select(denom, edge_dst) + 1e-16)
        agg = F.scatter_add(messages * weights, edge_dst, x.shape[0])
        return self.mlp(x + agg)


class InnerProductDecoder(nn.Module):
    """Graph autoencoder decoder: logits = Z @ Z^T (ARGA)."""

    def __init__(self, dropout: float = 0.0) -> None:
        super().__init__()
        self.dropout = nn.Dropout(dropout)

    def forward(self, z: Tensor) -> Tensor:
        z = self.dropout(z)
        return F.matmul(z, z.T)


class MLPReadout(nn.Module):
    """Graph-level readout: segment-mean pooling + MLP head."""

    def __init__(self, in_features: int, num_classes: int) -> None:
        super().__init__()
        self.head = nn.Sequential(
            nn.Linear(in_features, in_features),
            nn.ReLU(),
            nn.Linear(in_features, num_classes),
        )

    def forward(self, node_states: Tensor, graph_ids: np.ndarray,
                num_graphs: int) -> Tensor:
        pooled = F.segment_mean(node_states, graph_ids, num_graphs)
        return self.head(pooled)
