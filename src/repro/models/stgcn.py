"""STGCN: Spatio-Temporal Graph Convolutional Network (Yu et al.) for
traffic forecasting on METR-LA-style sensor data.

Two ST-Conv blocks, each sandwiching a Chebyshev graph convolution between
gated (GLU) temporal Conv2d layers, followed by an output temporal layer —
the 2-D convolutions over the time axis are why STGCN's Figure-2 profile is
~60% convolution, unique in the suite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from ..datasets.traffic import TrafficDataset
from ..tensor import SparseTensor, Tensor, functional as F, nn
from ..tensor.optim import Adam
from .layers import ChebGraphConv


def scaled_laplacian(dataset_graph) -> SparseTensor:
    """2L/lambda_max - I, the Chebyshev-ready rescaled graph Laplacian."""
    adj = dataset_graph.adjacency("sym").scipy()
    n = adj.shape[0]
    lap = sp.eye(n, format="csr", dtype=np.float32) - adj
    try:
        # ARPACK's default start vector is drawn from the unseeded legacy
        # numpy RNG, making lmax (and every downstream loss) vary per process
        v0 = np.random.default_rng(0).random(n)
        lmax = float(
            sp.linalg.eigsh(lap, k=1, which="LM", return_eigenvectors=False,
                            v0=v0)[0]
        )
    except Exception:  # eigensolver can fail on tiny graphs; 2.0 is the bound
        lmax = 2.0
    scaled = (2.0 / max(lmax, 1e-6)) * lap - sp.eye(n, format="csr",
                                                    dtype=np.float32)
    return SparseTensor(scaled.tocsr())


class TemporalGatedConv(nn.Module):
    """Conv2d over the time axis with a GLU gate: (P, Q) -> P * sigmoid(Q)."""

    def __init__(self, in_channels: int, out_channels: int, kt: int = 3) -> None:
        super().__init__()
        self.conv = nn.Conv2d(in_channels, 2 * out_channels, (kt, 1))
        self.out_channels = out_channels
        self.kt = kt

    def forward(self, x: Tensor) -> Tensor:
        """x: (batch, channels, time, nodes) -> time shrinks by kt - 1."""
        pq = self.conv(x)
        p = pq[:, : self.out_channels]
        q = pq[:, self.out_channels :]
        return p * F.sigmoid(q)


class STConvBlock(nn.Module):
    """Temporal conv -> Chebyshev graph conv -> temporal conv -> LayerNorm.

    Channel structure follows the original STGCN: a wide temporal channel
    count (64) bottlenecked to a narrow spatial width (16) around the graph
    convolution — which is why temporal Conv2d dominates the model's time.
    """

    def __init__(self, in_channels: int, temporal_channels: int,
                 spatial_channels: int, out_channels: int, num_nodes: int,
                 kt: int = 3, k_cheb: int = 3) -> None:
        super().__init__()
        self.t1 = TemporalGatedConv(in_channels, temporal_channels, kt)
        self.bottleneck = nn.Linear(temporal_channels, spatial_channels)
        self.spatial = ChebGraphConv(spatial_channels, spatial_channels, k_cheb)
        self.expand = nn.Linear(spatial_channels, temporal_channels)
        self.t2 = TemporalGatedConv(temporal_channels, out_channels, kt)
        self.norm = nn.LayerNorm(out_channels)

    def forward(self, x: Tensor, laplacian: SparseTensor) -> Tensor:
        h = self.t1(x)
        batch, channels, time, nodes = h.shape
        # node axis first so one SpMM covers every (batch, time) slice
        h_nodes = h.permute(3, 0, 2, 1).reshape(nodes, batch * time, channels)
        h_narrow = self.bottleneck(h_nodes)
        h_spatial = F.relu(self.spatial(laplacian, h_narrow))
        h_wide = self.expand(h_spatial)
        h = h_wide.reshape(nodes, batch, time, channels).permute(1, 3, 2, 0)
        h = self.t2(h)
        # LayerNorm over channels: move channels last
        h = h.permute(0, 2, 3, 1)
        h = self.norm(h)
        return h.permute(0, 3, 1, 2)


class STGCN(nn.Module):
    def __init__(self, num_nodes: int, history: int, in_channels: int = 1,
                 channels: tuple[int, int, int] = (64, 16, 64)) -> None:
        super().__init__()
        c1, cs, c2 = channels
        self.block1 = STConvBlock(in_channels, c1, cs, c1, num_nodes)
        self.block2 = STConvBlock(c1, c1, cs, c2, num_nodes)
        remaining = history - 4 * 2  # two kt=3 convs per block
        if remaining < 1:
            raise ValueError("history too short for two ST-Conv blocks")
        self.final_temporal = TemporalGatedConv(c2, c2, kt=remaining)
        self.head = nn.Linear(c2, 1)

    def forward(self, x: Tensor, laplacian: SparseTensor) -> Tensor:
        """x: (batch, history, nodes, channels) -> (batch, nodes) prediction."""
        h = x.permute(0, 3, 1, 2)  # (batch, channels, time, nodes)
        h = self.block1(h, laplacian)
        h = self.block2(h, laplacian)
        h = self.final_temporal(h)  # time -> 1
        h = h.permute(0, 2, 3, 1)   # (batch, 1, nodes, channels)
        batch, _, nodes, channels = h.shape
        out = self.head(h.reshape(batch * nodes, channels))
        return out.reshape(batch, nodes)


@dataclass
class STGCNWorkload:
    model: STGCN
    dataset: TrafficDataset
    laplacian: SparseTensor
    optimizer: Adam
    batch_size: int = 16
    batches_per_epoch: int = 8
    device: object = None

    @classmethod
    def build(cls, dataset: TrafficDataset, device=None, batch_size: int = 16,
              batches_per_epoch: int = 8, lr: float = 1e-3) -> "STGCNWorkload":
        model = STGCN(dataset.graph.num_nodes, dataset.history)
        if device is not None:
            model.to(device)
        lap = scaled_laplacian(dataset.graph)
        if device is not None:
            lap = lap.to(device)
        return cls(model=model, dataset=dataset, laplacian=lap,
                   optimizer=Adam(model.parameters(), lr=lr),
                   batch_size=batch_size, batches_per_epoch=batches_per_epoch,
                   device=device)

    def train_epoch(self, rng: np.random.Generator) -> dict[str, float]:
        signal = self.dataset.temporal()
        total, count = 0.0, 0
        for b, (xs, ys) in enumerate(signal.batches(self.batch_size, rng)):
            if b >= self.batches_per_epoch:
                break
            x = Tensor(xs).to(self.device, "stgcn.window")
            target = ys[:, :, 0]
            if self.device is not None:
                self.device.h2d(target, "stgcn.target")
            self.optimizer.zero_grad()
            pred = self.model(x, self.laplacian)
            loss = F.mse_loss(pred, target)
            loss.backward()
            self.optimizer.step()
            total += loss.item()
            count += 1
        return {"loss": total / max(count, 1)}

    def evaluate_mae(self, num_batches: int = 4) -> float:
        from ..tensor import no_grad

        signal = self.dataset.temporal()
        errors = []
        with no_grad():
            for b, (xs, ys) in enumerate(signal.batches(self.batch_size)):
                if b >= num_batches:
                    break
                pred = self.model(Tensor(xs).to(self.device), self.laplacian)
                errors.append(np.abs(pred.data - ys[:, :, 0]).mean())
        return float(np.mean(errors)) if errors else float("nan")
