"""Deterministic request generation: Poisson and bursty (MMPP) arrivals.

Every request is a pure function of ``(seed, arrival process, qps)`` — the
generator draws from seeded :class:`numpy.random.Generator` streams and never
touches the wall clock, so a serving run replays byte-identically across
processes and ``--jobs`` settings (the same RNG discipline the golden kernel
streams rely on).

Entity ids come from *per-user* child streams (``default_rng([seed, 1, user])``)
so each simulated user requests a reproducible item sequence regardless of how
the arrival process interleaves users.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: supported arrival processes
ARRIVALS = ("poisson", "bursty")

# bursty = 2-state Markov-modulated Poisson process: the rate alternates
# between HIGH*qps and LOW*qps with exponential dwell times; the factors
# average to 1.0 over equal expected dwells, so the long-run rate is qps.
BURST_HIGH_FACTOR = 1.8
BURST_LOW_FACTOR = 0.2
BURST_DWELL_S = 0.25


@dataclass(frozen=True)
class Request:
    """One inference request: who asks for what, when (simulated seconds)."""

    index: int
    user: int
    entity: int
    arrival_s: float


def _poisson_gaps(n: int, qps: float, rng: np.random.Generator) -> np.ndarray:
    return rng.exponential(1.0 / qps, size=n)


def _bursty_gaps(n: int, qps: float, rng: np.random.Generator) -> np.ndarray:
    """Exact MMPP-2 inter-arrival times.

    The state holds for an exponential dwell; an arrival draw that overruns
    the remaining dwell is resampled from the next state's rate (legal by
    memorylessness), accumulating the dwell remainder into the gap.
    """
    high = bool(rng.integers(0, 2))
    dwell = float(rng.exponential(BURST_DWELL_S))
    gaps = np.empty(n)
    for i in range(n):
        gap = 0.0
        while True:
            rate = qps * (BURST_HIGH_FACTOR if high else BURST_LOW_FACTOR)
            draw = float(rng.exponential(1.0 / rate))
            if draw <= dwell:
                dwell -= draw
                gap += draw
                break
            gap += dwell
            high = not high
            dwell = float(rng.exponential(BURST_DWELL_S))
        gaps[i] = gap
    return gaps


def generate_requests(
    num_requests: int,
    qps: float,
    arrival: str = "poisson",
    population: int = 1,
    num_users: int = 64,
    seed: int = 0,
) -> list[Request]:
    """``num_requests`` seeded requests with nondecreasing arrival times."""
    if num_requests < 1:
        raise ValueError(f"requests must be >= 1, got {num_requests}")
    if not qps > 0:
        raise ValueError(f"qps must be > 0, got {qps}")
    if arrival not in ARRIVALS:
        raise ValueError(f"arrival must be one of {list(ARRIVALS)}, "
                         f"got {arrival!r}")
    if population < 1:
        raise ValueError(f"population must be >= 1, got {population}")
    if num_users < 1:
        raise ValueError(f"num_users must be >= 1, got {num_users}")

    rng = np.random.default_rng([int(seed), 0])
    if arrival == "poisson":
        gaps = _poisson_gaps(num_requests, qps, rng)
    else:
        gaps = _bursty_gaps(num_requests, qps, rng)
    arrivals = np.cumsum(gaps)
    users = rng.integers(0, num_users, size=num_requests)

    streams: dict[int, np.random.Generator] = {}
    requests = []
    for i in range(num_requests):
        user = int(users[i])
        stream = streams.get(user)
        if stream is None:
            stream = streams[user] = np.random.default_rng(
                [int(seed), 1, user])
        requests.append(Request(
            index=i,
            user=user,
            entity=int(stream.integers(0, population)),
            arrival_s=float(arrivals[i]),
        ))
    return requests
