"""The serving loop: coalesced batches executed on the simulated GPU.

A serving run is a pure function of ``(key, scale, qps, arrival, batch_max,
max_wait_us, requests, num_users, seed)``:

* requests come from :func:`repro.serve.arrivals.generate_requests` (seeded
  RNG streams, no wall clock);
* the dynamic batcher (:func:`repro.serve.queueing.run_queue`) runs entirely
  on the simulated clock — batch start times jump ``SimulatedGPU.clock_s``
  forward over idle gaps, and batch durations come out of the analytical
  kernel model;
* steady-state batches ride the capture/replay fast path
  (:mod:`repro.gpu.graph_capture`): the *first* batch of each distinct size
  dispatches real forward-only inference under an epoch recorder, and every
  later batch of that size replays the captured plan — the simulator's
  analogue of padded static-shape CUDA-Graph serving.  Batch latency is
  therefore a function of batch *size*, not of which entities were drawn
  (the deviation real static-shape serving makes too; DESIGN.md §10).

The model serves from its seeded initialization, without a training warm-up:
inference cost in the analytical model depends on shapes, never on weight
values, and skipping warm-up keeps serving HBM peaks free of training-only
allocations (optimizer state, saved activations).
"""

from __future__ import annotations

import contextlib
import hashlib
import json
from typing import Optional

import numpy as np

from ..core import registry
from ..gpu import SimulatedGPU, SimulationConfig
from ..gpu import memory as gpu_memory
from ..gpu.graph_capture import EpochPlan, _EpochRecorder, replay_epoch
from ..profiling import trace
from ..tensor import autograd, manual_seed
from .arrivals import ARRIVALS, generate_requests
from .queueing import BatchRecord, ServedRequest, run_queue

#: bump when the serving report changes shape
SERVE_VERSION = 1

#: workloads with a forward-only serving entry point
SERVEABLE = ("DGCN", "PSAGE-MVL", "PSAGE-NWP")


def validate_serving_config(qps: float, batch_max: int, max_wait_us: float,
                            requests: int) -> None:
    """Raise ``ValueError`` with a usable message on contradictory knobs."""
    if not qps > 0:
        raise ValueError(f"qps must be > 0, got {qps}")
    if batch_max < 1:
        raise ValueError(f"batch-max must be >= 1, got {batch_max}")
    if max_wait_us < 0:
        raise ValueError(f"max-wait-us must be >= 0, got {max_wait_us}")
    if requests < 1:
        raise ValueError(f"requests must be >= 1, got {requests}")


# -- per-workload serving engines ---------------------------------------------


class _PinSAGEEngine:
    """Request = an item id; step = embed the batch's items (no_grad)."""

    def __init__(self, workload, seed: int) -> None:
        self.workload = workload
        self.population = int(workload.item_graph.num_nodes)
        self.seed = int(seed)

    def run(self, entities: np.ndarray) -> None:
        self.workload.embed_items(entities, np.random.default_rng(self.seed))


class _DeepGCNEngine:
    """Request = a molecule index; step = classify the batch (no_grad)."""

    def __init__(self, workload, seed: int) -> None:
        self.workload = workload
        self.population = len(workload.dataset.graphs)

    def run(self, entities: np.ndarray) -> None:
        self.workload.evaluate(entities)


def make_engine(key: str, workload, seed: int):
    if key.startswith("PSAGE"):
        return _PinSAGEEngine(workload, seed)
    if key == "DGCN":
        return _DeepGCNEngine(workload, seed)
    raise ValueError(
        f"workload {key!r} has no serving engine; serveable workloads: "
        f"{sorted(SERVEABLE)}"
    )


# -- batch execution: capture once per size, replay thereafter ----------------


class BatchRunner:
    """Executes queued batches on the device, capture/replay per batch size.

    The first batch of each distinct size dispatches the engine's real
    inference step under an :class:`_EpochRecorder` (with the framework RNG
    restored to its serve-start snapshot, so neighborhood sampling inside the
    step is a function of batch size alone); later batches of that size
    replay the captured plan — pure clock arithmetic, no workload code.
    """

    def __init__(self, engine, device: SimulatedGPU, tracker=None,
                 seed: int = 0) -> None:
        from ..tensor import random as framework_random

        self.engine = engine
        self.device = device
        self.tracker = tracker
        self.seed = int(seed)
        self.plans: dict[int, EpochPlan] = {}
        #: "capture" | "replay", one entry per executed batch
        self.batch_modes: list[str] = []
        self._rng_state = framework_random.generator().bit_generator.state

    def run_batch(self, members, start_s: float) -> float:
        device = self.device
        # the device sat idle until this batch: advance both clocks
        device.clock_s = start_s
        device.host_clock_s = start_s
        plan = self.plans.get(len(members))
        if plan is None:
            self.plans[len(members)] = self._capture(members)
            self.batch_modes.append("capture")
        else:
            replay_epoch(plan, device, tracker=self.tracker)
            self.batch_modes.append("replay")
        # the server hands results back before admitting the next batch
        device.host_clock_s = device.clock_s
        return device.clock_s

    def _capture(self, members) -> EpochPlan:
        from ..tensor import random as framework_random

        framework_random.generator().bit_generator.state = self._rng_state
        stats = self.device.stats
        before = (
            stats.kernel_count, stats.transfer_count, stats.h2d_bytes,
            stats.d2h_bytes, stats.analysis_hits, stats.analysis_misses,
        )
        entities = np.array([m.entity for m in members], dtype=np.int64)
        recorder = _EpochRecorder(self.device)
        with recorder:
            with autograd.phase("serve"):
                self.engine.run(entities)
        return EpochPlan(
            events=recorder.finish(),
            metrics={},
            kernel_count=stats.kernel_count - before[0],
            transfer_count=stats.transfer_count - before[1],
            h2d_bytes=stats.h2d_bytes - before[2],
            d2h_bytes=stats.d2h_bytes - before[3],
            analysis_hits=stats.analysis_hits - before[4],
            analysis_misses=stats.analysis_misses - before[5],
        )


# -- reporting ----------------------------------------------------------------


def _quantiles_us(values_s: list[float]) -> dict[str, float]:
    arr = np.asarray(values_s, dtype=np.float64) * 1e6
    return {
        "mean": float(arr.mean()),
        "p50": float(np.percentile(arr, 50)),
        "p95": float(np.percentile(arr, 95)),
        "p99": float(np.percentile(arr, 99)),
        "max": float(arr.max()),
    }


def digest_report(report: dict) -> str:
    """SHA-256 over the canonical JSON of a report (digest field excluded)."""
    payload = {k: v for k, v in report.items() if k != "serve_digest"}
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def build_report(
    key: str, scale: str, qps: float, arrival: str, batch_max: int,
    max_wait_us: float, num_users: int, seed: int,
    served: list[ServedRequest], batches: list[BatchRecord],
    runner: BatchRunner, memory_stats: dict,
) -> dict:
    """Canonical serving report — every field exact-deterministic."""
    hist: dict[str, int] = {}
    for batch in batches:
        hist[str(batch.size)] = hist.get(str(batch.size), 0) + 1
    duration_s = max(s.complete_s for s in served)
    report = {
        "version": SERVE_VERSION,
        "workload": key,
        "scale": scale,
        "qps": float(qps),
        "arrival": arrival,
        "batch_max": int(batch_max),
        "max_wait_us": float(max_wait_us),
        "requests": len(served),
        "num_users": int(num_users),
        "seed": int(seed),
        "completed": len(served),
        "duration_s": duration_s,
        "throughput_rps": len(served) / duration_s,
        "latency_us": _quantiles_us([s.latency_s for s in served]),
        "wait_us": _quantiles_us([s.wait_s for s in served]),
        "compute_us": _quantiles_us([s.compute_s for s in served]),
        "batches": len(batches),
        "batch_size_hist": hist,
        "mean_batch_size": len(served) / len(batches),
        "captured_plans": len(runner.plans),
        "replayed_batches": runner.batch_modes.count("replay"),
        "plan_kernels": {
            str(size): plan.kernel_count
            for size, plan in sorted(runner.plans.items())
        },
        "peak_live_bytes": memory_stats["peak_live_bytes"],
        "peak_reserved_bytes": memory_stats["peak_reserved_bytes"],
        "hbm_utilization": memory_stats["utilization"],
        "oom_events": memory_stats["oom_events"],
    }
    report["serve_digest"] = digest_report(report)
    return report


# -- trace integration --------------------------------------------------------


def _emit_serve_spans(tracer, device: SimulatedGPU,
                      served: list[ServedRequest],
                      batches: list[BatchRecord],
                      runner: BatchRunner) -> None:
    """Batch spans on the ``serve`` stream, per-request waits on ``queue``."""
    pid = device.device_id
    for batch, mode in zip(batches, runner.batch_modes):
        tracer.add_span(
            f"batch {batch.index}", trace.CAT_SERVE, pid, "serve",
            batch.start_s, batch.complete_s,
            {"size": batch.size, "mode": mode,
             "dispatch_us": batch.dispatch_s * 1e6},
        )
    for s in served:
        tracer.add_span(
            f"req {s.request.index}", trace.CAT_QUEUE, pid, "queue",
            s.request.arrival_s, s.start_s,
            {"user": s.request.user, "entity": s.request.entity,
             "batch": s.batch},
        )


# -- entry points -------------------------------------------------------------


def serve_run(
    key: str,
    scale: str = "test",
    qps: float = 100.0,
    arrival: str = "poisson",
    batch_max: int = 8,
    max_wait_us: float = 2000.0,
    requests: int = 256,
    num_users: int = 64,
    seed: int = 0,
    strict: bool = False,
    sim: Optional[SimulationConfig] = None,
    traced: bool = False,
) -> tuple[dict, Optional[trace.Timeline]]:
    """Simulate one serving run; return (report, timeline-or-None).

    Runs under device-memory tracking (the tracker attaches before build, as
    :func:`repro.core.characterize.measure_memory` does, so parameter HBM is
    part of the occupancy picture) with the cyclic GC suspended, making the
    report a byte-deterministic function of its arguments.
    """
    import gc

    validate_serving_config(qps, batch_max, max_wait_us, requests)
    if arrival not in ARRIVALS:
        raise ValueError(f"arrival must be one of {list(ARRIVALS)}, "
                         f"got {arrival!r}")
    if key not in SERVEABLE:
        raise ValueError(
            f"workload {key!r} has no serving engine; serveable workloads: "
            f"{sorted(SERVEABLE)}"
        )
    spec = registry.get(key)
    manual_seed(seed)
    device = SimulatedGPU(sim)
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    timeline: Optional[trace.Timeline] = None
    try:
        with gpu_memory.track(device, strict=strict) as tracker:
            with autograd.phase("setup"):
                workload = spec.build(device=device, scale=scale)
            device.reset()
            engine = make_engine(key, workload, seed)
            reqs = generate_requests(requests, qps, arrival=arrival,
                                     population=engine.population,
                                     num_users=num_users, seed=seed)
            trace_ctx = (trace.session(devices=(device,)) if traced
                         else contextlib.nullcontext(None))
            with trace_ctx as tracer:
                if tracer is not None:
                    tracker.set_counter_sink(tracer.counter_sink(device))
                runner = BatchRunner(engine, device, tracker=tracker,
                                     seed=seed)
                served, batches = run_queue(reqs, batch_max,
                                            max_wait_us * 1e-6,
                                            runner.run_batch)
                if tracer is not None:
                    _emit_serve_spans(tracer, device, served, batches, runner)
            memory_stats = device.memory.stats()
            if traced:
                timeline = tracer.timeline()
    finally:
        if gc_was_enabled:
            gc.enable()

    report = build_report(key, scale, qps, arrival, batch_max, max_wait_us,
                          num_users, seed, served, batches, runner,
                          memory_stats)
    from ..profiling import metrics as metrics_mod

    metrics_mod.collect_device(device)
    metrics_mod.collect_serve(report)
    return report, timeline


def serve_report(
    key: str,
    scale: str = "test",
    qps: float = 100.0,
    arrival: str = "poisson",
    batch_max: int = 8,
    max_wait_us: float = 2000.0,
    requests: int = 256,
    num_users: int = 64,
    seed: int = 0,
    strict: bool = False,
) -> dict:
    """The picklable executor-task entry point (no timeline)."""
    report, _ = serve_run(key, scale=scale, qps=qps, arrival=arrival,
                          batch_max=batch_max, max_wait_us=max_wait_us,
                          requests=requests, num_users=num_users, seed=seed,
                          strict=strict, traced=False)
    return report
