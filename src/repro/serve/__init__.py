"""Online inference serving simulation: arrivals, batching, queueing.

GNNMark characterizes *training*, but its recsys workloads (PinSage MVL/NWP)
ship as high-QPS inference services.  This package models that deployment on
the simulated clock: a seeded request generator (:mod:`arrivals`), a dynamic
batcher with ``max_batch_size`` / ``max_wait_us`` knobs (:mod:`queueing`),
and a serving loop that executes coalesced batches as forward-only inference
steps on a :class:`~repro.gpu.device.SimulatedGPU`, reusing the
capture/replay fast path for steady-state batches (:mod:`server`).
"""

from .arrivals import ARRIVALS, Request, generate_requests
from .queueing import BatchRecord, ServedRequest, run_queue
from .server import (
    SERVE_VERSION,
    SERVEABLE,
    serve_report,
    serve_run,
    validate_serving_config,
)

__all__ = [
    "ARRIVALS",
    "Request",
    "generate_requests",
    "BatchRecord",
    "ServedRequest",
    "run_queue",
    "SERVE_VERSION",
    "SERVEABLE",
    "serve_report",
    "serve_run",
    "validate_serving_config",
]
