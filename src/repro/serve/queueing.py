"""The dynamic-batching queue: a pure, device-free model of the serving loop.

Semantics (see DESIGN.md §10).  Requests queue FIFO.  With head request
``h`` pending, the batcher commits to a dispatch time

    ``dispatch = min(h.arrival + max_wait, t_full)``

where ``t_full`` is the arrival time of the ``batch_max``-th queued request
(``inf`` if the queue never fills) — i.e. it launches as soon as the batch
is full, and never holds the head past its ``max_wait`` budget.  The batch
*starts* at ``start = max(dispatch, device_free)``; requests that arrive
while the device is still busy (``arrival <= start``) join the batch up to
``batch_max``, oldest first.  The executed batch occupies the device until
``run_batch`` says it completes.

``run_batch(members, start_s) -> complete_s`` is the only side-effecting
hook, which is what makes the model property-testable with a synthetic
service function (tests/test_serve_properties.py) and servable with a real
simulated GPU (:mod:`repro.serve.server`).

Guarantees, by construction (and pinned by the hypothesis suite):

* conservation — every request lands in exactly one batch;
* FIFO — members dequeue in arrival order, batches never reorder;
* ``1 <= len(members) <= batch_max``;
* ``dispatch - head.arrival <= max_wait`` for every batch (and every
  member, since non-head members arrived later);
* batches never overlap: ``start >= previous complete``.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Callable, Sequence

from .arrivals import Request


@dataclass(frozen=True)
class BatchRecord:
    """One executed batch: when it was committed, started and finished."""

    index: int
    dispatch_s: float
    start_s: float
    complete_s: float
    members: tuple[int, ...]  # request indices, FIFO order

    @property
    def size(self) -> int:
        return len(self.members)


@dataclass(frozen=True)
class ServedRequest:
    """One completed request with its latency split."""

    request: Request
    batch: int
    start_s: float
    complete_s: float

    @property
    def wait_s(self) -> float:
        return self.start_s - self.request.arrival_s

    @property
    def compute_s(self) -> float:
        return self.complete_s - self.start_s

    @property
    def latency_s(self) -> float:
        return self.complete_s - self.request.arrival_s


def run_queue(
    requests: Sequence[Request],
    batch_max: int,
    max_wait_s: float,
    run_batch: Callable[[list[Request], float], float],
) -> tuple[list[ServedRequest], list[BatchRecord]]:
    """Drain ``requests`` through the dynamic batcher.

    Returns (served requests in completion order, executed batches in
    dispatch order).  ``run_batch`` receives the member list and the batch
    start time and returns the completion time on the same clock.
    """
    if batch_max < 1:
        raise ValueError(f"batch_max must be >= 1, got {batch_max}")
    if max_wait_s < 0:
        raise ValueError(f"max_wait_s must be >= 0, got {max_wait_s}")

    order = sorted(requests, key=lambda r: (r.arrival_s, r.index))
    queue: deque[Request] = deque()
    served: list[ServedRequest] = []
    batches: list[BatchRecord] = []
    i, n = 0, len(order)
    free_s = 0.0

    while i < n or queue:
        if not queue:
            queue.append(order[i])
            i += 1
        head = queue[0]
        deadline = head.arrival_s + max_wait_s
        shortfall = batch_max - len(queue)
        if shortfall <= 0:
            t_full = queue[batch_max - 1].arrival_s
        elif i + shortfall - 1 < n:
            t_full = order[i + shortfall - 1].arrival_s
        else:
            t_full = math.inf
        dispatch_s = min(deadline, t_full)
        start_s = max(dispatch_s, free_s)
        while i < n and order[i].arrival_s <= start_s:
            queue.append(order[i])
            i += 1
        members = [queue.popleft()
                   for _ in range(min(batch_max, len(queue)))]
        complete_s = run_batch(members, start_s)
        if complete_s < start_s:
            raise RuntimeError(
                f"run_batch went backwards: start {start_s}, "
                f"complete {complete_s}"
            )
        free_s = complete_s
        record = BatchRecord(
            index=len(batches),
            dispatch_s=dispatch_s,
            start_s=start_s,
            complete_s=complete_s,
            members=tuple(m.index for m in members),
        )
        batches.append(record)
        served.extend(
            ServedRequest(request=m, batch=record.index,
                          start_s=start_s, complete_s=complete_s)
            for m in members
        )
    return served, batches
