"""Synthetic graph generators.

Deterministic (seeded) generators covering the topology families of the
paper's datasets: community-structured citation graphs (SBM), heavy-tailed
interaction graphs (preferential attachment), bipartite user-item graphs,
road/sensor networks, small molecules, and sentence trees.
"""

from __future__ import annotations

import numpy as np

from .graph import Graph


def erdos_renyi(num_nodes: int, avg_degree: float, rng: np.random.Generator) -> Graph:
    """G(n, p) with p chosen for the requested mean out-degree."""
    num_edges = int(num_nodes * avg_degree)
    src = rng.integers(0, num_nodes, size=num_edges)
    dst = rng.integers(0, num_nodes, size=num_edges)
    keep = src != dst
    return Graph(src[keep], dst[keep], num_nodes=num_nodes)


def stochastic_block_model(
    block_sizes: list[int],
    p_in: float,
    p_out: float,
    rng: np.random.Generator,
) -> tuple[Graph, np.ndarray]:
    """SBM with dense intra-block / sparse inter-block connectivity.

    Returns (graph, block labels).  Sampling is done per block pair with a
    binomial edge count to stay O(edges) rather than O(n^2).
    """
    sizes = np.asarray(block_sizes)
    offsets = np.concatenate([[0], np.cumsum(sizes)])
    n = int(offsets[-1])
    labels = np.repeat(np.arange(len(sizes)), sizes)
    srcs, dsts = [], []
    for i in range(len(sizes)):
        for j in range(len(sizes)):
            p = p_in if i == j else p_out
            possible = int(sizes[i]) * int(sizes[j])
            count = rng.binomial(possible, min(1.0, p))
            if count == 0:
                continue
            src = rng.integers(offsets[i], offsets[i + 1], size=count)
            dst = rng.integers(offsets[j], offsets[j + 1], size=count)
            keep = src != dst
            srcs.append(src[keep])
            dsts.append(dst[keep])
    src = np.concatenate(srcs) if srcs else np.empty(0, np.int64)
    dst = np.concatenate(dsts) if dsts else np.empty(0, np.int64)
    pairs = np.unique(np.stack([src, dst], axis=1), axis=0)
    graph = Graph(pairs[:, 0], pairs[:, 1], num_nodes=n).to_undirected()
    return graph, labels


def preferential_attachment(
    num_nodes: int, edges_per_node: int, rng: np.random.Generator
) -> Graph:
    """Barabási–Albert-style heavy-tailed degree distribution."""
    m = edges_per_node
    targets = list(range(m))
    repeated: list[int] = list(range(m))
    src, dst = [], []
    for node in range(m, num_nodes):
        chosen = rng.choice(repeated, size=m, replace=False) if len(repeated) >= m \
            else rng.integers(0, node, size=m)
        for t in np.unique(chosen):
            src.append(node)
            dst.append(int(t))
            repeated.extend([node, int(t)])
    return Graph(np.array(src), np.array(dst), num_nodes=num_nodes).to_undirected()


def bipartite_interactions(
    num_users: int,
    num_items: int,
    num_interactions: int,
    rng: np.random.Generator,
    item_popularity_skew: float = 1.2,
) -> tuple[np.ndarray, np.ndarray]:
    """User-item interaction pairs with Zipfian item popularity."""
    ranks = np.arange(1, num_items + 1, dtype=np.float64)
    probs = ranks ** (-item_popularity_skew)
    probs /= probs.sum()
    users = rng.integers(0, num_users, size=num_interactions)
    items = rng.choice(num_items, size=num_interactions, p=probs)
    pairs = np.unique(np.stack([users, items], axis=1), axis=0)
    return pairs[:, 0], pairs[:, 1]


def sensor_network(
    num_sensors: int, k_nearest: int, rng: np.random.Generator
) -> tuple[Graph, np.ndarray]:
    """Road-sensor-style graph: random 2D points, k-nearest-neighbor edges,
    Gaussian-kernel edge weights (the METR-LA adjacency construction)."""
    points = rng.random((num_sensors, 2))
    d2 = ((points[:, None, :] - points[None, :, :]) ** 2).sum(-1)
    np.fill_diagonal(d2, np.inf)
    nearest = np.argsort(d2, axis=1)[:, :k_nearest]
    src = np.repeat(np.arange(num_sensors), k_nearest)
    dst = nearest.reshape(-1)
    dist = np.sqrt(d2[src, dst])
    sigma = dist.std() + 1e-8
    weights = np.exp(-(dist ** 2) / (sigma ** 2)).astype(np.float32)
    graph = Graph(src, dst, num_nodes=num_sensors, edge_weight=weights)
    return graph, points


def random_molecule(
    rng: np.random.Generator, min_atoms: int = 8, max_atoms: int = 32
) -> Graph:
    """A small-molecule-like graph: a random tree plus a few ring closures."""
    n = int(rng.integers(min_atoms, max_atoms + 1))
    parents = np.array([int(rng.integers(0, i)) for i in range(1, n)])
    src = np.arange(1, n)
    dst = parents
    extra = max(0, int(rng.poisson(n * 0.15)))
    if extra:
        a = rng.integers(0, n, size=extra)
        b = rng.integers(0, n, size=extra)
        keep = a != b
        src = np.concatenate([src, a[keep]])
        dst = np.concatenate([dst, b[keep]])
    return Graph(src, dst, num_nodes=n).to_undirected()


def random_binary_tree(num_leaves: int, rng: np.random.Generator
                       ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """A random binary parse tree over ``num_leaves`` tokens.

    Returns (parent, left_child_mask, is_leaf): arrays over 2*num_leaves - 1
    nodes where internal node i has exactly two children.  Built bottom-up by
    repeatedly merging two random adjacent forest roots (like a random
    binarized constituency parse).
    """
    total = 2 * num_leaves - 1
    parent = -np.ones(total, dtype=np.int64)
    is_leaf = np.zeros(total, dtype=bool)
    is_leaf[:num_leaves] = True
    roots = list(range(num_leaves))
    next_id = num_leaves
    while len(roots) > 1:
        i = int(rng.integers(0, len(roots) - 1))
        left, right = roots[i], roots[i + 1]
        parent[left] = next_id
        parent[right] = next_id
        roots[i : i + 2] = [next_id]
        next_id += 1
    left_mask = np.zeros(total, dtype=bool)
    return parent, left_mask, is_leaf
