"""Graph library: the DGL / PyTorch-Geometric substitute.

Homogeneous, heterogeneous and temporal graphs; block-diagonal batching;
neighbor/random-walk sampling; synthetic topology generators.
"""

from . import generators
from .batch import BatchedGraph, batch_graphs, unbatch
from .graph import Graph
from .hetero import EdgeType, HeteroGraph
from .partition import PartitionPlan, partition_graph, plan_digest
from .sampling import (
    SampledBlock,
    pinsage_neighbors,
    random_walks,
    uniform_neighbor_block,
)
from .temporal import DynamicGraph, TemporalSignal

__all__ = [
    "BatchedGraph",
    "DynamicGraph",
    "EdgeType",
    "Graph",
    "HeteroGraph",
    "PartitionPlan",
    "SampledBlock",
    "TemporalSignal",
    "batch_graphs",
    "generators",
    "partition_graph",
    "pinsage_neighbors",
    "plan_digest",
    "random_walks",
    "unbatch",
    "uniform_neighbor_block",
]
