"""Graph sampling: uniform neighbor sampling and PinSAGE random walks.

The device-side post-processing that real pipelines run after sampling —
deduplicating node ids (sort + unique), compacting them, selecting top-T
important neighbors — emits SORT kernels when a device is supplied, which is
where the paper's large sorting share for PSAGE comes from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..tensor.ops import sort as sort_ops
from .graph import Graph
from .hetero import EdgeType, HeteroGraph


@dataclass
class SampledBlock:
    """One message-passing block from a sampled frontier.

    ``src_nodes`` are original graph ids providing input features;
    ``dst_nodes`` (a prefix of src_nodes) receive aggregated messages; the
    edges are in *local* block coordinates.
    """

    src_nodes: np.ndarray
    dst_nodes: np.ndarray
    edge_src: np.ndarray
    edge_dst: np.ndarray
    edge_weight: Optional[np.ndarray] = None

    @property
    def num_src(self) -> int:
        return int(self.src_nodes.size)

    @property
    def num_dst(self) -> int:
        return int(self.dst_nodes.size)


def uniform_neighbor_block(
    graph: Graph,
    seeds: np.ndarray,
    fanout: int,
    rng: np.random.Generator,
    device=None,
) -> SampledBlock:
    """Sample up to ``fanout`` in-neighbors per seed (without replacement).

    Fully vectorized: one random key per candidate edge, a segment-stable
    argsort, and indptr arithmetic pick the ``min(degree, fanout)`` smallest
    keys per seed — a batched permutation draw with no per-seed Python loop.
    Isolated seeds (degree 0) contribute no edges but keep their dst slot:
    ``dst_nodes`` is always exactly ``seeds`` and ``src_nodes`` always starts
    with every seed, so downstream gather/scatter alignment survives.
    """
    seeds = np.asarray(seeds, dtype=np.int64)
    csr = graph.csr()
    indptr = csr.indptr.astype(np.int64)
    starts = indptr[seeds]
    deg = indptr[seeds + 1] - starts
    take = np.minimum(deg, int(fanout))
    total = int(deg.sum())
    if total:
        # segment id per candidate edge; segments are contiguous and sorted
        seg = np.repeat(np.arange(seeds.size, dtype=np.int64), deg)
        seg_starts = np.concatenate(([0], np.cumsum(deg)[:-1]))
        # without-replacement pick per segment: keep the take[s] smallest
        # uniform keys — equivalent to a per-seed permutation prefix
        keys = rng.random(total)
        order = np.lexsort((keys, seg))
        rank = np.arange(total, dtype=np.int64) - np.repeat(seg_starts, deg)
        sel = order[rank < np.repeat(take, deg)]
        # candidate -> position in the CSR indices array
        picked = csr.indices[np.repeat(starts - seg_starts, deg)[sel] + sel]
        picked = picked.astype(np.int64)
        dst_local = seg[sel]
    else:
        picked = np.empty(0, np.int64)
        dst_local = np.empty(0, np.int64)

    # Device-side id compaction: sort + unique + relabel.
    uniq, inverse = sort_ops.unique(
        _on_device(np.concatenate([seeds, picked]), device), return_inverse=True
    )
    # Keep seeds first (they are the dst nodes of the block).
    seed_pos = inverse[: seeds.size]
    order = np.concatenate([seed_pos, np.setdiff1d(np.arange(uniq.size), seed_pos)])
    rank = np.empty(uniq.size, dtype=np.int64)
    rank[order] = np.arange(uniq.size)
    src_nodes = uniq[order]
    edge_src_local = rank[inverse[seeds.size :]]
    return SampledBlock(
        src_nodes=src_nodes.astype(np.int64),
        dst_nodes=seeds,
        edge_src=edge_src_local,
        edge_dst=dst_local,
    )


def random_walks(
    graph: Graph,
    starts: np.ndarray,
    length: int,
    rng: np.random.Generator,
    restart_prob: float = 0.0,
) -> np.ndarray:
    """Uniform random walks; returns (num_starts, length + 1) node ids.

    Walks that hit a node with no neighbors stay in place (-like DGL's pad
    behaviour, we repeat the node).
    """
    starts = np.asarray(starts, dtype=np.int64)
    csr = graph.csr()
    indptr = csr.indptr
    indices = csr.indices
    walks = np.empty((starts.size, length + 1), dtype=np.int64)
    walks[:, 0] = starts
    current = starts.copy()
    for step in range(1, length + 1):
        lo = indptr[current]
        deg = indptr[current + 1] - lo
        draw = lo + np.floor(rng.random(current.size) * np.maximum(deg, 1)).astype(np.int64)
        nxt = np.where(deg > 0, indices[np.minimum(draw, indices.size - 1)], current)
        if restart_prob > 0:
            restart = rng.random(starts.size) < restart_prob
            nxt = np.where(restart, starts, nxt)
        walks[:, step] = nxt
        current = nxt
    return walks


def pinsage_neighbors(
    graph: Graph,
    seeds: np.ndarray,
    num_walks: int,
    walk_length: int,
    top_t: int,
    rng: np.random.Generator,
    device=None,
) -> SampledBlock:
    """PinSAGE importance sampling: random walks + visit-count top-T.

    For each seed, launch ``num_walks`` short walks, count node visits, and
    keep the ``top_t`` most-visited nodes as weighted neighbors.  The
    visit-count ranking is a device-side sort in the real pipeline.
    """
    seeds = np.asarray(seeds, dtype=np.int64)
    # one batched walk launch for all seeds (how the real pipeline runs)
    starts = np.repeat(seeds, num_walks)
    walks = random_walks(graph, starts, walk_length, rng)
    all_visited = walks[:, 1:].reshape(seeds.size, -1)

    edge_src, edge_dst, edge_w = [], [], []
    for local in range(seeds.size):
        visited = all_visited[local]
        visited = visited[visited != seeds[local]]
        if visited.size == 0:
            continue
        # unique == bincount + nonzero (ascending nodes, same counts) but
        # touches only the ~num_walks*walk_length visited entries instead of
        # allocating a num_nodes-long count array per seed
        nodes, counts = np.unique(visited, return_counts=True)
        weights = counts.astype(np.float32)
        order = np.argsort(-weights, kind="stable")[:top_t]
        keep = nodes[order]
        w = weights[order]
        edge_src.append(keep)
        edge_dst.append(np.full(keep.size, local, dtype=np.int64))
        edge_w.append(w / w.sum())
    # Device-side visit-count ranking: ONE segmented sort over every walk's
    # visited nodes (keyed by (seed, node) 64-bit pairs), as DGL batches it.
    sort_ops.launch_sort(device, "radix_sort_visit_counts",
                         int(all_visited.size), 2,
                         keys=all_visited.reshape(-1), key_bits=64)
    picked = np.concatenate(edge_src) if edge_src else np.empty(0, np.int64)
    dst_local = np.concatenate(edge_dst) if edge_dst else np.empty(0, np.int64)
    weights = np.concatenate(edge_w) if edge_w else np.empty(0, np.float32)

    uniq, inverse = sort_ops.unique(
        _on_device(np.concatenate([seeds, picked]), device), return_inverse=True
    )
    seed_pos = inverse[: seeds.size]
    order = np.concatenate([seed_pos, np.setdiff1d(np.arange(uniq.size), seed_pos)])
    rank = np.empty(uniq.size, dtype=np.int64)
    rank[order] = np.arange(uniq.size)
    edge_src_local = rank[inverse[seeds.size :]]
    # CSR construction for the block: sort edges by destination (64-bit
    # (dst, src) pair keys), another device radix sort per block.
    sort_ops.launch_sort(device, "radix_sort_block_edges",
                         int(dst_local.size), 2,
                         keys=dst_local * max(1, int(uniq.size)) + edge_src_local,
                         key_bits=64)
    return SampledBlock(
        src_nodes=uniq[order].astype(np.int64),
        dst_nodes=seeds,
        edge_src=edge_src_local,
        edge_dst=dst_local,
        edge_weight=weights,
    )


class _DeviceArray:
    """Minimal array-with-device wrapper so sort ops emit device kernels."""

    def __init__(self, data: np.ndarray, device) -> None:
        self.data = data
        self.device = device


def _on_device(array: np.ndarray, device):
    return _DeviceArray(array, device) if device is not None else array
