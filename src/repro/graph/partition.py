"""Edge-cut graph partitioning for sharded training.

A :class:`PartitionPlan` assigns every node to exactly one part and records,
per part, the *halo*: the out-of-part in-neighbors whose features must be
fetched (over NVLink, or staged from the host) before the part's owned rows
can be aggregated.  Two partitioners are provided:

``bfs``
    Vectorized BFS over the undirected structure from a seeded start node,
    visit order split into contiguous balanced chunks.  Cheap (a few CSR
    gathers per frontier), locality-aware, and the default for the
    million-node capacity study.

``greedy``
    Streaming LDG-style assignment (Stanton & Kliot): nodes arrive in a
    seeded random order and each joins the part holding most of its already
    placed neighbors, subject to a capacity cap derived from the balance
    factor.  Better cut quality on small graphs, O(nodes) Python loop.

Either initial assignment is then improved by ``refine`` sweeps of
capacity-constrained label propagation: every node scores each part by its
neighbor count there, positive-gain moves are ranked globally (descending
gain, node id as tie-break) and accepted while the destination stays under
the balance cap and the source keeps at least one node.  Each sweep is a
handful of O(edges) numpy passes — no Python loop — which is what makes
the cut quality acceptable on million-node SBM graphs where raw BFS
chunking mixes communities badly.

Determinism: both methods draw from ``np.random.default_rng`` seeded with a
spawn-key-style sequence ``[seed, num_parts, method_id]``, and refinement
is pure sorted-array arithmetic, so the same ``(graph, num_parts, method,
balance, seed, refine)`` always yields a byte-identical assignment array
(pinned by :func:`plan_digest` and the Hypothesis property suite).
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np
import scipy.sparse as sp

from .graph import Graph

#: stable method ids used in the rng spawn key (never renumber)
_METHOD_IDS = {"bfs": 1, "greedy": 2}


@dataclass(frozen=True, eq=False)
class PartitionPlan:
    """An edge-cut partition of a graph plus its quality metrics."""

    num_parts: int
    num_nodes: int
    num_edges: int
    method: str
    balance: float
    seed: int
    #: label-propagation refinement sweeps applied after initial assignment
    refine: int
    #: node -> owning part (int32, length num_nodes)
    assignment: np.ndarray
    #: per part: sorted array of owned node ids
    parts: Tuple[np.ndarray, ...]
    #: per part: sorted array of out-of-part in-neighbors of owned nodes
    halos: Tuple[np.ndarray, ...]
    #: number of edges whose endpoints live in different parts
    edge_cut: int
    #: edge_cut / num_edges
    cut_fraction: float
    #: max part size over the ideal (num_nodes / num_parts)
    achieved_balance: float
    #: (owned + halo replicas) / num_nodes — 1.0 means no replication
    replication_factor: float

    def part_sizes(self) -> list[int]:
        return [int(p.size) for p in self.parts]

    def halo_sizes(self) -> list[int]:
        return [int(h.size) for h in self.halos]

    def describe(self) -> dict:
        """Scalar summary used by shard reports and goldens."""
        return {
            "num_parts": self.num_parts,
            "num_nodes": self.num_nodes,
            "num_edges": self.num_edges,
            "method": self.method,
            "balance": self.balance,
            "seed": self.seed,
            "refine": self.refine,
            "edge_cut": self.edge_cut,
            "cut_fraction": round(self.cut_fraction, 8),
            "achieved_balance": round(self.achieved_balance, 8),
            "replication_factor": round(self.replication_factor, 8),
            "part_sizes": self.part_sizes(),
            "halo_sizes": self.halo_sizes(),
        }


def plan_digest(plan: PartitionPlan) -> str:
    """SHA-256 over the canonical plan bytes (header + assignment array)."""
    h = hashlib.sha256()
    header = (f"{plan.num_parts}|{plan.num_nodes}|{plan.num_edges}|"
              f"{plan.method}|{plan.balance!r}|{plan.seed}|{plan.refine}|")
    h.update(header.encode())
    h.update(np.ascontiguousarray(plan.assignment, dtype=np.int32).tobytes())
    return h.hexdigest()


def partition_graph(graph: Graph, num_parts: int, method: str = "bfs",
                    balance: float = 1.05, seed: int = 0,
                    refine: int = 4) -> PartitionPlan:
    """Partition ``graph`` into ``num_parts`` balanced edge-cut parts."""
    if num_parts < 1:
        raise ValueError("num_parts must be >= 1")
    if graph.num_nodes == 0:
        raise ValueError("cannot partition an empty graph")
    if num_parts > graph.num_nodes:
        raise ValueError(
            f"num_parts={num_parts} exceeds num_nodes={graph.num_nodes}")
    if method not in _METHOD_IDS:
        raise ValueError(f"unknown partition method {method!r}")
    if balance < 1.0:
        raise ValueError("balance factor must be >= 1.0")
    if refine < 0:
        raise ValueError("refine sweep count must be >= 0")
    rng = np.random.default_rng([seed, num_parts, _METHOD_IDS[method]])
    if num_parts == 1:
        assignment = np.zeros(graph.num_nodes, dtype=np.int32)
    else:
        sym = _undirected_csr(graph)
        if method == "bfs":
            assignment = _bfs_assign(sym, num_parts, rng)
        else:
            assignment = _greedy_assign(sym, num_parts, balance, rng)
        if refine > 0:
            cap = int(math.ceil(graph.num_nodes / num_parts * balance))
            assignment = _refine(assignment, sym, num_parts, cap, refine)
    return _build_plan(graph, assignment, num_parts, method, balance, seed,
                       refine)


# -- BFS chunking --------------------------------------------------------------
def _undirected_csr(graph: Graph) -> sp.csr_matrix:
    """Structure-only CSR of A + A^T (edge weights irrelevant for cuts)."""
    adj = graph.csr()
    pattern = sp.csr_matrix(
        (np.ones(adj.nnz, dtype=np.int8), adj.indices, adj.indptr),
        shape=adj.shape)
    sym = pattern + pattern.T
    sym.sort_indices()
    return sym


def _bfs_assign(sym: sp.csr_matrix, num_parts: int,
                rng: np.random.Generator) -> np.ndarray:
    indptr, indices = sym.indptr, sym.indices
    n = sym.shape[0]
    visited = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)
    filled = 0
    start = int(rng.integers(n))
    frontier = np.array([start], dtype=np.int64)
    visited[start] = True
    while filled < n:
        if frontier.size == 0:
            # next unvisited node (lowest id) seeds the next component
            restart = int(np.flatnonzero(~visited)[0])
            visited[restart] = True
            frontier = np.array([restart], dtype=np.int64)
        order[filled:filled + frontier.size] = frontier
        filled += frontier.size
        starts = indptr[frontier]
        counts = indptr[frontier + 1] - starts
        total = int(counts.sum())
        if total == 0:
            frontier = np.empty(0, dtype=np.int64)
            continue
        shift = np.repeat(
            starts - np.concatenate(([0], np.cumsum(counts)[:-1])), counts)
        nbrs = indices[np.arange(total) + shift]
        nbrs = np.unique(nbrs[~visited[nbrs]])
        visited[nbrs] = True
        frontier = nbrs
    # contiguous balanced chunks over the BFS visit order
    base, extra = divmod(n, num_parts)
    sizes = np.full(num_parts, base, dtype=np.int64)
    sizes[:extra] += 1
    bounds = np.concatenate(([0], np.cumsum(sizes)))
    assignment = np.empty(n, dtype=np.int32)
    for p in range(num_parts):
        assignment[order[bounds[p]:bounds[p + 1]]] = p
    return assignment


# -- greedy streaming assignment -----------------------------------------------
def _greedy_assign(sym: sp.csr_matrix, num_parts: int, balance: float,
                   rng: np.random.Generator) -> np.ndarray:
    n = sym.shape[0]
    cap = int(math.ceil(n / num_parts * balance))
    if cap * num_parts < n:  # pragma: no cover - balance >= 1 guarantees room
        raise ValueError("balance factor leaves no room for every node")
    indptr, indices = sym.indptr, sym.indices
    assignment = np.full(n, -1, dtype=np.int32)
    loads = np.zeros(num_parts, dtype=np.int64)
    part_index = np.arange(num_parts)
    for node in rng.permutation(n):
        nbrs = indices[indptr[node]:indptr[node + 1]]
        placed = assignment[nbrs]
        scores = np.bincount(placed[placed >= 0], minlength=num_parts)
        open_parts = loads < cap
        # best score, then least loaded, then lowest part index
        pick = np.lexsort((part_index[open_parts], loads[open_parts],
                           -scores[open_parts]))[0]
        part = int(part_index[open_parts][pick])
        assignment[node] = part
        loads[part] += 1
    return assignment


# -- label-propagation refinement ----------------------------------------------
def _group_rank(groups: np.ndarray) -> np.ndarray:
    """Rank of each element within its group, in the given element order."""
    idx = np.argsort(groups, kind="stable")
    g = groups[idx]
    starts = np.flatnonzero(np.r_[True, g[1:] != g[:-1]])
    lens = np.diff(np.r_[starts, g.size])
    rank = np.empty(g.size, dtype=np.int64)
    rank[idx] = np.arange(g.size) - np.repeat(starts, lens)
    return rank


def _refine(assignment: np.ndarray, sym: sp.csr_matrix, num_parts: int,
            cap: int, sweeps: int) -> np.ndarray:
    """Capacity-constrained label-propagation sweeps over the assignment.

    Each sweep scores every node's parts by undirected neighbor count,
    ranks positive-gain moves globally (descending gain, node id as
    tie-break) and accepts them while the destination stays under ``cap``
    and the source keeps at least one node.  Acceptance uses the pre-sweep
    loads, so a sweep can never push a part past ``cap`` or empty it.
    All steps are O(edges) numpy passes; everything is deterministic.
    """
    n = assignment.size
    indptr, indices = sym.indptr, sym.indices
    u = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
    part = assignment.astype(np.int64)
    arange_n = np.arange(n)
    for _ in range(sweeps):
        counts = np.bincount(u * num_parts + part[indices],
                             minlength=n * num_parts).reshape(n, num_parts)
        best_p = np.argmax(counts, axis=1)
        gain = counts[arange_n, best_p] - counts[arange_n, part]
        cand = np.flatnonzero((gain > 0) & (best_p != part))
        if cand.size == 0:
            break
        order = cand[np.lexsort((cand, -gain[cand]))]
        dest = best_p[order]
        src = part[order]
        loads = np.bincount(part, minlength=num_parts)
        room = np.maximum(cap - loads, 0)
        spare = np.maximum(loads - 1, 0)
        accept = ((_group_rank(dest) < room[dest])
                  & (_group_rank(src) < spare[src]))
        if not accept.any():
            break
        part[order[accept]] = dest[accept]
    return part.astype(np.int32)


# -- plan assembly -------------------------------------------------------------
def _build_plan(graph: Graph, assignment: np.ndarray, num_parts: int,
                method: str, balance: float, seed: int,
                refine: int = 0) -> PartitionPlan:
    src_part = assignment[graph.src]
    dst_part = assignment[graph.dst]
    cut_mask = src_part != dst_part
    edge_cut = int(cut_mask.sum())
    parts = []
    halos = []
    for p in range(num_parts):
        parts.append(np.flatnonzero(assignment == p).astype(np.int64))
        # in-neighbors of owned nodes that live in another part
        halos.append(np.unique(graph.src[cut_mask & (dst_part == p)]))
    ideal = graph.num_nodes / num_parts
    replicas = sum(p.size for p in parts) + sum(h.size for h in halos)
    return PartitionPlan(
        num_parts=num_parts,
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        method=method,
        balance=float(balance),
        seed=int(seed),
        refine=int(refine),
        assignment=assignment,
        parts=tuple(parts),
        halos=tuple(halos),
        edge_cut=edge_cut,
        cut_fraction=edge_cut / max(1, graph.num_edges),
        achieved_balance=max(p.size for p in parts) / ideal,
        replication_factor=replicas / graph.num_nodes,
    )
