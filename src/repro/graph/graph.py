"""Homogeneous graphs: COO edge lists with cached CSR adjacency views.

The adjacency is exposed as a :class:`~repro.tensor.SparseTensor` in several
normalizations (raw, random-walk, symmetric-GCN), mirroring what DGL/PyG
build once and reuse across training iterations.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

from ..tensor.ops.spmm import SparseTensor


class Graph:
    """An immutable directed graph (use both edge directions for undirected)."""

    def __init__(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        num_nodes: Optional[int] = None,
        edge_weight: Optional[np.ndarray] = None,
    ) -> None:
        self.src = np.asarray(src, dtype=np.int64).reshape(-1)
        self.dst = np.asarray(dst, dtype=np.int64).reshape(-1)
        if self.src.shape != self.dst.shape:
            raise ValueError("src and dst must have the same length")
        if num_nodes is None:
            num_nodes = int(max(self.src.max(initial=-1),
                                self.dst.max(initial=-1)) + 1)
        if self.src.size and (self.src.max() >= num_nodes or self.dst.max() >= num_nodes):
            raise ValueError("edge endpoint out of range")
        self.num_nodes = int(num_nodes)
        self.edge_weight = (
            None if edge_weight is None
            else np.asarray(edge_weight, dtype=np.float32).reshape(-1)
        )
        if self.edge_weight is not None and self.edge_weight.shape != self.src.shape:
            raise ValueError("edge_weight length must match edge count")
        self._adj_cache: dict[tuple[str, bool], SparseTensor] = {}
        self._csr: Optional[sp.csr_matrix] = None

    @property
    def num_edges(self) -> int:
        return int(self.src.size)

    # -- construction helpers ----------------------------------------------
    @classmethod
    def from_scipy(cls, matrix: sp.spmatrix) -> "Graph":
        coo = matrix.tocoo()
        return cls(coo.row, coo.col, num_nodes=coo.shape[0],
                   edge_weight=coo.data.astype(np.float32))

    def to_undirected(self) -> "Graph":
        """Add reverse edges (deduplicated)."""
        pairs = np.stack(
            [np.concatenate([self.src, self.dst]),
             np.concatenate([self.dst, self.src])], axis=1
        )
        pairs = np.unique(pairs, axis=0)
        return Graph(pairs[:, 0], pairs[:, 1], num_nodes=self.num_nodes)

    def add_self_loops(self) -> "Graph":
        loops = np.arange(self.num_nodes, dtype=np.int64)
        has_loop = self.src == self.dst
        keep = ~np.isin(loops, self.src[has_loop])
        src = np.concatenate([self.src, loops[keep]])
        dst = np.concatenate([self.dst, loops[keep]])
        return Graph(src, dst, num_nodes=self.num_nodes)

    # -- structure queries -----------------------------------------------------
    def in_degrees(self) -> np.ndarray:
        return np.bincount(self.dst, minlength=self.num_nodes)

    def out_degrees(self) -> np.ndarray:
        return np.bincount(self.src, minlength=self.num_nodes)

    def csr(self) -> sp.csr_matrix:
        """Row = destination, column = source: ``A @ X`` aggregates in-neighbors."""
        if self._csr is None:
            weights = (
                self.edge_weight
                if self.edge_weight is not None
                else np.ones(self.num_edges, dtype=np.float32)
            )
            self._csr = sp.coo_matrix(
                (weights, (self.dst, self.src)),
                shape=(self.num_nodes, self.num_nodes),
            ).tocsr()
        return self._csr

    def neighbors(self, node: int) -> np.ndarray:
        """In-neighbors of ``node`` (sources of its incoming edges)."""
        csr = self.csr()
        return csr.indices[csr.indptr[node] : csr.indptr[node + 1]]

    def subgraph(self, nodes: np.ndarray) -> tuple["Graph", np.ndarray]:
        """Node-induced subgraph; returns (subgraph, old ids of its nodes)."""
        nodes = np.unique(np.asarray(nodes, dtype=np.int64))
        lookup = -np.ones(self.num_nodes, dtype=np.int64)
        lookup[nodes] = np.arange(nodes.size)
        mask = (lookup[self.src] >= 0) & (lookup[self.dst] >= 0)
        sub = Graph(
            lookup[self.src[mask]],
            lookup[self.dst[mask]],
            num_nodes=nodes.size,
            edge_weight=None if self.edge_weight is None else self.edge_weight[mask],
        )
        return sub, nodes

    # -- adjacency views ----------------------------------------------------------
    def adjacency(self, norm: str = "none", add_self_loops: bool = False,
                  device=None) -> SparseTensor:
        """CSR adjacency as a SparseTensor.

        norm: "none" | "rw" (D^-1 A) | "sym" (D^-1/2 (A+I) D^-1/2 without
        forcing self loops unless requested).
        """
        key = (norm, add_self_loops)
        cached = self._adj_cache.get(key)
        if cached is not None:
            return cached if device is None else cached.to(device)
        graph = self.add_self_loops() if add_self_loops else self
        adj = graph.csr().astype(np.float32)
        if norm == "rw":
            deg = np.maximum(np.asarray(adj.sum(axis=1)).reshape(-1), 1.0)
            adj = sp.diags(1.0 / deg) @ adj
        elif norm == "sym":
            deg = np.maximum(np.asarray(adj.sum(axis=1)).reshape(-1), 1.0)
            dinv = sp.diags(1.0 / np.sqrt(deg))
            adj = dinv @ adj @ dinv
        elif norm != "none":
            raise ValueError(f"unknown normalization {norm!r}")
        result = SparseTensor(adj.tocsr())
        self._adj_cache[key] = result
        return result if device is None else result.to(device)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Graph(nodes={self.num_nodes}, edges={self.num_edges})"
