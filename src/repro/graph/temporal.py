"""Temporal / dynamic graph support.

Two common shapes from the paper's workloads are covered:

* a **static topology with time-varying node signals** (STGCN traffic data):
  :class:`TemporalSignal` slices sliding windows over a (time, nodes,
  channels) array;
* a **sequence of evolving snapshots** (social/communication networks):
  :class:`DynamicGraph` holds per-step :class:`~repro.graph.graph.Graph`
  objects plus optional per-step features.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

import numpy as np

from .graph import Graph


class TemporalSignal:
    """Sliding-window view over node signals on a fixed graph."""

    def __init__(
        self,
        graph: Graph,
        signal: np.ndarray,
        history: int,
        horizon: int,
    ) -> None:
        if signal.ndim == 2:
            signal = signal[:, :, None]
        if signal.shape[1] != graph.num_nodes:
            raise ValueError("signal second axis must equal num_nodes")
        self.graph = graph
        self.signal = signal.astype(np.float32)
        self.history = history
        self.horizon = horizon

    def __len__(self) -> int:
        return max(0, self.signal.shape[0] - self.history - self.horizon + 1)

    def window(self, t: int) -> tuple[np.ndarray, np.ndarray]:
        """(x, y): history window and the value ``horizon`` steps ahead.

        x: (history, nodes, channels); y: (nodes, channels).
        """
        if not 0 <= t < len(self):
            raise IndexError(t)
        x = self.signal[t : t + self.history]
        y = self.signal[t + self.history + self.horizon - 1]
        return x, y

    def batches(self, batch_size: int, rng: Optional[np.random.Generator] = None
                ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """(batch, history, nodes, channels) windows plus targets."""
        order = np.arange(len(self))
        if rng is not None:
            rng.shuffle(order)
        for start in range(0, len(order), batch_size):
            idx = order[start : start + batch_size]
            xs = np.stack([self.window(t)[0] for t in idx])
            ys = np.stack([self.window(t)[1] for t in idx])
            yield xs, ys


@dataclass
class DynamicGraph:
    """A discrete-time dynamic graph: one snapshot per step."""

    snapshots: list[Graph] = field(default_factory=list)
    features: list[np.ndarray] = field(default_factory=list)

    def append(self, graph: Graph, feature: Optional[np.ndarray] = None) -> None:
        self.snapshots.append(graph)
        if feature is not None:
            self.features.append(np.asarray(feature, dtype=np.float32))

    def __len__(self) -> int:
        return len(self.snapshots)

    def __getitem__(self, t: int) -> Graph:
        return self.snapshots[t]

    def node_overlap(self, t0: int, t1: int) -> float:
        """Jaccard overlap of active (non-isolated) nodes between two steps."""
        def active(g: Graph) -> set:
            return set(np.concatenate([g.src, g.dst]).tolist())

        a, b = active(self.snapshots[t0]), active(self.snapshots[t1])
        if not a and not b:
            return 1.0
        return len(a & b) / max(1, len(a | b))
