"""Graph batching: merge many small graphs into one block-diagonal graph.

This is the DGL ``dgl.batch`` mechanism the paper's Tree-LSTM workload is
explicitly included to study: per-sample trees are fused into one graph so
node updates run as large batched kernels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .graph import Graph


@dataclass
class BatchedGraph:
    """A merged graph plus bookkeeping to map nodes back to samples."""

    graph: Graph
    #: node id -> index of the source graph it came from
    graph_ids: np.ndarray
    #: per-graph node offsets into the merged id space (len = num_graphs + 1)
    offsets: np.ndarray

    @property
    def num_graphs(self) -> int:
        return len(self.offsets) - 1

    def nodes_of(self, i: int) -> np.ndarray:
        return np.arange(self.offsets[i], self.offsets[i + 1], dtype=np.int64)


def batch_graphs(graphs: Sequence[Graph]) -> BatchedGraph:
    """Disjoint union of ``graphs`` with shifted node ids."""
    if not graphs:
        raise ValueError("cannot batch zero graphs")
    sizes = np.array([g.num_nodes for g in graphs], dtype=np.int64)
    offsets = np.concatenate([[0], np.cumsum(sizes)])
    srcs, dsts, weights = [], [], []
    any_weights = any(g.edge_weight is not None for g in graphs)
    for g, off in zip(graphs, offsets[:-1]):
        srcs.append(g.src + off)
        dsts.append(g.dst + off)
        if any_weights:
            w = (g.edge_weight if g.edge_weight is not None
                 else np.ones(g.num_edges, dtype=np.float32))
            weights.append(w)
    merged = Graph(
        np.concatenate(srcs) if srcs else np.empty(0, np.int64),
        np.concatenate(dsts) if dsts else np.empty(0, np.int64),
        num_nodes=int(offsets[-1]),
        edge_weight=np.concatenate(weights) if any_weights else None,
    )
    graph_ids = np.repeat(np.arange(len(graphs), dtype=np.int64), sizes)
    return BatchedGraph(graph=merged, graph_ids=graph_ids, offsets=offsets)


def unbatch(batched: BatchedGraph) -> list[Graph]:
    """Split a batched graph back into its component graphs."""
    out = []
    for i in range(batched.num_graphs):
        lo, hi = batched.offsets[i], batched.offsets[i + 1]
        mask = (batched.graph.src >= lo) & (batched.graph.src < hi)
        src = batched.graph.src[mask] - lo
        dst = batched.graph.dst[mask] - lo
        weight = (batched.graph.edge_weight[mask]
                  if batched.graph.edge_weight is not None else None)
        out.append(Graph(src, dst, num_nodes=int(hi - lo), edge_weight=weight))
    return out
