"""Heterogeneous graphs: typed nodes and typed edges (the DGL heterograph
analogue), used by the PinSAGE recommendation workload."""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np
import scipy.sparse as sp

from ..tensor.ops.spmm import SparseTensor
from .graph import Graph

#: canonical edge type: (source node type, relation name, dest node type)
EdgeType = tuple[str, str, str]


class HeteroGraph:
    def __init__(
        self,
        num_nodes: dict[str, int],
        edges: dict[EdgeType, tuple[np.ndarray, np.ndarray]],
    ) -> None:
        self.num_nodes_per_type = dict(num_nodes)
        self.edges: dict[EdgeType, tuple[np.ndarray, np.ndarray]] = {}
        for etype, (src, dst) in edges.items():
            stype, _, dtype = etype
            if stype not in num_nodes or dtype not in num_nodes:
                raise KeyError(f"edge type {etype} references unknown node type")
            src = np.asarray(src, dtype=np.int64).reshape(-1)
            dst = np.asarray(dst, dtype=np.int64).reshape(-1)
            if src.size and src.max() >= num_nodes[stype]:
                raise ValueError(f"{etype}: src id out of range")
            if dst.size and dst.max() >= num_nodes[dtype]:
                raise ValueError(f"{etype}: dst id out of range")
            self.edges[etype] = (src, dst)
        self._adj_cache: dict[EdgeType, SparseTensor] = {}

    @property
    def node_types(self) -> list[str]:
        return list(self.num_nodes_per_type)

    @property
    def edge_types(self) -> list[EdgeType]:
        return list(self.edges)

    def num_nodes(self, ntype: str) -> int:
        return self.num_nodes_per_type[ntype]

    def num_edges(self, etype: EdgeType) -> int:
        return int(self.edges[etype][0].size)

    def edge_endpoints(self, etype: EdgeType) -> tuple[np.ndarray, np.ndarray]:
        return self.edges[etype]

    def adjacency(self, etype: EdgeType, norm: str = "none") -> SparseTensor:
        """dst-by-src adjacency of one edge type (rows aggregate in-edges)."""
        cached = self._adj_cache.get((etype, norm))
        if cached is not None:
            return cached
        stype, _, dtype = etype
        src, dst = self.edges[etype]
        adj = sp.coo_matrix(
            (np.ones(src.size, dtype=np.float32), (dst, src)),
            shape=(self.num_nodes_per_type[dtype], self.num_nodes_per_type[stype]),
        ).tocsr()
        if norm == "rw":
            deg = np.maximum(np.asarray(adj.sum(axis=1)).reshape(-1), 1.0)
            adj = sp.diags(1.0 / deg) @ adj
        result = SparseTensor(adj.tocsr())
        self._adj_cache[(etype, norm)] = result
        return result

    def bipartite_projection(self, via: EdgeType, back: EdgeType) -> Graph:
        """Homogeneous item-item graph through two-hop metapaths.

        PinSAGE trains on the item side of a user-item graph; neighbors are
        items co-interacted by the same users (item -via-> user -back-> item).
        """
        a = self.adjacency(via).scipy()
        b = self.adjacency(back).scipy()
        two_hop = (b @ a).tocoo()
        mask = two_hop.row != two_hop.col
        return Graph(
            two_hop.col[mask],
            two_hop.row[mask],
            num_nodes=b.shape[0],
            edge_weight=two_hop.data[mask],
        )

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"HeteroGraph(nodes={self.num_nodes_per_type}, "
            f"edge_types={len(self.edges)})"
        )
