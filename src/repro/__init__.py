"""GNNMark reproduction: a benchmark suite to characterize GNN training on
(simulated) GPUs.

Subpackages:

* :mod:`repro.core`      — the suite: workload registry, characterization, API
* :mod:`repro.tensor`    — numpy-backed DL framework emitting simulated kernels
* :mod:`repro.gpu`       — analytical V100 model (timing, caches, stalls, NVLink)
* :mod:`repro.graph`     — graph library (homo/hetero/temporal, batching, sampling)
* :mod:`repro.datasets`  — synthetic equivalents of the paper's datasets
* :mod:`repro.models`    — the eight workload models of Table I
* :mod:`repro.train`     — trainer + DistributedDataParallel simulation
* :mod:`repro.profiling` — nvprof/NVBit/sparsity instrumentation + reports
"""

from .core import GNNMark, profile_suite, profile_workload
from .gpu import SimulatedGPU
from .tensor import Tensor, manual_seed

__version__ = "0.1.0"

__all__ = [
    "GNNMark",
    "SimulatedGPU",
    "Tensor",
    "__version__",
    "manual_seed",
    "profile_suite",
    "profile_workload",
]
