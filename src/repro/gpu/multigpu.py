"""Multi-GPU system model: devices connected by NVLink, ring allreduce.

Models the paper's 4xV100 AWS node (NVLink 2.0, six links, 300 GB/s
aggregate).  The only collective GNNMark's multi-GPU implementations need is
the gradient allreduce performed by PyTorch DistributedDataParallel, which
NCCL implements as a ring: each of the N devices sends/receives
``2 * (N - 1) / N`` of the buffer, pipelined over gradient buckets.
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import DEFAULT_SIMULATION, SimulationConfig
from .device import SimulatedGPU


@dataclass
class AllReduceCost:
    nbytes: int
    num_buckets: int
    duration_s: float


@dataclass
class HaloExchangeCost:
    """Cost of one halo-feature gather across all devices.

    ``recv_bytes`` is the per-device receive volume (halo features pulled
    from peers); the collective completes when the heaviest receiver is
    done, so the duration is set by ``max(recv_bytes)`` over the aggregate
    NVLink bandwidth plus one link latency.
    """

    recv_bytes: tuple[int, ...]
    total_bytes: int
    duration_s: float


class MultiGPUSystem:
    """N simulated GPUs with an NVLink-style all-to-all interconnect."""

    #: DDP default gradient bucket size (25 MB, PyTorch's default).
    BUCKET_BYTES = 25 * 1024 * 1024

    def __init__(
        self, num_devices: int, sim: SimulationConfig | None = None
    ) -> None:
        if num_devices < 1:
            raise ValueError("need at least one device")
        self.sim = sim or DEFAULT_SIMULATION
        self.devices = [
            SimulatedGPU(self.sim, device_id=i) for i in range(num_devices)
        ]

    def __len__(self) -> int:
        return len(self.devices)

    def __getitem__(self, idx: int) -> SimulatedGPU:
        return self.devices[idx]

    def allreduce_cost(self, nbytes: int) -> AllReduceCost:
        """Time for a ring allreduce of ``nbytes`` across all devices."""
        n = len(self.devices)
        link = self.sim.link
        num_buckets = max(1, -(-nbytes // self.BUCKET_BYTES))
        if n == 1:
            return AllReduceCost(nbytes, num_buckets, 0.0)
        # Each device pushes 2*(N-1)/N of the data over its links; a single
        # ring uses one link per direction, but NCCL builds num_links rings.
        wire_bytes = 2.0 * (n - 1) / n * nbytes
        bandwidth = link.aggregate_bandwidth_bytes_per_s
        transfer = wire_bytes / bandwidth
        # 2*(N-1) pipeline steps per bucket, each paying link latency, plus
        # per-bucket software overhead.
        latency = num_buckets * (
            2 * (n - 1) * link.latency_s + link.allreduce_bucket_overhead_s
        )
        return AllReduceCost(nbytes, num_buckets, transfer + latency)

    def allreduce(self, nbytes: int) -> float:
        """Perform the allreduce: advance every device clock past it.

        Returns the collective's duration.  The collective is synchronizing,
        so all devices first align on the slowest clock.  When a tracer is
        installed (:mod:`repro.profiling.trace`), every device's pid gets one
        span per gradient bucket — the ring pipelines buckets back-to-back,
        so bucket ``i`` occupies ``[barrier + i*d/B, barrier + (i+1)*d/B)``.
        """
        cost = self.allreduce_cost(nbytes)
        barrier = max(dev.clock_s for dev in self.devices)
        if cost.duration_s > 0:
            from ..profiling import trace

            tracer = trace.active()
            if tracer is not None:
                per_bucket = cost.duration_s / cost.num_buckets
                for dev in self.devices:
                    remaining = int(nbytes)
                    for b in range(cost.num_buckets):
                        bucket = min(self.BUCKET_BYTES, remaining)
                        remaining -= bucket
                        tracer.add_span(
                            f"allreduce.bucket{b}", trace.CAT_ALLREDUCE,
                            dev.device_id, "allreduce",
                            barrier + b * per_bucket,
                            barrier + (b + 1) * per_bucket,
                            {"label": "grad_bucket",
                             "nbytes": bucket,
                             "ring_peers": len(self.devices)},
                        )
        for dev in self.devices:
            dev.clock_s = barrier + cost.duration_s
            dev.host_clock_s = dev.clock_s
        return cost.duration_s

    def halo_exchange_cost(self, recv_bytes) -> HaloExchangeCost:
        """Time for an all-to-all halo-feature gather.

        ``recv_bytes`` lists, per device, how many bytes of out-of-part
        neighbor features it must pull from its peers.  Every device
        gathers concurrently over the all-to-all NVLink fabric, so the
        collective lasts as long as the heaviest receiver needs.
        """
        recv = tuple(int(b) for b in recv_bytes)
        if len(recv) != len(self.devices):
            raise ValueError(
                f"expected {len(self.devices)} receive volumes, got {len(recv)}")
        total = sum(recv)
        if len(self.devices) == 1 or max(recv, default=0) == 0:
            return HaloExchangeCost(recv, total, 0.0)
        link = self.sim.link
        duration = link.latency_s + max(recv) / link.aggregate_bandwidth_bytes_per_s
        return HaloExchangeCost(recv, total, duration)

    def halo_exchange(self, recv_bytes, label: str = "halo") -> float:
        """Perform a halo gather: advance every device clock past it.

        Synchronizing like :meth:`allreduce` — no device can aggregate
        until its halo features have landed, and senders must stay until
        peers have pulled from them.  When a tracer is installed each
        device's pid gets one span on the ``halo`` stream annotated with
        its receive volume.
        """
        cost = self.halo_exchange_cost(recv_bytes)
        barrier = max(dev.clock_s for dev in self.devices)
        if cost.duration_s > 0:
            from ..profiling import trace

            tracer = trace.active()
            if tracer is not None:
                for dev, nbytes in zip(self.devices, cost.recv_bytes):
                    tracer.add_span(
                        label, trace.CAT_HALO, dev.device_id, "halo",
                        barrier, barrier + cost.duration_s,
                        {"label": label,
                         "recv_bytes": nbytes,
                         "total_bytes": cost.total_bytes,
                         "peers": len(self.devices)},
                    )
        for dev in self.devices:
            dev.clock_s = barrier + cost.duration_s
            dev.host_clock_s = dev.clock_s
        return cost.duration_s

    def barrier(self) -> float:
        """Synchronize all device clocks; returns the aligned time."""
        now = max(dev.clock_s for dev in self.devices)
        for dev in self.devices:
            dev.clock_s = now
            dev.host_clock_s = now
        return now

    def elapsed_s(self) -> float:
        return max(dev.clock_s for dev in self.devices)

    def reset(self) -> None:
        for dev in self.devices:
            dev.reset()
