"""Content-addressed memoization of the launch-analysis pipeline.

Every simulated kernel launch runs ``caches.analyze`` → ``timing.analyze`` →
``stalls.attribute``.  All three are *pure functions* of the kernel
descriptor and the simulation config — they read thread geometry,
instruction/byte counts, the access-pattern index sample, and calibration
constants, never the clock, the launch history, or any other device state.
GNN training re-emits identical descriptors over the same adjacency indices
every layer and every epoch, so the steady-state launch path collapses to a
dict lookup: the :class:`AnalysisCache` keys the
``(MemoryMetrics, TimingResult, StallBreakdown)`` triple by a descriptor
*signature* — every analysis-relevant descriptor field plus the access
pattern's content fingerprint (for irregular streams, a hash of the sampled
index bytes).

The descriptor's ``name`` and ``phase`` are deliberately **absent** from the
signature: the analysis pipeline never reads them, so e.g. a forward gather
and the structurally identical backward gather share one record.  Because
the memoized functions are pure, caching cannot change any emitted metric —
the golden kernel-stream digests are byte-identical with the cache on or
off, which ``tests/test_analysis_cache.py`` asserts for every workload.

Caches are held per :class:`SimulationConfig` *object* (config dataclasses
are frozen, so an object's calibration can never drift under its cache) and
evicted when the config is garbage collected.  Set ``REPRO_ANALYSIS_CACHE=0``
to bypass every memoization layer — this module, the per-pattern divergence
cache, and the ``irregular_row_access`` expansion cache — and run the
original cold pipeline on every launch.
"""

from __future__ import annotations

import os
import weakref
from dataclasses import dataclass
from typing import Callable, Optional

from . import caches, stalls, timing
from .config import SimulationConfig
from .kernel import KernelDescriptor, MemoryMetrics, StallBreakdown

_FALSEY = ("0", "false", "off", "no")
#: the ``REPRO_ANALYSIS_CACHE`` escape hatch, read once at import: the flag
#: is a process-level switch, and :func:`enabled` sits on the per-launch
#: hot path where an environment lookup is measurable.
_ENV_DEFAULT = os.environ.get("REPRO_ANALYSIS_CACHE", "1").lower() not in _FALSEY


@dataclass(frozen=True)
class AnalysisRecord:
    """The immutable analysis triple shared by identical launches."""

    memory: MemoryMetrics
    timing: "object"  # TimingResult; typed loosely to avoid an import cycle
    stalls: StallBreakdown


def compute(desc: KernelDescriptor, sim: SimulationConfig) -> AnalysisRecord:
    """Run the full (cold) analysis pipeline for one descriptor."""
    mem = caches.analyze(desc, sim)
    tim = timing.analyze(desc, mem, sim)
    stall = stalls.attribute(desc, mem, tim, sim)
    return AnalysisRecord(memory=mem, timing=tim, stalls=stall)


def signature(desc: KernelDescriptor, sim: SimulationConfig) -> tuple:
    """Hashable identity of a descriptor under the analysis pipeline.

    Exactly the fields ``caches``/``timing``/``stalls`` read; ``name`` and
    ``phase`` are excluded because no model consumes them.
    """
    return (
        desc.op_class,
        desc.threads,
        desc.block_size,
        desc.fp32_flops,
        desc.int32_iops,
        desc.ldst_instrs,
        desc.control_instrs,
        desc.bytes_read,
        desc.bytes_written,
        desc.working_set_bytes,
        desc.reuse_factor,
        desc.compute_scale,
        desc.access.fingerprint(sim.divergence_sample),
    )


class AnalysisCache:
    """Signature → :class:`AnalysisRecord` map with hit/miss counters."""

    __slots__ = ("records", "hits", "misses")

    def __init__(self) -> None:
        self.records: dict[tuple, AnalysisRecord] = {}
        self.hits = 0
        self.misses = 0

    def analyze(self, desc: KernelDescriptor,
                sim: SimulationConfig) -> tuple[AnalysisRecord, bool]:
        sig = signature(desc, sim)
        record = self.records.get(sig)
        if record is not None:
            self.hits += 1
            return record, True
        record = compute(desc, sim)
        self.records[sig] = record
        self.misses += 1
        return record, False

    def __len__(self) -> int:
        return len(self.records)


#: live caches keyed by ``id(sim)``; a finalizer evicts the slot when the
#: config dies, so configs created per-experiment don't leak records.
_CACHES: dict[int, AnalysisCache] = {}
#: extra invalidation hooks run by :func:`clear` (the tensor layer registers
#: its ``irregular_row_access`` memo here without a reverse import).
_CLEAR_HOOKS: list[Callable[[], None]] = []
#: hooks fired when the *effective* enabled() flag flips (the device layer
#: resets its per-device hit/miss telemetry there: counters sampled under
#: one discipline must not bleed into runs under the other).
_TOGGLE_HOOKS: list[Callable[[bool], None]] = []
#: test/bench override: ``True``/``False`` force the flag, ``None`` defers
#: to the ``REPRO_ANALYSIS_CACHE`` environment variable (default on).
_FORCED: Optional[bool] = None


def enabled() -> bool:
    """Is launch-analysis memoization active for this process?"""
    if _FORCED is not None:
        return _FORCED
    return _ENV_DEFAULT


def set_enabled(value: Optional[bool]) -> None:
    """Force the cache on/off (``None`` restores the environment default).

    When the *effective* setting actually flips — forcing the current value
    again is a no-op — every :func:`register_toggle_hook` callback fires
    with the new setting.  ``override`` blocks go through here on both
    enter and exit, so mid-process toggling always resets per-device
    hit/miss counters.
    """
    global _FORCED
    before = enabled()
    _FORCED = value
    after = enabled()
    if after != before:
        for hook in _TOGGLE_HOOKS:
            hook(after)


def register_toggle_hook(hook: Callable[[bool], None]) -> None:
    """Register a callback for effective enabled() flips."""
    if hook not in _TOGGLE_HOOKS:
        _TOGGLE_HOOKS.append(hook)


class override:
    """Context manager forcing the cache on or off within a block."""

    def __init__(self, value: Optional[bool]) -> None:
        self.value = value
        self._saved: Optional[bool] = None

    def __enter__(self) -> "override":
        self._saved = _FORCED
        set_enabled(self.value)
        return self

    def __exit__(self, *exc) -> None:
        set_enabled(self._saved)


def cache_for(sim: SimulationConfig) -> AnalysisCache:
    """The (possibly fresh) cache attached to this simulation config."""
    key = id(sim)
    cache = _CACHES.get(key)
    if cache is None:
        cache = AnalysisCache()
        _CACHES[key] = cache
        try:
            weakref.finalize(sim, _CACHES.pop, key, None)
        except TypeError:  # pragma: no cover - un-weakref-able config
            pass
    return cache


def analyze(desc: KernelDescriptor,
            sim: SimulationConfig) -> tuple[AnalysisRecord, bool]:
    """Memoized analysis of one launch: ``(record, was_cache_hit)``."""
    if not enabled():
        return compute(desc, sim), False
    return cache_for(sim).analyze(desc, sim)


def register_clear_hook(hook: Callable[[], None]) -> None:
    """Register an extra invalidation callback for :func:`clear`."""
    if hook not in _CLEAR_HOOKS:
        _CLEAR_HOOKS.append(hook)


def clear() -> None:
    """Drop every memoized record (benchmark/test hygiene)."""
    for cache in _CACHES.values():
        cache.records.clear()
        cache.hits = 0
        cache.misses = 0
    for hook in _CLEAR_HOOKS:
        hook()


def stats() -> dict[str, int]:
    """Aggregate hit/miss/size counters across all live caches."""
    return {
        "hits": sum(c.hits for c in _CACHES.values()),
        "misses": sum(c.misses for c in _CACHES.values()),
        "records": sum(len(c) for c in _CACHES.values()),
    }
