"""The simulated GPU device.

A :class:`SimulatedGPU` keeps a simulated clock.  The tensor framework calls
:meth:`launch` for every kernel an operation would run on real hardware; the
device runs the analytical cache/timing/stall models and advances the clock
by the kernel duration plus launch overhead.  Host<->device copies go through
:meth:`h2d` / :meth:`d2h`, which measure the value sparsity of the actual
buffer — the paper's transfer-sparsity instrumentation.

Profilers subscribe as listeners; the device itself only keeps aggregate
counters so that arbitrarily long training runs stay cheap.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from . import analysis_cache, memory, timing
from .config import DEFAULT_SIMULATION, SimulationConfig
from .kernel import KernelDescriptor, KernelLaunch, TransferRecord

LaunchListener = Callable[[KernelLaunch], None]
TransferListener = Callable[[TransferRecord], None]

#: live devices, tracked weakly so ``analysis_cache.clear()`` can flush every
#: per-device launch-site memo without pinning retired devices in memory.
_DEVICES: "weakref.WeakSet[SimulatedGPU]" = weakref.WeakSet()


def _clear_site_caches() -> None:
    for dev in _DEVICES:
        dev.site_records.clear()


def _reset_analysis_counters(_enabled: bool) -> None:
    # hit/miss ratios sampled under one caching discipline are meaningless
    # once the effective setting flips; start every regime from zero.
    for dev in _DEVICES:
        dev.stats.analysis_hits = 0
        dev.stats.analysis_misses = 0


analysis_cache.register_clear_hook(_clear_site_caches)
analysis_cache.register_toggle_hook(_reset_analysis_counters)


@dataclass
class DeviceStats:
    """Aggregate counters maintained by the device itself."""

    kernel_count: int = 0
    kernel_time_s: float = 0.0
    launch_overhead_s: float = 0.0
    transfer_count: int = 0
    transfer_time_s: float = 0.0
    h2d_bytes: int = 0
    d2h_bytes: int = 0
    fp32_flops: float = 0.0
    int32_iops: float = 0.0
    #: launches whose analysis triple was replayed from the memoized
    #: launch-analysis cache vs. computed cold (repro.gpu.analysis_cache).
    analysis_hits: int = 0
    analysis_misses: int = 0

    def reset(self) -> None:
        self.kernel_count = 0
        self.kernel_time_s = 0.0
        self.launch_overhead_s = 0.0
        self.transfer_count = 0
        self.transfer_time_s = 0.0
        self.h2d_bytes = 0
        self.d2h_bytes = 0
        self.fp32_flops = 0.0
        self.int32_iops = 0.0
        self.analysis_hits = 0
        self.analysis_misses = 0


class SimulatedGPU:
    """An analytical model of one GPU (default: NVIDIA V100)."""

    def __init__(
        self,
        sim: SimulationConfig | None = None,
        device_id: int = 0,
        name: Optional[str] = None,
    ) -> None:
        self.sim = sim or DEFAULT_SIMULATION
        self.device_id = device_id
        self.name = name or f"cuda:{device_id}"
        self.clock_s = 0.0
        #: host-side enqueue clock: CUDA launches are asynchronous, so the
        #: CPU runs ahead of the GPU; a kernel can start no earlier than its
        #: enqueue completes.  Launch overhead therefore only opens real GPU
        #: gaps when kernels are shorter than the enqueue rate — the effect
        #: that starves many-tiny-kernel workloads (Tree-LSTM) while large
        #: kernels absorb it entirely.
        self.host_clock_s = 0.0
        self.stats = DeviceStats()
        #: this config's launch-analysis memo, resolved once — the launch
        #: hot path must not pay a registry lookup per kernel
        self._analysis = analysis_cache.cache_for(self.sim)
        #: launch-site memo: full (descriptor, analysis record) pairs keyed
        #: by the emitting site's raw arguments (see ops.base.launch), letting
        #: repeat launches skip descriptor construction entirely
        self.site_records: dict[tuple, tuple] = {}
        #: simulated HBM occupancy (repro.gpu.memory); passive until a
        #: DeviceMemoryTracker drives it — never touched on the launch path
        self.memory = memory.MemoryPool(self.sim.device.dram_size_bytes)
        self._launch_listeners: list[LaunchListener] = []
        self._transfer_listeners: list[TransferListener] = []
        self._launch_counter = 0
        _DEVICES.add(self)

    # -- listener management -------------------------------------------------
    def add_launch_listener(self, listener: LaunchListener) -> None:
        self._launch_listeners.append(listener)

    def remove_launch_listener(self, listener: LaunchListener) -> None:
        self._launch_listeners.remove(listener)

    def add_transfer_listener(self, listener: TransferListener) -> None:
        self._transfer_listeners.append(listener)

    def remove_transfer_listener(self, listener: TransferListener) -> None:
        self._transfer_listeners.remove(listener)

    # -- execution ------------------------------------------------------------
    def launch(self, desc: KernelDescriptor) -> KernelLaunch:
        """Simulate one kernel launch and advance the device clock.

        The cache/timing/stall analysis is memoized per descriptor signature
        (:mod:`repro.gpu.analysis_cache`): repeated launches of an identical
        descriptor — every layer and epoch of GNN training re-emits them over
        the same adjacency — degrade to a dict lookup plus clock arithmetic.
        """
        if analysis_cache.enabled():
            record, hit = self._analysis.analyze(desc, self.sim)
        else:
            record, hit = analysis_cache.compute(desc, self.sim), False
        return self._finish_launch(desc, record, hit)

    def launch_fast(self, desc: KernelDescriptor) -> Optional[KernelLaunch]:
        """:meth:`launch` for the tensor-ops hot path.

        Identical clock/stat effects, but analysis-cache hits go through
        :meth:`replay`, which skips the :class:`KernelLaunch` envelope when
        no profiler is listening and returns ``None``.  :meth:`launch` keeps
        the always-return-a-launch contract for direct callers.
        """
        if analysis_cache.enabled():
            record, hit = self._analysis.analyze(desc, self.sim)
            if hit:
                return self.replay(desc, record)
        else:
            record, hit = analysis_cache.compute(desc, self.sim), False
        return self._finish_launch(desc, record, hit)

    def launch_analyzed(
        self, desc: KernelDescriptor
    ) -> tuple["analysis_cache.AnalysisRecord", Optional[KernelLaunch]]:
        """:meth:`launch` that also hands back the analysis record.

        The miss path of the launch-site memo (``ops.base.launch``) uses this
        to capture the record it will replay on subsequent hits without a
        second cache probe.
        """
        if analysis_cache.enabled():
            record, hit = self._analysis.analyze(desc, self.sim)
        else:
            record, hit = analysis_cache.compute(desc, self.sim), False
        return record, self._finish_launch(desc, record, hit)

    def replay(self, desc: KernelDescriptor, record) -> Optional[KernelLaunch]:
        """Re-issue a memoized launch: clock arithmetic plus counters only.

        Byte-identical to :meth:`launch` of the same descriptor — the record
        was produced from exactly this descriptor, and the clock/stat updates
        below mirror :meth:`_finish_launch` — but skips rebuilding the
        :class:`KernelLaunch` envelope unless a profiler is listening.
        """
        tim = record.timing
        self.host_clock_s += self.sim.device.kernel_launch_overhead_s
        clock = self.clock_s
        start = self.host_clock_s if self.host_clock_s > clock else clock
        self.clock_s = start + tim.duration_s
        launch_id = self._launch_counter
        self._launch_counter = launch_id + 1

        stats = self.stats
        stats.kernel_count += 1
        stats.kernel_time_s += tim.duration_s
        stats.launch_overhead_s += start - clock
        stats.fp32_flops += desc.fp32_flops
        stats.int32_iops += desc.int32_iops
        stats.analysis_hits += 1

        if not self._launch_listeners:
            return None
        launch = KernelLaunch(
            descriptor=desc,
            launch_id=launch_id,
            device_id=self.device_id,
            cycles=tim.cycles,
            duration_s=tim.duration_s,
            start_s=start,
            instructions=tim.instructions,
            fp32_instrs=tim.fp32_instrs,
            int32_instrs=tim.int32_instrs,
            ipc=tim.ipc,
            occupancy=tim.occupancy,
            memory=record.memory,
            stalls=record.stalls,
        )
        for listener in self._launch_listeners:
            listener(launch)
        return launch

    def _finish_launch(self, desc: KernelDescriptor, record, hit: bool) -> KernelLaunch:
        mem = record.memory
        tim = record.timing
        stall = record.stalls

        self.host_clock_s += self.sim.device.kernel_launch_overhead_s
        start = max(self.clock_s, self.host_clock_s)
        gap = start - self.clock_s
        launch = KernelLaunch(
            descriptor=desc,
            launch_id=self._launch_counter,
            device_id=self.device_id,
            cycles=tim.cycles,
            duration_s=tim.duration_s,
            start_s=start,
            instructions=tim.instructions,
            fp32_instrs=tim.fp32_instrs,
            int32_instrs=tim.int32_instrs,
            ipc=tim.ipc,
            occupancy=tim.occupancy,
            memory=mem,
            stalls=stall,
        )
        self._launch_counter += 1
        self.clock_s = launch.end_s

        self.stats.kernel_count += 1
        self.stats.kernel_time_s += tim.duration_s
        self.stats.launch_overhead_s += gap
        self.stats.fp32_flops += desc.fp32_flops
        self.stats.int32_iops += desc.int32_iops
        if hit:
            self.stats.analysis_hits += 1
        else:
            self.stats.analysis_misses += 1

        for listener in self._launch_listeners:
            listener(launch)
        return launch

    def _transfer(
        self, array: np.ndarray, direction: str, label: str
    ) -> TransferRecord:
        # Unlabelled copies at least say which way they went — "h2d"/"d2h"
        # reads better than "" in traces and memory attributions.
        label = label or direction
        values = np.asarray(array)
        nbytes = int(values.nbytes)
        if values.dtype == np.bool_ or np.issubdtype(values.dtype, np.number):
            num_zeros = int(values.size - np.count_nonzero(values))
        else:
            num_zeros = 0
        wire_bytes = nbytes
        if self.sim.transfer_compression != "none" and direction == "h2d":
            from .compression import compress

            wire_bytes = compress(values, self.sim.transfer_compression).compressed_bytes
        duration = timing.h2d_time(wire_bytes, self.sim)
        # PyTorch-1.5-style pageable copies are synchronous: the host stalls
        # until the copy completes, re-aligning both clocks.
        start = max(self.clock_s, self.host_clock_s)
        record = TransferRecord(
            direction=direction,
            nbytes=nbytes,
            num_values=int(values.size),
            num_zeros=num_zeros,
            label=label,
            start_s=start,
            duration_s=duration,
            device_id=self.device_id,
            wire_bytes=wire_bytes,
        )
        self.clock_s = start + duration
        self.host_clock_s = self.clock_s
        self.stats.transfer_count += 1
        self.stats.transfer_time_s += duration
        if direction == "h2d":
            self.stats.h2d_bytes += nbytes
        else:
            self.stats.d2h_bytes += nbytes
        if direction == "h2d":
            tracker = memory._TRACKER
            if tracker is not None and tracker.device is self:
                tracker.register(values, label=label)
        for listener in self._transfer_listeners:
            listener(record)
        return record

    def h2d(self, array: np.ndarray, label: str = "") -> TransferRecord:
        """Copy a host buffer to the device, measuring value sparsity."""
        return self._transfer(array, "h2d", label)

    def d2h(self, array: np.ndarray, label: str = "") -> TransferRecord:
        """Copy a device buffer back to the host."""
        return self._transfer(array, "d2h", label)

    def transfer_bytes(
        self, nbytes: int, direction: str, label: str = "",
        num_values: int = 0,
    ) -> TransferRecord:
        """Account an *analytic* host<->device copy of ``nbytes``.

        Out-of-core staging (repro.train.sharded) moves partitions far too
        large to materialize as real arrays, so this path charges the PCIe
        cost model with a bare byte count: no payload to measure sparsity
        on, no compression (nothing to compress), and no tracker
        registration — capacity-mode callers drive the memory pool
        directly.  Clock advance, stats and transfer listeners behave
        exactly like :meth:`h2d`/:meth:`d2h`.
        """
        if direction not in ("h2d", "d2h"):
            raise ValueError(f"unknown transfer direction {direction!r}")
        nbytes = int(nbytes)
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        label = label or direction
        duration = timing.h2d_time(nbytes, self.sim)
        start = max(self.clock_s, self.host_clock_s)
        record = TransferRecord(
            direction=direction,
            nbytes=nbytes,
            num_values=int(num_values),
            num_zeros=0,
            label=label,
            start_s=start,
            duration_s=duration,
            device_id=self.device_id,
            wire_bytes=nbytes,
        )
        self.clock_s = start + duration
        self.host_clock_s = self.clock_s
        self.stats.transfer_count += 1
        self.stats.transfer_time_s += duration
        if direction == "h2d":
            self.stats.h2d_bytes += nbytes
        else:
            self.stats.d2h_bytes += nbytes
        for listener in self._transfer_listeners:
            listener(record)
        return record

    # -- clock ---------------------------------------------------------------
    def elapsed_s(self) -> float:
        return self.clock_s

    def reset(self) -> None:
        """Start a fresh measurement run: clocks, counters, and any listener
        or launch-site memo state left behind by earlier instrumentation.

        Every profiler/tracer/recorder in the repo attaches *after* reset,
        so dropping stale listeners here means a detached-in-error tracer
        from a previous run can never skew a later one on a reused device.
        The memory pool is deliberately untouched — its lifecycle belongs to
        :func:`repro.gpu.memory.track`, which may span a reset (allocations
        made during build survive into the measured run).
        """
        self.clock_s = 0.0
        self.host_clock_s = 0.0
        self._launch_counter = 0
        self.stats.reset()
        self._launch_listeners.clear()
        self._transfer_listeners.clear()
        self.site_records.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"SimulatedGPU({self.name}, kernels={self.stats.kernel_count}, "
            f"t={self.clock_s * 1e3:.3f} ms)"
        )
