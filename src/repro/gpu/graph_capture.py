"""Step capture & replay for the simulated GPU ("CUDA Graphs" for the model).

GNNMark's central observation is that GNN training is *launch-dominated*:
thousands of tiny irregular kernels per epoch, not a few large GEMMs.  Our
analytical simulator inherits that pathology — per-launch Python dispatch and
memo probes dominate epoch wall time even at a 96-99% analysis-cache hit rate.
Real frameworks answer this with CUDA Graphs: record the launch sequence of
one step under a static-input discipline, then replay the whole graph with a
single submission.  This module is the simulator's analogue.

The controller runs a four-stage state machine over training epochs:

``warmup``
    Dispatch one epoch normally (populating every cache), then snapshot the
    *steady state*: optimizer-held parameters and state arrays plus the
    framework-global RNG state (:mod:`repro.tensor.random`).  Restoring that
    snapshot before each subsequent epoch makes training a fixed point — the
    exact static-input discipline CUDA Graphs demands.
``capture``
    Restore, dispatch once more, and record every device side effect in
    order: kernel launches (with their resolved analysis triples), transfers,
    and memory-pool alloc/free events (via :attr:`MemoryPool.tap`).
``validate``
    Restore and dispatch a third epoch under the same recorder; the captured
    plan is only trusted if this epoch is *bit-identical* to the captured one
    (same event sequence, same durations, same analysis metrics, same epoch
    metrics).  Any mismatch permanently falls back to dispatch, recording the
    reason.  The plan's integer stat deltas (kernel/transfer counts,
    analysis hits/misses, transfer bytes) are measured over this epoch — the
    first epoch whose cache behaviour matches all later steady epochs.
``replay``
    All remaining epochs re-apply the plan in a tight loop: pure clock
    arithmetic and batched counter updates, no workload code, no dispatch, no
    descriptor hashing.  Floating-point stat accumulation preserves the
    per-event operation order so replayed epochs are *byte-identical* to
    dispatched ones — the differential suite in ``tests/test_graph_capture``
    enforces this on golden streams, traces and memory snapshots.

An opt-in fusion pass (:func:`fuse_events`) merges runs of adjacent
elementwise launches into one synthetic kernel with summed instruction/byte
counts — the classic elementwise-fusion optimisation, legal only within a
phase, on one device, with no intervening transfer, reduction, or memory
event.  Fused plans intentionally diverge from dispatch (fewer, larger
kernels), so they are snapshotted by their own golden family
(``golden --fused``) rather than the differential suite.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from . import analysis_cache
from .device import SimulatedGPU
from .kernel import AccessKind, KernelDescriptor, KernelLaunch, OpClass, TransferRecord

#: bump when the captured-plan event model changes shape
GRAPH_CAPTURE_VERSION = 1


# -- steady-state input discipline --------------------------------------------


def _optimizers_of(workload) -> list:
    from ..tensor.optim import Optimizer

    return [v for v in vars(workload).values() if isinstance(v, Optimizer)]


class SteadyState:
    """Snapshot/restore of everything an epoch mutates.

    Three pieces make a training epoch a fixed point of the simulation:

    1. parameter tensors (restored in place with ``np.copyto`` — no new
       arrays, hence no tracker registrations and no kernel launches),
    2. optimizer scalar state (step counters) and state arrays (momentum,
       Adam moments), and
    3. the framework-global RNG (dropout masks, negative sampling) — without
       it the kernel *stream* is already epoch-invariant but values drift.
    """

    def __init__(self, workload) -> None:
        self.workload = workload
        self._snapshot: Optional[list] = None
        self._rng_state = None

    def snapshot(self) -> None:
        from ..tensor import random as framework_random

        self._rng_state = framework_random.generator().bit_generator.state
        snap = []
        for opt in _optimizers_of(self.workload):
            params = [np.array(p.data, copy=True) for p in opt.params]
            scalars = {
                k: v for k, v in vars(opt).items()
                if isinstance(v, (bool, int, float))
            }
            arrays = {
                k: [np.array(a, copy=True) for a in v]
                for k, v in vars(opt).items()
                if isinstance(v, list) and v
                and all(isinstance(a, np.ndarray) for a in v)
            }
            snap.append((opt, params, scalars, arrays))
        self._snapshot = snap

    def restore(self) -> None:
        if self._snapshot is None:
            raise RuntimeError("SteadyState.restore() before snapshot()")
        from ..tensor import random as framework_random

        framework_random.generator().bit_generator.state = self._rng_state
        for opt, params, scalars, arrays in self._snapshot:
            for param, saved in zip(opt.params, params):
                np.copyto(param.data, saved)
            vars(opt).update(scalars)
            for key, saved_list in arrays.items():
                for live, saved in zip(getattr(opt, key), saved_list):
                    np.copyto(live, saved)


# -- capture ------------------------------------------------------------------


class _EpochRecorder:
    """Collects every device side effect of one epoch, in call order.

    Events:
      ``("K", KernelLaunch)``          a kernel launch (analysis resolved)
      ``("T", TransferRecord)``        a host<->device copy
      ``("A", nbytes, label, phase)``  a memory-pool allocation
      ``("F", block, requested)``      a memory-pool free

    Pool events arrive via :attr:`MemoryPool.tap` carrying the device clock
    at tap time; :meth:`finish` uses it to normalise event order (see below)
    and then strips it.
    """

    def __init__(self, device: SimulatedGPU) -> None:
        self.device = device
        self.events: list[tuple] = []

    def on_launch(self, launch: KernelLaunch) -> None:
        self.events.append(("K", launch))

    def on_transfer(self, record: TransferRecord) -> None:
        self.events.append(("T", record))

    def on_pool_event(self, event: tuple) -> None:
        # ("A", nbytes, label, phase) / ("F", block, requested) + tap clock
        self.events.append(event + (self.device.clock_s,))

    def __enter__(self) -> "_EpochRecorder":
        dev = self.device
        dev.add_launch_listener(self.on_launch)
        dev.add_transfer_listener(self.on_transfer)
        self._prev_tap = dev.memory.tap
        dev.memory.tap = self.on_pool_event
        return self

    def __exit__(self, *exc) -> None:
        dev = self.device
        dev.remove_launch_listener(self.on_launch)
        dev.remove_transfer_listener(self.on_transfer)
        dev.memory.tap = self._prev_tap

    def finish(self) -> list[tuple]:
        """Normalised event list, ready for :class:`EpochPlan`.

        An h2d transfer registers its buffer with the memory tracker *after*
        advancing the clock but *before* notifying transfer listeners, so its
        pool allocation is recorded ahead of its own transfer event while its
        tracker sample saw the post-transfer clock.  Replay processes events
        strictly in order against a running clock, so such an allocation is
        moved after its transfer (no other pool event can intervene); the
        move is detected exactly, by the tap-time clock matching the
        transfer's end time bit-for-bit.
        """
        out: list[tuple] = []
        pending: Optional[tuple] = None  # pool event awaiting its transfer
        for event in self.events:
            tag = event[0]
            if tag in ("A", "F"):
                if pending is not None:
                    out.append(pending[:-1])
                pending = event
                continue
            if pending is not None:
                if (
                    tag == "T"
                    and pending[-1] == event[1].start_s + event[1].duration_s
                ):
                    out.append(event)
                    out.append(pending[:-1])
                    pending = None
                    continue
                out.append(pending[:-1])
                pending = None
            out.append(event)
        if pending is not None:
            out.append(pending[:-1])
        return out


# -- the captured plan --------------------------------------------------------


@dataclass
class EpochPlan:
    """One steady-state epoch, flattened to a replayable event list."""

    events: list[tuple]
    #: the (identical) metric dict every steady epoch reports
    metrics: dict
    # integer DeviceStats deltas of one epoch, measured over the validation
    # epoch (the first whose analysis-cache behaviour matches later epochs)
    kernel_count: int
    transfer_count: int
    h2d_bytes: int
    d2h_bytes: int
    analysis_hits: int
    analysis_misses: int
    fused: bool = False
    fused_kernels: int = 0
    fused_members: int = 0

    def totals(self) -> dict[str, float]:
        """Summed descriptor-level work of the plan's kernels."""
        totals = {
            "fp32_flops": 0.0, "int32_iops": 0.0, "ldst_instrs": 0.0,
            "control_instrs": 0.0, "bytes_read": 0.0, "bytes_written": 0.0,
        }
        for event in self.events:
            if event[0] != "K":
                continue
            desc = event[1].descriptor
            totals["fp32_flops"] += desc.fp32_flops
            totals["int32_iops"] += desc.int32_iops
            totals["ldst_instrs"] += desc.ldst_instrs
            totals["control_instrs"] += desc.control_instrs
            totals["bytes_read"] += desc.bytes_read
            totals["bytes_written"] += desc.bytes_written
        return totals


# -- validation ---------------------------------------------------------------

_DESC_FIELDS = (
    "name", "op_class", "threads", "fp32_flops", "int32_iops", "ldst_instrs",
    "control_instrs", "bytes_read", "bytes_written", "working_set_bytes",
    "reuse_factor", "block_size", "phase", "compute_scale",
)

_LAUNCH_FIELDS = (
    "device_id", "cycles", "duration_s", "instructions", "fp32_instrs",
    "int32_instrs", "ipc", "occupancy", "memory", "stalls",
)

_TRANSFER_FIELDS = (
    "direction", "nbytes", "num_values", "num_zeros", "label", "duration_s",
    "device_id", "wire_bytes",
)


def _descriptors_equal(a: KernelDescriptor, b: KernelDescriptor) -> bool:
    # Not ``a == b``: irregular access patterns hold numpy index arrays.
    # Equal fingerprints guarantee byte-identical analysis results, which is
    # all a replayed launch exposes.
    if a is not b:
        for name in _DESC_FIELDS:
            if getattr(a, name) != getattr(b, name):
                return False
        if a.access is not b.access and (
            a.access.kind is not b.access.kind
            or a.access.fingerprint() != b.access.fingerprint()
        ):
            return False
    return True


def _events_equal(a: tuple, b: tuple) -> bool:
    """Same side effect, ignoring run position (start_s, launch_id)."""
    if a[0] != b[0]:
        return False
    if a[0] == "K":
        return _descriptors_equal(a[1].descriptor, b[1].descriptor) and all(
            getattr(a[1], name) == getattr(b[1], name)
            for name in _LAUNCH_FIELDS
        )
    if a[0] == "T":
        return all(
            getattr(a[1], name) == getattr(b[1], name)
            for name in _TRANSFER_FIELDS
        )
    return a == b


def validate_events(
    captured: list[tuple], observed: list[tuple]
) -> Optional[str]:
    """``None`` if the two epochs are step-for-step identical, else a reason."""
    if len(captured) != len(observed):
        return (
            f"event count diverged: captured {len(captured)}, "
            f"observed {len(observed)}"
        )
    for index, (a, b) in enumerate(zip(captured, observed)):
        if not _events_equal(a, b):
            return f"event {index} diverged: {a[0]}:{_brief(a)} != {b[0]}:{_brief(b)}"
    return None


def _brief(event: tuple) -> str:
    if event[0] == "K":
        return event[1].descriptor.name
    if event[0] == "T":
        return f"{event[1].direction}:{event[1].label}"
    return repr(event[1:])


# -- replay -------------------------------------------------------------------


def replay_epoch(
    plan: EpochPlan, device: SimulatedGPU, tracker=None
) -> dict:
    """Re-apply one captured epoch: clock arithmetic plus batched counters.

    Bit-identical to dispatching the same epoch: every clock update repeats
    the exact floating-point operation sequence of ``SimulatedGPU.replay`` /
    ``_transfer``, float stat fields accumulate per event in dispatch order
    (into locals, written back once), and integer stat fields — exact under
    addition — are applied as one per-epoch delta.  Launch/transfer envelopes
    are only materialised when a profiler is listening; memory-pool events
    re-drive the pool and the tracker's counter sample exactly as dispatch
    did.  Returns (a copy of) the captured epoch metrics.
    """
    launch_overhead = device.sim.device.kernel_launch_overhead_s
    stats = device.stats
    clock = device.clock_s
    host = device.host_clock_s
    kernel_time = stats.kernel_time_s
    overhead_time = stats.launch_overhead_s
    transfer_time = stats.transfer_time_s
    fp32_flops = stats.fp32_flops
    int32_iops = stats.int32_iops
    launch_id = device._launch_counter
    launch_listeners = device._launch_listeners or None
    transfer_listeners = device._transfer_listeners or None
    pool = device.memory
    sample = tracker._sample if tracker is not None else None

    for event in plan.events:
        tag = event[0]
        if tag == "K":
            launch = event[1]
            host += launch_overhead
            start = host if host > clock else clock
            overhead_time += start - clock
            clock = start + launch.duration_s
            kernel_time += launch.duration_s
            desc = launch.descriptor
            fp32_flops += desc.fp32_flops
            int32_iops += desc.int32_iops
            if launch_listeners is not None:
                out = dataclasses.replace(
                    launch, launch_id=launch_id, start_s=start
                )
                for listener in launch_listeners:
                    listener(out)
            launch_id += 1
        elif tag == "T":
            record = event[1]
            start = clock if clock > host else host
            clock = start + record.duration_s
            host = clock
            transfer_time += record.duration_s
            if transfer_listeners is not None:
                out = dataclasses.replace(record, start_s=start)
                for listener in transfer_listeners:
                    listener(out)
        elif tag == "A":
            device.clock_s = clock  # pool OOM events and tracker samples
            pool.alloc(event[1], label=event[2], phase=event[3])
            if sample is not None:
                sample()
        else:  # "F"
            device.clock_s = clock
            pool.free(event[1], event[2])
            if sample is not None:
                sample()

    device.clock_s = clock
    device.host_clock_s = host
    device._launch_counter = launch_id
    stats.kernel_time_s = kernel_time
    stats.launch_overhead_s = overhead_time
    stats.transfer_time_s = transfer_time
    stats.fp32_flops = fp32_flops
    stats.int32_iops = int32_iops
    stats.kernel_count += plan.kernel_count
    stats.transfer_count += plan.transfer_count
    stats.h2d_bytes += plan.h2d_bytes
    stats.d2h_bytes += plan.d2h_bytes
    stats.analysis_hits += plan.analysis_hits
    stats.analysis_misses += plan.analysis_misses
    return dict(plan.metrics)


# -- elementwise fusion -------------------------------------------------------


def fusible(launch: KernelLaunch) -> bool:
    """May this launch join a fusion run at all?

    Only plain streaming elementwise kernels qualify: coalesced access, no
    cache reuse (reductions carry ``reuse_factor`` 1.5), no shape-dependent
    compute scaling.  Everything else — and every non-kernel event — is a
    fusion barrier.
    """
    desc = launch.descriptor
    return (
        desc.op_class is OpClass.ELEMENTWISE
        and desc.access.kind is AccessKind.COALESCED
        and desc.reuse_factor == 1.0
        and desc.compute_scale == 1.0
    )


def _compatible(head: KernelLaunch, other: KernelLaunch) -> bool:
    """May ``other`` extend a run started by ``head``?"""
    a, b = head.descriptor, other.descriptor
    return (
        head.device_id == other.device_id
        and a.phase == b.phase
        and a.block_size == b.block_size
        and a.access.element_bytes == b.access.element_bytes
    )


def fuse_run(members: list[KernelLaunch], sim) -> KernelLaunch:
    """One synthetic kernel covering a run of adjacent elementwise launches.

    Work is conserved exactly: every instruction and byte count is the sum of
    the members'.  The fused kernel is re-analysed cold through the standard
    pipeline, so its timing/memory/stall triple is what the model predicts
    for the merged launch (fewer launch overheads, same traffic).
    """
    descs = [m.descriptor for m in members]
    head = descs[0]
    desc = KernelDescriptor(
        name=f"fused_elementwise_x{len(descs)}",
        op_class=OpClass.ELEMENTWISE,
        threads=max(d.threads for d in descs),
        fp32_flops=sum(d.fp32_flops for d in descs),
        int32_iops=sum(d.int32_iops for d in descs),
        ldst_instrs=sum(d.ldst_instrs for d in descs),
        control_instrs=sum(d.control_instrs for d in descs),
        bytes_read=sum(d.bytes_read for d in descs),
        bytes_written=sum(d.bytes_written for d in descs),
        working_set_bytes=sum(d.working_set_bytes for d in descs),
        reuse_factor=1.0,
        access=head.access,
        block_size=head.block_size,
        phase=head.phase,
        compute_scale=1.0,
    )
    record = analysis_cache.compute(desc, sim)
    tim = record.timing
    return KernelLaunch(
        descriptor=desc,
        launch_id=-1,
        device_id=members[0].device_id,
        cycles=tim.cycles,
        duration_s=tim.duration_s,
        start_s=0.0,
        instructions=tim.instructions,
        fp32_instrs=tim.fp32_instrs,
        int32_instrs=tim.int32_instrs,
        ipc=tim.ipc,
        occupancy=tim.occupancy,
        memory=record.memory,
        stalls=record.stalls,
    )


def fuse_events(
    events: list[tuple], sim
) -> tuple[list[tuple], list[tuple[KernelLaunch, list[KernelLaunch]]]]:
    """Merge maximal runs of adjacent fusible elementwise launches.

    Returns the rewritten event list and, for every fused kernel, the
    ``(fused_launch, members)`` pair — the property tests reconstruct the
    input from these to prove no fusion crossed a boundary.  Any non-"K"
    event (transfers, pool events, and the synthetic epoch markers the test
    generator emits) is a hard barrier, as is any non-fusible kernel or a
    phase/device/geometry change.
    """
    out: list[tuple] = []
    runs: list[tuple[KernelLaunch, list[KernelLaunch]]] = []
    current: list[KernelLaunch] = []

    def flush() -> None:
        if len(current) >= 2:
            fused = fuse_run(current, sim)
            runs.append((fused, list(current)))
            out.append(("K", fused))
        elif current:
            out.append(("K", current[0]))
        current.clear()

    for event in events:
        if event[0] == "K":
            launch = event[1]
            if fusible(launch):
                if current and not _compatible(current[0], launch):
                    flush()
                current.append(launch)
                continue
            flush()
            out.append(event)
        else:
            flush()
            out.append(event)
    flush()
    return out, runs


def fuse_plan(plan: EpochPlan, sim) -> EpochPlan:
    """Fused variant of a validated plan.

    Replayed fused kernels count as analysis hits (their triple is resolved
    at fusion time, once), so the hit/miss telemetry still reads "everything
    served from the plan".
    """
    events, runs = fuse_events(plan.events, sim)
    kernel_count = sum(1 for event in events if event[0] == "K")
    return EpochPlan(
        events=events,
        metrics=plan.metrics,
        kernel_count=kernel_count,
        transfer_count=plan.transfer_count,
        h2d_bytes=plan.h2d_bytes,
        d2h_bytes=plan.d2h_bytes,
        analysis_hits=kernel_count,
        analysis_misses=0,
        fused=True,
        fused_kernels=len(runs),
        fused_members=sum(len(members) for _, members in runs),
    )


# -- the state machine --------------------------------------------------------


class CaptureReplayController:
    """Drives one workload through warmup -> capture -> validate -> replay.

    With ``replay=False`` the controller only enforces the steady-state input
    discipline (restore + dispatch every epoch) — the dispatch-side baseline
    the differential suite compares replay against.  A validation mismatch
    permanently falls back to that mode, recording ``fallback_reason``.
    """

    def __init__(
        self,
        workload,
        device: SimulatedGPU,
        seed: int = 0,
        replay: bool = True,
        fuse: bool = False,
    ) -> None:
        self.workload = workload
        self.device = device
        self.seed = int(seed)
        self.fuse = bool(fuse)
        self.replay_enabled = bool(replay or fuse)
        self.state = "warmup"
        self.plan: Optional[EpochPlan] = None
        self.fused_plan: Optional[EpochPlan] = None
        self.fallback_reason: Optional[str] = None
        self.replayed_epochs = 0
        self.steady_state = SteadyState(workload)
        self._captured: Optional[tuple[list[tuple], dict]] = None

    def _dispatch(self) -> dict:
        # Every steady epoch restarts the trainer RNG: together with the
        # SteadyState restore this makes the epoch a true fixed point.
        return self.workload.train_epoch(np.random.default_rng(self.seed))

    def _recorded_dispatch(self) -> tuple[dict, list[tuple]]:
        recorder = _EpochRecorder(self.device)
        with recorder:
            metrics = self._dispatch()
        return metrics, recorder.finish()

    def step(self, memtracker=None) -> dict:
        """Run one epoch in whatever mode the state machine is in."""
        state = self.state
        if state == "replay":
            plan = self.fused_plan if self.fused_plan is not None else self.plan
            self.replayed_epochs += 1
            return replay_epoch(plan, self.device, tracker=memtracker)
        if state == "warmup":
            metrics = self._dispatch()
            self.steady_state.snapshot()
            self.state = "capture" if self.replay_enabled else "steady"
            return metrics
        self.steady_state.restore()
        if state in ("steady", "fallback"):
            return self._dispatch()
        if state == "capture":
            metrics, events = self._recorded_dispatch()
            self._captured = (events, metrics)
            self.state = "validate"
            return metrics
        # state == "validate"
        stats = self.device.stats
        before = (
            stats.kernel_count, stats.transfer_count, stats.h2d_bytes,
            stats.d2h_bytes, stats.analysis_hits, stats.analysis_misses,
        )
        metrics, events = self._recorded_dispatch()
        captured_events, captured_metrics = self._captured
        self._captured = None
        reason = validate_events(captured_events, events)
        if reason is None and captured_metrics != metrics:
            reason = (
                f"epoch metrics diverged: {captured_metrics!r} != {metrics!r}"
            )
        if reason is not None:
            self.state = "fallback"
            self.fallback_reason = reason
            return metrics
        self.plan = EpochPlan(
            events=events,
            metrics=dict(metrics),
            kernel_count=stats.kernel_count - before[0],
            transfer_count=stats.transfer_count - before[1],
            h2d_bytes=stats.h2d_bytes - before[2],
            d2h_bytes=stats.d2h_bytes - before[3],
            analysis_hits=stats.analysis_hits - before[4],
            analysis_misses=stats.analysis_misses - before[5],
        )
        if self.fuse:
            self.fused_plan = fuse_plan(self.plan, self.device.sim)
        self.state = "replay"
        return metrics

    def describe(self) -> dict:
        """Picklable status for bench reports and fingerprints."""
        info = {
            "state": self.state,
            "replayed_epochs": self.replayed_epochs,
            "fallback_reason": self.fallback_reason,
        }
        if self.plan is not None:
            info["plan_kernels"] = self.plan.kernel_count
            info["plan_transfers"] = self.plan.transfer_count
        if self.fused_plan is not None:
            info["fused_kernels"] = self.fused_plan.fused_kernels
            info["fused_members"] = self.fused_plan.fused_members
            info["fused_plan_kernels"] = self.fused_plan.kernel_count
        return info
