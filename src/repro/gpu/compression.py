"""Sparsity-aware transfer compression (the paper's Figure-7/8 takeaway).

GNNMark's sparsity study ends with a proposal: exploit the high fraction of
zero values in CPU->GPU transfers with compression so larger graphs fit and
transfers shrink.  The paper's cited mechanism (Rhu et al., "Compressing
DMA Engine") uses zero-value compression in the DMA path.  This module
models that engine so the proposal can be evaluated as an ablation:

* zero-value compression (ZVC): a bitmask (1 bit/value) plus the packed
  non-zero payload — effective for any sparsity level;
* run-length encoding (RLE) over zero runs: wins only at very high
  sparsity, the adaptive-scheme motivation of Figure 8.

The compressor inspects the real buffer, so compressed sizes are measured,
not assumed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class CompressionResult:
    scheme: str
    raw_bytes: int
    compressed_bytes: int

    @property
    def ratio(self) -> float:
        if self.compressed_bytes <= 0:
            return 1.0
        return self.raw_bytes / self.compressed_bytes


def zvc_bytes(values: np.ndarray) -> int:
    """Zero-value compression: 1-bit presence mask + packed non-zeros."""
    values = np.asarray(values)
    mask_bytes = (values.size + 7) // 8
    nonzero = int(np.count_nonzero(values))
    return mask_bytes + nonzero * values.dtype.itemsize


def rle_bytes(values: np.ndarray) -> int:
    """Run-length coding of zero runs: (run-length u16, value) pairs.

    Only competitive on long zero runs; dense data slightly *expands*.
    """
    flat = np.asarray(values).reshape(-1)
    if flat.size == 0:
        return 0
    is_zero = flat == 0
    transitions = int(np.count_nonzero(np.diff(is_zero))) + 1
    nonzero = int(np.count_nonzero(flat))
    # each maximal zero run costs one (u16 count) token; non-zeros stored raw
    zero_runs = (transitions + 1) // 2 if is_zero[0] or is_zero[-1] else transitions // 2
    zero_runs = max(zero_runs, 1 if is_zero.any() else 0)
    return nonzero * flat.dtype.itemsize + zero_runs * 2 + transitions


def compress(values: np.ndarray, scheme: str = "zvc") -> CompressionResult:
    """Measured compressed size of a buffer under the chosen scheme.

    ``scheme="adaptive"`` picks the best of ZVC/RLE per transfer — the
    adaptive behaviour Figure 8's predictable sparsity pattern motivates.
    """
    values = np.asarray(values)
    raw = int(values.nbytes)
    if scheme == "zvc":
        compressed = zvc_bytes(values)
    elif scheme == "rle":
        compressed = rle_bytes(values)
    elif scheme == "adaptive":
        compressed = min(zvc_bytes(values), rle_bytes(values))
    elif scheme == "none":
        compressed = raw
    else:
        raise ValueError(f"unknown compression scheme {scheme!r}")
    # the engine never sends more than the raw buffer (falls back to raw)
    return CompressionResult(scheme, raw, min(compressed, raw))
