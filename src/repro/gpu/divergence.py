"""Warp-level memory-divergence measurement.

This is the simulator's analogue of the paper's NVBit instrumentation: for
irregular operations the tensor framework attaches the *actual* index array
that drives the gather/scatter, and we measure how many distinct 128-byte
cache lines each warp of 32 consecutive threads touches.  A warp load is
*divergent* when it touches more than one line (the paper's definition).

For regular (coalesced / strided) patterns the result is closed form.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .kernel import AccessKind, AccessPattern


@dataclass(frozen=True)
class DivergenceResult:
    """Outcome of inspecting one kernel's dominant access stream.

    Frozen: results for irregular streams are cached on the pattern object
    and shared across launches (SpMM/gather/scatter over the same CSR graph
    re-measure nothing after the first launch).
    """

    #: fraction of warp-level load instructions touching > 1 line.
    divergent_fraction: float
    #: mean distinct 128-byte lines touched per warp load.
    lines_per_warp: float
    #: unique-line footprint of the sampled stream (bytes), scaled back to
    #: the full stream; used by the cache model as a locality signal.
    unique_line_fraction: float


def measure(
    pattern: AccessPattern,
    line_bytes: int = 128,
    warp_size: int = 32,
    sample: int = 4096,
) -> DivergenceResult:
    """Measure divergence for a kernel's dominant access pattern."""
    if pattern.kind is AccessKind.COALESCED:
        elems_per_line = max(1, line_bytes // max(1, pattern.element_bytes))
        lines = max(1.0, warp_size / elems_per_line)
        if lines <= 1.0:
            # A warp's 128 bytes touch one line only when the base address is
            # line-aligned; tensor rows rarely are, so a quarter of warp
            # loads straddle two lines (the paper's divergence definition
            # counts these).
            return DivergenceResult(
                divergent_fraction=0.25, lines_per_warp=1.25,
                unique_line_fraction=1.0,
            )
        return DivergenceResult(
            divergent_fraction=min(1.0, (lines - 1.0) / lines),
            lines_per_warp=lines,
            unique_line_fraction=1.0,
        )
    if pattern.kind is AccessKind.STRIDED:
        stride = max(pattern.stride_bytes, pattern.element_bytes)
        span = stride * warp_size
        lines = min(float(warp_size), max(1.0, span / line_bytes))
        divergent = 0.0 if lines <= 1.0 else 1.0
        return DivergenceResult(divergent, lines, 1.0)
    from . import analysis_cache

    if not analysis_cache.enabled():
        return _measure_irregular(pattern, line_bytes, warp_size, sample,
                                  cache=False)
    # numpy measurement over the sampled stream is the single hottest piece
    # of the analysis pipeline; memoize it on the pattern object so repeated
    # launches over the same index array (same CSR graph, every layer and
    # epoch) measure exactly once.
    store = pattern.__dict__.setdefault("_divergence", {})
    key = (line_bytes, warp_size, sample)
    result = store.get(key)
    if result is None:
        result = _measure_irregular(pattern, line_bytes, warp_size, sample)
        store[key] = result
    return result


def _measure_irregular(
    pattern: AccessPattern, line_bytes: int, warp_size: int, sample: int,
    cache: bool = True,
) -> DivergenceResult:
    indices = pattern.indices
    if indices is None or indices.size == 0:
        # No index stream supplied; assume the pathological case.
        return DivergenceResult(1.0, float(warp_size), 1.0)
    # Deterministic stratified sample: keep whole warps so the per-warp
    # statistics stay meaningful.
    flat = pattern.sampled_indices(sample, cache=cache)
    byte_addr = flat.astype(np.int64, copy=False) * int(pattern.element_bytes)
    lines = byte_addr // line_bytes

    n_full = (lines.size // warp_size) * warp_size
    if n_full == 0:
        unique = float(np.unique(lines).size)
        return DivergenceResult(
            divergent_fraction=1.0 if unique > 1 else 0.0,
            lines_per_warp=max(1.0, unique),
            unique_line_fraction=unique / max(1, lines.size),
        )
    warps = lines[:n_full].reshape(-1, warp_size)
    sorted_warps = np.sort(warps, axis=1)
    distinct = 1 + np.count_nonzero(np.diff(sorted_warps, axis=1), axis=1)
    divergent_fraction = float(np.mean(distinct > 1))
    lines_per_warp = float(np.mean(distinct))
    unique_line_fraction = float(np.unique(lines).size) / float(lines.size)
    return DivergenceResult(divergent_fraction, lines_per_warp, unique_line_fraction)
