"""Analytical L1/L2 cache model.

The model is deliberately simple and calibrated *per operation class* (see
``gpu/config.py``), never per workload: the paper's central cache findings —
single-digit L1 hit rates for GEMM/SpMM/GEMV, sub-15% for the irregular data
movement ops, ~15% suite average at L1 and ~70% at L2 — arise from three
inputs that genuinely differ across kernels:

* the access pattern (divergence measured on real index streams),
* the working-set footprint relative to cache capacity,
* the op-class temporal-reuse behaviour (shared-memory tiling in dense math
  bypasses the L1; streaming ops only get sector-level spatial reuse).
"""

from __future__ import annotations

import math

from . import divergence as divergence_mod
from .config import SimulationConfig
from .kernel import AccessKind, KernelDescriptor, MemoryMetrics


def _fit_fraction(footprint_bytes: float, capacity_bytes: float) -> float:
    """Smoothly interpolate between "fits" (1.0) and "streams" (0.0).

    A footprint at half capacity is a comfortable fit; at 4x capacity there
    is essentially no residency.
    """
    if footprint_bytes <= 0:
        return 1.0
    ratio = capacity_bytes / footprint_bytes
    if ratio >= 2.0:
        return 1.0
    if ratio <= 0.25:
        return 0.0
    # linear in log2(ratio) between 0.25 and 2.0
    return (math.log2(ratio) + 2.0) / 3.0


def precision_byte_scale(desc: KernelDescriptor, sim: SimulationConfig) -> float:
    """Byte-traffic multiplier for reduced-precision training.

    fp16 halves float payloads; integer index traffic (sorts, the index
    side of gathers) is unaffected, so irregular classes scale less.
    """
    if sim.precision != "fp16":
        return 1.0
    name = desc.op_class.value
    if name == "SORT":
        return 1.0
    if name in ("SCATTER", "GATHER", "INDEX_SELECT", "EMBEDDING"):
        return 0.6
    return 0.5


def analyze(desc: KernelDescriptor, sim: SimulationConfig) -> MemoryMetrics:
    """Derive memory-hierarchy metrics for one kernel launch."""
    dev = sim.device
    profile = sim.profile_for(desc.op_class.value)
    byte_scale = precision_byte_scale(desc, sim)
    div = divergence_mod.measure(
        desc.access,
        line_bytes=dev.l1_line_bytes,
        warp_size=dev.warp_size,
        sample=sim.divergence_sample,
    )

    warp_loads = max(1.0, desc.ldst_instrs / dev.warp_size)
    transactions = warp_loads * div.lines_per_warp

    # --- L1 ---------------------------------------------------------------
    # Footprint seen by one SM: blocks are spread across SMs, so each SM sees
    # roughly footprint / active_sms of the data (plus shared structures).
    active_sms = min(dev.num_sms, desc.blocks)
    per_sm_footprint = byte_scale * desc.working_set_bytes / max(1, active_sms)
    l1_fit = _fit_fraction(per_sm_footprint, dev.l1_size_bytes)
    # The V100 L1 is write-through and private per SM: data produced by the
    # previous kernel is never L1-resident, so residency only pays off when
    # the kernel itself re-touches lines (reuse_factor > 1).
    reuse_gate = min(1.0, max(0.0, desc.reuse_factor - 1.0))
    l1_hit = profile.l1_base_hit + (
        profile.l1_resident_hit - profile.l1_base_hit
    ) * l1_fit * reuse_gate

    if desc.access.kind is AccessKind.IRREGULAR:
        # Temporal locality measured from the real index stream: when few
        # unique lines are touched the gather enjoys genuine L1 reuse — but
        # never beyond the class ceiling (gathered rows in full-scale graphs
        # thrash the tiny per-SM cache regardless of index repetition).
        temporal_reuse = 1.0 - div.unique_line_fraction
        ceiling = max(profile.l1_resident_hit, 2.0 * profile.l1_base_hit)
        boosted = profile.l1_base_hit + 0.6 * temporal_reuse * l1_fit_boost(
            per_sm_footprint, dev.l1_size_bytes
        )
        l1_hit = max(l1_hit, min(ceiling, boosted))
        # ...and heavy divergence wastes the cache on partially-used lines.
        l1_hit *= 1.0 - 0.35 * div.divergent_fraction
    l1_hit = min(0.97, max(0.0, l1_hit))

    # Bytes that miss L1 and travel to L2.  Divergent warps move whole lines
    # for partially-used data, inflating traffic beyond the useful bytes.
    line_traffic = transactions * dev.l1_line_bytes
    useful_bytes = byte_scale * desc.total_bytes
    moved_bytes = max(useful_bytes, min(line_traffic, useful_bytes * div.lines_per_warp))
    l2_bytes = moved_bytes * (1.0 - l1_hit)

    # --- L2 ---------------------------------------------------------------
    l2_fit = _fit_fraction(byte_scale * desc.working_set_bytes, dev.l2_size_bytes)
    l2_hit = profile.l2_base_hit + (profile.l2_resident_hit - profile.l2_base_hit) * l2_fit
    if desc.access.kind is AccessKind.IRREGULAR:
        temporal_reuse = 1.0 - div.unique_line_fraction
        l2_hit = max(l2_hit * (1.0 - 0.25 * div.divergent_fraction),
                     min(0.9, l2_hit + 0.3 * temporal_reuse))
    l2_hit = min(0.98, max(0.0, l2_hit))

    dram_bytes = l2_bytes * (1.0 - l2_hit)
    # Streaming writes larger than the L2 cannot be coalesced away: they
    # spill to DRAM no matter what the class's hit floor says.
    write_spill = max(
        0.0, byte_scale * desc.bytes_written - dev.l2_size_bytes / 2
    ) * 0.7
    dram_bytes = max(dram_bytes, min(write_spill, l2_bytes))

    return MemoryMetrics(
        transactions=transactions,
        divergent_load_fraction=div.divergent_fraction,
        lines_per_warp=div.lines_per_warp,
        l1_hit_rate=l1_hit,
        l2_hit_rate=l2_hit,
        l2_bytes=l2_bytes,
        dram_bytes=dram_bytes,
    )


def l1_fit_boost(per_sm_footprint: float, l1_size: float) -> float:
    """Residency boost for measured temporal locality (0..1)."""
    return _fit_fraction(per_sm_footprint, l1_size * 4.0)
