"""Device configuration for the simulated GPU.

The default configuration models an NVIDIA V100 (Volta, SXM2 16 GB), the GPU
used throughout the GNNMark paper: 80 SMs, 14 TFLOPS peak fp32, 128 KB
combined L1/shared-memory per SM, a 6.14 MB shared L2, and 900 GB/s HBM2.

Calibration constants for the analytical cache/stall models live in
:class:`OpClassProfile`.  They are defined once per *operation class* (GEMM,
scatter, sort, ...), never per workload, so differences between workloads in
the reproduced figures are emergent properties of the kernel streams that the
workloads actually launch.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class DeviceConfig:
    """Static hardware parameters of a simulated GPU."""

    name: str = "Tesla V100-SXM2-16GB"
    num_sms: int = 80
    clock_hz: float = 1.38e9
    #: fp32 FMA lanes per SM (each does 2 FLOPs/cycle) -> 14.1 TFLOPS peak.
    fp32_lanes_per_sm: int = 64
    #: dedicated int32 lanes per SM (Volta separates INT32 from FP32).
    int32_lanes_per_sm: int = 64
    #: special-function units per SM (transcendentals).
    sfu_lanes_per_sm: int = 16
    #: warp schedulers per SM; each can issue one instruction per cycle.
    issue_width_per_sm: int = 4
    warp_size: int = 32
    max_warps_per_sm: int = 64

    #: L1 data cache / shared memory, per SM.  128 KB combined on Volta; the
    #: portion acting as hardware-managed data cache.
    l1_size_bytes: int = 128 * 1024
    l1_line_bytes: int = 128
    l1_sector_bytes: int = 32
    #: shared L2: 6.14 MB in the paper's description of the V100.
    l2_size_bytes: int = int(6.14 * 1024 * 1024)
    #: L2 aggregate bandwidth (bytes per clock across the chip).
    l2_bytes_per_cycle: float = 1600.0

    dram_size_bytes: int = 16 * 1024 ** 3
    dram_bandwidth_bytes_per_s: float = 900e9
    dram_latency_cycles: float = 440.0
    l2_latency_cycles: float = 200.0
    l1_latency_cycles: float = 28.0

    #: L0 instruction cache per SM-partition (12 KB on Volta) backed by a
    #: 128 KB L1 instruction cache; drives the instruction-fetch stall model.
    l0_icache_bytes: int = 12 * 1024
    l1_icache_bytes: int = 128 * 1024

    #: fixed host-side cost of launching one kernel (seconds).
    kernel_launch_overhead_s: float = 4.0e-6
    #: host-to-device copy bandwidth over PCIe 3.0 x16 (effective).
    pcie_bandwidth_bytes_per_s: float = 12e9
    pcie_latency_s: float = 10e-6

    @property
    def peak_fp32_flops(self) -> float:
        """Peak single-precision FLOP/s (FMA counted as two FLOPs)."""
        return self.num_sms * self.fp32_lanes_per_sm * 2 * self.clock_hz

    @property
    def peak_int32_iops(self) -> float:
        """Peak int32 operations per second."""
        return self.num_sms * self.int32_lanes_per_sm * self.clock_hz

    @property
    def dram_bytes_per_cycle(self) -> float:
        return self.dram_bandwidth_bytes_per_s / self.clock_hz


@dataclass(frozen=True)
class LinkConfig:
    """Inter-GPU interconnect parameters (NVLink 2.0 as on the paper's node).

    Six links per GPU at 50 GB/s each, 300 GB/s aggregate, matching the AWS
    p3.8xlarge system used for the paper's multi-GPU experiments.
    """

    name: str = "NVLink 2.0 (6 links)"
    num_links: int = 6
    bandwidth_per_link_bytes_per_s: float = 50e9
    latency_s: float = 9e-6
    #: per-bucket software overhead of NCCL-style ring allreduce (seconds).
    allreduce_bucket_overhead_s: float = 35e-6

    @property
    def aggregate_bandwidth_bytes_per_s(self) -> float:
        return self.num_links * self.bandwidth_per_link_bytes_per_s


@dataclass(frozen=True)
class OpClassProfile:
    """Per-operation-class calibration constants for the analytical models.

    Attributes:
        l1_base_hit: L1 hit rate for this class when footprint fits poorly;
            classes that tile through shared memory (GEMM/CONV) bypass the L1
            and show single-digit rates, as the paper reports.
        l1_resident_hit: L1 hit rate when the working set fits in the L1.
        l2_base_hit: L2 hit rate floor for streaming footprints.
        l2_resident_hit: L2 hit rate when the footprint fits in the L2.
        ilp: average independent instructions in flight per thread; low ILP
            raises execution-dependency stalls.
        fma_fraction: fraction of fp32 math issued as fused multiply-add
            (2 FLOPs per instruction).
        code_bytes: static instruction footprint of a typical kernel of this
            class; large unrolled kernels pressure the L0 I-cache.
        mlp: memory-level parallelism — overlapping outstanding loads per
            thread, used by the latency-bound model.
        unit_efficiency: fraction of peak unit throughput the class's
            kernels sustain (prologue/epilogue, bank conflicts, skinny-shape
            pipeline bubbles); dense math never runs at datasheet peak.
    """

    l1_base_hit: float
    l1_resident_hit: float
    l2_base_hit: float
    l2_resident_hit: float
    ilp: float
    fma_fraction: float
    code_bytes: int
    mlp: float = 2.0
    unit_efficiency: float = 1.0


def _profiles() -> dict[str, OpClassProfile]:
    return {
        # Dense math: software-pipelined shared-memory tiles; almost no L1
        # reuse (paper: GEMM/SpMM/GEMV L1 hit < 10%), strong L2 tile reuse.
        "GEMM": OpClassProfile(0.05, 0.10, 0.62, 0.80, 3.5, 0.95, 14 * 1024, 6.0, 0.70),
        "GEMV": OpClassProfile(0.05, 0.09, 0.55, 0.72, 2.5, 0.90, 6 * 1024, 4.0, 0.50),
        "SPMM": OpClassProfile(0.06, 0.10, 0.50, 0.68, 2.0, 0.80, 10 * 1024, 3.0, 0.55),
        "CONV2D": OpClassProfile(0.06, 0.12, 0.62, 0.80, 3.5, 0.95, 18 * 1024, 6.0, 0.22),
        # Streaming elementwise: sector-level spatial reuse only; the V100
        # L1 is write-through, so producer->consumer reuse never hits in L1.
        "ELEMENTWISE": OpClassProfile(0.13, 0.30, 0.42, 0.65, 2.2, 0.45, 7 * 1024, 3.0, 0.95),
        "COPY": OpClassProfile(0.08, 0.22, 0.40, 0.62, 2.5, 0.0, 3 * 1024, 4.0, 0.95),
        # Tree/partial reductions re-touch partial sums.
        "REDUCTION": OpClassProfile(0.11, 0.30, 0.52, 0.70, 1.6, 0.50, 8 * 1024, 2.0, 0.80),
        "SOFTMAX": OpClassProfile(0.12, 0.30, 0.52, 0.70, 1.7, 0.55, 9 * 1024, 2.0, 0.80),
        "BATCHNORM": OpClassProfile(0.12, 0.30, 0.52, 0.70, 1.8, 0.60, 10 * 1024, 2.0, 0.80),
        # Irregular data movement: hit rates largely measured from the real
        # index streams; these are the floors (paper: < 15%).
        "SCATTER": OpClassProfile(0.06, 0.20, 0.45, 0.65, 1.4, 0.20, 6 * 1024, 1.8, 0.85),
        "GATHER": OpClassProfile(0.07, 0.20, 0.48, 0.66, 1.6, 0.20, 6 * 1024, 2.2, 0.90),
        "INDEX_SELECT": OpClassProfile(0.08, 0.22, 0.48, 0.66, 1.6, 0.15, 6 * 1024, 2.2, 0.90),
        "EMBEDDING": OpClassProfile(0.08, 0.22, 0.48, 0.66, 1.6, 0.15, 6 * 1024, 2.2, 0.90),
        # Radix/merge sort passes: heavily unrolled (I-cache pressure),
        # integer dominated, bank-conflicted scatter phases.
        "SORT": OpClassProfile(0.09, 0.20, 0.48, 0.66, 1.5, 0.05, 24 * 1024, 1.6, 0.65),
        "OTHER": OpClassProfile(0.09, 0.25, 0.48, 0.68, 1.8, 0.30, 8 * 1024, 2.0, 0.90),
    }


@dataclass(frozen=True)
class StallModelConfig:
    """Global weights for the stall-attribution model (see gpu/stalls.py)."""

    mem_weight: float = 1.00
    exec_weight: float = 0.88
    ifetch_weight: float = 0.72
    sync_weight: float = 0.05
    pipe_busy_weight: float = 0.06
    not_selected_weight: float = 0.07
    other_weight: float = 0.05


@dataclass(frozen=True)
class SimulationConfig:
    """Bundle of device + model calibration used by a :class:`SimulatedGPU`."""

    device: DeviceConfig = field(default_factory=DeviceConfig)
    link: LinkConfig = field(default_factory=LinkConfig)
    stalls: StallModelConfig = field(default_factory=StallModelConfig)
    profiles: dict[str, OpClassProfile] = field(default_factory=_profiles)
    #: cap on how many irregular indices are inspected per launch when
    #: measuring divergence/locality (keeps simulation O(1) per kernel).
    divergence_sample: int = 4096
    #: "fp32" (default) or "fp16": half-precision training (the paper's
    #: future-work item) halves float traffic/footprints and doubles fp
    #: unit throughput on Volta.
    precision: str = "fp32"
    #: H2D transfer compression scheme exploiting measured value sparsity
    #: (the paper's Figure-7 proposal): "none", "zvc", "rle" or "adaptive".
    transfer_compression: str = "none"

    def profile_for(self, op_class_name: str) -> OpClassProfile:
        return self.profiles.get(op_class_name, self.profiles["OTHER"])


V100 = DeviceConfig()
NVLINK2 = LinkConfig()
DEFAULT_SIMULATION = SimulationConfig()
