"""Simulated HBM occupancy: a caching device allocator plus lifecycle tracking.

The analytical device models *time* (clocks, stalls, bandwidth); this module
models *space*.  Every :class:`~repro.gpu.device.SimulatedGPU` owns a
:class:`MemoryPool` — a caching allocator in the style of the PyTorch CUDA
allocator: allocation sizes round up to a size bucket (512 B quantum below
1 MiB, 64 KiB quantum above), freed blocks park on a per-bucket free list
instead of returning to the device, and a request is served from a cached
block of its bucket whenever one exists, so ``reserved`` bytes (the
cudaMalloc footprint) only grow when no cached block fits.  The pool tracks
live/reserved/peak bytes, per-phase and per-epoch watermarks, allocation
churn, fragmentation, and checks every reservation against the configured
HBM capacity (``DeviceConfig.dram_size_bytes`` — 16 GiB on the paper's
V100), flagging OOM as a warning by default or an :class:`OOMError` in
strict mode.

The pool is *driven* by a :class:`DeviceMemoryTracker`, which registers the
tensor lifecycle: device-tensor creation, autograd saved activations,
optimizer state, and raw ``h2d`` staging buffers.  Registration dedups by
the owning numpy buffer (views never allocate) and frees ride
``weakref.finalize`` on the buffer, so lifetimes follow CPython refcounting
deterministically.  Like the tracer, tracking is **zero-cost when off**: the
hooks in the tensor/autograd/optimizer layers are single module-global
``is None`` checks, and no per-launch path ever touches the pool.
"""

from __future__ import annotations

import contextlib
import gc
import hashlib
import json
import warnings
import weakref
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

MEMORY_VERSION = 1

#: allocation quantum below/above the small-pool limit (PyTorch-CUDA-style)
SMALL_BLOCK_QUANTUM = 512
SMALL_POOL_LIMIT = 1 << 20  # 1 MiB
LARGE_BLOCK_QUANTUM = 1 << 16  # 64 KiB


def round_block(nbytes: int) -> int:
    """Round a request up to its size bucket (the allocator's block size)."""
    if nbytes <= SMALL_BLOCK_QUANTUM:
        return SMALL_BLOCK_QUANTUM
    quantum = (SMALL_BLOCK_QUANTUM if nbytes < SMALL_POOL_LIMIT
               else LARGE_BLOCK_QUANTUM)
    return (int(nbytes) + quantum - 1) // quantum * quantum


class OOMError(MemoryError):
    """A reservation exceeded the simulated device's HBM capacity."""


@dataclass(frozen=True)
class OOMEvent:
    """One capacity violation (recorded whether or not strict mode raises)."""

    requested_bytes: int
    block_bytes: int
    live_bytes: int
    reserved_bytes: int
    capacity_bytes: int
    label: str
    phase: str
    clock_s: float


class MemoryPool:
    """Caching HBM allocator for one simulated device.

    ``live_bytes`` is what tensors currently occupy, ``reserved_bytes`` is
    what the device has handed out (cached free blocks included) — the
    cudaMalloc footprint a real process would show in ``nvidia-smi``.  All
    quantities derive from tensor shapes, never from compute results, so
    pool state is bit-deterministic for a seeded run.
    """

    def __init__(self, capacity_bytes: int,
                 clock: Optional[Callable[[], float]] = None) -> None:
        self.capacity_bytes = int(capacity_bytes)
        #: reads the simulated clock for OOM-event timestamps
        self.clock = clock
        self.strict = False
        #: optional event tap (``repro.gpu.graph_capture``): every alloc/free
        #: is mirrored as an ``("A", nbytes, label, phase)`` / ``("F", block,
        #: requested)`` tuple so a captured epoch plan can re-drive the pool
        #: deterministically during replay.  Survives :meth:`reset` — the tap
        #: owner installs and removes it around one capture window.  The pool
        #: is only ever driven while a DeviceMemoryTracker is installed, so
        #: the ``None`` check never sits on the kernel-launch hot path.
        self.tap: Optional[Callable[[tuple], None]] = None
        self.reset()

    def reset(self) -> None:
        self.live_bytes = 0
        self.reserved_bytes = 0
        self.peak_live_bytes = 0
        self.peak_reserved_bytes = 0
        #: sum of *requested* (pre-rounding) bytes of live blocks
        self.requested_live_bytes = 0
        self.alloc_count = 0
        self.free_count = 0
        #: new device reservations ("cudaMalloc"s) vs. cached-block reuses
        self.segment_allocs = 0
        self.bucket_reuse_count = 0
        #: rounded block size -> count of cached free blocks
        self._free_blocks: dict[int, int] = {}
        #: peak live bytes observed while each phase was current
        self.phase_watermarks: dict[str, int] = {}
        #: peak live bytes within each completed epoch
        self.epoch_watermarks: list[int] = []
        self._interval_peak = 0
        #: label -> (allocation count, cumulative requested bytes)
        self.label_stats: dict[str, list[int]] = {}
        self.oom_events: list[OOMEvent] = []
        self._warned = False

    # -- allocation ----------------------------------------------------------
    def cached_blocks(self, nbytes: int) -> int:
        """Cached free blocks in the bucket ``nbytes`` would allocate from."""
        return self._free_blocks.get(round_block(nbytes), 0)

    def alloc(self, nbytes: int, label: str = "", phase: str = "") -> int:
        """Allocate one block; returns the rounded block size to free later."""
        block = round_block(nbytes)
        cached = self._free_blocks.get(block, 0)
        if cached:
            if cached == 1:
                del self._free_blocks[block]
            else:
                self._free_blocks[block] = cached - 1
            self.bucket_reuse_count += 1
        else:
            self.reserved_bytes += block
            self.segment_allocs += 1
            if self.reserved_bytes > self.peak_reserved_bytes:
                self.peak_reserved_bytes = self.reserved_bytes
            if self.reserved_bytes > self.capacity_bytes:
                self._flag_oom(nbytes, block, label, phase)
        self.live_bytes += block
        self.requested_live_bytes += int(nbytes)
        self.alloc_count += 1
        if self.live_bytes > self.peak_live_bytes:
            self.peak_live_bytes = self.live_bytes
        if self.live_bytes > self._interval_peak:
            self._interval_peak = self.live_bytes
        if phase:
            if self.live_bytes > self.phase_watermarks.get(phase, 0):
                self.phase_watermarks[phase] = self.live_bytes
        if label:
            entry = self.label_stats.get(label)
            if entry is None:
                self.label_stats[label] = [1, int(nbytes)]
            else:
                entry[0] += 1
                entry[1] += int(nbytes)
        if self.tap is not None:
            self.tap(("A", int(nbytes), label, phase))
        return block

    def free(self, block: int, requested: int = 0) -> None:
        """Return a block to its bucket's free list (stays reserved)."""
        self.live_bytes -= block
        self.requested_live_bytes -= int(requested)
        self.free_count += 1
        self._free_blocks[block] = self._free_blocks.get(block, 0) + 1
        if self.tap is not None:
            self.tap(("F", block, int(requested)))

    def trim(self) -> int:
        """Release every cached free block back to the device
        (``torch.cuda.empty_cache``); returns the bytes released."""
        freed = sum(size * count for size, count in self._free_blocks.items())
        self._free_blocks.clear()
        self.reserved_bytes -= freed
        return freed

    def end_epoch(self) -> None:
        """Record the peak live bytes since the previous epoch boundary."""
        self.epoch_watermarks.append(self._interval_peak)
        self._interval_peak = self.live_bytes

    def _flag_oom(self, nbytes: int, block: int, label: str,
                  phase: str) -> None:
        event = OOMEvent(
            requested_bytes=int(nbytes), block_bytes=block,
            live_bytes=self.live_bytes, reserved_bytes=self.reserved_bytes,
            capacity_bytes=self.capacity_bytes, label=label, phase=phase,
            clock_s=self.clock() if self.clock is not None else 0.0,
        )
        self.oom_events.append(event)
        message = (
            f"simulated HBM exhausted: reserving {block} B for "
            f"{label or 'tensor'!r} ({phase or 'unphased'}) pushes the device "
            f"footprint to {self.reserved_bytes} B, over the "
            f"{self.capacity_bytes} B capacity"
        )
        if self.strict:
            raise OOMError(message)
        if not self._warned:
            self._warned = True
            warnings.warn(message, ResourceWarning, stacklevel=3)

    # -- derived stats -------------------------------------------------------
    def fragmentation(self) -> float:
        """Fraction of the reserved footprint that is cached free blocks."""
        if self.reserved_bytes <= 0:
            return 0.0
        return (self.reserved_bytes - self.live_bytes) / self.reserved_bytes

    def internal_fragmentation(self) -> float:
        """Fraction of live bytes lost to bucket rounding."""
        if self.live_bytes <= 0:
            return 0.0
        return (self.live_bytes - self.requested_live_bytes) / self.live_bytes

    def utilization(self) -> float:
        """Peak reserved footprint as a fraction of HBM capacity."""
        if self.capacity_bytes <= 0:
            return 0.0
        return self.peak_reserved_bytes / self.capacity_bytes

    def stats(self) -> dict:
        """Picklable snapshot of every aggregate the pool maintains."""
        return {
            "capacity_bytes": self.capacity_bytes,
            "live_bytes": self.live_bytes,
            "reserved_bytes": self.reserved_bytes,
            "peak_live_bytes": self.peak_live_bytes,
            "peak_reserved_bytes": self.peak_reserved_bytes,
            "alloc_count": self.alloc_count,
            "free_count": self.free_count,
            "segment_allocs": self.segment_allocs,
            "bucket_reuse_count": self.bucket_reuse_count,
            "fragmentation": round(self.fragmentation(), 9),
            "internal_fragmentation": round(self.internal_fragmentation(), 9),
            "utilization": round(self.utilization(), 9),
            "phase_watermarks": dict(sorted(self.phase_watermarks.items())),
            "epoch_watermarks": list(self.epoch_watermarks),
            "oom_events": len(self.oom_events),
        }


# -- the process-wide tracker (zero-cost when absent) --------------------------
_TRACKER: Optional["DeviceMemoryTracker"] = None

#: maps the tracker's phase attribution to the tensor layer's phase context;
#: installed by ``repro.tensor`` at import (the gpu layer must not import it)
_PHASE_PROVIDER: Callable[[], str] = lambda: ""

#: default allocation label per training phase, used when a tensor carries
#: no name of its own — keeps watermark attribution readable
_PHASE_LABELS = {"forward": "activation", "backward": "grad",
                 "optimizer": "optimizer_state", "setup": "setup"}


def active() -> Optional["DeviceMemoryTracker"]:
    """The installed tracker, or ``None`` — the single-check fast guard."""
    return _TRACKER


def set_phase_provider(provider: Callable[[], str]) -> None:
    global _PHASE_PROVIDER
    _PHASE_PROVIDER = provider


def notify_alloc(device, array, label: str = "") -> None:
    """Registration hook for layers that hold raw device buffers
    (optimizer state, staged batches).  No-op unless ``device`` is tracked."""
    tracker = _TRACKER
    if tracker is not None and device is tracker.device:
        tracker.register(array, label)


class DeviceMemoryTracker:
    """Front-end that maps buffer lifetimes onto one device's pool.

    Buffers register once (dedup by the id of the owning base array — views
    and aliases never double-count) and free automatically when the buffer
    dies, via ``weakref.finalize``.  A closed tracker turns every late
    finalizer into a no-op, so trackers from finished runs can never touch
    a later run's pool.
    """

    def __init__(self, device) -> None:
        self.device = device
        self.pool: MemoryPool = device.memory
        # OOM events carry the simulated clock while this tracker drives
        # the pool (cleared on close so the pool doesn't pin the device)
        self.pool.clock = device.elapsed_s
        #: id(root buffer) -> (rounded block size, requested bytes)
        self._live: dict[int, tuple[int, int]] = {}
        self._closed = False
        #: optional callable(clock_s, live, reserved) feeding trace counters
        self._counter_sink = None

    # -- registration -------------------------------------------------------
    def register(self, array, label: str = "",
                 phase: Optional[str] = None) -> None:
        if self._closed:
            return
        root = array
        while isinstance(root, np.ndarray) and root.base is not None:
            root = root.base
        if not isinstance(root, np.ndarray):
            return
        key = id(root)
        if key in self._live:
            return
        nbytes = int(root.nbytes)
        if nbytes <= 0:
            return
        if phase is None:
            phase = _PHASE_PROVIDER()
        if not label:
            label = _PHASE_LABELS.get(phase, "tensor")
        block = self.pool.alloc(nbytes, label=label, phase=phase)
        self._live[key] = (block, nbytes)
        weakref.finalize(root, self._on_free, key)
        self._sample()

    def register_tensor(self, tensor) -> None:
        """Tensor-creation hook (``Tensor.__init__`` on a tracked device)."""
        if tensor.device is self.device:
            self.register(tensor.data, label=tensor.name)

    def _on_free(self, key: int) -> None:
        if self._closed:
            return
        entry = self._live.pop(key, None)
        if entry is None:
            return
        self.pool.free(entry[0], entry[1])
        self._sample()

    # -- trace counter plumbing ---------------------------------------------
    def set_counter_sink(self, sink) -> None:
        """Feed live/reserved samples to a tracer (Chrome Counter events)."""
        self._counter_sink = sink
        self._sample()

    def _sample(self) -> None:
        sink = self._counter_sink
        if sink is not None:
            sink(self.device.clock_s, self.pool.live_bytes,
                 self.pool.reserved_bytes)

    # -- epoch boundaries ----------------------------------------------------
    def end_epoch(self) -> None:
        self.pool.end_epoch()
        self._sample()

    # -- reporting -----------------------------------------------------------
    def report(self, top_labels: int = 10,
               collect_garbage: bool = True) -> dict:
        """Canonical, picklable memory report for the tracked run.

        Collects cyclic garbage first so the end-state live bytes are a
        deterministic function of the run, not of collector timing.
        """
        if collect_garbage:
            gc.collect()
        report = dict(self.pool.stats())
        report["version"] = MEMORY_VERSION
        labels = sorted(
            self.pool.label_stats.items(),
            key=lambda item: (-item[1][1], item[0]),
        )[:top_labels]
        report["top_labels"] = [
            [name, stats[1], stats[0]] for name, stats in labels
        ]
        report["memory_digest"] = digest_report(report)
        return report

    def close(self) -> None:
        self._closed = True
        self._live.clear()
        self._counter_sink = None
        self.pool.clock = None


def digest_report(report: dict) -> str:
    """SHA-256 over the canonical JSON of a report (digest field excluded)."""
    payload = {k: v for k, v in report.items() if k != "memory_digest"}
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


@contextlib.contextmanager
def track(device, strict: bool = False):
    """Install a :class:`DeviceMemoryTracker` on ``device`` for a block.

    Resets the device's pool on entry (the tracked run owns the footprint)
    and closes the tracker on exit, neutralizing any finalizers that fire
    after the block.
    """
    global _TRACKER
    if _TRACKER is not None:
        raise RuntimeError("a memory tracker is already installed")
    device.memory.reset()
    device.memory.strict = strict
    tracker = DeviceMemoryTracker(device)
    _TRACKER = tracker
    try:
        yield tracker
    finally:
        _TRACKER = None
        device.memory.strict = False
        tracker.close()
