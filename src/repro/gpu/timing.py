"""Kernel cycle/throughput model.

A kernel's duration is the maximum over the classic bottleneck candidates —
instruction issue, fp32 units, int32 units, load/store units, L2 bandwidth,
DRAM bandwidth, and a latency bound for small/low-occupancy launches — plus
a pipeline ramp-up floor.  All inputs come from the kernel descriptor
(dynamic instruction counts, byte traffic) and the cache model's outcome for
the launch, so the relative throughput of e.g. a skinny feature-transform
GEMM vs. a scatter-add over real edge indices is emergent.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .config import SimulationConfig
from .kernel import KernelDescriptor, MemoryMetrics


@dataclass(frozen=True)
class TimingResult:
    """Frozen: shared between memoized launches of identical descriptors
    (:mod:`repro.gpu.analysis_cache`); nothing may mutate a published result,
    including the ``components`` dict."""

    cycles: float
    duration_s: float
    instructions: float
    fp32_instrs: float
    int32_instrs: float
    ldst_instrs: float
    control_instrs: float
    ipc: float
    occupancy: float
    #: which bottleneck produced the cycle count (for reports/tests).
    bound: str
    #: component cycle estimates, used by the stall-attribution model.
    components: dict[str, float]


def instruction_counts(
    desc: KernelDescriptor, sim: SimulationConfig
) -> tuple[float, float, float, float]:
    """Derive dynamic thread-level instruction counts from the descriptor.

    fp32 FLOPs collapse into fewer instructions when fused multiply-adds are
    available (2 FLOPs/instruction); int32 ops map 1:1.
    """
    profile = sim.profile_for(desc.op_class.value)
    fp32_instrs = desc.fp32_flops / (1.0 + profile.fma_fraction)
    int32_instrs = desc.int32_iops
    ldst = desc.ldst_instrs
    control = desc.control_instrs
    if control <= 0:
        control = 0.08 * (fp32_instrs + int32_instrs + ldst)
    return fp32_instrs, int32_instrs, ldst, control


def analyze(
    desc: KernelDescriptor, mem: MemoryMetrics, sim: SimulationConfig
) -> TimingResult:
    dev = sim.device
    profile = sim.profile_for(desc.op_class.value)

    fp32_instrs, int32_instrs, ldst, control = instruction_counts(desc, sim)
    total_instr = fp32_instrs + int32_instrs + ldst + control
    warp_instrs = total_instr / dev.warp_size

    warps = desc.warps
    active_sms = min(dev.num_sms, desc.blocks)
    warps_per_sm = warps / max(1, active_sms)
    occupancy = min(1.0, warps_per_sm / dev.max_warps_per_sm)
    waves = max(1.0, warps / (dev.num_sms * dev.max_warps_per_sm))

    # --- throughput bounds (cycles) ----------------------------------------
    # Underutilized SMs cannot be reclaimed: scale unit throughput by the
    # number of SMs that actually received blocks.
    sm_frac = active_sms / dev.num_sms
    scale = desc.compute_scale / max(profile.unit_efficiency, 1e-3)
    # half-precision packs two values per fp32 lane on Volta
    fp_lanes = dev.fp32_lanes_per_sm * (2 if sim.precision == "fp16" else 1)
    issue = warp_instrs / (dev.num_sms * dev.issue_width_per_sm * sm_frac)
    fp32 = scale * fp32_instrs / (dev.num_sms * fp_lanes * sm_frac)
    int32 = scale * int32_instrs / (dev.num_sms * dev.int32_lanes_per_sm * sm_frac)
    # LSU: one warp transaction per cycle per SM; divergence serializes
    # replayed transactions.
    lsu = (ldst / dev.warp_size) * mem.lines_per_warp / (dev.num_sms * sm_frac)
    l2_bw = mem.l2_bytes / dev.l2_bytes_per_cycle
    dram_bw = mem.dram_bytes / dev.dram_bytes_per_cycle

    # --- latency bound ------------------------------------------------------
    avg_latency = (
        mem.l1_hit_rate * dev.l1_latency_cycles
        + (1.0 - mem.l1_hit_rate)
        * (
            mem.l2_hit_rate * dev.l2_latency_cycles
            + (1.0 - mem.l2_hit_rate) * dev.dram_latency_cycles
        )
    )
    loads_per_thread = ldst / max(1, desc.threads)
    chain_depth = max(1.0, loads_per_thread / profile.mlp)
    # Concurrency from co-resident warps hides latency.
    hiding = min(dev.max_warps_per_sm, max(1.0, warps_per_sm)) * profile.mlp
    latency_bound = waves * chain_depth * avg_latency / max(1.0, hiding / 8.0)

    # Per-thread serial issue: one warp cannot retire more than one
    # instruction per cycle, so instrs-per-thread floors each wave.
    instrs_per_thread = total_instr / max(1, desc.threads)
    serial = waves * instrs_per_thread / max(profile.ilp / 2.0, 1.0)

    # Pipeline ramp/drain: instruction fetch, first memory round trip, and
    # tail-wave underutilization.  Empirically even trivial CUDA kernels
    # occupy the GPU for ~1.5 us; this floor is what starves many-tiny-kernel
    # workloads (Tree-LSTM) of throughput.
    ramp = dev.dram_latency_cycles + 3.0 * dev.l2_latency_cycles + 900.0

    components = {
        "issue": issue,
        "fp32": fp32,
        "int32": int32,
        "lsu": lsu,
        "l2_bw": l2_bw,
        "dram_bw": dram_bw,
        "latency": latency_bound,
        "serial": serial,
    }
    bound = max(components, key=components.get)
    cycles = max(components.values()) + ramp
    duration_s = cycles / dev.clock_hz
    ipc = warp_instrs / cycles / dev.num_sms

    return TimingResult(
        cycles=cycles,
        duration_s=duration_s,
        instructions=total_instr,
        fp32_instrs=fp32_instrs,
        int32_instrs=int32_instrs,
        ldst_instrs=ldst,
        control_instrs=control,
        ipc=ipc,
        occupancy=occupancy,
        bound=bound,
        components=components,
    )


def h2d_time(nbytes: int, sim: SimulationConfig) -> float:
    """Duration of a host-to-device copy over PCIe."""
    dev = sim.device
    return dev.pcie_latency_s + nbytes / dev.pcie_bandwidth_bytes_per_s


def ceil_div(a: int, b: int) -> int:
    return -(-a // b)


def waves_for(threads: int, sim: SimulationConfig, block_size: int = 256) -> float:
    dev = sim.device
    warps = math.ceil(threads / dev.warp_size)
    return max(1.0, warps / (dev.num_sms * dev.max_warps_per_sm))
