"""Kernel taxonomy and launch records for the simulated GPU.

Every operation executed by the tensor framework on a simulated device emits
one or more :class:`KernelDescriptor` objects.  A descriptor captures what a
real CUDA kernel of that operation would look like to a profiler: thread
geometry, dynamic instruction counts, byte traffic, and the memory-access
pattern (including, for irregular operations, the *actual index array* so the
divergence model can measure rather than guess).

The device model consumes a descriptor and returns a :class:`KernelLaunch`
holding the derived metrics (cycles, stalls, cache hit rates, IPC, ...).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np


class OpClass(enum.Enum):
    """Operation classes, mirroring the categories of the paper's Figure 2.

    The paper decomposes GNN training time into GEMM, SpMM, convolutions,
    scatters, gathers, reductions, index selection, sorting and element-wise
    operations; everything else is "Other".  We keep a slightly finer
    taxonomy (GEMV, SOFTMAX, BATCHNORM, EMBEDDING, COPY) and fold it into the
    paper's categories via :meth:`figure_category`.
    """

    GEMM = "GEMM"
    GEMV = "GEMV"
    SPMM = "SPMM"
    CONV2D = "CONV2D"
    ELEMENTWISE = "ELEMENTWISE"
    REDUCTION = "REDUCTION"
    SCATTER = "SCATTER"
    GATHER = "GATHER"
    INDEX_SELECT = "INDEX_SELECT"
    SORT = "SORT"
    SOFTMAX = "SOFTMAX"
    BATCHNORM = "BATCHNORM"
    EMBEDDING = "EMBEDDING"
    COPY = "COPY"
    OTHER = "OTHER"

    def figure_category(self) -> str:
        """Map the op class onto the paper's Figure-2 breakdown category."""
        return _FIGURE_CATEGORY[self]


_FIGURE_CATEGORY = {
    OpClass.GEMM: "GEMM",
    OpClass.GEMV: "GEMM",
    OpClass.SPMM: "SpMM",
    OpClass.CONV2D: "Conv",
    OpClass.ELEMENTWISE: "Elementwise",
    OpClass.REDUCTION: "Reduction",
    OpClass.SCATTER: "Scatter",
    OpClass.GATHER: "Gather",
    OpClass.INDEX_SELECT: "IndexSelect",
    OpClass.SORT: "Sort",
    OpClass.SOFTMAX: "Reduction",
    OpClass.BATCHNORM: "BatchNorm",
    OpClass.EMBEDDING: "Gather",
    OpClass.COPY: "Other",
    OpClass.OTHER: "Other",
}

#: Order used when rendering Figure-2 style tables.
FIGURE_CATEGORIES = (
    "GEMM",
    "SpMM",
    "Conv",
    "BatchNorm",
    "Scatter",
    "Gather",
    "Reduction",
    "IndexSelect",
    "Sort",
    "Elementwise",
    "Other",
)


class AccessKind(enum.Enum):
    COALESCED = "coalesced"
    STRIDED = "strided"
    IRREGULAR = "irregular"


@dataclass
class AccessPattern:
    """Describes how a kernel's dominant loads touch memory.

    For :attr:`AccessKind.IRREGULAR` the *actual* index array driving the
    gather/scatter is attached; the divergence model inspects it directly,
    which is the analogue of the paper's NVBit instrumentation.
    """

    kind: AccessKind = AccessKind.COALESCED
    stride_bytes: int = 4
    element_bytes: int = 4
    indices: Optional[np.ndarray] = None

    def sampled_indices(self, sample: int, cache: bool = True) -> Optional[np.ndarray]:
        """Deterministic stratified sample of the index stream.

        This is exactly the slice the divergence model inspects (whole warps
        are kept so per-warp statistics stay meaningful), so two patterns
        with equal samples are indistinguishable to the analysis pipeline.
        """
        if self.indices is None:
            return None
        store = self.__dict__.setdefault("_samples", {}) if cache else None
        if store is not None and sample in store:
            return store[sample]
        flat = np.ascontiguousarray(self.indices).reshape(-1)
        if flat.size > sample:
            step = flat.size // sample
            start = (flat.size % sample) // 2
            flat = flat[start : start + sample * step : step]
        if store is not None:
            store[sample] = flat
        return flat

    def fingerprint(self, sample: int = 4096) -> tuple:
        """Cheap content identity of this pattern for analysis memoization.

        Regular patterns are fully described by their closed-form parameters.
        Irregular patterns hash the *sampled* index bytes — the only part of
        the stream the divergence model ever reads — so equal fingerprints
        guarantee byte-identical analysis results for a given sample size.
        Lazily computed and cached per sample size on the pattern object.

        Fingerprints are in-process cache keys only (they are never
        persisted or compared across runs), so the siphash built into
        ``hash()`` is enough identity: per-batch index arrays hand a fresh
        pattern to every launch, and hashing the sample is on that path.
        """
        if self.kind is AccessKind.COALESCED:
            return ("C", self.element_bytes)
        if self.kind is AccessKind.STRIDED:
            return ("S", self.stride_bytes, self.element_bytes)
        store = self.__dict__.setdefault("_fingerprints", {})
        fp = store.get(sample)
        if fp is None:
            flat = self.sampled_indices(sample)
            if flat is None or flat.size == 0:
                fp = ("I", self.element_bytes, None)
            else:
                digest = hash(np.ascontiguousarray(flat).tobytes())
                fp = ("I", self.element_bytes, flat.size,
                      flat.dtype.str, digest)
            store[sample] = fp
        return fp

    @staticmethod
    def coalesced(element_bytes: int = 4) -> "AccessPattern":
        return AccessPattern(AccessKind.COALESCED, element_bytes, element_bytes)

    @staticmethod
    def strided(stride_bytes: int, element_bytes: int = 4) -> "AccessPattern":
        return AccessPattern(AccessKind.STRIDED, stride_bytes, element_bytes)

    @staticmethod
    def irregular(indices: np.ndarray, element_bytes: int = 4) -> "AccessPattern":
        return AccessPattern(
            AccessKind.IRREGULAR, element_bytes, element_bytes, np.asarray(indices)
        )


@dataclass
class KernelDescriptor:
    """Static description of a single kernel launch.

    Instruction counts are *dynamic* totals over all threads.  ``fp32_flops``
    and ``int32_iops`` are the arithmetic work (used for GFLOPS/GIOPS);
    instruction counts are derived from them by the timing model using the
    op-class FMA fraction.
    """

    name: str
    op_class: OpClass
    threads: int
    fp32_flops: float = 0.0
    int32_iops: float = 0.0
    ldst_instrs: float = 0.0
    control_instrs: float = 0.0
    bytes_read: float = 0.0
    bytes_written: float = 0.0
    working_set_bytes: float = 0.0
    #: average number of times each cached line is re-touched after first use.
    reuse_factor: float = 1.0
    access: AccessPattern = field(default_factory=AccessPattern.coalesced)
    block_size: int = 256
    #: tag propagated from autograd: "forward", "backward" or "optimizer".
    phase: str = "forward"
    #: extra compute-cycle multiplier for shape effects the op knows about
    #: (e.g. GEMM tile-padding waste on skinny matrices); scales cycle cost,
    #: not the reported arithmetic work.
    compute_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.threads <= 0:
            raise ValueError(f"kernel {self.name!r} must launch >= 1 thread")
        if self.working_set_bytes <= 0:
            self.working_set_bytes = max(self.bytes_read + self.bytes_written, 1.0)
        if self.ldst_instrs <= 0:
            # one load/store instruction per 128-byte warp transaction minimum
            self.ldst_instrs = max(
                (self.bytes_read + self.bytes_written) / 128.0, 1.0
            )

    @property
    def warps(self) -> int:
        return max(1, math.ceil(self.threads / 32))

    @property
    def blocks(self) -> int:
        return max(1, math.ceil(self.threads / self.block_size))

    @property
    def total_bytes(self) -> float:
        return self.bytes_read + self.bytes_written


@dataclass(frozen=True)
class MemoryMetrics:
    """Memory-hierarchy outcome of one launch.

    Frozen: launch-analysis records are memoized and shared between repeated
    launches of identical descriptors (see :mod:`repro.gpu.analysis_cache`),
    so they must stay immutable once published.
    """

    transactions: float = 0.0
    divergent_load_fraction: float = 0.0
    lines_per_warp: float = 1.0
    l1_hit_rate: float = 0.0
    l2_hit_rate: float = 0.0
    l2_bytes: float = 0.0
    dram_bytes: float = 0.0


@dataclass(frozen=True)
class StallBreakdown:
    """Issue-stall attribution, matching nvprof's stall_* categories.

    Frozen for the same reason as :class:`MemoryMetrics`: instances are
    shared between memoized launches.
    """

    memory_dependency: float = 0.0
    execution_dependency: float = 0.0
    instruction_fetch: float = 0.0
    synchronization: float = 0.0
    pipe_busy: float = 0.0
    not_selected: float = 0.0
    other: float = 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "memory_dependency": self.memory_dependency,
            "execution_dependency": self.execution_dependency,
            "instruction_fetch": self.instruction_fetch,
            "synchronization": self.synchronization,
            "pipe_busy": self.pipe_busy,
            "not_selected": self.not_selected,
            "other": self.other,
        }

    def total(self) -> float:
        return sum(self.as_dict().values())


@dataclass
class KernelLaunch:
    """A completed (simulated) kernel launch with derived metrics."""

    descriptor: KernelDescriptor
    launch_id: int
    device_id: int
    cycles: float
    duration_s: float
    start_s: float
    instructions: float
    fp32_instrs: float
    int32_instrs: float
    ipc: float
    occupancy: float
    memory: MemoryMetrics
    stalls: StallBreakdown

    @property
    def name(self) -> str:
        return self.descriptor.name

    @property
    def op_class(self) -> OpClass:
        return self.descriptor.op_class

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s

    @property
    def gflops(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return self.descriptor.fp32_flops / self.duration_s / 1e9

    @property
    def giops(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return self.descriptor.int32_iops / self.duration_s / 1e9


@dataclass
class TransferRecord:
    """One host<->device copy, with measured value sparsity.

    ``sparsity`` is the fraction of zero values in the transferred buffer —
    the metric the paper collects by patching PyTorch's H2D copy path.
    """

    direction: str
    nbytes: int
    num_values: int
    num_zeros: int
    label: str
    start_s: float
    duration_s: float
    device_id: int
    #: bytes actually moved over PCIe (< nbytes when compression is on)
    wire_bytes: int = -1

    def __post_init__(self) -> None:
        if self.wire_bytes < 0:
            self.wire_bytes = self.nbytes

    @property
    def compression_ratio(self) -> float:
        if self.wire_bytes <= 0:
            return 1.0
        return self.nbytes / self.wire_bytes

    @property
    def sparsity(self) -> float:
        if self.num_values == 0:
            return 0.0
        return self.num_zeros / self.num_values
