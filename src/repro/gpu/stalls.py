"""Issue-stall attribution model.

nvprof attributes, for each kernel, the reasons warps could not issue on a
given cycle.  We reproduce the categories the paper analyses in Figure 5 —
memory dependency, execution dependency, instruction fetch, plus the minor
buckets (synchronization, pipe busy, not selected, other) — from quantities
the simulator already knows for each launch:

* memory-dependency pressure grows with the memory-bound share of the
  kernel, with L1 misses, and with measured divergence;
* execution-dependency pressure is the inverse of the op class's
  instruction-level parallelism, scaled by the compute-bound share;
* instruction-fetch pressure follows the kernel's static code footprint
  relative to the 12 KB L0 I-cache (the paper blames unrolled loops), with a
  floor because every kernel fetches.

:func:`attribute` must stay a pure function of ``(desc, mem, timing, sim)``
— it is memoized per descriptor signature by
:mod:`repro.gpu.analysis_cache`, and any dependence on device state would
make cached and cold launches diverge.
"""

from __future__ import annotations

from .config import SimulationConfig
from .kernel import KernelDescriptor, MemoryMetrics, StallBreakdown
from .timing import TimingResult


def attribute(
    desc: KernelDescriptor,
    mem: MemoryMetrics,
    timing: TimingResult,
    sim: SimulationConfig,
) -> StallBreakdown:
    profile = sim.profile_for(desc.op_class.value)
    weights = sim.stalls

    comp = timing.components
    mem_cycles = max(comp["lsu"], comp["l2_bw"], comp["dram_bw"], comp["latency"])
    compute_cycles = max(comp["issue"], comp["fp32"], comp["int32"], comp["serial"])
    total = mem_cycles + compute_cycles
    if total <= 0:
        total = 1.0
    mem_share = mem_cycles / total
    compute_share = compute_cycles / total

    miss_factor = 0.45 + 0.55 * (1.0 - mem.l1_hit_rate)
    div_factor = 1.0 + 0.5 * mem.divergent_load_fraction
    raw_mem = weights.mem_weight * mem_share * miss_factor * div_factor

    raw_exec = weights.exec_weight * (1.2 / profile.ilp) * (0.35 + 0.65 * compute_share)

    code_pressure = min(1.0, profile.code_bytes / sim.device.l0_icache_bytes)
    raw_ifetch = weights.ifetch_weight * (0.10 + 0.22 * code_pressure)

    # Minor buckets: synchronization matters for reductions/sorts/batchnorm
    # (barriers between phases), pipe busy for dense math, not-selected for
    # high-occupancy kernels where eligible warps exceed issue slots.
    barrier_heavy = desc.op_class.value in {"REDUCTION", "SORT", "BATCHNORM", "SOFTMAX"}
    raw_sync = weights.sync_weight * (2.5 if barrier_heavy else 0.6)
    raw_pipe = weights.pipe_busy_weight * (1.5 if compute_share > 0.6 else 0.5)
    raw_not_selected = weights.not_selected_weight * (0.4 + timing.occupancy)
    raw_other = weights.other_weight

    raw = {
        "memory_dependency": raw_mem,
        "execution_dependency": raw_exec,
        "instruction_fetch": raw_ifetch,
        "synchronization": raw_sync,
        "pipe_busy": raw_pipe,
        "not_selected": raw_not_selected,
        "other": raw_other,
    }
    norm = sum(raw.values())
    shares = {key: value / norm for key, value in raw.items()}
    return StallBreakdown(**shares)
