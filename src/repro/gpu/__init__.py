"""Simulated-GPU substrate: an analytical NVIDIA V100 model.

Public surface:

* :class:`SimulatedGPU` — one device; run kernels, copy data, read the clock.
* :class:`MultiGPUSystem` — several devices plus an NVLink allreduce model.
* :class:`KernelDescriptor` / :class:`KernelLaunch` — what ops emit and what
  the device hands to profilers.
* Config dataclasses (:class:`DeviceConfig`, :data:`V100`, ...).
"""

from . import analysis_cache, memory
from .analysis_cache import AnalysisCache, AnalysisRecord
from .compression import CompressionResult, compress
from .config import (
    DEFAULT_SIMULATION,
    NVLINK2,
    V100,
    DeviceConfig,
    LinkConfig,
    OpClassProfile,
    SimulationConfig,
    StallModelConfig,
)
from .device import DeviceStats, SimulatedGPU
from .divergence import DivergenceResult, measure as measure_divergence
from .kernel import (
    FIGURE_CATEGORIES,
    AccessKind,
    AccessPattern,
    KernelDescriptor,
    KernelLaunch,
    MemoryMetrics,
    OpClass,
    StallBreakdown,
    TransferRecord,
)
from .memory import MemoryPool, OOMError, OOMEvent
from .multigpu import AllReduceCost, MultiGPUSystem

__all__ = [
    "AccessKind",
    "AnalysisCache",
    "AnalysisRecord",
    "analysis_cache",
    "CompressionResult",
    "compress",
    "AccessPattern",
    "AllReduceCost",
    "DEFAULT_SIMULATION",
    "DeviceConfig",
    "DeviceStats",
    "DivergenceResult",
    "FIGURE_CATEGORIES",
    "KernelDescriptor",
    "KernelLaunch",
    "LinkConfig",
    "MemoryMetrics",
    "MemoryPool",
    "memory",
    "MultiGPUSystem",
    "OOMError",
    "OOMEvent",
    "NVLINK2",
    "OpClass",
    "OpClassProfile",
    "SimulatedGPU",
    "SimulationConfig",
    "StallBreakdown",
    "StallModelConfig",
    "TransferRecord",
    "V100",
    "measure_divergence",
]
