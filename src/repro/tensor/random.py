"""Seeded randomness for the framework (init, dropout, sampling).

One process-global generator, reseedable via :func:`manual_seed`, so every
training run, dataset and benchmark in the suite is reproducible.
"""

from __future__ import annotations

import numpy as np

_GENERATOR = np.random.default_rng(0)


def manual_seed(seed: int) -> None:
    """Reseed the framework-wide generator."""
    global _GENERATOR
    _GENERATOR = np.random.default_rng(seed)


def generator() -> np.random.Generator:
    return _GENERATOR


def spawn(seed: int) -> np.random.Generator:
    """Independent generator for a component that must not perturb others."""
    return np.random.default_rng(seed)
