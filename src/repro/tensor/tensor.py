"""The Tensor type: a numpy payload plus device tag and autograd hooks.

Data always physically lives in host numpy arrays (the device is simulated);
the ``device`` attribute decides whether operations emit kernels to a
:class:`~repro.gpu.SimulatedGPU`.  Moving a tensor with :meth:`to` performs a
simulated PCIe copy whose value sparsity is measured — the paper's
transfer-sparsity instrumentation point.
"""

from __future__ import annotations

import contextlib
from typing import Iterable, Optional, Sequence, Union

import numpy as np

from ..gpu import memory as gpu_memory
from ..gpu.device import SimulatedGPU
from . import autograd

Scalar = Union[int, float, bool]

#: when True, float64 payloads are kept instead of being downcast to float32.
#: Training always runs fp32 (the paper's precision); the gradcheck harness
#: flips this so central-difference numerics run at full double precision.
_keep_float64 = False


@contextlib.contextmanager
def float64_mode():
    """Keep float64 payloads at full precision (numerical-checking mode)."""
    global _keep_float64
    prev = _keep_float64
    _keep_float64 = True
    try:
        yield
    finally:
        _keep_float64 = prev


class Tensor:
    __slots__ = ("data", "device", "requires_grad", "grad", "_ctx", "name")

    def __init__(
        self,
        data,
        device: Optional[SimulatedGPU] = None,
        requires_grad: bool = False,
        dtype=None,
        name: str = "",
        _skip_copy: bool = False,
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        arr = np.asarray(data)
        if dtype is not None:
            arr = arr.astype(dtype, copy=False)
        elif arr.dtype == np.float64 and not _keep_float64:
            arr = arr.astype(np.float32)
        if not _skip_copy and not arr.flags.owndata:
            arr = arr.copy()
        self.data: np.ndarray = arr
        self.device = device
        self.requires_grad = bool(requires_grad)
        self.grad: Optional[Tensor] = None
        self._ctx = None
        self.name = name
        if device is not None and gpu_memory._TRACKER is not None:
            gpu_memory._TRACKER.register_tensor(self)

    # -- basic properties -----------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def size(self) -> int:
        return int(self.data.size)

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return self.data.shape[0]

    def __repr__(self) -> str:
        dev = self.device.name if self.device is not None else "cpu"
        grad = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, dtype={self.dtype}, device={dev}{grad})"

    # -- device movement -------------------------------------------------------
    def to(self, device: Optional[SimulatedGPU], label: str = "") -> "Tensor":
        """Move to a (simulated) device; H2D copies measure sparsity."""
        if device is self.device:
            return self
        if device is not None:
            device.h2d(self.data, label or self.name or "tensor")
        elif self.device is not None:
            self.device.d2h(self.data, label or self.name or "tensor")
        out = Tensor(self.data, device=device, requires_grad=self.requires_grad,
                     _skip_copy=True)
        return out

    def cpu(self) -> "Tensor":
        return self.to(None)

    def numpy(self) -> np.ndarray:
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0])

    def detach(self) -> "Tensor":
        return Tensor(self.data, device=self.device, _skip_copy=True)

    def clone(self) -> "Tensor":
        from .ops import shape as shape_ops

        shape_ops.launch_copy(self.device, "clone_copy", self.size)
        out = Tensor(self.data.copy(), device=self.device,
                     requires_grad=self.requires_grad, _skip_copy=True)
        return out

    # -- autograd ---------------------------------------------------------------
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        autograd.backward(self, grad)

    def zero_grad(self) -> None:
        self.grad = None

    # -- operator sugar (dispatches to functional) -------------------------------
    def _coerce(self, other) -> "Tensor":
        if isinstance(other, Tensor):
            return other
        return Tensor(np.asarray(other, dtype=self.data.dtype),
                      device=self.device, _skip_copy=True)

    def __add__(self, other):
        from . import functional as F

        return F.add(self, self._coerce(other))

    __radd__ = __add__

    def __sub__(self, other):
        from . import functional as F

        return F.sub(self, self._coerce(other))

    def __rsub__(self, other):
        from . import functional as F

        return F.sub(self._coerce(other), self)

    def __mul__(self, other):
        from . import functional as F

        return F.mul(self, self._coerce(other))

    __rmul__ = __mul__

    def __truediv__(self, other):
        from . import functional as F

        return F.div(self, self._coerce(other))

    def __rtruediv__(self, other):
        from . import functional as F

        return F.div(self._coerce(other), self)

    def __neg__(self):
        from . import functional as F

        return F.neg(self)

    def __pow__(self, exponent: float):
        from . import functional as F

        return F.pow(self, exponent)

    def __matmul__(self, other):
        from . import functional as F

        return F.matmul(self, other)

    # comparisons return raw boolean arrays (non-differentiable)
    def __gt__(self, other):
        from .ops import elementwise

        return elementwise.compare(self, other, "greater")

    def __lt__(self, other):
        from .ops import elementwise

        return elementwise.compare(self, other, "less")

    def __ge__(self, other):
        from .ops import elementwise

        return elementwise.compare(self, other, "greater_equal")

    def __le__(self, other):
        from .ops import elementwise

        return elementwise.compare(self, other, "less_equal")

    def __getitem__(self, key) -> "Tensor":
        from . import functional as F
        from .ops.shape import Slice

        if isinstance(key, (np.ndarray, list, Tensor)) and not isinstance(key, tuple):
            idx = key.data if isinstance(key, Tensor) else np.asarray(key)
            if idx.dtype != np.bool_:
                return F.index_select(self, idx)
            key = idx
        return Slice.apply(self, key)

    # -- common methods -----------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        from .ops.shape import Reshape

        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return Reshape.apply(self, shape)

    view = reshape

    def flatten(self) -> "Tensor":
        return self.reshape(-1)

    def transpose(self, axis0: int = -2, axis1: int = -1) -> "Tensor":
        from .ops.shape import Permute

        axes = list(range(self.ndim))
        if self.ndim < 2:
            return self
        axes[axis0], axes[axis1] = axes[axis1], axes[axis0]
        return Permute.apply(self, tuple(axes))

    def permute(self, *axes) -> "Tensor":
        from .ops.shape import Permute

        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        return Permute.apply(self, axes)

    def unsqueeze(self, axis: int) -> "Tensor":
        new_shape = list(self.shape)
        axis = axis if axis >= 0 else axis + self.ndim + 1
        new_shape.insert(axis, 1)
        return self.reshape(tuple(new_shape))

    def squeeze(self, axis: Optional[int] = None) -> "Tensor":
        if axis is None:
            new_shape = tuple(s for s in self.shape if s != 1)
        else:
            new_shape = tuple(s for i, s in enumerate(self.shape)
                              if not (i == axis % self.ndim and s == 1))
        return self.reshape(new_shape)

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        from . import functional as F

        return F.sum(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        from . import functional as F

        return F.mean(self, axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        from . import functional as F

        return F.max(self, axis=axis, keepdims=keepdims)

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        from . import functional as F

        return F.min(self, axis=axis, keepdims=keepdims)

    def argmax(self, axis: Optional[int] = None) -> np.ndarray:
        from .ops import reduction

        return reduction.argmax(self, axis=axis)

    def exp(self) -> "Tensor":
        from . import functional as F

        return F.exp(self)

    def log(self) -> "Tensor":
        from . import functional as F

        return F.log(self)

    def sqrt(self) -> "Tensor":
        from . import functional as F

        return F.sqrt(self)

    def tanh(self) -> "Tensor":
        from . import functional as F

        return F.tanh(self)

    def sigmoid(self) -> "Tensor":
        from . import functional as F

        return F.sigmoid(self)

    def relu(self) -> "Tensor":
        from . import functional as F

        return F.relu(self)

    def clamp(self, lo=None, hi=None) -> "Tensor":
        from . import functional as F

        return F.clamp(self, lo, hi)

    def abs(self) -> "Tensor":
        from . import functional as F

        return F.abs(self)

    def softmax(self, axis: int = -1) -> "Tensor":
        from . import functional as F

        return F.softmax(self, axis=axis)


# -- constructors ------------------------------------------------------------
def tensor(data, device=None, requires_grad: bool = False, dtype=None) -> Tensor:
    return Tensor(data, device=device, requires_grad=requires_grad, dtype=dtype)


def zeros(shape, device=None, requires_grad: bool = False, dtype=np.float32) -> Tensor:
    return Tensor(np.zeros(shape, dtype=dtype), device=device,
                  requires_grad=requires_grad, _skip_copy=True)


def ones(shape, device=None, requires_grad: bool = False, dtype=np.float32) -> Tensor:
    return Tensor(np.ones(shape, dtype=dtype), device=device,
                  requires_grad=requires_grad, _skip_copy=True)


def full(shape, value: Scalar, device=None, dtype=np.float32) -> Tensor:
    return Tensor(np.full(shape, value, dtype=dtype), device=device,
                  _skip_copy=True)


def arange(*args, device=None, dtype=np.int64) -> Tensor:
    return Tensor(np.arange(*args, dtype=dtype), device=device, _skip_copy=True)
