"""Functional API over the op library (the ``torch.nn.functional`` analogue).

Non-tensor operands (targets, index arrays, boolean masks) are coerced to
raw numpy before reaching a Function so the autograd tape only tracks the
differentiable inputs.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from . import random as _random
from .ops import conv as _conv
from .ops import elementwise as _ew
from .ops import gemm as _gemm
from .ops import loss as _loss
from .ops import norm as _norm
from .ops import reduction as _red
from .ops import scattergather as _sg
from .ops import shape as _shape
from .ops import softmax as _sm
from .ops import sort as _sort
from .ops import spmm as _spmm
from .tensor import Tensor

SparseTensor = _spmm.SparseTensor


def _raw(x) -> np.ndarray:
    """Detach to a plain ndarray (indices/targets/masks are not tracked)."""
    return x.data if isinstance(x, Tensor) else np.asarray(x)


# -- elementwise ---------------------------------------------------------------
def add(a: Tensor, b: Tensor) -> Tensor:
    return _ew.Add.apply(a, b)


def sub(a: Tensor, b: Tensor) -> Tensor:
    return _ew.Sub.apply(a, b)


def mul(a: Tensor, b: Tensor) -> Tensor:
    return _ew.Mul.apply(a, b)


def div(a: Tensor, b: Tensor) -> Tensor:
    return _ew.Div.apply(a, b)


def maximum(a: Tensor, b: Tensor) -> Tensor:
    return _ew.Maximum.apply(a, b)


def neg(a: Tensor) -> Tensor:
    return _ew.Neg.apply(a)


def pow(a: Tensor, exponent: float) -> Tensor:
    return _ew.PowScalar.apply(a, exponent)


def exp(a: Tensor) -> Tensor:
    return _ew.Exp.apply(a)


def log(a: Tensor) -> Tensor:
    return _ew.Log.apply(a)


def sqrt(a: Tensor) -> Tensor:
    return _ew.Sqrt.apply(a)


def tanh(a: Tensor) -> Tensor:
    return _ew.Tanh.apply(a)


def sigmoid(a: Tensor) -> Tensor:
    return _ew.Sigmoid.apply(a)


def relu(a: Tensor) -> Tensor:
    return _ew.ReLU.apply(a)


def leaky_relu(a: Tensor, negative_slope: float = 0.01) -> Tensor:
    return _ew.LeakyReLU.apply(a, negative_slope)


def prelu(a: Tensor, slope: Tensor) -> Tensor:
    return _ew.PReLU.apply(a, slope)


def abs(a: Tensor) -> Tensor:
    return _ew.Abs.apply(a)


def clamp(a: Tensor, lo: Optional[float] = None, hi: Optional[float] = None) -> Tensor:
    return _ew.Clamp.apply(a, lo, hi)


def dropout(a: Tensor, p: float = 0.5, training: bool = True) -> Tensor:
    if not training or p <= 0.0:
        return a
    return _ew.Dropout.apply(a, p, _random.generator())


def where(cond, a: Tensor, b: Tensor) -> Tensor:
    return _ew.Where.apply(a, b, _raw(cond))


# -- dense math -----------------------------------------------------------------
def matmul(a: Tensor, b: Tensor) -> Tensor:
    return _gemm.MatMul.apply(a, b)


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    if bias is None:
        return _gemm.Linear.apply(x, weight)
    return _gemm.Linear.apply(x, weight, bias)


def conv2d(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None,
           stride=(1, 1), padding=(0, 0)) -> Tensor:
    if isinstance(stride, int):
        stride = (stride, stride)
    if isinstance(padding, int):
        padding = (padding, padding)
    if bias is None:
        return _conv.Conv2d.apply(x, weight, stride=stride, padding=padding)
    return _conv.Conv2d.apply(x, weight, bias, stride=stride, padding=padding)


def spmm(sparse: SparseTensor, x: Tensor) -> Tensor:
    return _spmm.SpMM.apply(sparse, x)


# -- reductions -------------------------------------------------------------------
def sum(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:
    return _red.Sum.apply(a, axis, keepdims)


def mean(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:
    return _red.Mean.apply(a, axis, keepdims)


def max(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:
    return _red.Max.apply(a, axis, keepdims)


def min(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:
    return _red.Min.apply(a, axis, keepdims)


def softmax(a: Tensor, axis: int = -1) -> Tensor:
    return _sm.Softmax.apply(a, axis)


def log_softmax(a: Tensor, axis: int = -1) -> Tensor:
    return _sm.LogSoftmax.apply(a, axis)


# -- irregular data movement --------------------------------------------------------
def index_select(a: Tensor, index) -> Tensor:
    return _sg.IndexSelect.apply(a, _raw(index))


def gather(a: Tensor, index, axis: int) -> Tensor:
    return _sg.Gather.apply(a, _raw(index), axis)


def scatter_add(src: Tensor, index, num_segments: int) -> Tensor:
    """Aggregate edge/source rows into segments: out[index[i]] += src[i]."""
    return _sg.ScatterAddRows.apply(src, _raw(index), num_segments)


def segment_max(src: Tensor, index, num_segments: int) -> Tensor:
    return _sg.SegmentMax.apply(src, _raw(index), num_segments)


def segment_mean(src: Tensor, index, num_segments: int) -> Tensor:
    idx = _raw(index).astype(np.int64).reshape(-1)
    sums = scatter_add(src, idx, num_segments)
    counts = np.bincount(idx, minlength=num_segments).astype(np.float32)
    counts = np.maximum(counts, 1.0).reshape((num_segments,) + (1,) * (src.ndim - 1))
    return div(sums, Tensor(counts, device=src.device, _skip_copy=True))


def embedding(weight: Tensor, index) -> Tensor:
    return _sg.Embedding.apply(weight, _raw(index))


# -- shape ---------------------------------------------------------------------------
def cat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    return _shape.Concat.apply(*tensors, axis=axis)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    return _shape.Stack.apply(*tensors, axis=axis)


def pad2d(a: Tensor, pad: tuple[int, int, int, int]) -> Tensor:
    return _shape.Pad2d.apply(a, pad)


# -- sorting family (non-differentiable, return raw arrays) ---------------------------
def sort(a, axis: int = -1):
    return _sort.sort(a, axis=axis)


def argsort(a, axis: int = -1) -> np.ndarray:
    return _sort.argsort(a, axis=axis)


def unique(a, return_inverse: bool = False, return_counts: bool = False):
    return _sort.unique(a, return_inverse=return_inverse,
                        return_counts=return_counts)


def topk(a, k: int, axis: int = -1, largest: bool = True):
    return _sort.topk(a, k, axis=axis, largest=largest)


def randperm(n: int, device=None) -> np.ndarray:
    return _sort.randperm(n, _random.generator(), device=device)


# -- normalization ----------------------------------------------------------------------
def batch_norm(x: Tensor, gamma: Tensor, beta: Tensor, channel_axis: int = 1,
               eps: float = 1e-5) -> Tensor:
    return _norm.BatchNorm.apply(x, gamma, beta, channel_axis, eps)


def layer_norm(x: Tensor, gamma: Tensor, beta: Tensor, eps: float = 1e-5) -> Tensor:
    return _norm.LayerNorm.apply(x, gamma, beta, eps)


# -- losses ---------------------------------------------------------------------------------
def cross_entropy(logits: Tensor, target) -> Tensor:
    return _loss.CrossEntropy.apply(logits, _raw(target))


def nll_loss(logp: Tensor, target) -> Tensor:
    return _loss.NLLLoss.apply(logp, _raw(target))


def binary_cross_entropy_with_logits(logits: Tensor, target,
                                     pos_weight: float = 1.0) -> Tensor:
    return _loss.BCEWithLogits.apply(logits, _raw(target), pos_weight)


def mse_loss(pred: Tensor, target) -> Tensor:
    return _loss.MSELoss.apply(pred, _raw(target))


def margin_ranking_loss(pos: Tensor, neg: Tensor, margin: float = 1.0) -> Tensor:
    """Max-margin loss used by PinSAGE: mean(relu(neg - pos + margin))."""
    diff = add(sub(neg, pos), Tensor(np.float32(margin), device=pos.device,
                                     _skip_copy=True))
    return mean(relu(diff))
