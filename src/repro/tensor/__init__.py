"""A numpy-backed deep-learning framework that emits simulated GPU kernels.

This package is the reproduction's PyTorch substitute: tensors with
reverse-mode autograd, an ``nn`` module zoo, optimizers, and a functional
API.  Every operation executed on a tensor whose ``device`` is a
:class:`~repro.gpu.SimulatedGPU` emits kernel launches carrying real
instruction/byte counts and index streams, which is what the profiling layer
characterizes.
"""

from . import functional
from .autograd import Function, current_phase, is_grad_enabled, no_grad, phase
from .ops.spmm import SparseTensor
from .random import manual_seed
from .tensor import Tensor, arange, float64_mode, full, ones, tensor, zeros

__all__ = [
    "Function",
    "SparseTensor",
    "Tensor",
    "arange",
    "current_phase",
    "float64_mode",
    "full",
    "functional",
    "is_grad_enabled",
    "manual_seed",
    "no_grad",
    "ones",
    "phase",
    "tensor",
    "zeros",
]
