"""Optimizers (SGD, Adam).

Parameter updates run as elementwise kernels on the device — the optimizer
phase is a real part of the paper's profiled training time (and contributes
substantially to the elementwise share of deep models like DeepGCN).
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from ..gpu import memory as gpu_memory
from . import autograd
from .nn.module import Parameter
from .ops.base import launch_elementwise


class Optimizer:
    def __init__(self, params: Iterable[Parameter]) -> None:
        self.params = [p for p in params]
        if not self.params:
            raise ValueError("optimizer got an empty parameter list")
        #: called (with this optimizer) right before the update kernels of
        #: each step — where DDP's gradient allreduce sits.  Empty unless a
        #: traced multi-GPU run registers one, so the hot path only pays an
        #: empty-list iteration per step.
        self._pre_step_hooks: list = []

    def add_pre_step_hook(self, hook) -> None:
        self._pre_step_hooks.append(hook)

    def remove_pre_step_hook(self, hook) -> None:
        self._pre_step_hooks.remove(hook)

    def zero_grad(self) -> None:
        """PyTorch 1.5 semantics: one fill kernel per gradient buffer."""
        for p in self.params:
            if p.grad is not None:
                launch_elementwise(p.device, "zero_fill", p.size, 0,
                                   kind="copy")
            p.grad = None

    def step(self) -> None:
        for hook in self._pre_step_hooks:
            hook(self)
        with autograd.phase("optimizer"):
            self._step()

    def _step(self) -> None:
        raise NotImplementedError

    def gradient_bytes(self) -> int:
        """Total gradient payload (what DDP must allreduce each step)."""
        return sum(p.nbytes for p in self.params)


class SGD(Optimizer):
    def __init__(self, params, lr: float = 0.01, momentum: float = 0.0,
                 weight_decay: float = 0.0) -> None:
        super().__init__(params)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]
        if gpu_memory._TRACKER is not None:
            for p, vel in zip(self.params, self._velocity):
                gpu_memory.notify_alloc(p.device, vel, "sgd_momentum")

    def _step(self) -> None:
        tracking = gpu_memory._TRACKER is not None
        for p, vel in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            g = p.grad.data
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            if self.momentum:
                vel *= self.momentum
                vel += g
                g = vel
                launch_elementwise(p.device, "sgd_momentum_mul_add", p.size, 2)
            p.data = p.data - self.lr * g
            launch_elementwise(p.device, "sgd_weight_update", p.size, 2)
            if tracking:
                # the update wrote a fresh buffer (PyTorch-1.5 out-of-place
                # semantics); the displaced weights free via their finalizer
                gpu_memory.notify_alloc(p.device, p.data, "param_update")


class Adam(Optimizer):
    def __init__(self, params, lr: float = 1e-3, betas=(0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0) -> None:
        super().__init__(params)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.t = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        #: reusable elementwise scratch, one buffer per parameter: the
        #: update math runs in place instead of allocating a temporary per
        #: ufunc (the operation order is unchanged, so the updates are
        #: bit-identical to the naive expression)
        self._scratch = [np.empty_like(p.data) for p in self.params]
        if gpu_memory._TRACKER is not None:
            state_labels = ((self._m, "adam_exp_avg"),
                            (self._v, "adam_exp_avg_sq"),
                            (self._scratch, "adam_scratch"))
            for buffers, label in state_labels:
                for p, buf in zip(self.params, buffers):
                    gpu_memory.notify_alloc(p.device, buf, label)

    def _step(self) -> None:
        tracking = gpu_memory._TRACKER is not None
        self.t += 1
        bias1 = 1.0 - self.beta1 ** self.t
        bias2 = 1.0 - self.beta2 ** self.t
        step_size = self.lr * math.sqrt(bias2) / bias1
        for p, m, v, s in zip(self.params, self._m, self._v, self._scratch):
            if p.grad is None:
                continue
            g = p.grad.data
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            m *= self.beta1
            np.multiply(g, 1.0 - self.beta1, out=s)
            m += s
            v *= self.beta2
            np.multiply(g, 1.0 - self.beta2, out=s)
            s *= g
            v += s
            np.sqrt(v, out=s)
            s += self.eps
            update = np.multiply(m, step_size)
            update /= s
            np.subtract(p.data, update, out=update)
            p.data = update
            if tracking:
                # unfused Adam materializes a new weight buffer per step —
                # real allocator churn the caching pool is meant to absorb
                gpu_memory.notify_alloc(p.device, p.data, "param_update")
            # PyTorch 1.5 (the paper's version) had no fused Adam: the step
            # is seven separate elementwise kernels per parameter tensor,
            # a large contributor to the elementwise share of deep models.
            for op in ("adam_mul_beta1", "adam_add_grad", "adam_mul_beta2",
                       "adam_addcmul_grad2", "adam_sqrt_v", "adam_add_eps_div",
                       "adam_weight_update"):
                launch_elementwise(p.device, op, p.size, 2)
