"""Module containers: Sequential, ModuleList, ModuleDict."""

from __future__ import annotations

from typing import Iterable, Iterator

from .module import Module


class Sequential(Module):
    def __init__(self, *modules: Module) -> None:
        super().__init__()
        for i, module in enumerate(modules):
            setattr(self, str(i), module)
        self._order = [str(i) for i in range(len(modules))]

    def forward(self, x):
        for name in self._order:
            x = self._modules[name](x)
        return x

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules[name] for name in self._order)

    def __len__(self) -> int:
        return len(self._order)

    def __getitem__(self, idx: int) -> Module:
        return self._modules[self._order[idx]]


class ModuleList(Module):
    def __init__(self, modules: Iterable[Module] = ()) -> None:
        super().__init__()
        self._order: list[str] = []
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        name = str(len(self._order))
        setattr(self, name, module)
        self._order.append(name)
        return self

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules[name] for name in self._order)

    def __len__(self) -> int:
        return len(self._order)

    def __getitem__(self, idx: int) -> Module:
        return self._modules[self._order[idx]]


class ModuleDict(Module):
    def __init__(self, modules: dict[str, Module] | None = None) -> None:
        super().__init__()
        self._order: list[str] = []
        for key, module in (modules or {}).items():
            self[key] = module

    def __setitem__(self, key: str, module: Module) -> None:
        setattr(self, key, module)
        if key not in self._order:
            self._order.append(key)

    def __getitem__(self, key: str) -> Module:
        return self._modules[key]

    def __contains__(self, key: str) -> bool:
        return key in self._modules

    def keys(self):
        return list(self._order)

    def items(self):
        return [(key, self._modules[key]) for key in self._order]
