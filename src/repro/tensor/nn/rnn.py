"""Recurrent cells: LSTMCell, GRUCell, and the Child-Sum TreeLSTM cell.

These are built from Linear + elementwise primitives, so their profiles show
the small-GEMM + elementwise-gate kernel pattern the paper reports for the
Tree-LSTM workload (low GFLOPS, many tiny kernels).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import functional as F
from ..tensor import Tensor, zeros
from .layers import Linear
from .module import Module


class LSTMCell(Module):
    def __init__(self, input_size: int, hidden_size: int) -> None:
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.ih = Linear(input_size, 4 * hidden_size)
        self.hh = Linear(hidden_size, 4 * hidden_size, bias=False)

    def forward(
        self, x: Tensor, state: Optional[tuple[Tensor, Tensor]] = None
    ) -> tuple[Tensor, Tensor]:
        batch = x.shape[0]
        if state is None:
            h = zeros((batch, self.hidden_size), device=x.device)
            c = zeros((batch, self.hidden_size), device=x.device)
        else:
            h, c = state
        gates = self.ih(x) + self.hh(h)
        # single fused pointwise kernel, as PyTorch's LSTMCell dispatches
        from ..ops.elementwise import FusedLSTMPointwise

        hc = FusedLSTMPointwise.apply(gates, c)
        hs = self.hidden_size
        return hc[:, :hs], hc[:, hs:]


class GRUCell(Module):
    def __init__(self, input_size: int, hidden_size: int) -> None:
        super().__init__()
        self.hidden_size = hidden_size
        self.ih = Linear(input_size, 3 * hidden_size)
        self.hh = Linear(hidden_size, 3 * hidden_size)

    def forward(self, x: Tensor, h: Optional[Tensor] = None) -> Tensor:
        batch = x.shape[0]
        if h is None:
            h = zeros((batch, self.hidden_size), device=x.device)
        gi = self.ih(x)
        gh = self.hh(h)
        hs = self.hidden_size
        r = F.sigmoid(gi[:, :hs] + gh[:, :hs])
        z = F.sigmoid(gi[:, hs : 2 * hs] + gh[:, hs : 2 * hs])
        n = F.tanh(gi[:, 2 * hs :] + r * gh[:, 2 * hs :])
        one = Tensor(np.float32(1.0), device=x.device, _skip_copy=True)
        return (one - z) * n + z * h


class ChildSumTreeLSTMCell(Module):
    """Child-Sum TreeLSTM (Tai et al.): per-child forget gates.

    ``forward`` processes one batched frontier: node inputs ``x``, summed
    child hidden states ``h_sum``, and the per-child (h, c) pairs aggregated
    by the caller via scatter ops.
    """

    def __init__(self, input_size: int, hidden_size: int) -> None:
        super().__init__()
        self.hidden_size = hidden_size
        self.W_iou = Linear(input_size, 3 * hidden_size)
        self.U_iou = Linear(hidden_size, 3 * hidden_size, bias=False)
        self.W_f = Linear(input_size, hidden_size)
        self.U_f = Linear(hidden_size, hidden_size, bias=False)

    def node_update(self, x: Tensor, h_sum: Tensor, fc_sum: Tensor
                    ) -> tuple[Tensor, Tensor]:
        """Compute (h, c) for nodes given aggregated child state."""
        iou = self.W_iou(x) + self.U_iou(h_sum)
        hs = self.hidden_size
        i = F.sigmoid(iou[:, :hs])
        o = F.sigmoid(iou[:, hs : 2 * hs])
        u = F.tanh(iou[:, 2 * hs :])
        c = i * u + fc_sum
        h = o * F.tanh(c)
        return h, c

    def child_forget(self, x_parent: Tensor, h_child: Tensor) -> Tensor:
        """Per-(parent, child) forget gate applied to the child cell state."""
        return F.sigmoid(self.W_f(x_parent) + self.U_f(h_child))
