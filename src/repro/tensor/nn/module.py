"""Module/Parameter base classes (the ``torch.nn.Module`` analogue)."""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from ..tensor import Tensor


class Parameter(Tensor):
    """A trainable tensor; modules register these automatically."""

    def __init__(self, data, device=None, name: str = "") -> None:
        super().__init__(data, device=device, requires_grad=True, name=name)


class Module:
    """Base class with parameter registration, modes, and device movement."""

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "training", True)

    def __setattr__(self, key: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[key] = value
        elif isinstance(value, Module):
            self._modules[key] = value
        object.__setattr__(self, key, value)

    # -- traversal --------------------------------------------------------
    def parameters(self) -> Iterator[Parameter]:
        for _, p in self.named_parameters():
            yield p

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def modules(self) -> Iterator["Module"]:
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def children(self) -> Iterator["Module"]:
        yield from self._modules.values()

    # -- state ------------------------------------------------------------
    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def parameter_bytes(self) -> int:
        return sum(p.nbytes for p in self.parameters())

    def state_dict(self) -> dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        if missing:
            raise KeyError(f"missing parameters in state dict: {sorted(missing)}")
        for name, param in own.items():
            value = np.asarray(state[name], dtype=param.data.dtype)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"{value.shape} vs {param.data.shape}"
                )
            param.data = value.copy()

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.grad = None

    # -- modes/devices -------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        object.__setattr__(self, "training", mode)
        for child in self._modules.values():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def to(self, device) -> "Module":
        """Move all parameters (simulated H2D copies for each tensor)."""
        for p in self.parameters():
            if device is not None and p.device is not device:
                device.h2d(p.data, "param_init")
            p.device = device
        for module in self.modules():
            module._moved_to(device)
        return self

    def _moved_to(self, device) -> None:
        """Hook for modules holding non-parameter device state (buffers)."""

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):
        raise NotImplementedError
