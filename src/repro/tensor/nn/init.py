"""Weight initialization schemes (Glorot/Kaiming/uniform), seeded via the
framework generator so models are reproducible."""

from __future__ import annotations

import math

import numpy as np

from .. import random as _random


def xavier_uniform(shape: tuple[int, ...], gain: float = 1.0) -> np.ndarray:
    fan_in, fan_out = _fans(shape)
    bound = gain * math.sqrt(6.0 / (fan_in + fan_out))
    return _random.generator().uniform(-bound, bound, shape).astype(np.float32)


def xavier_normal(shape: tuple[int, ...], gain: float = 1.0) -> np.ndarray:
    fan_in, fan_out = _fans(shape)
    std = gain * math.sqrt(2.0 / (fan_in + fan_out))
    return (_random.generator().normal(0.0, std, shape)).astype(np.float32)


def kaiming_uniform(shape: tuple[int, ...], a: float = math.sqrt(5.0)) -> np.ndarray:
    fan_in, _ = _fans(shape)
    gain = math.sqrt(2.0 / (1.0 + a * a))
    bound = gain * math.sqrt(3.0 / fan_in)
    return _random.generator().uniform(-bound, bound, shape).astype(np.float32)


def uniform(shape: tuple[int, ...], bound: float) -> np.ndarray:
    return _random.generator().uniform(-bound, bound, shape).astype(np.float32)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=np.float32)


def ones(shape: tuple[int, ...]) -> np.ndarray:
    return np.ones(shape, dtype=np.float32)


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    receptive = 1
    for s in shape[2:]:
        receptive *= s
    fan_in = shape[1] * receptive
    fan_out = shape[0] * receptive
    return fan_in, fan_out
