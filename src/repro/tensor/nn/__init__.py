"""Neural-network building blocks (the ``torch.nn`` analogue)."""

from .attention import MultiheadAttention
from .containers import ModuleDict, ModuleList, Sequential
from .layers import (
    BatchNorm1d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Embedding,
    LayerNorm,
    LeakyReLU,
    Linear,
    PReLU,
    ReLU,
    Sigmoid,
    Tanh,
)
from .module import Module, Parameter
from .rnn import ChildSumTreeLSTMCell, GRUCell, LSTMCell
from . import init

__all__ = [
    "BatchNorm1d",
    "BatchNorm2d",
    "ChildSumTreeLSTMCell",
    "Conv2d",
    "Dropout",
    "Embedding",
    "GRUCell",
    "LSTMCell",
    "LayerNorm",
    "LeakyReLU",
    "Linear",
    "Module",
    "ModuleDict",
    "ModuleList",
    "MultiheadAttention",
    "PReLU",
    "Parameter",
    "ReLU",
    "Sequential",
    "Sigmoid",
    "Tanh",
    "init",
]
