"""Multi-head attention, the core of the GraphWriter transformer encoder."""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from .. import functional as F
from ..tensor import Tensor
from .layers import Dropout, Linear
from .module import Module


class MultiheadAttention(Module):
    """Scaled dot-product attention over (batch, seq, dim) inputs.

    An optional additive mask (raw ndarray broadcastable to the attention
    logits) supports both padding masks and graph-structure masks — the
    GraphWriter encoder attends only along knowledge-graph edges.
    """

    def __init__(self, embed_dim: int, num_heads: int, dropout: float = 0.0) -> None:
        super().__init__()
        if embed_dim % num_heads != 0:
            raise ValueError("embed_dim must be divisible by num_heads")
        self.embed_dim = embed_dim
        self.num_heads = num_heads
        self.head_dim = embed_dim // num_heads
        self.q_proj = Linear(embed_dim, embed_dim)
        self.k_proj = Linear(embed_dim, embed_dim)
        self.v_proj = Linear(embed_dim, embed_dim)
        self.out_proj = Linear(embed_dim, embed_dim)
        self.dropout = Dropout(dropout)

    def _split_heads(self, x: Tensor, batch: int, seq: int) -> Tensor:
        return x.reshape(batch, seq, self.num_heads, self.head_dim).permute(0, 2, 1, 3)

    def forward(
        self,
        query: Tensor,
        key: Tensor,
        value: Tensor,
        attn_mask: Optional[np.ndarray] = None,
    ) -> Tensor:
        batch, q_len, _ = query.shape
        k_len = key.shape[1]
        q = self._split_heads(self.q_proj(query), batch, q_len)
        k = self._split_heads(self.k_proj(key), batch, k_len)
        v = self._split_heads(self.v_proj(value), batch, k_len)

        scale = 1.0 / math.sqrt(self.head_dim)
        scores = F.matmul(q, k.permute(0, 1, 3, 2)) * scale
        if attn_mask is not None:
            mask = Tensor(
                np.broadcast_to(attn_mask, scores.shape).astype(np.float32),
                device=scores.device,
                _skip_copy=True,
            )
            scores = scores + mask
        attn = self.dropout(F.softmax(scores, axis=-1))
        out = F.matmul(attn, v)
        out = out.permute(0, 2, 1, 3).reshape(batch, q_len, self.embed_dim)
        return self.out_proj(out)
