"""Core neural-network layers: Linear, Embedding, Conv2d, norms, dropout,
activations."""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from .. import functional as F
from ..tensor import Tensor
from . import init
from .module import Module, Parameter


class Linear(Module):
    """Affine transform ``y = x W^T + b``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_uniform((out_features, in_features)),
                                name="linear.weight")
        self.bias = (
            Parameter(init.uniform((out_features,), 1.0 / math.sqrt(in_features)),
                      name="linear.bias")
            if bias
            else None
        )

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Linear({self.in_features}, {self.out_features})"


class Embedding(Module):
    """Trainable lookup table."""

    def __init__(self, num_embeddings: int, embedding_dim: int) -> None:
        super().__init__()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(
            init.xavier_normal((num_embeddings, embedding_dim)),
            name="embedding.weight",
        )

    def forward(self, index) -> Tensor:
        return F.embedding(self.weight, index)


class Conv2d(Module):
    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size,
        stride=1,
        padding=0,
        bias: bool = True,
    ) -> None:
        super().__init__()
        if isinstance(kernel_size, int):
            kernel_size = (kernel_size, kernel_size)
        self.stride = (stride, stride) if isinstance(stride, int) else stride
        self.padding = (padding, padding) if isinstance(padding, int) else padding
        self.weight = Parameter(
            init.kaiming_uniform((out_channels, in_channels) + tuple(kernel_size)),
            name="conv.weight",
        )
        fan_in = in_channels * kernel_size[0] * kernel_size[1]
        self.bias = (
            Parameter(init.uniform((out_channels,), 1.0 / math.sqrt(fan_in)),
                      name="conv.bias")
            if bias
            else None
        )

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, stride=self.stride,
                        padding=self.padding)


class _BatchNorm(Module):
    CHANNEL_AXIS = 1

    def __init__(self, num_features: int, eps: float = 1e-5,
                 momentum: float = 0.1) -> None:
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(init.ones((num_features,)), name="bn.weight")
        self.bias = Parameter(init.zeros((num_features,)), name="bn.bias")
        self.running_mean = np.zeros(num_features, dtype=np.float32)
        self.running_var = np.ones(num_features, dtype=np.float32)

    def forward(self, x: Tensor) -> Tensor:
        if self.training:
            out = F.batch_norm(x, self.weight, self.bias,
                               channel_axis=self.CHANNEL_AXIS, eps=self.eps)
            axes = tuple(i for i in range(x.ndim) if i != self.CHANNEL_AXIS)
            m = self.momentum
            self.running_mean = (1 - m) * self.running_mean + m * x.data.mean(axis=axes)
            self.running_var = (1 - m) * self.running_var + m * x.data.var(axis=axes)
            return out
        shape = [1] * x.ndim
        shape[self.CHANNEL_AXIS] = self.num_features
        mean = Tensor(self.running_mean.reshape(shape), device=x.device,
                      _skip_copy=True)
        std = Tensor(np.sqrt(self.running_var + self.eps).reshape(shape),
                     device=x.device, _skip_copy=True)
        w = self.weight.reshape(tuple(shape))
        b = self.bias.reshape(tuple(shape))
        return (x - mean) / std * w + b


class BatchNorm1d(_BatchNorm):
    """BatchNorm over (N, C) or (N, C, L) inputs."""


class BatchNorm2d(_BatchNorm):
    """BatchNorm over (N, C, H, W) inputs."""


class LayerNorm(Module):
    def __init__(self, normalized_shape: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.eps = eps
        self.weight = Parameter(init.ones((normalized_shape,)), name="ln.weight")
        self.bias = Parameter(init.zeros((normalized_shape,)), name="ln.bias")

    def forward(self, x: Tensor) -> Tensor:
        return F.layer_norm(x, self.weight, self.bias, eps=self.eps)


class Dropout(Module):
    def __init__(self, p: float = 0.5) -> None:
        super().__init__()
        self.p = p

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, training=self.training)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)


class LeakyReLU(Module):
    def __init__(self, negative_slope: float = 0.01) -> None:
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return F.leaky_relu(x, self.negative_slope)


class PReLU(Module):
    """Parametric ReLU (used by ARGA/DeepGCN; drives training sparsity)."""

    def __init__(self, init_slope: float = 0.25) -> None:
        super().__init__()
        self.slope = Parameter(np.full((1,), init_slope, dtype=np.float32),
                               name="prelu.slope")

    def forward(self, x: Tensor) -> Tensor:
        return F.prelu(x, self.slope)


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.tanh(x)


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.sigmoid(x)
