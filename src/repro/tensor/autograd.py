"""Reverse-mode autograd tape.

Mirrors the PyTorch architecture at small scale: every differentiable
operation is a :class:`Function` with a ``forward`` that computes the numpy
result (and emits kernels to the simulated device) and a ``backward`` that
produces input gradients (emitting the backward kernels).  ``Tensor.backward``
walks the recorded graph in reverse topological order.

The *phase* context ("forward" / "backward" / "optimizer") tags every kernel
a region emits, so profilers can split training time the way the paper does.
"""

from __future__ import annotations

import contextlib
from typing import TYPE_CHECKING, Any, Optional, Sequence

import numpy as np

from ..gpu import memory as gpu_memory

if TYPE_CHECKING:  # pragma: no cover
    from .tensor import Tensor

_grad_enabled = True
_current_phase = "forward"

# memory telemetry attributes allocations to the phase that made them; the
# gpu layer can't import us, so hand it the phase accessor
gpu_memory.set_phase_provider(lambda: _current_phase)


def is_grad_enabled() -> bool:
    return _grad_enabled


@contextlib.contextmanager
def no_grad():
    """Disable graph recording (like ``torch.no_grad``)."""
    global _grad_enabled
    prev = _grad_enabled
    _grad_enabled = False
    try:
        yield
    finally:
        _grad_enabled = prev


@contextlib.contextmanager
def phase(name: str):
    """Tag kernels emitted inside the block with a training phase."""
    global _current_phase
    prev = _current_phase
    _current_phase = name
    try:
        yield
    finally:
        _current_phase = prev


def current_phase() -> str:
    return _current_phase


class Context:
    """Per-call scratch space connecting forward and backward."""

    __slots__ = ("saved", "device", "extras")

    def __init__(self) -> None:
        self.saved: tuple = ()
        self.device = None
        self.extras: dict[str, Any] = {}

    def save_for_backward(self, *items: Any) -> None:
        self.saved = items
        tracker = gpu_memory._TRACKER
        if tracker is not None and self.device is tracker.device:
            # Saved activations pin device memory until backward consumes
            # them — the footprint component training is famous for.  Raw
            # arrays only: saved Tensors registered at creation already.
            for item in items:
                if isinstance(item, np.ndarray):
                    tracker.register(item, label="saved_activation")


class Function:
    """Base class for differentiable operations.

    Subclasses implement::

        @staticmethod
        def forward(ctx, *args, **kwargs) -> np.ndarray
        @staticmethod
        def backward(ctx, grad: np.ndarray) -> Sequence[Optional[np.ndarray]]

    ``forward`` receives raw positional arguments where tensors have already
    been replaced by their numpy payloads is NOT done — it receives the
    original arguments, so it can reach ``.data`` and ``.device`` itself.
    ``backward`` returns one gradient (or None) per *tensor* argument of
    forward, in order.
    """

    def __init__(self) -> None:
        self.ctx = Context()
        self.inputs: tuple = ()
        self.needs_grad: tuple = ()

    @staticmethod
    def forward(ctx: Context, *args: Any, **kwargs: Any) -> np.ndarray:
        raise NotImplementedError

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray) -> Sequence[Optional[np.ndarray]]:
        raise NotImplementedError

    @classmethod
    def apply(cls, *args: Any, **kwargs: Any) -> "Tensor":
        from .tensor import Tensor

        fn = cls()
        tensor_args = tuple(a for a in args if isinstance(a, Tensor))
        device = None
        for t in tensor_args:
            if t.device is not None:
                device = t.device
                break
        fn.ctx.device = device

        out_data = cls.forward(fn.ctx, *args, **kwargs)
        requires = _grad_enabled and any(t.requires_grad for t in tensor_args)
        out = Tensor(out_data, device=device, requires_grad=requires, _skip_copy=True)
        if requires:
            fn.inputs = tensor_args
            fn.needs_grad = tuple(t.requires_grad for t in tensor_args)
            out._ctx = fn
        return out


def topo_order(root: "Tensor") -> list["Tensor"]:
    """Reverse topological order of the autograd graph ending at ``root``."""
    order: list["Tensor"] = []
    seen: set[int] = set()
    stack: list[tuple["Tensor", bool]] = [(root, False)]
    while stack:
        node, processed = stack.pop()
        if processed:
            order.append(node)
            continue
        if id(node) in seen:
            continue
        seen.add(id(node))
        stack.append((node, True))
        if node._ctx is not None:
            for parent in node._ctx.inputs:
                if id(parent) not in seen:
                    stack.append((parent, False))
    order.reverse()
    return order


def backward(root: "Tensor", grad: Optional[np.ndarray] = None) -> None:
    """Run reverse-mode differentiation from ``root``."""
    from .tensor import Tensor
    from .ops import base as ops_base

    if grad is None:
        if root.data.size != 1:
            raise RuntimeError("backward() without gradient requires a scalar")
        grad = np.ones_like(root.data)

    grads: dict[int, np.ndarray] = {id(root): np.asarray(grad, dtype=root.data.dtype)}

    with phase("backward"):
        for node in topo_order(root):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node._ctx is None:
                if node.requires_grad:
                    if node.grad is None:
                        # dtype passed explicitly: the grad must keep the
                        # leaf's precision even when float64 would otherwise
                        # be downcast.
                        node.grad = Tensor(
                            node_grad.copy(), device=node.device,
                            dtype=node_grad.dtype, _skip_copy=True
                        )
                    else:
                        ops_base.emit_accumulate(node.device, node_grad)
                        node.grad.data = node.grad.data + node_grad
                continue
            fn = node._ctx
            input_grads = fn.backward(fn.ctx, node_grad)
            if len(input_grads) != len(fn.inputs):
                raise RuntimeError(
                    f"{type(fn).__name__}.backward returned "
                    f"{len(input_grads)} grads for {len(fn.inputs)} inputs"
                )
            for parent, g, needs in zip(fn.inputs, input_grads, fn.needs_grad):
                if g is None or not needs:
                    continue
                g = np.asarray(g, dtype=parent.data.dtype)
                if g.shape != parent.data.shape:
                    raise RuntimeError(
                        f"{type(fn).__name__} produced grad of shape {g.shape} "
                        f"for input of shape {parent.data.shape}"
                    )
                key = id(parent)
                if key in grads:
                    ops_base.emit_accumulate(parent.device, g)
                    grads[key] = grads[key] + g
                else:
                    grads[key] = g
