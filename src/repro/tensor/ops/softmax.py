"""Softmax family (softmax / log-softmax), classified as reduction-style
kernels: each launch makes max/sum passes over the reduced axis."""

from __future__ import annotations

import numpy as np

from ...gpu import AccessPattern, OpClass
from ..autograd import Function
from .base import COSTS, as_array, launch


def _data(x):
    return as_array(x)


def _launch_softmax(device, name: str, size: int) -> None:
    if device is None or size == 0:
        return
    launch(
        device,
        name,
        OpClass.SOFTMAX,
        threads=size,
        cost=COSTS["softmax"],
        bytes_read=float(size * 4),
        bytes_written=float(size * 4),
        reuse_factor=2.0,
        access=AccessPattern.coalesced(4),
    )


def _softmax(ad: np.ndarray, axis: int) -> np.ndarray:
    shifted = ad - ad.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=axis, keepdims=True)


class Softmax(Function):
    @staticmethod
    def forward(ctx, a, axis: int = -1):
        ad = _data(a)
        out = _softmax(ad, axis)
        ctx.save_for_backward(out)
        ctx.extras["axis"] = axis
        _launch_softmax(ctx.device, "softmax_fwd", int(ad.size))
        return out.astype(ad.dtype, copy=False)

    @staticmethod
    def backward(ctx, grad):
        (out,) = ctx.saved
        axis = ctx.extras["axis"]
        dot = (grad * out).sum(axis=axis, keepdims=True)
        _launch_softmax(ctx.device, "softmax_bwd", int(grad.size))
        return (out * (grad - dot),)


class LogSoftmax(Function):
    @staticmethod
    def forward(ctx, a, axis: int = -1):
        ad = _data(a)
        shifted = ad - ad.max(axis=axis, keepdims=True)
        log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        out = shifted - log_z
        ctx.save_for_backward(np.exp(out))
        ctx.extras["axis"] = axis
        _launch_softmax(ctx.device, "log_softmax_fwd", int(ad.size))
        return out.astype(ad.dtype, copy=False)

    @staticmethod
    def backward(ctx, grad):
        (softmax,) = ctx.saved
        axis = ctx.extras["axis"]
        _launch_softmax(ctx.device, "log_softmax_bwd", int(grad.size))
        return (grad - softmax * grad.sum(axis=axis, keepdims=True),)
