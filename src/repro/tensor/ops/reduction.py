"""Reduction operations: sum / mean / max / min over axes."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...gpu import OpClass
from ..autograd import Function
from .base import as_array, launch_elementwise, launch_reduction


def _data(x):
    return as_array(x)


def _norm_axis(axis, ndim: int):
    if axis is None:
        return None
    if isinstance(axis, int):
        axis = (axis,)
    return tuple(a % ndim for a in axis)


class Sum(Function):
    @staticmethod
    def forward(ctx, a, axis=None, keepdims: bool = False):
        ad = _data(a)
        axis = _norm_axis(axis, ad.ndim)
        ctx.extras.update(shape=ad.shape, axis=axis, keepdims=keepdims)
        out = ad.sum(axis=axis, keepdims=keepdims)
        launch_reduction(ctx.device, "reduce_sum", int(ad.size),
                         int(np.asarray(out).size))
        return np.asarray(out, dtype=ad.dtype)

    @staticmethod
    def backward(ctx, grad):
        shape = ctx.extras["shape"]
        axis = ctx.extras["axis"]
        keepdims = ctx.extras["keepdims"]
        if axis is not None and not keepdims:
            grad = np.expand_dims(grad, axis)
        out = np.broadcast_to(grad, shape).copy()
        launch_elementwise(ctx.device, "ew_sum_bwd", int(out.size), 1, kind="copy")
        return (out,)


class Mean(Function):
    @staticmethod
    def forward(ctx, a, axis=None, keepdims: bool = False):
        ad = _data(a)
        axis = _norm_axis(axis, ad.ndim)
        out = ad.mean(axis=axis, keepdims=keepdims)
        count = ad.size / max(1, np.asarray(out).size)
        ctx.extras.update(shape=ad.shape, axis=axis, keepdims=keepdims, count=count)
        launch_reduction(ctx.device, "reduce_mean", int(ad.size),
                         int(np.asarray(out).size))
        return np.asarray(out, dtype=ad.dtype)

    @staticmethod
    def backward(ctx, grad):
        shape = ctx.extras["shape"]
        axis = ctx.extras["axis"]
        keepdims = ctx.extras["keepdims"]
        count = ctx.extras["count"]
        if axis is not None and not keepdims:
            grad = np.expand_dims(grad, axis)
        out = np.broadcast_to(grad / count, shape).copy()
        launch_elementwise(ctx.device, "ew_mean_bwd", int(out.size), 1, kind="copy")
        return (out,)


class _MinMax(Function):
    """Max/min over one axis or all; grad flows to the arg-extreme slots."""

    OP = "max"

    @classmethod
    def _forward(cls, ctx, a, axis, keepdims):
        ad = _data(a)
        axis_n = axis if axis is None else axis % ad.ndim
        reducer = np.max if cls.OP == "max" else np.min
        out = reducer(ad, axis=axis_n, keepdims=True)
        mask = ad == out
        # Split grad among ties, as real kernels effectively do via atomics.
        counts = mask.sum(axis=axis_n, keepdims=True)
        ctx.save_for_backward(mask, counts)
        ctx.extras.update(axis=axis_n, keepdims=keepdims, shape=ad.shape)
        launch_reduction(ctx.device, f"reduce_{cls.OP}", int(ad.size),
                         int(out.size))
        if not keepdims:
            out = np.squeeze(out, axis=axis_n) if axis_n is not None else out.reshape(())
        return np.asarray(out, dtype=ad.dtype)

    @classmethod
    def _backward(cls, ctx, grad):
        mask, counts = ctx.saved
        axis = ctx.extras["axis"]
        keepdims = ctx.extras["keepdims"]
        if not keepdims and axis is not None:
            grad = np.expand_dims(grad, axis)
        out = mask * (grad / counts)
        launch_elementwise(ctx.device, f"ew_{cls.OP}_bwd", int(out.size), 2)
        return (np.asarray(out, dtype=mask.dtype if mask.dtype.kind == "f" else np.float32).reshape(ctx.extras["shape"]),)


class Max(_MinMax):
    OP = "max"

    @staticmethod
    def forward(ctx, a, axis=None, keepdims: bool = False):
        return Max._forward(ctx, a, axis, keepdims)

    @staticmethod
    def backward(ctx, grad):
        return Max._backward(ctx, grad)


class Min(_MinMax):
    OP = "min"

    @staticmethod
    def forward(ctx, a, axis=None, keepdims: bool = False):
        return Min._forward(ctx, a, axis, keepdims)

    @staticmethod
    def backward(ctx, grad):
        return Min._backward(ctx, grad)


def argmax(a, axis: Optional[int] = None) -> np.ndarray:
    """Non-differentiable argmax (emits a reduction kernel)."""
    ad = _data(a)
    from .base import device_of

    out = np.argmax(ad, axis=axis)
    launch_reduction(device_of(a), "reduce_argmax", int(ad.size),
                     int(np.asarray(out).size))
    return out
