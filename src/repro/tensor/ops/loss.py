"""Fused loss functions: cross entropy, NLL, BCE-with-logits, MSE.

Fused the way framework kernels are (log-softmax + gather + reduce in one
region), emitting the same kernel sequence real training shows: a softmax
pass, an index gather of the target logits, and a mean reduction.
"""

from __future__ import annotations

import numpy as np

from ...gpu import OpClass
from ..autograd import Function
from .base import COSTS, as_array, launch, launch_elementwise, launch_reduction
from .scattergather import launch_gather


def _data(x):
    return as_array(x)


def _log_softmax(logits: np.ndarray) -> np.ndarray:
    # two row-size temporaries instead of four; same per-element operation
    # order as the naive expression, hence bit-identical
    shifted = logits - logits.max(axis=-1, keepdims=True)
    norm = np.exp(shifted).sum(axis=-1, keepdims=True)
    np.log(norm, out=norm)
    shifted -= norm
    return shifted


class CrossEntropy(Function):
    """Mean cross-entropy of logits (rows) against int class targets."""

    @staticmethod
    def forward(ctx, logits, target):
        ld = _data(logits)
        td = np.asarray(_data(target)).astype(np.int64, copy=False).reshape(-1)
        logp = _log_softmax(ld.reshape(-1, ld.shape[-1]))
        n = logp.shape[0]
        picked = logp[np.arange(n), td]
        loss = -picked.mean()
        ctx.save_for_backward(np.exp(logp), td)
        ctx.extras["shape"] = ld.shape
        launch(ctx.device, "log_softmax_fwd", OpClass.SOFTMAX, threads=int(ld.size),
               cost=COSTS["softmax"], bytes_read=float(ld.size * 4),
               bytes_written=float(ld.size * 4))
        launch_gather(ctx.device, "nll_gather", td, 1)
        launch_reduction(ctx.device, "reduce_loss", n, 1)
        return np.asarray(loss, dtype=ld.dtype)

    @staticmethod
    def backward(ctx, grad):
        softmax, td = ctx.saved
        shape = ctx.extras["shape"]
        n = softmax.shape[0]
        g = softmax.copy()
        g[np.arange(n), td] -= 1.0
        g *= np.asarray(grad) / n
        launch_elementwise(ctx.device, "ew_ce_bwd", int(g.size), 2)
        return (g.reshape(shape),)


class NLLLoss(Function):
    """Mean negative log likelihood of log-probabilities."""

    @staticmethod
    def forward(ctx, logp, target):
        lp = _data(logp)
        td = np.asarray(_data(target)).astype(np.int64).reshape(-1)
        n = lp.reshape(-1, lp.shape[-1]).shape[0]
        loss = -lp.reshape(-1, lp.shape[-1])[np.arange(n), td].mean()
        ctx.save_for_backward(td)
        ctx.extras["shape"] = lp.shape
        launch_gather(ctx.device, "nll_gather", td, 1)
        launch_reduction(ctx.device, "reduce_loss", n, 1)
        return np.asarray(loss, dtype=lp.dtype)

    @staticmethod
    def backward(ctx, grad):
        (td,) = ctx.saved
        shape = ctx.extras["shape"]
        cols = shape[-1]
        n = td.size
        g = np.zeros((n, cols), dtype=np.asarray(grad).dtype)
        g[np.arange(n), td] = -np.asarray(grad) / n
        launch_elementwise(ctx.device, "ew_nll_bwd", int(g.size), 1)
        return (g.reshape(shape),)


class BCEWithLogits(Function):
    """Mean binary cross entropy on logits (numerically stable fused form)."""

    @staticmethod
    def forward(ctx, logits, target, pos_weight: float = 1.0):
        ld = _data(logits)
        td = _data(target).astype(ld.dtype, copy=False)
        # log(1 + exp(-|x|)) + max(x, 0) - x*t, stable for any x.  ARGA's
        # reconstruction loss runs this over a dense N x N adjacency, so the
        # element chain works in-place on two temporaries instead of
        # allocating one per ufunc (same per-element operation order, hence
        # bit-identical to the naive expression).
        loss_elems = np.maximum(ld, 0)
        loss_elems -= ld * td
        tail = np.abs(ld)
        np.negative(tail, out=tail)
        np.exp(tail, out=tail)
        np.log1p(tail, out=tail)
        loss_elems += tail
        if pos_weight != 1.0:
            weights = np.where(td > 0.5, np.float32(pos_weight), np.float32(1.0))
            loss_elems *= weights
            ctx.extras["weights"] = weights
        loss = loss_elems.mean()
        sig = np.clip(ld, -60, 60)
        np.negative(sig, out=sig)
        np.exp(sig, out=sig)
        sig += 1.0
        np.reciprocal(sig, out=sig)
        ctx.save_for_backward(sig, td)
        ctx.extras["pos_weight"] = pos_weight
        launch_elementwise(ctx.device, "ew_bce_fwd", int(ld.size), 2,
                           kind="unary", flops_per_elem=5.0)
        launch_reduction(ctx.device, "reduce_loss", int(ld.size), 1)
        return np.asarray(loss, dtype=ld.dtype)

    @staticmethod
    def backward(ctx, grad):
        sig, td = ctx.saved
        g = (sig - td) / sig.size
        if ctx.extras["pos_weight"] != 1.0:
            g = g * ctx.extras["weights"]
        g = g * np.asarray(grad)
        launch_elementwise(ctx.device, "ew_bce_bwd", int(g.size), 2)
        return (g.astype(sig.dtype, copy=False),)


class MSELoss(Function):
    @staticmethod
    def forward(ctx, pred, target):
        pd = _data(pred)
        td = _data(target).astype(pd.dtype)
        diff = pd - td
        ctx.save_for_backward(diff)
        launch_elementwise(ctx.device, "ew_mse_fwd", int(pd.size), 2)
        launch_reduction(ctx.device, "reduce_loss", int(pd.size), 1)
        return np.asarray((diff * diff).mean(), dtype=pd.dtype)

    @staticmethod
    def backward(ctx, grad):
        (diff,) = ctx.saved
        g = 2.0 * diff / diff.size * np.asarray(grad)
        launch_elementwise(ctx.device, "ew_mse_bwd", int(g.size), 2)
        return (g,)
