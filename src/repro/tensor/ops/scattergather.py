"""Irregular data-movement operations: gather / scatter / index select /
embedding lookups and segment reductions.

These are the aggregation-phase kernels of GNN training.  Each launch
attaches its *actual* index array so the device measures real warp
divergence and locality — the simulator's stand-in for NVBit.
"""

from __future__ import annotations

import weakref

import numpy as np
import scipy.sparse as sp

from ...gpu import OpClass, analysis_cache
from ..autograd import Function
from .base import (
    COSTS,
    FLOAT_BYTES,
    INDEX_BYTES,
    _row_access_root,
    as_array,
    irregular_row_access,
    launch,
)


def _data(x):
    return as_array(x)


def _as_index(x) -> np.ndarray:
    """Index payload as int64, without copying when it already is.

    Preserving the identity of persistent index arrays (edge lists, batch
    assignments held by the workload) is what lets the launch-analysis
    layer memoize ``irregular_row_access`` expansions and divergence
    measurements across layers and epochs.
    """
    return np.asarray(_data(x)).astype(np.int64, copy=False)


def _row_width(shape: tuple[int, ...]) -> int:
    width = 1
    for s in shape[1:]:
        width *= s
    return max(1, width)


def launch_gather(device, name: str, indices: np.ndarray, row_width: int,
                  op_class: OpClass = OpClass.GATHER) -> None:
    if device is None or indices.size == 0:
        return
    n = int(indices.size) * row_width
    cost = COSTS["gather"]
    launch(
        device,
        name,
        op_class,
        threads=n,
        cost=cost,
        bytes_read=float(n * FLOAT_BYTES + indices.size * INDEX_BYTES),
        bytes_written=float(n * FLOAT_BYTES),
        access=irregular_row_access(indices, row_width),
    )


def launch_scatter(device, name: str, indices: np.ndarray, row_width: int) -> None:
    if device is None or indices.size == 0:
        return
    n = int(indices.size) * row_width
    launch(
        device,
        name,
        OpClass.SCATTER,
        threads=n,
        cost=COSTS["scatter"],
        bytes_read=float(n * FLOAT_BYTES + indices.size * INDEX_BYTES),
        bytes_written=float(n * FLOAT_BYTES),
        access=irregular_row_access(indices, row_width),
    )


#: memoized segment-sum *plans* — the index-only prep of a segment sum (the
#: CSR selection matrix for wide rows, the flattened (segment, column) keys
#: for narrow ones) keyed by the index array's buffer identity + geometry.
#: GNN aggregation sums over the same edge array every layer of every epoch,
#: so the argsort/CSR construction runs once per graph.  Same contract as
#: ``irregular_row_access``: index arrays are never mutated in place.
_SEGSUM_PLANS: dict[tuple, object] = {}
_SEGSUM_KEYS: dict[int, list[tuple]] = {}


def _evict_segsum(owner_id: int) -> None:
    for key in _SEGSUM_KEYS.pop(owner_id, ()):
        _SEGSUM_PLANS.pop(key, None)


def _clear_segsum_plans() -> None:
    _SEGSUM_PLANS.clear()
    _SEGSUM_KEYS.clear()


analysis_cache.register_clear_hook(_clear_segsum_plans)


def _segsum_plan(idx: np.ndarray, num_segments: int, cols: int):
    """Index-only prep of a segment sum, memoized per index array."""
    key = None
    if analysis_cache.enabled():
        root = _row_access_root(idx)
        key = (id(root), idx.__array_interface__["data"][0], idx.shape,
               idx.strides, idx.dtype.str, num_segments, cols)
        plan = _SEGSUM_PLANS.get(key)
        if plan is not None:
            return plan
    if cols >= 24:
        order = np.argsort(idx, kind="stable")
        indptr = np.zeros(num_segments + 1, np.int64)
        np.cumsum(np.bincount(idx, minlength=num_segments), out=indptr[1:])
        plan = sp.csr_matrix(
            (np.ones(idx.size, np.float64), order, indptr),
            shape=(num_segments, idx.size),
        )
    else:
        plan = (idx[:, None] * cols + np.arange(cols)[None, :]).reshape(-1)
    if key is not None:
        try:
            if key[0] not in _SEGSUM_KEYS:
                weakref.finalize(root, _evict_segsum, key[0])
            _SEGSUM_KEYS.setdefault(key[0], []).append(key)
            _SEGSUM_PLANS[key] = plan
        except TypeError:  # pragma: no cover - root doesn't support weakrefs
            pass
    return plan


def segment_sum_data(src: np.ndarray, index: np.ndarray, num_segments: int) -> np.ndarray:
    """Sum rows of ``src`` into ``num_segments`` buckets chosen by ``index``.

    The numpy equivalent of an atomic scatter-add kernel, with two
    bit-identical formulations: wide rows go through a CSR selection-matrix
    product (row ``s`` holds ones at the source rows with ``index == s`` in
    ascending source order, so the float64 accumulation order matches
    bincount element for element while skipping its ``rows x cols``
    key/weight temporaries); narrow rows keep the bincount over flattened
    (segment, column) keys, where the one stable argsort of the CSR route
    would dominate.  The index-only prep of either branch is memoized per
    index array (:func:`_segsum_plan`).
    """
    # reshape(n, -1) cannot infer the trailing dim when n == 0, so spell it
    # out; an empty source (e.g. a sampled block with no edges) scatters to
    # all-zero segments.
    cols = int(np.prod(src.shape[1:], dtype=np.int64)) if src.ndim > 1 else 1
    src2d = src.reshape(src.shape[0], cols)
    idx = index.astype(np.int64, copy=False)
    plan = _segsum_plan(idx, num_segments, cols)
    if cols >= 24:
        sums = plan @ src2d.astype(np.float64, copy=False)
    else:
        sums = np.bincount(plan, weights=src2d.reshape(-1),
                           minlength=num_segments * cols)
    return sums.reshape(
        (num_segments,) + src.shape[1:]
    ).astype(src.dtype, copy=False)


class IndexSelect(Function):
    """Select rows along axis 0 (PyTorch ``index_select`` / fancy indexing)."""

    @staticmethod
    def forward(ctx, a, index):
        ad = _data(a)
        idx = _as_index(index).reshape(-1)
        ctx.save_for_backward(idx)
        ctx.extras["in_rows"] = ad.shape[0]
        out = ad[idx]
        launch_gather(ctx.device, "index_select", idx, _row_width(ad.shape),
                      op_class=OpClass.INDEX_SELECT)
        return out

    @staticmethod
    def backward(ctx, grad):
        (idx,) = ctx.saved
        in_rows = ctx.extras["in_rows"]
        out = segment_sum_data(grad, idx, in_rows)
        launch_scatter(ctx.device, "index_select_bwd_scatter", idx,
                       _row_width(grad.shape))
        return (out,)


class Gather(Function):
    """Elementwise gather along an axis (``torch.gather`` semantics)."""

    @staticmethod
    def forward(ctx, a, index, axis: int):
        ad = _data(a)
        idx = _as_index(index)
        ctx.save_for_backward(idx)
        ctx.extras.update(axis=axis, shape=ad.shape)
        out = np.take_along_axis(ad, idx, axis=axis)
        launch_gather(ctx.device, "gather_dim", idx.reshape(-1), 1)
        return out

    @staticmethod
    def backward(ctx, grad):
        (idx,) = ctx.saved
        axis = ctx.extras["axis"]
        shape = ctx.extras["shape"]
        out = np.zeros(shape, dtype=grad.dtype)
        # Accumulate (not overwrite): duplicate indices along the gather axis
        # must each contribute, like the atomic adds of the real kernel.
        grids = list(np.indices(idx.shape))
        grids[axis] = idx
        np.add.at(out, tuple(grids), grad)
        launch_scatter(ctx.device, "gather_dim_bwd", idx.reshape(-1), 1)
        return (out,)


class ScatterAddRows(Function):
    """out[index[e]] += src[e]  — edge-to-node aggregation (atomic adds)."""

    @staticmethod
    def forward(ctx, src, index, num_segments: int):
        sd = _data(src)
        idx = _as_index(index).reshape(-1)
        ctx.save_for_backward(idx)
        out = segment_sum_data(sd, idx, num_segments)
        launch_scatter(ctx.device, "scatter_add", idx, _row_width(sd.shape))
        return out

    @staticmethod
    def backward(ctx, grad):
        (idx,) = ctx.saved
        out = grad[idx]
        launch_gather(ctx.device, "scatter_add_bwd_gather", idx,
                      _row_width(grad.shape))
        return (out,)


class SegmentMax(Function):
    """out[s] = max over rows with index == s (max-pooling aggregation)."""

    @staticmethod
    def forward(ctx, src, index, num_segments: int):
        sd = _data(src)
        idx = _as_index(index).reshape(-1)
        src2d = sd.reshape(sd.shape[0], -1)
        out = np.full((num_segments, src2d.shape[1]), -np.inf, dtype=src2d.dtype)
        np.maximum.at(out, idx, src2d)
        empty = ~np.isin(np.arange(num_segments), idx)
        out[empty] = 0.0
        winners = out[idx] == src2d
        ctx.save_for_backward(idx, winners, np.array(sd.shape))
        ctx.extras["num_segments"] = num_segments
        launch_scatter(ctx.device, "scatter_max", idx, src2d.shape[1])
        return out.reshape((num_segments,) + sd.shape[1:])

    @staticmethod
    def backward(ctx, grad):
        idx, winners, shape = ctx.saved
        grad2d = grad.reshape(grad.shape[0], -1)
        # Split gradient among tied winners within each segment.
        counts = np.zeros_like(grad2d)
        np.add.at(counts, idx, winners.astype(grad2d.dtype))
        denom = np.where(counts[idx] > 0, counts[idx], 1.0)
        out = (grad2d[idx] * winners) / denom
        launch_gather(ctx.device, "scatter_max_bwd", idx, grad2d.shape[1])
        return (out.reshape(tuple(shape)),)


class Embedding(Function):
    """Row lookup into a trainable table; backward is a scatter-add."""

    @staticmethod
    def forward(ctx, weight, index):
        wd = _data(weight)
        idx = _as_index(index)
        ctx.save_for_backward(idx)
        ctx.extras["rows"] = wd.shape[0]
        out = wd[idx.reshape(-1)].reshape(idx.shape + (wd.shape[1],))
        launch_gather(ctx.device, "embedding_fwd", idx.reshape(-1), wd.shape[1],
                      op_class=OpClass.EMBEDDING)
        return out

    @staticmethod
    def backward(ctx, grad):
        (idx,) = ctx.saved
        rows = ctx.extras["rows"]
        flat = idx.reshape(-1)
        grad2d = grad.reshape(flat.size, -1)
        out = segment_sum_data(grad2d, flat, rows)
        launch_scatter(ctx.device, "embedding_bwd_scatter", flat, grad2d.shape[1])
        return (out,)
