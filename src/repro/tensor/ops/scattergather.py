"""Irregular data-movement operations: gather / scatter / index select /
embedding lookups and segment reductions.

These are the aggregation-phase kernels of GNN training.  Each launch
attaches its *actual* index array so the device measures real warp
divergence and locality — the simulator's stand-in for NVBit.
"""

from __future__ import annotations

import numpy as np

from ...gpu import OpClass
from ..autograd import Function
from .base import (
    COSTS,
    FLOAT_BYTES,
    INDEX_BYTES,
    irregular_row_access,
    launch,
)


def _data(x):
    from .base import as_array

    return as_array(x)


def _row_width(shape: tuple[int, ...]) -> int:
    width = 1
    for s in shape[1:]:
        width *= s
    return max(1, width)


def launch_gather(device, name: str, indices: np.ndarray, row_width: int,
                  op_class: OpClass = OpClass.GATHER) -> None:
    if device is None or indices.size == 0:
        return
    n = int(indices.size) * row_width
    cost = COSTS["gather"]
    launch(
        device,
        name,
        op_class,
        threads=n,
        cost=cost,
        bytes_read=float(n * FLOAT_BYTES + indices.size * INDEX_BYTES),
        bytes_written=float(n * FLOAT_BYTES),
        access=irregular_row_access(indices, row_width),
    )


def launch_scatter(device, name: str, indices: np.ndarray, row_width: int) -> None:
    if device is None or indices.size == 0:
        return
    n = int(indices.size) * row_width
    launch(
        device,
        name,
        OpClass.SCATTER,
        threads=n,
        cost=COSTS["scatter"],
        bytes_read=float(n * FLOAT_BYTES + indices.size * INDEX_BYTES),
        bytes_written=float(n * FLOAT_BYTES),
        access=irregular_row_access(indices, row_width),
    )


def segment_sum_data(src: np.ndarray, index: np.ndarray, num_segments: int) -> np.ndarray:
    """Sum rows of ``src`` into ``num_segments`` buckets chosen by ``index``.

    Vectorized via bincount on flattened (segment, column) keys — the numpy
    equivalent of an atomic scatter-add kernel.
    """
    src2d = src.reshape(src.shape[0], -1)
    cols = src2d.shape[1]
    flat_keys = (index.astype(np.int64)[:, None] * cols + np.arange(cols)[None, :]).reshape(-1)
    sums = np.bincount(flat_keys, weights=src2d.reshape(-1),
                       minlength=num_segments * cols)
    return sums.reshape(num_segments, cols).reshape(
        (num_segments,) + src.shape[1:]
    ).astype(src.dtype, copy=False)


class IndexSelect(Function):
    """Select rows along axis 0 (PyTorch ``index_select`` / fancy indexing)."""

    @staticmethod
    def forward(ctx, a, index):
        ad = _data(a)
        idx = np.asarray(_data(index)).astype(np.int64).reshape(-1)
        ctx.save_for_backward(idx)
        ctx.extras["in_rows"] = ad.shape[0]
        out = ad[idx]
        launch_gather(ctx.device, "index_select", idx, _row_width(ad.shape),
                      op_class=OpClass.INDEX_SELECT)
        return out

    @staticmethod
    def backward(ctx, grad):
        (idx,) = ctx.saved
        in_rows = ctx.extras["in_rows"]
        out = segment_sum_data(grad, idx, in_rows)
        launch_scatter(ctx.device, "index_select_bwd_scatter", idx,
                       _row_width(grad.shape))
        return (out,)


class Gather(Function):
    """Elementwise gather along an axis (``torch.gather`` semantics)."""

    @staticmethod
    def forward(ctx, a, index, axis: int):
        ad = _data(a)
        idx = np.asarray(_data(index)).astype(np.int64)
        ctx.save_for_backward(idx)
        ctx.extras.update(axis=axis, shape=ad.shape)
        out = np.take_along_axis(ad, idx, axis=axis)
        launch_gather(ctx.device, "gather_dim", idx.reshape(-1), 1)
        return out

    @staticmethod
    def backward(ctx, grad):
        (idx,) = ctx.saved
        axis = ctx.extras["axis"]
        shape = ctx.extras["shape"]
        out = np.zeros(shape, dtype=grad.dtype)
        # Accumulate (not overwrite): duplicate indices along the gather axis
        # must each contribute, like the atomic adds of the real kernel.
        grids = list(np.indices(idx.shape))
        grids[axis] = idx
        np.add.at(out, tuple(grids), grad)
        launch_scatter(ctx.device, "gather_dim_bwd", idx.reshape(-1), 1)
        return (out,)


class ScatterAddRows(Function):
    """out[index[e]] += src[e]  — edge-to-node aggregation (atomic adds)."""

    @staticmethod
    def forward(ctx, src, index, num_segments: int):
        sd = _data(src)
        idx = np.asarray(_data(index)).astype(np.int64).reshape(-1)
        ctx.save_for_backward(idx)
        out = segment_sum_data(sd, idx, num_segments)
        launch_scatter(ctx.device, "scatter_add", idx, _row_width(sd.shape))
        return out

    @staticmethod
    def backward(ctx, grad):
        (idx,) = ctx.saved
        out = grad[idx]
        launch_gather(ctx.device, "scatter_add_bwd_gather", idx,
                      _row_width(grad.shape))
        return (out,)


class SegmentMax(Function):
    """out[s] = max over rows with index == s (max-pooling aggregation)."""

    @staticmethod
    def forward(ctx, src, index, num_segments: int):
        sd = _data(src)
        idx = np.asarray(_data(index)).astype(np.int64).reshape(-1)
        src2d = sd.reshape(sd.shape[0], -1)
        out = np.full((num_segments, src2d.shape[1]), -np.inf, dtype=src2d.dtype)
        np.maximum.at(out, idx, src2d)
        empty = ~np.isin(np.arange(num_segments), idx)
        out[empty] = 0.0
        winners = out[idx] == src2d
        ctx.save_for_backward(idx, winners, np.array(sd.shape))
        ctx.extras["num_segments"] = num_segments
        launch_scatter(ctx.device, "scatter_max", idx, src2d.shape[1])
        return out.reshape((num_segments,) + sd.shape[1:])

    @staticmethod
    def backward(ctx, grad):
        idx, winners, shape = ctx.saved
        grad2d = grad.reshape(grad.shape[0], -1)
        # Split gradient among tied winners within each segment.
        counts = np.zeros_like(grad2d)
        np.add.at(counts, idx, winners.astype(grad2d.dtype))
        denom = np.where(counts[idx] > 0, counts[idx], 1.0)
        out = (grad2d[idx] * winners) / denom
        launch_gather(ctx.device, "scatter_max_bwd", idx, grad2d.shape[1])
        return (out.reshape(tuple(shape)),)


class Embedding(Function):
    """Row lookup into a trainable table; backward is a scatter-add."""

    @staticmethod
    def forward(ctx, weight, index):
        wd = _data(weight)
        idx = np.asarray(_data(index)).astype(np.int64)
        ctx.save_for_backward(idx)
        ctx.extras["rows"] = wd.shape[0]
        out = wd[idx.reshape(-1)].reshape(idx.shape + (wd.shape[1],))
        launch_gather(ctx.device, "embedding_fwd", idx.reshape(-1), wd.shape[1],
                      op_class=OpClass.EMBEDDING)
        return out

    @staticmethod
    def backward(ctx, grad):
        (idx,) = ctx.saved
        rows = ctx.extras["rows"]
        flat = idx.reshape(-1)
        grad2d = grad.reshape(flat.size, -1)
        out = segment_sum_data(grad2d, flat, rows)
        launch_scatter(ctx.device, "embedding_bwd_scatter", flat, grad2d.shape[1])
        return (out,)
