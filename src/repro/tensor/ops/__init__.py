"""Kernel-emitting operator implementations.

Each module covers one operator family; all share the emission helpers and
instruction-cost calibration in :mod:`.base`.
"""

from . import (  # noqa: F401
    base,
    conv,
    elementwise,
    gemm,
    loss,
    norm,
    reduction,
    scattergather,
    shape,
    softmax,
    sort,
    spmm,
)
