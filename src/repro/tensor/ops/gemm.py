"""Dense matrix multiply operations (GEMM / batched GEMM / fused linear)."""

from __future__ import annotations

import numpy as np

from ..autograd import Function
from .base import as_array, launch_elementwise, launch_gemm, launch_reduction, unbroadcast


def _data(x):
    return as_array(x)


def _gemm_dims(a: np.ndarray, b: np.ndarray) -> tuple[int, int, int, int]:
    """(batch, m, k, n) for a matmul of ``a @ b`` after broadcasting."""
    m, k = a.shape[-2], a.shape[-1]
    n = b.shape[-1]
    batch_shape = np.broadcast_shapes(a.shape[:-2], b.shape[:-2])
    batch = int(np.prod(batch_shape)) if batch_shape else 1
    return batch, m, k, n


class MatMul(Function):
    @staticmethod
    def forward(ctx, a, b):
        ad, bd = _data(a), _data(b)
        ctx.save_for_backward(ad, bd)
        out = ad @ bd
        batch, m, k, n = _gemm_dims(ad, bd)
        launch_gemm(ctx.device, "sgemm_nn", m, k, n, batch)
        return out

    @staticmethod
    def backward(ctx, grad):
        ad, bd = ctx.saved
        batch, m, k, n = _gemm_dims(ad, bd)
        # dA = dC @ B^T ; dB = A^T @ dC  (two more GEMM launches)
        grad_a = grad @ np.swapaxes(bd, -1, -2)
        grad_b = np.swapaxes(ad, -1, -2) @ grad
        launch_gemm(ctx.device, "sgemm_nt_dgrad", m, n, k, batch)
        launch_gemm(ctx.device, "sgemm_tn_wgrad", k, m, n, batch)
        # Reduce broadcast batch dims back to the parameter shapes (both
        # extra leading dims and interior size-1 batch dims).
        if grad_a.shape != ad.shape:
            grad_a = unbroadcast(grad_a, ad.shape, ctx.device)
        if grad_b.shape != bd.shape:
            grad_b = unbroadcast(grad_b, bd.shape, ctx.device)
        return grad_a, grad_b


class Linear(Function):
    """Fused ``x @ W.T + bias`` — what cuBLAS-backed nn.Linear launches."""

    @staticmethod
    def forward(ctx, x, weight, bias=None):
        xd, wd = _data(x), _data(weight)
        ctx.save_for_backward(xd, wd)
        ctx.extras["has_bias"] = bias is not None
        out = xd @ wd.T
        if bias is not None:
            out += _data(bias)
        rows = int(np.prod(xd.shape[:-1]))
        launch_gemm(ctx.device, "sgemm_linear", rows, xd.shape[-1], wd.shape[0])
        if bias is not None:
            launch_elementwise(ctx.device, "ew_bias_add", int(out.size), 2)
        return out

    @staticmethod
    def backward(ctx, grad):
        xd, wd = ctx.saved
        rows = int(np.prod(xd.shape[:-1]))
        in_features = xd.shape[-1]
        out_features = wd.shape[0]
        grad2d = grad.reshape(rows, out_features)
        x2d = xd.reshape(rows, in_features)

        grad_x = (grad2d @ wd).reshape(xd.shape)
        grad_w = grad2d.T @ x2d
        launch_gemm(ctx.device, "sgemm_linear_dgrad", rows, out_features, in_features)
        launch_gemm(ctx.device, "sgemm_linear_wgrad", out_features, rows, in_features)
        grads = [grad_x, grad_w]
        if ctx.extras["has_bias"]:
            grad_bias = grad2d.sum(axis=0)
            launch_reduction(ctx.device, "reduce_bias_grad", grad2d.size,
                             grad_bias.size)
            grads.append(grad_bias)
        return tuple(grads)
