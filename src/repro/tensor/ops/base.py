"""Shared infrastructure for kernel-emitting tensor operations.

Every operation family has an *instruction cost model*: closed-form dynamic
instruction counts per element of work, mirroring what the corresponding CUDA
kernels execute (grid-stride index arithmetic, predicate checks, the actual
math, loads/stores).  These coefficients are global calibration constants —
defined per op family, never per workload — so differences between workloads
in the reproduced figures come from the kernel streams the models actually
launch.
"""

from __future__ import annotations

import math
import weakref
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ...gpu import AccessPattern, KernelDescriptor, OpClass, analysis_cache
from ...gpu.device import SimulatedGPU
from .. import autograd


@dataclass(frozen=True)
class ElementCost:
    """Per-element dynamic instruction costs of an op family.

    Hashes by value (equal costs from different construction sites share a
    launch-site memo entry) but the hash is computed once: every kernel
    launch hashes a cost as part of its memo key.
    """

    flops: float
    iops: float
    ldst: float
    control: float

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "_hash", hash((self.flops, self.iops, self.ldst, self.control))
        )

    def __hash__(self) -> int:  # pragma: no cover - exercised everywhere
        return self._hash


# Per-element costs.  "Element" means one output value unless noted.
COSTS = {
    # grid-stride loop: index IMAD chain, bounds predicate, load(s), math, store
    "unary": ElementCost(flops=1.0, iops=20.0, ldst=2.0, control=2.5),
    "binary": ElementCost(flops=1.0, iops=26.0, ldst=3.0, control=2.5),
    "copy": ElementCost(flops=0.0, iops=20.0, ldst=2.0, control=2.5),
    "compare": ElementCost(flops=0.5, iops=24.0, ldst=3.0, control=2.5),
    # per gathered/scattered element: index load + pointer IMADs (+atomic RMW)
    "gather": ElementCost(flops=0.0, iops=34.0, ldst=2.5, control=3.0),
    "scatter": ElementCost(flops=1.0, iops=36.0, ldst=3.5, control=3.0),
    # per input element of a tree reduction (log factor folded in)
    "reduction": ElementCost(flops=1.3, iops=18.0, ldst=1.3, control=2.5),
    "softmax": ElementCost(flops=3.0, iops=18.0, ldst=3.0, control=2.5),
    "batchnorm": ElementCost(flops=4.0, iops=18.0, ldst=3.0, control=2.5),
    # per key for one full 32-bit radix sort (4 passes count/scan/scatter)
    "sort": ElementCost(flops=0.0, iops=100.0, ldst=12.0, control=12.0),
    # per nnz*feature MAC of row-parallel CSR SpMM
    "spmm": ElementCost(flops=2.0, iops=10.0, ldst=2.0, control=1.5),
}

#: integer (addressing) ops per fp32 FMA in tiled dense math; the K loop
#: amortizes pointer math, so the per-FMA cost falls with reduction depth.
def gemm_iops_per_fma(k: int) -> float:
    return 0.05 + 1.7 / max(k, 4) ** 0.5


CONV_IOPS_PER_FMA = 1.05

FLOAT_BYTES = 4
INDEX_BYTES = 8


#: shared coalesced access patterns per element size.  The objects are
#: reused across launches (their lazily-cached fingerprints make repeat
#: signature probes free) — safe because nothing ever mutates a pattern.
_COALESCED: dict[int, AccessPattern] = {}


def coalesced_access(element_bytes: int = FLOAT_BYTES) -> AccessPattern:
    pattern = _COALESCED.get(element_bytes)
    if pattern is None:
        pattern = _COALESCED[element_bytes] = AccessPattern.coalesced(element_bytes)
    return pattern


def as_array(x) -> np.ndarray:
    """Payload of a Tensor, or the array itself (ndarray.data is a memoryview)."""
    if isinstance(x, np.ndarray):
        return x
    data = getattr(x, "data", None)
    if isinstance(data, np.ndarray):
        return data
    return np.asarray(x)


def device_of(*tensors) -> Optional[SimulatedGPU]:
    """First simulated device among the operands.

    NumPy 2.x arrays expose an Array-API ``.device`` string ("cpu"), so the
    attribute must be type-checked, not just truth-tested.
    """
    for t in tensors:
        dev = getattr(t, "device", None)
        if isinstance(dev, SimulatedGPU):
            return dev
    return None


def launch(
    device: Optional[SimulatedGPU],
    name: str,
    op_class: OpClass,
    threads: int,
    cost: Optional[ElementCost] = None,
    work_items: Optional[float] = None,
    fp32_flops: float = 0.0,
    int32_iops: float = 0.0,
    ldst_instrs: float = 0.0,
    control_instrs: float = 0.0,
    bytes_read: float = 0.0,
    bytes_written: float = 0.0,
    working_set_bytes: float = 0.0,
    reuse_factor: float = 1.0,
    access: Optional[AccessPattern] = None,
    block_size: int = 256,
    compute_scale: float = 1.0,
) -> None:
    """Emit one kernel to ``device`` (no-op for CPU tensors).

    Launch-site fast path: with the analysis cache enabled, launches whose
    access pattern is regular (fully described by closed-form parameters)
    memoize the finished ``(descriptor, analysis record)`` pair per device,
    keyed by the raw arguments of this call.  A repeat emission — every layer
    of every epoch re-emits identical kernels — skips the cost arithmetic,
    descriptor construction and analysis probe and goes straight to
    :meth:`SimulatedGPU.replay` (clock arithmetic plus counters).  The key
    holds every input the descriptor is built from, so a hit replays exactly
    what the slow path would have produced.  Irregular patterns carry real
    index arrays and are served by the content-addressed analysis cache
    instead (see :func:`irregular_row_access`).
    """
    if device is None:
        return
    fast = analysis_cache.enabled() and (access is None or access.indices is None)
    if fast:
        key = (
            name, op_class, autograd.current_phase(), threads, block_size,
            cost, work_items, fp32_flops, int32_iops, ldst_instrs,
            control_instrs, bytes_read, bytes_written, working_set_bytes,
            reuse_factor, compute_scale,
            None if access is None
            else (access.kind, access.stride_bytes, access.element_bytes),
        )
        entry = device.site_records.get(key)
        if entry is not None:
            device.replay(entry[0], entry[1])
            return
    if cost is not None:
        n = work_items if work_items is not None else float(threads)
        fp32_flops += cost.flops * n
        int32_iops += cost.iops * n
        ldst_instrs += cost.ldst * n
        control_instrs += cost.control * n
    desc = KernelDescriptor(
        name=name,
        op_class=op_class,
        threads=max(1, int(threads)),
        fp32_flops=fp32_flops,
        int32_iops=int32_iops,
        ldst_instrs=ldst_instrs,
        control_instrs=control_instrs,
        bytes_read=bytes_read,
        bytes_written=bytes_written,
        working_set_bytes=working_set_bytes,
        reuse_factor=reuse_factor,
        access=access or coalesced_access(FLOAT_BYTES),
        block_size=block_size,
        phase=autograd.current_phase(),
        compute_scale=compute_scale,
    )
    if fast:
        record, _ = device.launch_analyzed(desc)
        device.site_records[key] = (desc, record)
        return
    device.launch_fast(desc)


def launch_elementwise(
    device: Optional[SimulatedGPU],
    name: str,
    out_size: int,
    num_inputs: int = 2,
    kind: str = "binary",
    flops_per_elem: Optional[float] = None,
    dtype_bytes: int = FLOAT_BYTES,
) -> None:
    """Emit a streaming elementwise kernel over ``out_size`` values."""
    if device is None or out_size == 0:
        return
    cost = COSTS[kind]
    if flops_per_elem is not None:
        cost = ElementCost(flops_per_elem, cost.iops, cost.ldst, cost.control)
    launch(
        device,
        name,
        OpClass.ELEMENTWISE,
        threads=out_size,
        cost=cost,
        bytes_read=float(num_inputs * out_size * dtype_bytes),
        bytes_written=float(out_size * dtype_bytes),
        access=coalesced_access(dtype_bytes),
    )


def launch_reduction(
    device: Optional[SimulatedGPU],
    name: str,
    in_size: int,
    out_size: int,
    op_class: OpClass = OpClass.REDUCTION,
    kind: str = "reduction",
    dtype_bytes: int = FLOAT_BYTES,
) -> None:
    if device is None or in_size == 0:
        return
    launch(
        device,
        name,
        op_class,
        threads=max(out_size, min(in_size, 1 << 20)),
        cost=COSTS[kind],
        work_items=float(in_size),
        bytes_read=float(in_size * dtype_bytes),
        bytes_written=float(out_size * dtype_bytes),
        reuse_factor=1.5,
        access=coalesced_access(dtype_bytes),
    )


def emit_accumulate(device: Optional[SimulatedGPU], grad: np.ndarray) -> None:
    """Gradient accumulation (`grad += g`) emits an elementwise add."""
    launch_elementwise(device, "grad_accumulate", int(grad.size), num_inputs=2)


def unbroadcast(grad: np.ndarray, shape: tuple[int, ...], device) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` after numpy broadcasting.

    Emits the reduction kernels a real framework would run for the same job.
    """
    if grad.shape == shape:
        return grad
    before = grad.size
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    grad = grad.reshape(shape)
    launch_reduction(device, "unbroadcast_sum", before, grad.size)
    return grad


def gemm_tiles(m: int, n: int) -> tuple[int, int, int]:
    """(tile_m, tile_n, num_tiles): cuBLAS-style heuristic tile selection.

    Skinny shapes get smaller tiles so the padding waste stays bounded, as
    the real library's kernel-selection heuristics arrange.
    """
    tile_m = 128 if m > 64 else (64 if m > 32 else 32)
    tile_n = 64 if n > 32 else 32
    return tile_m, tile_n, math.ceil(m / tile_m) * math.ceil(n / tile_n)


def gemm_threads(m: int, n: int, k: int = 1, num_sms: int = 80) -> int:
    """Thread count of a tiled GEMM: 256 threads per output tile.

    Tile quantization is what makes skinny GNN GEMMs run far below peak —
    an emergent effect the paper's Figure-4 numbers depend on.  When the
    (m, n) tile grid cannot fill the machine, cuBLAS-style split-K kernels
    parallelize over the reduction axis; weight-gradient GEMMs (tiny m, n
    and huge k) depend on this.
    """
    _, _, tiles = gemm_tiles(m, n)
    split_k = 1
    if tiles < 2 * num_sms:
        split_k = min(math.ceil(k / 256), max(1, (2 * num_sms) // max(tiles, 1)))
        split_k = max(split_k, 1)
    return tiles * split_k * 256


def launch_gemm(
    device: Optional[SimulatedGPU],
    name: str,
    m: int,
    k: int,
    n: int,
    batch: int = 1,
) -> None:
    """Emit a (batched) dense GEMM kernel: C[m,n] = A[m,k] @ B[k,n]."""
    if device is None or m * k * n == 0:
        return
    flops = 2.0 * batch * m * k * n
    fmas = flops / 2.0
    op_class = OpClass.GEMM
    if n == 1 or m == 1:
        op_class = OpClass.GEMV
    bytes_read = FLOAT_BYTES * batch * (m * k + k * n)
    bytes_written = FLOAT_BYTES * batch * m * n
    # Tile quantization: the kernel computes whole tiles, so skinny matrices
    # pay for padded lanes (real FLOPs / issued FLOPs < 1).
    tile_m, tile_n, tiles = gemm_tiles(m, n)
    pad_waste = (
        math.ceil(m / tile_m) * tile_m * math.ceil(n / tile_n) * tile_n
    ) / max(m * n, 1)
    # Integer work: per-FMA addressing (amortized by the K loop), a per-output
    # epilogue (index math, bounds, beta scaling), and per-tile loop
    # bookkeeping — so skinny/short-K GEMMs skew far more integer than large
    # square ones.
    iops = (
        gemm_iops_per_fma(k) * fmas
        + 14.0 * batch * m * n
        + 30.0 * batch * tiles * max(1.0, k / 8.0)
    )
    launch(
        device,
        name,
        op_class,
        threads=batch * gemm_threads(m, n, k),
        fp32_flops=flops,
        int32_iops=iops,
        ldst_instrs=fmas / 16.0,  # shared-memory tiling amortizes loads
        control_instrs=fmas / 32.0,
        bytes_read=bytes_read,
        bytes_written=bytes_written,
        working_set_bytes=bytes_read + bytes_written,
        reuse_factor=2.0,
        compute_scale=min(pad_waste, 8.0),
    )


#: memoized irregular_row_access patterns, keyed by the identity of the index
#: array's root buffer plus its view geometry and the expansion parameters.
#: Entries are evicted by a weakref finalizer when the owning array dies, so
#: per-batch throwaway index arrays never accumulate.
_ROW_ACCESS_CACHE: dict[tuple, AccessPattern] = {}
_ROW_ACCESS_KEYS: dict[int, list[tuple]] = {}


def _row_access_root(arr: np.ndarray):
    """Root buffer owner of a view chain (the object whose lifetime we track)."""
    base = arr
    while isinstance(getattr(base, "base", None), np.ndarray):
        base = base.base
    return base


def _evict_row_access(owner_id: int) -> None:
    for key in _ROW_ACCESS_KEYS.pop(owner_id, ()):
        _ROW_ACCESS_CACHE.pop(key, None)


def _clear_row_access_cache() -> None:
    _ROW_ACCESS_CACHE.clear()
    _ROW_ACCESS_KEYS.clear()


analysis_cache.register_clear_hook(_clear_row_access_cache)


def irregular_row_access(
    indices: np.ndarray, row_width: int, element_bytes: int = FLOAT_BYTES
) -> AccessPattern:
    """Access pattern of gathering/scattering whole feature rows.

    Threads are laid out feature-major (adjacent threads read adjacent
    features of the same row), the layout DGL/PyG kernels use; divergence
    then comes from *row* transitions inside a warp, measured on the real
    index array.

    The expansion is memoized per ``(index array, row_width)``: SpMM,
    gathers and scatters over the same CSR graph hand the *same* index
    array to every layer of every epoch, so after the first launch they
    reuse one pattern object — along with its cached divergence measurement
    and content fingerprint.  The key is the array's buffer identity + view
    geometry (kept alive only weakly); assumes index arrays are not mutated
    in place between launches, which holds for adjacency structures and is
    the same contract real frameworks' CSR caches rely on.
    """
    indices = np.asarray(indices)
    if indices.size == 0:
        return coalesced_access(element_bytes)
    key = None
    if analysis_cache.enabled():
        root = _row_access_root(indices)
        key = (id(root), indices.__array_interface__["data"][0],
               indices.shape, indices.strides, indices.dtype.str,
               row_width, element_bytes)
        cached = _ROW_ACCESS_CACHE.get(key)
        if cached is not None:
            return cached
    flat = indices.reshape(-1)
    lanes = max(1, min(row_width, 32))
    # Element address of what each consecutive thread touches: row*width+lane.
    sample = flat[: 4096 // lanes + 1]
    addr = (sample[:, None].astype(np.int64) * row_width + np.arange(lanes)[None, :]).reshape(-1)
    pattern = AccessPattern.irregular(addr, element_bytes)
    if key is not None:
        try:
            if key[0] not in _ROW_ACCESS_KEYS:
                weakref.finalize(root, _evict_row_access, key[0])
            _ROW_ACCESS_KEYS.setdefault(key[0], []).append(key)
            _ROW_ACCESS_CACHE[key] = pattern
        except TypeError:  # pragma: no cover - root doesn't support weakrefs
            pass
    return pattern
