"""Sorting-family operations: sort, argsort, unique, topk.

GNN frameworks hit these constantly — neighbor-sampler dedup, graph
batching, CSR construction, PinSAGE random-walk post-processing — which is
why sorting shows up prominently in the paper's Figure 2 (20.7% of PSAGE-MVL
time).  The kernels model a 4-pass 32-bit radix sort: integer dominated,
heavily unrolled (I-cache pressure), scatter phases with measured divergence.
"""

from __future__ import annotations

import numpy as np

from ...gpu import AccessPattern, OpClass
from .base import COSTS, INDEX_BYTES, as_array, device_of, launch


def _data(x):
    return as_array(x)


def launch_sort(device, name: str, n: int, payload_width: int = 1,
                keys: np.ndarray | None = None, key_bits: int = 32) -> None:
    """Emit the kernel sequence of one device radix sort of ``n`` keys.

    ``key_bits=64`` doubles the radix passes — what sorting (row, col) pair
    keys or (seed, node) walk keys actually costs.
    """
    if device is None or n == 0:
        return
    access = AccessPattern.coalesced(INDEX_BYTES)
    if keys is not None and keys.size:
        # The scatter phase writes each key to its sorted position: the rank
        # permutation is the real access stream.
        ranks = np.argsort(np.asarray(keys).reshape(-1), kind="stable")
        access = AccessPattern.irregular(ranks.astype(np.int64), INDEX_BYTES)
    passes = 8 if key_bits > 32 else 4
    work = float(n * payload_width) * (passes / 4.0)
    launch(
        device,
        name,
        OpClass.SORT,
        threads=max(1, n),
        cost=COSTS["sort"],
        work_items=work,
        bytes_read=passes * float(n * payload_width) * INDEX_BYTES,
        bytes_written=passes * float(n * payload_width) * INDEX_BYTES,
        access=access,
    )


def sort(a, axis: int = -1):
    """Sorted values and indices (non-differentiable)."""
    ad = _data(a)
    idx = np.argsort(ad, axis=axis, kind="stable")
    values = np.take_along_axis(ad, idx, axis=axis)
    device = device_of(a)
    launch_sort(device, "radix_sort_pairs", int(ad.size), 2,
                keys=ad if ad.ndim == 1 else None)
    return values, idx


def argsort(a, axis: int = -1) -> np.ndarray:
    ad = _data(a)
    out = np.argsort(ad, axis=axis, kind="stable")
    launch_sort(device_of(a), "radix_argsort", int(ad.size), 2,
                keys=ad if ad.ndim == 1 else None)
    return out


def unique(a, return_inverse: bool = False, return_counts: bool = False):
    """Unique values via sort + adjacent-compare, like thrust::unique."""
    ad = _data(a).reshape(-1)
    device = device_of(a)
    launch_sort(device, "radix_sort_unique", int(ad.size), 1, keys=ad)
    from .base import launch_elementwise

    launch_elementwise(device, "ew_adjacent_diff", int(ad.size), 2, kind="compare")
    return np.unique(ad, return_inverse=return_inverse, return_counts=return_counts)


def topk(a, k: int, axis: int = -1, largest: bool = True):
    """Top-k selection (bitonic/radix select on device)."""
    ad = _data(a)
    order = np.argsort(-ad if largest else ad, axis=axis, kind="stable")
    idx = np.take(order, np.arange(k), axis=axis)
    values = np.take_along_axis(ad, idx, axis=axis)
    launch_sort(device_of(a), "radix_topk", int(ad.size), 2)
    return values, idx


def randperm(n: int, rng: np.random.Generator, device=None) -> np.ndarray:
    """Random permutation = key generation + radix sort on device."""
    out = rng.permutation(n)
    launch_sort(device, "radix_sort_randperm", n, 2)
    return out
