"""Elementwise operations (unary, binary, dropout, comparisons).

These are the kernels the paper finds dominating workloads like DeepGCN:
streaming grid-stride loops whose instruction mix is mostly integer index
arithmetic with one or two fp32 ops per element.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...gpu import OpClass
from ..autograd import Context, Function
from . import base
from .base import as_array, launch_elementwise, unbroadcast


def _data(x):
    return as_array(x)


class _Binary(Function):
    """Shared plumbing for broadcasting binary elementwise ops."""

    NAME = "binary"

    @classmethod
    def _forward(cls, ctx: Context, a, b, out: np.ndarray) -> np.ndarray:
        ctx.extras["shapes"] = (_data(a).shape, _data(b).shape)
        launch_elementwise(ctx.device, f"ew_{cls.NAME}", int(out.size), 2)
        return out


class Add(_Binary):
    NAME = "add"

    @staticmethod
    def forward(ctx, a, b):
        return Add._forward(ctx, a, b, _data(a) + _data(b))

    @staticmethod
    def backward(ctx, grad):
        sa, sb = ctx.extras["shapes"]
        launch_elementwise(ctx.device, "ew_add_bwd", int(grad.size), 1, kind="copy")
        return (
            unbroadcast(grad, sa, ctx.device),
            unbroadcast(grad, sb, ctx.device),
        )


class Sub(_Binary):
    NAME = "sub"

    @staticmethod
    def forward(ctx, a, b):
        return Sub._forward(ctx, a, b, _data(a) - _data(b))

    @staticmethod
    def backward(ctx, grad):
        sa, sb = ctx.extras["shapes"]
        launch_elementwise(ctx.device, "ew_sub_bwd", int(grad.size), 1, kind="copy")
        return (
            unbroadcast(grad, sa, ctx.device),
            unbroadcast(-grad, sb, ctx.device),
        )


class Mul(_Binary):
    NAME = "mul"

    @staticmethod
    def forward(ctx, a, b):
        ad, bd = _data(a), _data(b)
        ctx.save_for_backward(ad, bd)
        return Mul._forward(ctx, a, b, ad * bd)

    @staticmethod
    def backward(ctx, grad):
        ad, bd = ctx.saved
        sa, sb = ctx.extras["shapes"]
        launch_elementwise(ctx.device, "ew_mul_bwd", int(grad.size) * 2, 2)
        return (
            unbroadcast(grad * bd, sa, ctx.device),
            unbroadcast(grad * ad, sb, ctx.device),
        )


class Div(_Binary):
    NAME = "div"

    @staticmethod
    def forward(ctx, a, b):
        ad, bd = _data(a), _data(b)
        ctx.save_for_backward(ad, bd)
        return Div._forward(ctx, a, b, ad / bd)

    @staticmethod
    def backward(ctx, grad):
        ad, bd = ctx.saved
        sa, sb = ctx.extras["shapes"]
        launch_elementwise(ctx.device, "ew_div_bwd", int(grad.size) * 2, 2)
        return (
            unbroadcast(grad / bd, sa, ctx.device),
            unbroadcast(-grad * ad / (bd * bd), sb, ctx.device),
        )


class Maximum(_Binary):
    NAME = "maximum"

    @staticmethod
    def forward(ctx, a, b):
        ad, bd = _data(a), _data(b)
        ctx.save_for_backward(ad >= bd)
        return Maximum._forward(ctx, a, b, np.maximum(ad, bd))

    @staticmethod
    def backward(ctx, grad):
        (mask,) = ctx.saved
        sa, sb = ctx.extras["shapes"]
        launch_elementwise(ctx.device, "ew_maximum_bwd", int(grad.size) * 2, 2)
        return (
            unbroadcast(grad * mask, sa, ctx.device),
            unbroadcast(grad * ~mask, sb, ctx.device),
        )


class PowScalar(Function):
    @staticmethod
    def forward(ctx, a, exponent: float):
        ad = _data(a)
        ctx.extras["exponent"] = exponent
        ctx.save_for_backward(ad)
        launch_elementwise(ctx.device, "ew_pow", int(ad.size), 1, kind="unary",
                           flops_per_elem=2.0)
        return ad ** exponent

    @staticmethod
    def backward(ctx, grad):
        (ad,) = ctx.saved
        p = ctx.extras["exponent"]
        launch_elementwise(ctx.device, "ew_pow_bwd", int(grad.size), 2)
        return (grad * p * ad ** (p - 1),)


class _Unary(Function):
    """Shared plumbing for unary elementwise ops."""

    NAME = "unary"
    FLOPS = 1.0

    @classmethod
    def _forward(cls, ctx: Context, out: np.ndarray) -> np.ndarray:
        launch_elementwise(
            ctx.device, f"ew_{cls.NAME}", int(out.size), 1, kind="unary",
            flops_per_elem=cls.FLOPS,
        )
        return out

    @classmethod
    def _backward_launch(cls, ctx: Context, grad: np.ndarray) -> None:
        launch_elementwise(ctx.device, f"ew_{cls.NAME}_bwd", int(grad.size), 2)


class Neg(_Unary):
    NAME = "neg"

    @staticmethod
    def forward(ctx, a):
        return Neg._forward(ctx, -_data(a))

    @staticmethod
    def backward(ctx, grad):
        Neg._backward_launch(ctx, grad)
        return (-grad,)


class Exp(_Unary):
    NAME = "exp"
    FLOPS = 2.0

    @staticmethod
    def forward(ctx, a):
        out = np.exp(_data(a))
        ctx.save_for_backward(out)
        return Exp._forward(ctx, out)

    @staticmethod
    def backward(ctx, grad):
        (out,) = ctx.saved
        Exp._backward_launch(ctx, grad)
        return (grad * out,)


class Log(_Unary):
    NAME = "log"
    FLOPS = 2.0

    @staticmethod
    def forward(ctx, a):
        ad = _data(a)
        ctx.save_for_backward(ad)
        return Log._forward(ctx, np.log(ad))

    @staticmethod
    def backward(ctx, grad):
        (ad,) = ctx.saved
        Log._backward_launch(ctx, grad)
        return (grad / ad,)


class Sqrt(_Unary):
    NAME = "sqrt"
    FLOPS = 2.0

    @staticmethod
    def forward(ctx, a):
        out = np.sqrt(_data(a))
        ctx.save_for_backward(out)
        return Sqrt._forward(ctx, out)

    @staticmethod
    def backward(ctx, grad):
        (out,) = ctx.saved
        Sqrt._backward_launch(ctx, grad)
        return (grad / (2.0 * out),)


class Tanh(_Unary):
    NAME = "tanh"
    FLOPS = 3.0

    @staticmethod
    def forward(ctx, a):
        out = np.tanh(_data(a))
        ctx.save_for_backward(out)
        return Tanh._forward(ctx, out)

    @staticmethod
    def backward(ctx, grad):
        (out,) = ctx.saved
        Tanh._backward_launch(ctx, grad)
        return (grad * (1.0 - out * out),)


class Sigmoid(_Unary):
    NAME = "sigmoid"
    FLOPS = 3.0

    @staticmethod
    def forward(ctx, a):
        ad = _data(a)
        out = 1.0 / (1.0 + np.exp(-np.clip(ad, -60.0, 60.0)))
        ctx.save_for_backward(out)
        return Sigmoid._forward(ctx, out.astype(ad.dtype, copy=False))

    @staticmethod
    def backward(ctx, grad):
        (out,) = ctx.saved
        Sigmoid._backward_launch(ctx, grad)
        return (grad * out * (1.0 - out),)


class ReLU(_Unary):
    NAME = "relu"

    @staticmethod
    def forward(ctx, a):
        ad = _data(a)
        mask = ad > 0
        ctx.save_for_backward(mask)
        return ReLU._forward(ctx, ad * mask)

    @staticmethod
    def backward(ctx, grad):
        (mask,) = ctx.saved
        ReLU._backward_launch(ctx, grad)
        return (grad * mask,)


class LeakyReLU(_Unary):
    NAME = "leaky_relu"

    @staticmethod
    def forward(ctx, a, negative_slope: float = 0.01):
        ad = _data(a)
        mask = ad > 0
        ctx.save_for_backward(mask)
        ctx.extras["slope"] = negative_slope
        return LeakyReLU._forward(ctx, np.where(mask, ad, negative_slope * ad))

    @staticmethod
    def backward(ctx, grad):
        (mask,) = ctx.saved
        slope = ctx.extras["slope"]
        LeakyReLU._backward_launch(ctx, grad)
        return (np.where(mask, grad, slope * grad),)


class PReLU(Function):
    """Parametric ReLU: the learned slope makes this a two-input op."""

    @staticmethod
    def forward(ctx, a, slope):
        ad, sd = _data(a), _data(slope)
        mask = ad > 0
        ctx.save_for_backward(ad, sd, mask)
        launch_elementwise(ctx.device, "ew_prelu", int(ad.size), 2)
        return np.where(mask, ad, sd * ad)

    @staticmethod
    def backward(ctx, grad):
        ad, sd, mask = ctx.saved
        launch_elementwise(ctx.device, "ew_prelu_bwd", int(grad.size) * 2, 2)
        grad_a = np.where(mask, grad, sd * grad)
        grad_slope = unbroadcast(np.where(mask, 0.0, grad * ad), sd.shape, ctx.device)
        return grad_a, grad_slope


class Abs(_Unary):
    NAME = "abs"

    @staticmethod
    def forward(ctx, a):
        ad = _data(a)
        ctx.save_for_backward(np.sign(ad))
        return Abs._forward(ctx, np.abs(ad))

    @staticmethod
    def backward(ctx, grad):
        (sign,) = ctx.saved
        Abs._backward_launch(ctx, grad)
        return (grad * sign,)


class Clamp(_Unary):
    NAME = "clamp"

    @staticmethod
    def forward(ctx, a, lo: Optional[float], hi: Optional[float]):
        ad = _data(a)
        out = np.clip(ad, lo, hi)
        mask = np.ones_like(ad, dtype=bool)
        if lo is not None:
            mask &= ad >= lo
        if hi is not None:
            mask &= ad <= hi
        ctx.save_for_backward(mask)
        return Clamp._forward(ctx, out)

    @staticmethod
    def backward(ctx, grad):
        (mask,) = ctx.saved
        Clamp._backward_launch(ctx, grad)
        return (grad * mask,)


class Dropout(Function):
    @staticmethod
    def forward(ctx, a, p: float, rng: np.random.Generator):
        ad = _data(a)
        keep = rng.random(ad.shape) >= p
        scale = 1.0 / (1.0 - p)
        ctx.save_for_backward(keep)
        ctx.extras["scale"] = scale
        # RNG (Philox) is integer-heavy on real GPUs.
        launch_elementwise(ctx.device, "ew_dropout", int(ad.size), 2,
                           kind="compare")
        return ad * keep * scale

    @staticmethod
    def backward(ctx, grad):
        (keep,) = ctx.saved
        scale = ctx.extras["scale"]
        launch_elementwise(ctx.device, "ew_dropout_bwd", int(grad.size), 2)
        return (grad * keep * scale,)


class Where(Function):
    """``cond`` is a raw boolean array (selection is not differentiable)."""

    @staticmethod
    def forward(ctx, a, b, cond):
        cd = np.asarray(_data(cond)).astype(bool)
        ctx.save_for_backward(cd)
        ctx.extras["shapes"] = (_data(a).shape, _data(b).shape)
        out = np.where(cd, _data(a), _data(b))
        launch_elementwise(ctx.device, "ew_where", int(out.size), 3)
        return out

    @staticmethod
    def backward(ctx, grad):
        (cd,) = ctx.saved
        sa, sb = ctx.extras["shapes"]
        launch_elementwise(ctx.device, "ew_where_bwd", int(grad.size) * 2, 2)
        return (
            unbroadcast(grad * cd, sa, ctx.device),
            unbroadcast(grad * ~cd, sb, ctx.device),
        )


def compare(a, b, op: str):
    """Non-differentiable comparison; returns a raw bool ndarray plus kernel."""
    ad, bd = _data(a), _data(b)
    out = getattr(np, op)(ad, bd)
    device = base.device_of(a, b)
    launch_elementwise(device, f"ew_{op}", int(np.asarray(out).size), 2,
                       kind="compare")
    return out


class FusedLSTMPointwise(Function):
    """PyTorch's ``_thnn_fused_lstm_cell``: all gate nonlinearities, the cell
    update and the output in ONE elementwise kernel.

    ``gates`` is (batch, 4*hidden) pre-activation [i, f, g, o]; ``c_prev`` is
    (batch, hidden).  Returns (batch, 2*hidden) = [h, c] concatenated.
    """

    @staticmethod
    def forward(ctx, gates, c_prev):
        gd, cd = _data(gates), _data(c_prev)
        hs = cd.shape[1]
        i = 1.0 / (1.0 + np.exp(-np.clip(gd[:, :hs], -60, 60)))
        f = 1.0 / (1.0 + np.exp(-np.clip(gd[:, hs : 2 * hs], -60, 60)))
        g = np.tanh(gd[:, 2 * hs : 3 * hs])
        o = 1.0 / (1.0 + np.exp(-np.clip(gd[:, 3 * hs :], -60, 60)))
        c = f * cd + i * g
        tanh_c = np.tanh(c)
        h = o * tanh_c
        ctx.save_for_backward(i, f, g, o, cd, tanh_c)
        launch_elementwise(ctx.device, "fused_lstm_cell", int(gd.size), 2,
                           kind="unary", flops_per_elem=6.0)
        return np.concatenate([h, c], axis=1).astype(gd.dtype, copy=False)

    @staticmethod
    def backward(ctx, grad):
        i, f, g, o, c_prev, tanh_c = ctx.saved
        hs = c_prev.shape[1]
        dh = grad[:, :hs]
        dc_out = grad[:, hs:]
        do = dh * tanh_c
        dc = dc_out + dh * o * (1.0 - tanh_c * tanh_c)
        di = dc * g
        df = dc * c_prev
        dg = dc * i
        dc_prev = dc * f
        grad_gates = np.concatenate(
            [
                di * i * (1.0 - i),
                df * f * (1.0 - f),
                dg * (1.0 - g * g),
                do * o * (1.0 - o),
            ],
            axis=1,
        )
        launch_elementwise(ctx.device, "fused_lstm_cell_bwd",
                           int(grad_gates.size), 2)
        return grad_gates.astype(c_prev.dtype, copy=False), dc_prev
