"""Shape/layout operations: reshape, transpose, concat, split, pad, slicing.

Reshape is free (a view); everything that physically rearranges memory emits
a COPY-class kernel, as the corresponding CUDA ``copy_`` / ``cat`` /
``permute``-materialization kernels would.
"""

from __future__ import annotations

import numpy as np

from ...gpu import AccessPattern, OpClass
from ..autograd import Function
from .base import COSTS, FLOAT_BYTES, as_array, launch


def _data(x):
    return as_array(x)


def launch_copy(device, name: str, size: int, stride_bytes: int = FLOAT_BYTES) -> None:
    if device is None or size == 0:
        return
    access = (
        AccessPattern.coalesced(FLOAT_BYTES)
        if stride_bytes <= FLOAT_BYTES
        else AccessPattern.strided(stride_bytes, FLOAT_BYTES)
    )
    launch(
        device,
        name,
        OpClass.COPY,
        threads=size,
        cost=COSTS["copy"],
        bytes_read=float(size * FLOAT_BYTES),
        bytes_written=float(size * FLOAT_BYTES),
        access=access,
    )


class Reshape(Function):
    @staticmethod
    def forward(ctx, a, shape):
        ad = _data(a)
        ctx.extras["shape"] = ad.shape
        return ad.reshape(shape)

    @staticmethod
    def backward(ctx, grad):
        return (grad.reshape(ctx.extras["shape"]),)


class Permute(Function):
    @staticmethod
    def forward(ctx, a, axes):
        ad = _data(a)
        axes = tuple(axes)
        ctx.extras["axes"] = axes
        out = np.ascontiguousarray(np.transpose(ad, axes))
        # Transpose kernels stage 32x32 tiles through shared memory, so both
        # the read and write sides stay coalesced; model a mildly strided
        # pattern (one extra line per warp) rather than a full gather.
        stride = FLOAT_BYTES
        if axes and axes[-1] != ad.ndim - 1:
            stride = FLOAT_BYTES * 2
        launch_copy(ctx.device, "permute_copy", int(ad.size), stride)
        return out

    @staticmethod
    def backward(ctx, grad):
        axes = ctx.extras["axes"]
        inverse = np.argsort(axes)
        launch_copy(ctx.device, "permute_copy_bwd", int(grad.size))
        return (np.ascontiguousarray(np.transpose(grad, inverse)),)


class Concat(Function):
    @staticmethod
    def forward(ctx, *tensors, axis: int = 0):
        arrays = [_data(t) for t in tensors]
        ctx.extras["axis"] = axis
        ctx.extras["sizes"] = [a.shape[axis] for a in arrays]
        out = np.concatenate(arrays, axis=axis)
        launch_copy(ctx.device, "cat_copy", int(out.size))
        return out

    @staticmethod
    def backward(ctx, grad):
        axis = ctx.extras["axis"]
        sizes = ctx.extras["sizes"]
        splits = np.cumsum(sizes)[:-1]
        launch_copy(ctx.device, "cat_copy_bwd", int(grad.size))
        return tuple(np.split(grad, splits, axis=axis))


class Stack(Function):
    @staticmethod
    def forward(ctx, *tensors, axis: int = 0):
        arrays = [_data(t) for t in tensors]
        ctx.extras["axis"] = axis
        out = np.stack(arrays, axis=axis)
        launch_copy(ctx.device, "stack_copy", int(out.size))
        return out

    @staticmethod
    def backward(ctx, grad):
        axis = ctx.extras["axis"]
        launch_copy(ctx.device, "stack_copy_bwd", int(grad.size))
        return tuple(np.moveaxis(grad, axis, 0))


class Slice(Function):
    """Basic slicing; backward scatters into a zero tensor of input shape."""

    @staticmethod
    def forward(ctx, a, key):
        ad = _data(a)
        ctx.extras["key"] = key
        ctx.extras["shape"] = ad.shape
        out = ad[key]
        launch_copy(ctx.device, "slice_copy", int(np.asarray(out).size))
        return np.ascontiguousarray(out)

    @staticmethod
    def backward(ctx, grad):
        out = np.zeros(ctx.extras["shape"], dtype=grad.dtype)
        out[ctx.extras["key"]] = grad
        launch_copy(ctx.device, "slice_copy_bwd", int(grad.size))
        return (out,)


class Pad2d(Function):
    """Zero padding of the trailing two axes (used by conv blocks)."""

    @staticmethod
    def forward(ctx, a, pad):
        ad = _data(a)
        ctx.extras["pad"] = pad
        widths = [(0, 0)] * (ad.ndim - 2) + [(pad[0], pad[1]), (pad[2], pad[3])]
        out = np.pad(ad, widths)
        launch_copy(ctx.device, "pad_copy", int(out.size))
        return out

    @staticmethod
    def backward(ctx, grad):
        pad = ctx.extras["pad"]
        h = grad.shape[-2] - pad[0] - pad[1]
        w = grad.shape[-1] - pad[2] - pad[3]
        out = grad[..., pad[0] : pad[0] + h, pad[2] : pad[2] + w]
        launch_copy(ctx.device, "pad_copy_bwd", int(out.size))
        return (np.ascontiguousarray(out),)
