"""2-D convolution (NCHW), the dominant op of the STGCN workload.

Forward/backward run as implicit-GEMM style computations on host numpy; the
emitted kernels are classified CONV2D (cuDNN's fprop/dgrad/wgrad kernels),
which the paper tracks separately from GEMM in its Figure-2 breakdown.
"""

from __future__ import annotations

import numpy as np

from ...gpu import OpClass
from ..autograd import Function
from .base import CONV_IOPS_PER_FMA, FLOAT_BYTES, as_array, launch, launch_elementwise


def _data(x):
    return as_array(x)


def launch_conv(device, name: str, n: int, c: int, o: int, oh: int, ow: int,
                kh: int, kw: int) -> None:
    if device is None:
        return
    flops = 2.0 * n * o * oh * ow * c * kh * kw
    fmas = flops / 2.0
    # implicit-GEMM convolutions compute gather offsets per input patch
    iops = CONV_IOPS_PER_FMA * fmas + 12.0 * n * o * oh * ow
    in_bytes = FLOAT_BYTES * n * c * (oh + kh - 1) * (ow + kw - 1)
    out_bytes = FLOAT_BYTES * n * o * oh * ow
    w_bytes = FLOAT_BYTES * o * c * kh * kw
    tiles = -(-(oh * ow) // 64) * -(-o // 64) * n
    launch(
        device,
        name,
        OpClass.CONV2D,
        threads=max(256, tiles * 256),
        fp32_flops=flops,
        int32_iops=iops,
        ldst_instrs=fmas / 12.0,
        control_instrs=fmas / 24.0,
        bytes_read=float(in_bytes + w_bytes),
        bytes_written=float(out_bytes),
        working_set_bytes=float(in_bytes + w_bytes + out_bytes),
        reuse_factor=2.5,
    )


def _windows(x: np.ndarray, kh: int, kw: int, sh: int, sw: int) -> np.ndarray:
    """Sliding windows of shape (N, C, OH, OW, kh, kw)."""
    view = np.lib.stride_tricks.sliding_window_view(x, (kh, kw), axis=(2, 3))
    return view[:, :, ::sh, ::sw, :, :]


class Conv2d(Function):
    @staticmethod
    def forward(ctx, x, weight, bias=None, stride=(1, 1), padding=(0, 0)):
        xd, wd = _data(x), _data(weight)
        sh, sw = stride
        ph, pw = padding
        if ph or pw:
            xd = np.pad(xd, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
        o, c, kh, kw = wd.shape
        n = xd.shape[0]
        win = _windows(xd, kh, kw, sh, sw)
        out = np.einsum("nchwij,ocij->nohw", win, wd, optimize=True)
        if bias is not None:
            out = out + _data(bias)[None, :, None, None]
        ctx.save_for_backward(xd, wd)
        ctx.extras.update(stride=stride, padding=padding,
                          has_bias=bias is not None, in_shape=_data(x).shape)
        oh, ow = out.shape[2], out.shape[3]
        launch_conv(ctx.device, "cudnn_conv2d_fprop", n, c, o, oh, ow, kh, kw)
        if bias is not None:
            launch_elementwise(ctx.device, "ew_conv_bias", int(out.size), 2)
        return out.astype(_data(x).dtype, copy=False)

    @staticmethod
    def backward(ctx, grad):
        xd, wd = ctx.saved  # xd is already padded
        sh, sw = ctx.extras["stride"]
        ph, pw = ctx.extras["padding"]
        in_shape = ctx.extras["in_shape"]
        o, c, kh, kw = wd.shape
        n, _, oh, ow = grad.shape

        # -- weight gradient: correlate input windows with grad --------------
        win = _windows(xd, kh, kw, sh, sw)
        grad_w = np.einsum("nohw,nchwij->ocij", grad, win, optimize=True)
        launch_conv(ctx.device, "cudnn_conv2d_wgrad", n, c, o, oh, ow, kh, kw)

        # -- data gradient: full correlation with flipped kernel -------------
        if sh > 1 or sw > 1:
            dil = np.zeros((n, o, (oh - 1) * sh + 1, (ow - 1) * sw + 1),
                           dtype=grad.dtype)
            dil[:, :, ::sh, ::sw] = grad
        else:
            dil = grad
        pad_h, pad_w = kh - 1, kw - 1
        gpad = np.pad(dil, ((0, 0), (0, 0), (pad_h, pad_h), (pad_w, pad_w)))
        wflip = wd[:, :, ::-1, ::-1]
        gwin = np.lib.stride_tricks.sliding_window_view(gpad, (kh, kw), axis=(2, 3))
        grad_x_padded = np.einsum("nohwij,ocij->nchw", gwin, wflip, optimize=True)
        # Match the padded-input size: trim overhang, zero-fill any remainder
        # rows/cols the strided conv never visited.
        grad_x_padded = grad_x_padded[:, :, : xd.shape[2], : xd.shape[3]]
        short_h = xd.shape[2] - grad_x_padded.shape[2]
        short_w = xd.shape[3] - grad_x_padded.shape[3]
        if short_h or short_w:
            grad_x_padded = np.pad(
                grad_x_padded, ((0, 0), (0, 0), (0, short_h), (0, short_w))
            )
        if ph or pw:
            grad_x = grad_x_padded[:, :, ph : ph + in_shape[2], pw : pw + in_shape[3]]
        else:
            grad_x = grad_x_padded
        launch_conv(ctx.device, "cudnn_conv2d_dgrad", n, o, c, xd.shape[2],
                    xd.shape[3], kh, kw)

        grads = [np.ascontiguousarray(grad_x), grad_w]
        if ctx.extras["has_bias"]:
            grad_b = grad.sum(axis=(0, 2, 3))
            from .base import launch_reduction

            launch_reduction(ctx.device, "reduce_conv_bias_grad", int(grad.size),
                             int(grad_b.size))
            grads.append(grad_b)
        return tuple(grads)
