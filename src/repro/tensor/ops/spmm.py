"""Sparse matrix support: CSR SparseTensor and SpMM (sparse @ dense).

SpMM is the core aggregation kernel of DGL-style GNNs (g-SpMM): row-parallel
CSR traversal where each warp walks a node's neighbor list and accumulates
feature rows.  The column-index stream is attached to the launch so the
divergence/cache models see the *real* graph structure.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

from ...gpu import OpClass
from ..autograd import Function
from .base import COSTS, FLOAT_BYTES, INDEX_BYTES, as_array, irregular_row_access, launch


class SparseTensor:
    """An immutable CSR matrix pinned to a device.

    Values are not differentiable (GNN adjacency matrices are constants);
    gradients flow through the dense operand of :func:`spmm`.
    """

    def __init__(self, matrix: sp.spmatrix, device=None) -> None:
        self._csr = matrix.tocsr().astype(np.float32)
        self._csr.sum_duplicates()
        self.device = device
        self._transpose: Optional["SparseTensor"] = None

    @classmethod
    def _share(cls, csr: sp.csr_matrix, device) -> "SparseTensor":
        """Wrap an already-canonical float32 CSR without copying.

        SparseTensors are immutable, so device moves and transpose views can
        alias one underlying scipy matrix; the index arrays keep their
        identity, which is what lets the launch-analysis layer memoize
        divergence measurements across devices and epochs.
        """
        obj = cls.__new__(cls)
        obj._csr = csr
        obj.device = device
        obj._transpose = None
        return obj

    @classmethod
    def from_edges(
        cls,
        rows: np.ndarray,
        cols: np.ndarray,
        values: Optional[np.ndarray],
        shape: tuple[int, int],
        device=None,
    ) -> "SparseTensor":
        if values is None:
            values = np.ones(len(rows), dtype=np.float32)
        matrix = sp.coo_matrix((values, (rows, cols)), shape=shape)
        return cls(matrix, device=device)

    @property
    def shape(self) -> tuple[int, int]:
        return self._csr.shape

    @property
    def nnz(self) -> int:
        return int(self._csr.nnz)

    @property
    def indices(self) -> np.ndarray:
        return self._csr.indices

    @property
    def indptr(self) -> np.ndarray:
        return self._csr.indptr

    @property
    def values(self) -> np.ndarray:
        return self._csr.data

    def scipy(self) -> sp.csr_matrix:
        return self._csr

    def t(self) -> "SparseTensor":
        """Transpose, cached (built once, like a framework's CSC view)."""
        if self._transpose is None:
            self._transpose = SparseTensor._share(self._csr.T.tocsr(),
                                                  self.device)
            self._transpose._transpose = self
        return self._transpose

    def to(self, device) -> "SparseTensor":
        if device is self.device:
            return self
        moved = SparseTensor._share(self._csr, device)
        if self._transpose is not None:
            # Carry the cached transpose across the move: dropping it forced
            # every later .t() to rebuild the CSC view from scratch.  No
            # extra transfer is emitted — the transposed view shares the
            # original arrays, exactly like a framework-side CSC index.
            transpose = SparseTensor._share(self._transpose._csr, device)
            transpose._transpose = moved
            moved._transpose = transpose
        if device is not None:
            device.h2d(self._csr.data, "sparse.values")
            device.h2d(self._csr.indices, "sparse.indices")
            device.h2d(self._csr.indptr, "sparse.indptr")
        return moved

    def __repr__(self) -> str:  # pragma: no cover
        return f"SparseTensor(shape={self.shape}, nnz={self.nnz})"


def launch_spmm(device, name: str, matrix: sp.csr_matrix, feat_width: int) -> None:
    if device is None or matrix.nnz == 0:
        return
    nnz = int(matrix.nnz)
    rows = matrix.shape[0]
    work = float(nnz * feat_width)
    launch(
        device,
        name,
        OpClass.SPMM,
        threads=max(32, rows * min(32, max(1, feat_width))),
        cost=COSTS["spmm"],
        work_items=work,
        bytes_read=work * FLOAT_BYTES + nnz * (FLOAT_BYTES + INDEX_BYTES),
        bytes_written=float(rows * feat_width * FLOAT_BYTES),
        working_set_bytes=float(
            matrix.shape[1] * feat_width * FLOAT_BYTES
            + nnz * (FLOAT_BYTES + INDEX_BYTES)
        ),
        access=irregular_row_access(matrix.indices, feat_width),
    )


class SpMM(Function):
    """out = A @ X for CSR ``A`` (constant) and dense ``X`` (differentiable)."""

    @staticmethod
    def forward(ctx, sparse: SparseTensor, x):
        xd = as_array(x)
        ctx.extras["sparse"] = sparse
        ctx.device = ctx.device or sparse.device
        shape = xd.shape
        x2d = xd.reshape(shape[0], -1) if xd.ndim != 2 else xd
        out2d = np.asarray(sparse.scipy() @ x2d, dtype=xd.dtype)
        ctx.extras["shape"] = shape
        launch_spmm(ctx.device, "csr_spmm", sparse.scipy(), x2d.shape[1])
        if xd.ndim == 1:
            return out2d[:, 0]
        return out2d.reshape((out2d.shape[0],) + shape[1:])

    @staticmethod
    def backward(ctx, grad):
        sparse: SparseTensor = ctx.extras["sparse"]
        shape = ctx.extras["shape"]
        g2d = grad.reshape(grad.shape[0], -1)
        at = sparse.t()
        out2d = np.asarray(at.scipy() @ g2d, dtype=grad.dtype)
        launch_spmm(ctx.device, "csr_spmm_bwd", at.scipy(), g2d.shape[1])
        return (out2d.reshape(shape),)
