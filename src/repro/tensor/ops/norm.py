"""Normalization layers' functional cores: batch norm and layer norm.

BatchNorm is tracked as its own op class because the paper calls it out for
DeepGCN (Figure 5's per-op stall analysis includes BatchNorm).
"""

from __future__ import annotations

import numpy as np

from ...gpu import AccessPattern, OpClass
from ..autograd import Function
from .base import COSTS, as_array, launch


def _data(x):
    return as_array(x)


def _launch_bn(device, name: str, size: int) -> None:
    if device is None or size == 0:
        return
    launch(
        device,
        name,
        OpClass.BATCHNORM,
        threads=size,
        cost=COSTS["batchnorm"],
        bytes_read=float(size * 4 * 2),
        bytes_written=float(size * 4),
        reuse_factor=2.0,
        access=AccessPattern.coalesced(4),
    )


class BatchNorm(Function):
    """Batch normalization over all axes except ``channel_axis``."""

    @staticmethod
    def forward(ctx, x, gamma, beta, channel_axis: int = 1, eps: float = 1e-5):
        xd = _data(x)
        gd, bd = _data(gamma), _data(beta)
        axes = tuple(i for i in range(xd.ndim) if i != channel_axis)
        mean = xd.mean(axis=axes, keepdims=True)
        var = xd.var(axis=axes, keepdims=True)
        inv_std = 1.0 / np.sqrt(var + eps)
        xhat = (xd - mean) * inv_std
        bshape = [1] * xd.ndim
        bshape[channel_axis] = xd.shape[channel_axis]
        out = xhat * gd.reshape(bshape) + bd.reshape(bshape)
        ctx.save_for_backward(xhat, inv_std, gd)
        ctx.extras.update(axes=axes, bshape=tuple(bshape),
                          count=xd.size // xd.shape[channel_axis])
        ctx.extras["mean"] = mean.reshape(-1)
        ctx.extras["var"] = var.reshape(-1)
        _launch_bn(ctx.device, "batchnorm_fwd", int(xd.size))
        return out.astype(xd.dtype, copy=False)

    @staticmethod
    def backward(ctx, grad):
        xhat, inv_std, gd = ctx.saved
        axes = ctx.extras["axes"]
        bshape = ctx.extras["bshape"]
        m = ctx.extras["count"]
        grad_gamma = (grad * xhat).sum(axis=axes)
        grad_beta = grad.sum(axis=axes)
        g = grad * gd.reshape(bshape)
        grad_x = (
            inv_std
            / m
            * (
                m * g
                - g.sum(axis=axes, keepdims=True)
                - xhat * (g * xhat).sum(axis=axes, keepdims=True)
            )
        )
        _launch_bn(ctx.device, "batchnorm_bwd", int(grad.size))
        return grad_x.astype(grad.dtype, copy=False), grad_gamma, grad_beta


class LayerNorm(Function):
    """Layer normalization over the trailing axis."""

    @staticmethod
    def forward(ctx, x, gamma, beta, eps: float = 1e-5):
        xd = _data(x)
        gd, bd = _data(gamma), _data(beta)
        mean = xd.mean(axis=-1, keepdims=True)
        var = xd.var(axis=-1, keepdims=True)
        inv_std = 1.0 / np.sqrt(var + eps)
        xhat = (xd - mean) * inv_std
        out = xhat * gd + bd
        ctx.save_for_backward(xhat, inv_std, gd)
        _launch_bn(ctx.device, "layernorm_fwd", int(xd.size))
        return out.astype(xd.dtype, copy=False)

    @staticmethod
    def backward(ctx, grad):
        xhat, inv_std, gd = ctx.saved
        n = xhat.shape[-1]
        reduce_axes = tuple(range(grad.ndim - 1))
        grad_gamma = (grad * xhat).sum(axis=reduce_axes)
        grad_beta = grad.sum(axis=reduce_axes)
        g = grad * gd
        grad_x = (
            inv_std
            / n
            * (
                n * g
                - g.sum(axis=-1, keepdims=True)
                - xhat * (g * xhat).sum(axis=-1, keepdims=True)
            )
        )
        _launch_bn(ctx.device, "layernorm_bwd", int(grad.size))
        return grad_x.astype(grad.dtype, copy=False), grad_gamma, grad_beta
