"""Partition-parallel (sharded) and out-of-core GNN training.

PR 5 gave every simulated device a 16 GiB caching HBM allocator with OOM
semantics; this module is the subsystem that finally *exercises* it.  A
graph is split by :func:`repro.graph.partition.partition_graph`; each
simulated GPU owns one partition of a 2-layer GCN and the feature rows of
its nodes, and fetches the rest over the NVLink model:

* **halo exchange** — before layer 1 each device gathers the features of
  its out-of-part in-neighbors (the partition plan's halo); before layer 2
  it gathers the layer-1 activations of the same halo rows (each hidden row
  is computed exactly once, by its owner — no redundant compute); the
  backward pass runs the reverse exchange, scattering halo-gradient
  contributions back to the owners.  All three ride the new
  :meth:`~repro.gpu.multigpu.MultiGPUSystem.halo_exchange` collective and
  appear on the ``halo`` trace stream.
* **host offload** — with ``offload=True`` a single device trains a graph
  larger than its HBM by staging one partition at a time through h2d/d2h
  (three sweeps per epoch: layer-1 forward, layer-2 forward+backward,
  layer-1 backward), so peak residency is one partition's working set plus
  the parameters.

Two execution modes share one geometry-driven accounting layer:

``numeric``
    Small graphs.  A pure-numpy fp64 reference of the partitioned math runs
    alongside the device accounting, proving partition invariance: sliced
    rows of the global sym-normalized adjacency contain exactly the nnz of
    the whole-matrix rows in the same order, so per-part forward values are
    bitwise equal to the whole-graph run and gradients agree to fp64
    rounding (``tests/test_sharded_train.py`` pins this).

``capacity``
    Million-node graphs.  No numerics — partition geometry (owned nodes,
    halo sizes, local nnz) drives analytic allocations, kernel launches and
    transfers, which is what the capacity-frontier study (``BENCH_shard``)
    sweeps: the largest trainable node count per GPU count.

A shard run is a pure function of ``(key, parts, offload, nodes, feat_dim,
hidden, epochs, seed, mode)``: every report field is simulated-clock or
integer-geometry arithmetic (plus deterministic fp64 losses, excluded from
the digest and compared with tolerance), so shard digests are byte-stable
across repeat runs, ``--jobs`` counts, profile-cache state and
analysis-cache settings.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from functools import lru_cache
from typing import Optional

import numpy as np
import scipy.sparse as sp

from ..graph.partition import PartitionPlan, partition_graph, plan_digest
from ..gpu import OpClass, SimulationConfig
from ..gpu.multigpu import MultiGPUSystem
from ..profiling import trace
from ..tensor import autograd, manual_seed
from ..tensor.ops import base as ops

#: bump when the shard report changes shape
SHARD_VERSION = 1

#: workloads with a sharded-training engine (the synthetic-citation axis)
SHARDABLE = ("ARGA",)

#: auto mode runs the fp64 numeric reference up to this many feature cells
NUMERIC_MAX_CELLS = 1 << 22

FLOAT_BYTES = 4
INDEX_BYTES = 8
LABEL_BYTES = 8

#: named configurations for goldens and the CLI (``python -m repro shard
#: ARGA-P4``); all resolve to the ARGA synthetic-citation workload
SHARD_GOLDEN_CONFIGS = {
    "ARGA-P2": dict(parts=2, offload=False, nodes=768, feat_dim=48,
                    hidden=16, epochs=2, seed=0, mode="numeric"),
    "ARGA-P4": dict(parts=4, offload=False, nodes=768, feat_dim=48,
                    hidden=16, epochs=2, seed=0, mode="numeric"),
    "ARGA-OFFLOAD": dict(parts=4, offload=True, nodes=768, feat_dim=48,
                         hidden=16, epochs=2, seed=0, mode="numeric"),
    "ARGA-CAP4": dict(parts=4, offload=False, nodes=20000, feat_dim=256,
                      hidden=32, epochs=2, seed=0, mode="capacity"),
}

SHARD_GOLDEN_KEYS = tuple(SHARD_GOLDEN_CONFIGS)


def resolve_shard_config(name: str) -> tuple[str, dict]:
    """CLI/executor key resolution: a named config or a bare workload key."""
    if name in SHARD_GOLDEN_CONFIGS:
        return "ARGA", dict(SHARD_GOLDEN_CONFIGS[name], name=name)
    upper = name.upper()
    if upper in SHARDABLE:
        return upper, {}
    raise ValueError(
        f"unknown shard config {name!r}; shardable workloads: "
        f"{sorted(SHARDABLE)}, named configs: {sorted(SHARD_GOLDEN_CONFIGS)}")


def validate_shard_config(parts: int, nodes: int, feat_dim: int, hidden: int,
                          epochs: int, mode: str) -> None:
    """Raise ``ValueError`` with a usable message on contradictory knobs."""
    if parts < 1:
        raise ValueError(f"parts must be >= 1, got {parts}")
    if nodes < 8:
        raise ValueError(f"nodes must be >= 8, got {nodes}")
    if feat_dim < 1:
        raise ValueError(f"feat-dim must be >= 1, got {feat_dim}")
    if hidden < 1:
        raise ValueError(f"hidden must be >= 1, got {hidden}")
    if epochs < 1:
        raise ValueError(f"epochs must be >= 1, got {epochs}")
    if mode not in ("auto", "numeric", "capacity"):
        raise ValueError(
            f"mode must be auto|numeric|capacity, got {mode!r}")


def resolve_mode(mode: str, nodes: int, feat_dim: int) -> str:
    if mode != "auto":
        return mode
    return "numeric" if nodes * feat_dim <= NUMERIC_MAX_CELLS else "capacity"


# -- dataset + plan caches -----------------------------------------------------


@lru_cache(maxsize=4)
def _shard_dataset(nodes: int, feat_dim: int, seed: int):
    from ..datasets.citation import synthetic_citation

    return synthetic_citation(int(nodes), feat_dim=int(feat_dim),
                              seed=int(seed))


@lru_cache(maxsize=8)
def _shard_plan(nodes: int, feat_dim: int, seed: int, parts: int,
                method: str, balance: float) -> PartitionPlan:
    dataset = _shard_dataset(nodes, feat_dim, seed)
    return partition_graph(dataset.graph, parts, method=method,
                           balance=balance, seed=seed)


# -- partition geometry --------------------------------------------------------


@dataclass(frozen=True)
class PartGeometry:
    """Structural counts that drive one part's allocations and kernels."""

    n_owned: int
    #: 1-hop in-neighbor halo size (== the plan's halo for this part)
    n_halo: int
    #: nnz of the part's local adjacency slice (owned rows of A+I)
    nnz: int
    #: rows of this part held as halo by peers (reverse-exchange volume)
    rev_halo: int
    #: training seeds owned by this part
    n_train: int

    @property
    def n_local(self) -> int:
        return self.n_owned + self.n_halo


def part_geometries(graph, plan: PartitionPlan,
                    train_idx: np.ndarray) -> list[PartGeometry]:
    """Per-part structural counts, O(E) — no slicing, no materialization."""
    indeg = graph.in_degrees()
    # add_self_loops() only adds loops where none exist
    has_loop = np.zeros(graph.num_nodes, dtype=bool)
    loops = graph.src[graph.src == graph.dst]
    has_loop[loops] = True
    indeg_loops = indeg + (~has_loop)
    if plan.halos and any(h.size for h in plan.halos):
        halo_owner = np.bincount(
            plan.assignment[np.concatenate(plan.halos)],
            minlength=plan.num_parts)
    else:
        halo_owner = np.zeros(plan.num_parts, dtype=np.int64)
    train_owner = np.bincount(plan.assignment[train_idx],
                              minlength=plan.num_parts)
    return [
        PartGeometry(
            n_owned=int(plan.parts[p].size),
            n_halo=int(plan.halos[p].size),
            nnz=int(indeg_loops[plan.parts[p]].sum()),
            rev_halo=int(halo_owner[p]),
            n_train=int(train_owner[p]),
        )
        for p in range(plan.num_parts)
    ]


def _param_count(feat: int, hidden: int, classes: int) -> int:
    return feat * hidden + hidden + hidden * classes + classes


def _adj_bytes(g: PartGeometry) -> int:
    return g.nnz * (FLOAT_BYTES + INDEX_BYTES) + (g.n_owned + 1) * INDEX_BYTES


# -- analytic kernel emission --------------------------------------------------


def _emit_spmm(device, name: str, rows: int, nnz: int, width: int) -> None:
    if nnz == 0 or rows == 0:
        return
    work = float(nnz * width)
    ops.launch(
        device, name, OpClass.SPMM,
        threads=max(32, rows * min(32, max(1, width))),
        cost=ops.COSTS["spmm"], work_items=work,
        bytes_read=work * FLOAT_BYTES + nnz * (FLOAT_BYTES + INDEX_BYTES),
        bytes_written=float(rows * width * FLOAT_BYTES),
        working_set_bytes=float(rows * width * FLOAT_BYTES
                                + nnz * (FLOAT_BYTES + INDEX_BYTES)),
    )


def _emit_forward(device, g: PartGeometry, feat: int, hidden: int,
                  classes: int, layer: int) -> None:
    """One layer of the partitioned GCN forward on ``device``."""
    if layer == 1:
        _emit_spmm(device, "shard.spmm_l1", g.n_owned, g.nnz, feat)
        ops.launch_gemm(device, "shard.gemm_l1", g.n_owned, feat, hidden)
        ops.launch_elementwise(device, "shard.bias_relu",
                               g.n_owned * hidden, num_inputs=2, kind="unary")
    else:
        _emit_spmm(device, "shard.spmm_l2", g.n_owned, g.nnz, hidden)
        ops.launch_gemm(device, "shard.gemm_l2", g.n_owned, hidden, classes)
        ops.launch_reduction(device, "shard.softmax_ce",
                             in_size=g.n_train * classes, out_size=g.n_train,
                             op_class=OpClass.SOFTMAX, kind="softmax")


def _emit_backward_l2(device, g: PartGeometry, hidden: int,
                      classes: int) -> None:
    """Layer-2 backward: logits grad, W2 grad, halo-row contributions."""
    ops.launch_elementwise(device, "shard.grad_logits",
                           g.n_train * classes, num_inputs=2)
    ops.launch_gemm(device, "shard.grad_w2", hidden, g.n_owned, classes)
    ops.launch_gemm(device, "shard.grad_h1", g.n_owned, classes, hidden)
    # A_loc^T scatter of dH1 contributions over owned + halo rows
    _emit_spmm(device, "shard.spmm_l2_bwd", g.n_local, g.nnz, hidden)


def _emit_backward_l1(device, g: PartGeometry, feat: int,
                      hidden: int) -> None:
    ops.launch_elementwise(device, "shard.relu_bwd",
                           g.n_owned * hidden, num_inputs=2)
    ops.launch_gemm(device, "shard.grad_w1", feat, g.n_owned, hidden)


def _emit_sgd(device, params: int) -> None:
    ops.launch_elementwise(device, "shard.sgd_step", params, num_inputs=2)


def _alloc(device, nbytes: int, label: str) -> Optional[int]:
    if nbytes <= 0:
        return None
    return device.memory.alloc(int(nbytes), label=label,
                               phase=autograd.current_phase())


def _free(device, block: Optional[int]) -> None:
    if block is not None:
        device.memory.free(block)


# -- the device-accounting simulation ------------------------------------------


@dataclass
class ShardAccounting:
    halo_exchanges: int = 0
    halo_bytes: int = 0
    halo_time_s: float = 0.0
    allreduce_bytes: int = 0
    epoch_times_s: tuple = ()


def _halo(system: MultiGPUSystem, acct: ShardAccounting, recv_bytes,
          label: str) -> None:
    duration = system.halo_exchange(recv_bytes, label=label)
    acct.halo_exchanges += 1
    acct.halo_bytes += int(sum(recv_bytes))
    acct.halo_time_s += duration


def _simulate_parallel(system: MultiGPUSystem, geoms: list[PartGeometry],
                       feat: int, hidden: int, classes: int, epochs: int,
                       tracer) -> ShardAccounting:
    """One GPU per partition: halo exchanges over NVLink, DDP allreduce."""
    acct = ShardAccounting()
    devices = system.devices
    params = _param_count(feat, hidden, classes)
    grad_bytes = params * FLOAT_BYTES
    with autograd.phase("setup"):
        for dev, g in zip(devices, geoms):
            resident = (2 * grad_bytes + _adj_bytes(g)
                        + g.n_owned * feat * FLOAT_BYTES
                        + g.n_owned * LABEL_BYTES)
            _alloc(dev, 2 * grad_bytes, "shard.params")
            _alloc(dev, _adj_bytes(g), "shard.adj")
            _alloc(dev, g.n_owned * feat * FLOAT_BYTES, "shard.features")
            _alloc(dev, g.n_owned * LABEL_BYTES, "shard.labels")
            _alloc(dev, g.n_halo * feat * FLOAT_BYTES, "shard.halo_features")
            dev.transfer_bytes(resident, "h2d", "shard.load")
        # features move once: they are static across epochs
        _halo(system, acct,
              [g.n_halo * feat * FLOAT_BYTES for g in geoms], "halo.features")
    epoch_times = []
    for epoch in range(epochs):
        start = system.barrier()
        scratch: list[list] = [[] for _ in devices]
        with autograd.phase("forward"):
            for i, (dev, g) in enumerate(zip(devices, geoms)):
                scratch[i].append(
                    _alloc(dev, g.n_local * hidden * FLOAT_BYTES, "shard.h1"))
                scratch[i].append(
                    _alloc(dev, g.n_owned * classes * FLOAT_BYTES,
                           "shard.logits"))
                _emit_forward(dev, g, feat, hidden, classes, layer=1)
        _halo(system, acct,
              [g.n_halo * hidden * FLOAT_BYTES for g in geoms], "halo.h1")
        with autograd.phase("forward"):
            for dev, g in zip(devices, geoms):
                _emit_forward(dev, g, feat, hidden, classes, layer=2)
        with autograd.phase("backward"):
            for i, (dev, g) in enumerate(zip(devices, geoms)):
                scratch[i].append(
                    _alloc(dev, g.n_local * hidden * FLOAT_BYTES,
                           "shard.dh1"))
                _emit_backward_l2(dev, g, hidden, classes)
        _halo(system, acct,
              [g.rev_halo * hidden * FLOAT_BYTES for g in geoms], "halo.dh1")
        with autograd.phase("backward"):
            for dev, g in zip(devices, geoms):
                _emit_backward_l1(dev, g, feat, hidden)
        if len(devices) > 1:
            system.allreduce(grad_bytes)
            acct.allreduce_bytes += grad_bytes
        with autograd.phase("optimizer"):
            for dev in devices:
                _emit_sgd(dev, params)
        for i, dev in enumerate(devices):
            for block in scratch[i]:
                _free(dev, block)
            dev.memory.end_epoch()
        end = system.barrier()
        epoch_times.append(end - start)
        if tracer is not None:
            for dev in devices:
                tracer.end_epoch(dev, epoch, start)
    acct.epoch_times_s = tuple(epoch_times)
    return acct


def _simulate_offload(system: MultiGPUSystem, geoms: list[PartGeometry],
                      feat: int, hidden: int, classes: int, epochs: int,
                      tracer) -> ShardAccounting:
    """Out-of-core: one device stages partitions through h2d/d2h.

    Three sweeps per epoch keep only one partition resident at a time:
    layer-1 forward (features in, hidden activations out), layer-2
    forward + backward (hidden rows in, halo-gradient contributions out),
    layer-1 backward (features + owned gradient rows in).  Staging buffers
    are sized once for the heaviest partition, so the caching allocator
    reuses the same buckets across parts and epochs and peak HBM is the
    parameters plus one sweep's worst-case staging set.
    """
    acct = ShardAccounting()
    dev = system.devices[0]
    params = _param_count(feat, hidden, classes)
    grad_bytes = params * FLOAT_BYTES
    max_adj = max(_adj_bytes(g) for g in geoms)
    max_owned = max(g.n_owned for g in geoms)
    max_halo = max(g.n_halo for g in geoms)
    max_local = max(g.n_local for g in geoms)
    with autograd.phase("setup"):
        _alloc(dev, 2 * grad_bytes, "shard.params")
        dev.transfer_bytes(2 * grad_bytes, "h2d", "shard.load")
    epoch_times = []
    for epoch in range(epochs):
        start = dev.elapsed_s()
        with autograd.phase("forward"):  # sweep 1: layer-1 forward
            blocks = [
                _alloc(dev, max_adj, "shard.adj"),
                _alloc(dev, max_owned * feat * FLOAT_BYTES, "shard.features"),
                _alloc(dev, max_halo * feat * FLOAT_BYTES,
                       "shard.halo_features"),
                _alloc(dev, max_owned * hidden * FLOAT_BYTES, "shard.h1"),
            ]
            for g in geoms:
                dev.transfer_bytes(
                    _adj_bytes(g) + g.n_local * feat * FLOAT_BYTES,
                    "h2d", "shard.stage_in")
                _emit_forward(dev, g, feat, hidden, classes, layer=1)
                dev.transfer_bytes(g.n_owned * hidden * FLOAT_BYTES,
                                   "d2h", "shard.h1_out")
            for block in blocks:
                _free(dev, block)
        # sweep 2: layer-2 forward + backward
        with autograd.phase("forward"):
            blocks = [
                _alloc(dev, max_adj, "shard.adj"),
                _alloc(dev, max_local * hidden * FLOAT_BYTES, "shard.h1"),
                _alloc(dev, max_owned * LABEL_BYTES, "shard.labels"),
                _alloc(dev, max_local * hidden * FLOAT_BYTES, "shard.dh1"),
            ]
        for g in geoms:
            with autograd.phase("forward"):
                dev.transfer_bytes(
                    _adj_bytes(g) + g.n_local * hidden * FLOAT_BYTES
                    + g.n_owned * LABEL_BYTES,
                    "h2d", "shard.stage_in")
                _emit_forward(dev, g, feat, hidden, classes, layer=2)
            with autograd.phase("backward"):
                _emit_backward_l2(dev, g, hidden, classes)
                dev.transfer_bytes(g.n_local * hidden * FLOAT_BYTES,
                                   "d2h", "shard.dh1_out")
        for block in blocks:
            _free(dev, block)
        with autograd.phase("backward"):  # sweep 3: layer-1 backward
            blocks = [
                _alloc(dev, max_adj, "shard.adj"),
                _alloc(dev, max_owned * feat * FLOAT_BYTES, "shard.features"),
                _alloc(dev, max_halo * feat * FLOAT_BYTES,
                       "shard.halo_features"),
                _alloc(dev, max_owned * hidden * FLOAT_BYTES, "shard.dh1"),
            ]
            for g in geoms:
                dev.transfer_bytes(
                    _adj_bytes(g) + g.n_local * feat * FLOAT_BYTES
                    + g.n_owned * hidden * FLOAT_BYTES,
                    "h2d", "shard.stage_in")
                _emit_backward_l1(dev, g, feat, hidden)
            for block in blocks:
                _free(dev, block)
        with autograd.phase("optimizer"):
            _emit_sgd(dev, params)
        dev.memory.end_epoch()
        epoch_times.append(dev.elapsed_s() - start)
        if tracer is not None:
            tracer.end_epoch(dev, epoch, start)
    acct.epoch_times_s = tuple(epoch_times)
    return acct


# -- the fp64 numeric reference ------------------------------------------------


def _sym_adjacency(graph) -> sp.csr_matrix:
    """Global sym-normalized adjacency with self loops.

    Mirrors ``Graph.adjacency(norm="sym", add_self_loops=True)`` value for
    value (float32 data), without building a device-facing SparseTensor.
    """
    g = graph.add_self_loops()
    adj = g.csr().astype(np.float32)
    deg = np.maximum(np.asarray(adj.sum(axis=1)).reshape(-1), 1.0)
    dinv = sp.diags(1.0 / np.sqrt(deg))
    return (dinv @ adj @ dinv).tocsr()


def init_params(feat: int, hidden: int, classes: int, seed: int) -> dict:
    """Glorot-style fp64 parameters, seeded with a spawn key."""
    rng = np.random.default_rng([seed, 7])
    return {
        "W1": rng.normal(0.0, (2.0 / (feat + hidden)) ** 0.5, (feat, hidden)),
        "b1": np.zeros(hidden),
        "W2": rng.normal(0.0, (2.0 / (hidden + classes)) ** 0.5,
                         (hidden, classes)),
        "b2": np.zeros(classes),
    }


def train_numeric(dataset, plan: PartitionPlan, hidden: int, epochs: int,
                  lr: float, seed: int) -> dict:
    """Full-batch partitioned 2-layer GCN in fp64 — the reference math.

    Per part ``p`` with owned rows ``O`` and support ``S = O ∪ halo``:
    ``A_loc = A_sym[O][:, S]`` holds exactly the nnz of the whole-matrix
    rows ``O`` in the same order (row slicing preserves per-row column
    order; every column of an owned row lies in ``S`` by the halo
    property), so ``A_loc @ X[S]`` is bitwise equal to ``(A_sym @ X)[O]``.
    Layer-2 support is again ``S`` because each part aggregates its owned
    rows only, from hidden rows computed once by their owners.  Per-part
    gradients sum (fixed part order) to the full-batch gradient by
    linearity, so 1/2/4-part runs agree to fp64 rounding.

    Returns ``{"losses": [per-epoch loss], "grads": last-epoch gradients,
    "params": final parameters}``.
    """
    graph = dataset.graph
    n = graph.num_nodes
    A = _sym_adjacency(graph)
    X = np.asarray(dataset.features[np.arange(n)], dtype=np.float64)
    labels = np.asarray(dataset.labels, dtype=np.int64)
    train_idx = np.asarray(dataset.train_idx, dtype=np.int64)
    n_train = int(train_idx.size)
    train_mask = np.zeros(n, dtype=bool)
    train_mask[train_idx] = True
    classes = dataset.num_classes
    feat = X.shape[1]
    p_ = init_params(feat, hidden, classes, seed)
    W1, b1, W2, b2 = p_["W1"], p_["b1"], p_["W2"], p_["b2"]

    supports, locals_, train_rows, owned_labels = [], [], [], []
    for p in range(plan.num_parts):
        owned = plan.parts[p]
        S = np.union1d(owned, plan.halos[p])
        supports.append(S)
        locals_.append(A[owned][:, S])
        train_rows.append(np.flatnonzero(train_mask[owned]))
        owned_labels.append(labels[owned])

    losses, grads = [], {}
    for _ in range(epochs):
        # forward, layer 1: owners compute their hidden rows
        H1 = np.zeros((n, hidden))
        M1s = []
        for p in range(plan.num_parts):
            M1 = locals_[p] @ X[supports[p]]
            M1s.append(M1)
            H1[plan.parts[p]] = np.maximum(M1 @ W1 + b1, 0.0)
        # forward, layer 2 (+ per-part CE partial sums) and backward
        loss_sum = 0.0
        dW1 = np.zeros_like(W1)
        db1 = np.zeros_like(b1)
        dW2 = np.zeros_like(W2)
        db2 = np.zeros_like(b2)
        dH1 = np.zeros((n, hidden))
        part_state = []
        for p in range(plan.num_parts):
            M2 = locals_[p] @ H1[supports[p]]
            Z = M2 @ W2 + b2
            rows = train_rows[p]
            Zt = Z[rows]
            m = Zt.max(axis=1, keepdims=True) if Zt.size else Zt
            lse = m + np.log(np.exp(Zt - m).sum(axis=1, keepdims=True)) \
                if Zt.size else Zt
            y = owned_labels[p][rows]
            if Zt.size:
                loss_sum += float(
                    (lse.ravel() - Zt[np.arange(rows.size), y]).sum())
            part_state.append((M2, Z, rows, lse, y))
        losses.append(loss_sum / n_train)
        for p in range(plan.num_parts):
            M2, Z, rows, lse, y = part_state[p]
            G = np.zeros_like(Z)
            if rows.size:
                soft = np.exp(Z[rows] - lse)
                soft[np.arange(rows.size), y] -= 1.0
                G[rows] = soft / n_train
            dW2 += M2.T @ G
            db2 += G.sum(axis=0)
            dH1[supports[p]] += locals_[p].T @ (G @ W2.T)
        for p in range(plan.num_parts):
            owned = plan.parts[p]
            dpre = dH1[owned] * (H1[owned] > 0)
            dW1 += M1s[p].T @ dpre
            db1 += dpre.sum(axis=0)
        grads = {"W1": dW1, "b1": db1, "W2": dW2, "b2": db2}
        W1 = W1 - lr * dW1
        b1 = b1 - lr * db1
        W2 = W2 - lr * dW2
        b2 = b2 - lr * db2
    return {"losses": losses, "grads": grads,
            "params": {"W1": W1, "b1": b1, "W2": W2, "b2": b2}}


# -- reporting -----------------------------------------------------------------

#: fields excluded from the digest: the digest pins the exact-deterministic
#: payload; losses are fp64 values compared with tolerance instead
_DIGEST_EXCLUDE = ("shard_digest", "losses", "loss_final")


def digest_shard_report(report: dict) -> str:
    """SHA-256 over the canonical JSON of the exact-deterministic fields."""
    payload = {k: v for k, v in report.items() if k not in _DIGEST_EXCLUDE}
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def _halo_trace_digest(timeline: trace.Timeline) -> str:
    """SHA-256 over the canonical halo span stream (the halo trace golden)."""
    spans = [
        {"name": s.name, "pid": s.pid, "tid": s.tid, "ts_us": s.ts_us,
         "dur_us": s.dur_us, "args": dict(s.args)}
        for s in timeline.spans if s.cat == trace.CAT_HALO
    ]
    canonical = json.dumps(spans, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def build_shard_report(
    key: str, name: str, mode: str, parts: int, gpus: int, offload: bool,
    nodes: int, feat_dim: int, hidden: int, classes: int, epochs: int,
    lr: float, seed: int, graph, plan: PartitionPlan,
    geoms: list[PartGeometry], acct: ShardAccounting, system: MultiGPUSystem,
    losses: list, timeline: trace.Timeline,
) -> dict:
    devices = system.devices
    pools = [dev.memory.stats() for dev in devices]
    wall = system.elapsed_s()
    report = {
        "version": SHARD_VERSION,
        "workload": key,
        "name": name,
        "mode": mode,
        "parts": int(parts),
        "gpus": int(gpus),
        "offload": bool(offload),
        "nodes": int(nodes),
        "feat_dim": int(feat_dim),
        "hidden": int(hidden),
        "classes": int(classes),
        "epochs": int(epochs),
        "lr": float(lr),
        "seed": int(seed),
        "graph_nodes": int(graph.num_nodes),
        "graph_edges": int(graph.num_edges),
        "train_nodes": int(sum(g.n_train for g in geoms)),
        "partition": plan.describe(),
        "plan_digest": plan_digest(plan),
        "halo_nodes": [g.n_halo for g in geoms],
        "local_nnz": [g.nnz for g in geoms],
        "kernels": int(sum(dev.stats.kernel_count for dev in devices)),
        "transfers": int(sum(dev.stats.transfer_count for dev in devices)),
        "h2d_bytes": int(sum(dev.stats.h2d_bytes for dev in devices)),
        "d2h_bytes": int(sum(dev.stats.d2h_bytes for dev in devices)),
        "halo_exchanges": int(acct.halo_exchanges),
        "halo_bytes": int(acct.halo_bytes),
        "halo_time_s": float(acct.halo_time_s),
        "allreduce_bytes": int(acct.allreduce_bytes),
        "epoch_sim_times_s": [float(t) for t in acct.epoch_times_s],
        "sim_wall_s": float(wall),
        "epochs_per_sim_s": (epochs / wall) if wall else 0.0,
        "peak_live_bytes": max(p["peak_live_bytes"] for p in pools),
        "peak_reserved_bytes": max(p["peak_reserved_bytes"] for p in pools),
        "hbm_utilization": max(p["utilization"] for p in pools),
        "oom_events": int(sum(p["oom_events"] for p in pools)),
        "halo_trace_digest": _halo_trace_digest(timeline),
        "losses": [float(x) for x in losses],
        "loss_final": float(losses[-1]) if losses else None,
    }
    report["shard_digest"] = digest_shard_report(report)
    return report


# -- entry points --------------------------------------------------------------


def shard_run(
    key: str,
    parts: int = 4,
    offload: bool = False,
    nodes: int = 4096,
    feat_dim: int = 64,
    hidden: int = 32,
    epochs: int = 2,
    lr: float = 0.2,
    seed: int = 0,
    method: str = "bfs",
    balance: float = 1.05,
    mode: str = "auto",
    strict: bool = False,
    sim: Optional[SimulationConfig] = None,
    traced: bool = False,
    name: Optional[str] = None,
) -> tuple[dict, Optional[trace.Timeline]]:
    """Simulate sharded training; return (report, timeline-or-None).

    ``strict=True`` raises :class:`repro.gpu.memory.OOMError` the moment
    any device's partition working set exceeds its HBM capacity — the
    capacity-frontier probe.  A tracer always runs internally (the halo
    span stream is digested into the report); the timeline is returned
    only when ``traced=True``.
    """
    if key not in SHARDABLE:
        raise ValueError(
            f"workload {key!r} has no sharded-training engine; shardable "
            f"workloads: {sorted(SHARDABLE)}")
    parts, nodes, feat_dim = int(parts), int(nodes), int(feat_dim)
    hidden, epochs, seed = int(hidden), int(epochs), int(seed)
    validate_shard_config(parts, nodes, feat_dim, hidden, epochs, mode)
    mode = resolve_mode(mode, nodes, feat_dim)
    if name is None:
        name = f"{key}-P{parts}" + ("-OFFLOAD" if offload else "")
    manual_seed(seed)
    dataset = _shard_dataset(nodes, feat_dim, seed)
    plan = _shard_plan(nodes, feat_dim, seed, parts, method, float(balance))
    geoms = part_geometries(dataset.graph, plan, dataset.train_idx)
    gpus = 1 if offload else parts
    system = MultiGPUSystem(gpus, sim)
    for dev in system.devices:
        dev.memory.strict = strict
        dev.memory.clock = dev.elapsed_s
    try:
        with trace.session(devices=tuple(system.devices)) as tracer:
            if offload:
                acct = _simulate_offload(system, geoms, feat_dim, hidden,
                                         dataset.num_classes, epochs, tracer)
            else:
                acct = _simulate_parallel(system, geoms, feat_dim, hidden,
                                          dataset.num_classes, epochs, tracer)
            timeline = tracer.timeline()
    finally:
        for dev in system.devices:
            dev.memory.strict = False
            dev.memory.clock = None
    losses = []
    if mode == "numeric":
        losses = train_numeric(dataset, plan, hidden, epochs, lr,
                               seed)["losses"]
    report = build_shard_report(
        key, name, mode, parts, gpus, offload, nodes, feat_dim, hidden,
        dataset.num_classes, epochs, lr, seed, dataset.graph, plan, geoms,
        acct, system, losses, timeline)
    from ..profiling import metrics as metrics_mod

    for dev in system.devices:
        metrics_mod.collect_device(dev)
    metrics_mod.collect_shard(report)
    return report, (timeline if traced else None)


def shard_report(key: str, **kwargs) -> dict:
    """The picklable executor-task entry point (no timeline)."""
    kwargs.pop("traced", None)
    report, _ = shard_run(key, traced=False, **kwargs)
    return report
