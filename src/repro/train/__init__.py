"""Training drivers: single-device trainer, DDP scaling, mini-batch loader."""

from .ddp import (
    ScalingPoint,
    run_scaling_point,
    run_scaling_study,
    run_weak_scaling_point,
    run_weak_scaling_study,
    trace_scaling_point,
)
from .loader import (
    SAMPLEABLE,
    NeighborLoader,
    PrefetchPipeline,
    sample_report,
    sample_run,
    sampler_cost_s,
)
from .trainer import EpochResult, TimeToTrain, Trainer

__all__ = [
    "EpochResult",
    "NeighborLoader",
    "PrefetchPipeline",
    "SAMPLEABLE",
    "ScalingPoint",
    "TimeToTrain",
    "Trainer",
    "run_scaling_point",
    "run_scaling_study",
    "run_weak_scaling_point",
    "run_weak_scaling_study",
    "sample_report",
    "sample_run",
    "sampler_cost_s",
    "trace_scaling_point",
]
