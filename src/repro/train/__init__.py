"""Training drivers: single-device trainer, DDP strong/weak scaling."""

from .ddp import (
    ScalingPoint,
    run_scaling_point,
    run_scaling_study,
    run_weak_scaling_point,
    run_weak_scaling_study,
    trace_scaling_point,
)
from .trainer import EpochResult, TimeToTrain, Trainer

__all__ = [
    "EpochResult",
    "ScalingPoint",
    "TimeToTrain",
    "Trainer",
    "run_scaling_point",
    "run_scaling_study",
    "run_weak_scaling_point",
    "run_weak_scaling_study",
    "trace_scaling_point",
]
