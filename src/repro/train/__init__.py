"""Training drivers: single-device trainer, DDP scaling, mini-batch
loader, and partition-parallel / out-of-core sharded training."""

from .ddp import (
    ScalingPoint,
    run_scaling_point,
    run_scaling_study,
    run_weak_scaling_point,
    run_weak_scaling_study,
    trace_scaling_point,
)
from .loader import (
    SAMPLEABLE,
    NeighborLoader,
    PrefetchPipeline,
    sample_report,
    sample_run,
    sampler_cost_s,
)
from .sharded import (
    SHARDABLE,
    PartGeometry,
    shard_report,
    shard_run,
    train_numeric,
)
from .trainer import EpochResult, TimeToTrain, Trainer

__all__ = [
    "EpochResult",
    "NeighborLoader",
    "PartGeometry",
    "PrefetchPipeline",
    "SAMPLEABLE",
    "SHARDABLE",
    "ScalingPoint",
    "TimeToTrain",
    "Trainer",
    "run_scaling_point",
    "run_scaling_study",
    "run_weak_scaling_point",
    "run_weak_scaling_study",
    "sample_report",
    "sample_run",
    "sampler_cost_s",
    "shard_report",
    "shard_run",
    "trace_scaling_point",
    "train_numeric",
]
