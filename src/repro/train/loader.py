"""Mini-batch neighbor-sampled training: NeighborLoader + prefetch pipeline.

Full-graph training touches every node each epoch, which is why the suite
runs at scaled-down sizes.  This module makes graph size a free axis:

* :class:`NeighborLoader` is a seeded, CSR-native multi-layer neighbor
  sampler — per-layer fanouts produce a list of :class:`SampledBlock`\\ s per
  mini-batch, deterministic under ``default_rng([seed, epoch, batch_idx])``
  and fully vectorized (``uniform_neighbor_block`` draws one random key per
  candidate edge; no per-seed Python loop);
* :class:`PrefetchPipeline` runs the producer/consumer overlap on the
  simulated clock: a CPU-side sampler latency model charges each batch a
  cost proportional to seeds and sampled edges, a bounded queue of depth
  ``prefetch_depth`` lets sampling run ahead of device compute, and whenever
  the device drains the queue faster than the sampler fills it the wait is
  accounted as ``loader_stall`` (and appears as a ``loader`` span stream in
  the tracer).  ``prefetch_depth=0`` is the synchronous baseline: every
  batch pays the full sampler cost inline.

A sample run is a pure function of ``(key, scale, fanouts, batch_size,
prefetch_depth, epochs, nodes, seed)`` — every report field is simulated-
clock arithmetic over shape-derived quantities and seeded draws, so sample
digests are byte-identical across repeat runs, ``--jobs`` counts and
analysis-cache settings (``tests/test_sample_golden.py`` pins the matrix).
"""

from __future__ import annotations

import contextlib
import hashlib
import json
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Optional

import numpy as np

from ..graph import Graph
from ..graph.sampling import SampledBlock, uniform_neighbor_block
from ..gpu import SimulatedGPU, SimulationConfig
from ..gpu import memory as gpu_memory
from ..profiling import trace
from ..tensor import Tensor, autograd, functional as F, manual_seed, nn
from ..tensor.optim import Adam
from .trainer import Trainer

#: bump when the sample report changes shape
SAMPLE_VERSION = 1

#: workloads with a mini-batch sampled-training engine
SAMPLEABLE = ("ARGA", "PSAGE-MVL", "PSAGE-NWP")

#: default key set for goldens and BENCH_sample (the citation + PinSAGE
#: flagships the acceptance gate names; NWP rides along via the CLI)
SAMPLE_DEFAULT_KEYS = ("ARGA", "PSAGE-MVL")

# -- CPU-side sampler latency model (seconds) ---------------------------------
# The cost of producing one mini-batch of blocks on the host: a fixed batch
# overhead, a per-seed term (indptr lookups, queue bookkeeping) per layer
# frontier, and a per-sampled-edge term (key draws + compaction).  The edge
# count is itself a function of seeds x fanout x avg-degree, so the model is
# closed-form in the loader knobs while still charging isolated seeds less.
SAMPLE_COST_PER_BATCH_S = 50e-6
SAMPLE_COST_PER_SEED_S = 1.5e-6
SAMPLE_COST_PER_EDGE_S = 80e-9


def sampler_cost_s(blocks: list[SampledBlock]) -> float:
    """Simulated host latency to sample one mini-batch's block list."""
    cost = SAMPLE_COST_PER_BATCH_S
    for block in blocks:
        cost += block.num_dst * SAMPLE_COST_PER_SEED_S
        cost += block.edge_dst.size * SAMPLE_COST_PER_EDGE_S
    return cost


def validate_sample_config(fanouts, batch_size: int, prefetch_depth: int,
                           epochs: int) -> None:
    """Raise ``ValueError`` with a usable message on contradictory knobs."""
    if not fanouts or any(int(f) < 1 for f in fanouts):
        raise ValueError(f"fanouts must be >= 1 per layer, got {fanouts!r}")
    if batch_size < 1:
        raise ValueError(f"batch-size must be >= 1, got {batch_size}")
    if prefetch_depth < 0:
        raise ValueError(f"prefetch-depth must be >= 0, got {prefetch_depth}")
    if epochs < 1:
        raise ValueError(f"epochs must be >= 1, got {epochs}")


# -- the loader ----------------------------------------------------------------


@dataclass
class NeighborLoader:
    """Seeded multi-layer neighbor sampler over one CSR graph.

    Epoch ``e`` visits a ``default_rng([seed, e])`` permutation of
    ``train_ids`` in ``batch_size`` chunks; batch ``i`` samples its blocks
    under ``default_rng([seed, e, i])``.  ``sample_blocks`` returns blocks in
    forward order — ``blocks[0]`` is the outermost (widest) frontier and
    ``blocks[-1].dst_nodes`` are the requested seeds — with the nesting
    invariant ``blocks[j].dst_nodes == blocks[j+1].src_nodes[:num_dst]``
    prefix-aligned for :class:`~repro.models.layers.SAGEConv`.
    """

    graph: Graph
    train_ids: np.ndarray
    fanouts: tuple
    batch_size: int
    seed: int = 0

    def __post_init__(self) -> None:
        self.train_ids = np.asarray(self.train_ids, dtype=np.int64)
        self.fanouts = tuple(int(f) for f in self.fanouts)

    @property
    def num_batches(self) -> int:
        return -(-self.train_ids.size // self.batch_size)

    def epoch_order(self, epoch: int) -> np.ndarray:
        rng = np.random.default_rng([self.seed, int(epoch)])
        return rng.permutation(self.train_ids)

    def batches(self, epoch: int) -> list[np.ndarray]:
        order = self.epoch_order(epoch)
        return [order[i: i + self.batch_size]
                for i in range(0, order.size, self.batch_size)]

    def batch_rng(self, epoch: int, batch_idx: int) -> np.random.Generator:
        return np.random.default_rng([self.seed, int(epoch), int(batch_idx)])

    def sample_blocks(self, seeds: np.ndarray,
                      rng: np.random.Generator) -> list[SampledBlock]:
        blocks: list[SampledBlock] = []
        frontier = np.asarray(seeds, dtype=np.int64)
        for fanout in reversed(self.fanouts):
            block = uniform_neighbor_block(self.graph, frontier, fanout, rng)
            blocks.append(block)
            frontier = block.src_nodes
        blocks.reverse()
        return blocks


# -- per-workload mini-batch engines ------------------------------------------


class SampledSAGEModel(nn.Module):
    """Input projection + one SAGE layer per fanout + a linear head."""

    def __init__(self, in_features: int, hidden: int, out_features: int,
                 num_layers: int) -> None:
        super().__init__()
        from ..models.layers import SAGEConv

        self.input_proj = nn.Linear(in_features, hidden)
        self.convs = nn.ModuleList(
            [SAGEConv(hidden, hidden) for _ in range(num_layers)]
        )
        self.head = nn.Linear(hidden, out_features)

    def forward(self, features: Tensor, blocks: list[SampledBlock]) -> Tensor:
        """``features``: rows aligned with ``blocks[0].src_nodes``."""
        h = F.relu(self.input_proj(features))
        for conv, block in zip(self.convs, blocks):
            h = F.relu(conv(block, h))
        return self.head(h)


class CitationSampleEngine:
    """Mini-batch node classification on a (possibly huge) citation graph."""

    def __init__(self, dataset, device, fanouts, hidden: int = 32,
                 lr: float = 1e-2) -> None:
        self.dataset = dataset
        self.graph = dataset.graph
        self.train_ids = np.asarray(dataset.train_idx, dtype=np.int64)
        self.labels = dataset.labels
        self.device = device
        self.model = SampledSAGEModel(dataset.feature_dim, hidden,
                                      dataset.num_classes, len(fanouts))
        if device is not None:
            self.model.to(device)
        self.optimizer = Adam(self.model.parameters(), lr=lr)

    def prepare_batch(self, seeds: np.ndarray, rng: np.random.Generator):
        return seeds, seeds

    def run_batch(self, blocks: list[SampledBlock], ctx,
                  rng: np.random.Generator) -> float:
        feats = np.ascontiguousarray(
            self.dataset.features[blocks[0].src_nodes], dtype=np.float32
        )
        _stage_h2d(self.device, feats, blocks)
        x = Tensor(feats, device=self.device, _skip_copy=True)
        self.optimizer.zero_grad()
        logits = self.model(x, blocks)
        loss = F.cross_entropy(logits, self.labels[ctx])
        loss.backward()
        self.optimizer.step()
        return float(loss.item())


class PinSAGESampleEngine:
    """Mini-batch margin-ranking training on the item co-interaction graph."""

    def __init__(self, dataset, device, fanouts, hidden: int = 16,
                 lr: float = 1e-3) -> None:
        self.dataset = dataset
        self.graph = dataset.graph.bipartite_projection(
            via=("item", "watched-by", "user"),
            back=("user", "watched", "item"),
        )
        self.train_ids = np.arange(self.graph.num_nodes, dtype=np.int64)
        self.device = device
        self.model = SampledSAGEModel(dataset.feature_dim, hidden, hidden,
                                      len(fanouts))
        if device is not None:
            self.model.to(device)
        self.optimizer = Adam(self.model.parameters(), lr=lr)

    def prepare_batch(self, seeds: np.ndarray, rng: np.random.Generator):
        """(unique heads, (inverse, n)): seeds + positives + negatives.

        Positives are one co-interaction in-neighbor per seed (isolated
        items fall back to themselves, so the dst slot survives); negatives
        are uniform random items — `PinSAGEWorkload.sample_pairs` semantics
        under per-batch seeding.
        """
        csr = self.graph.csr()
        indptr = csr.indptr.astype(np.int64)
        deg = indptr[seeds + 1] - indptr[seeds]
        if csr.indices.size:
            draw = indptr[seeds] + np.floor(
                rng.random(seeds.size) * np.maximum(deg, 1)
            ).astype(np.int64)
            picks = csr.indices[
                np.minimum(draw, csr.indices.size - 1)].astype(np.int64)
            pos = np.where(deg > 0, picks, seeds)
        else:
            pos = seeds
        neg = rng.integers(0, self.graph.num_nodes, size=seeds.size)
        heads = np.concatenate([seeds, pos, neg])
        uniq, inverse = np.unique(heads, return_inverse=True)
        return uniq, (inverse, seeds.size)

    def run_batch(self, blocks: list[SampledBlock], ctx,
                  rng: np.random.Generator) -> float:
        inverse, n = ctx
        feats = np.ascontiguousarray(
            self.dataset.item_features[blocks[0].src_nodes], dtype=np.float32
        )
        _stage_h2d(self.device, feats, blocks)
        x = Tensor(feats, device=self.device, _skip_copy=True)
        self.optimizer.zero_grad()
        emb = self.model(x, blocks)
        emb_seed = F.index_select(emb, inverse[:n])
        emb_pos = F.index_select(emb, inverse[n: 2 * n])
        emb_neg = F.index_select(emb, inverse[2 * n:])
        pos_score = F.sum(emb_seed * emb_pos, axis=1)
        neg_score = F.sum(emb_seed * emb_neg, axis=1)
        loss = F.margin_ranking_loss(pos_score, neg_score, margin=1.0)
        loss.backward()
        self.optimizer.step()
        return float(loss.item())


def _stage_h2d(device, feats: np.ndarray, blocks: list[SampledBlock]) -> None:
    """Stage one batch's features + block edges through the H2D path.

    Per-batch arrays register with the active device-memory tracker (the
    `_transfer` hook), so peak HBM reflects only the resident mini-batch —
    the bounded-per-step-memory property the loader exists to provide.
    """
    if device is None:
        return
    device.h2d(feats, "loader.features")
    for i, block in enumerate(blocks):
        device.h2d(block.edge_src, f"loader.block{i}")


@lru_cache(maxsize=None)
def _synthetic_citation(nodes: int, seed: int):
    from ..datasets.citation import synthetic_citation

    return synthetic_citation(nodes, seed=seed)


#: per-scale engine hidden widths (test mirrors the registry's test configs)
_SCALE_HIDDEN = {"test": 16, "profile": 64, "scaling": 64}


def make_sample_engine(key: str, device, fanouts, scale: str = "test",
                       nodes: Optional[int] = None, seed: int = 0):
    """Build the mini-batch engine for ``key`` (SAMPLEABLE workloads only)."""
    from ..core import registry

    if key not in SAMPLEABLE:
        raise ValueError(
            f"workload {key!r} has no mini-batch sampling engine; sampleable "
            f"workloads: {sorted(SAMPLEABLE)}"
        )
    if scale not in _SCALE_HIDDEN:
        raise ValueError(f"scale must be one of {sorted(_SCALE_HIDDEN)}, "
                         f"got {scale!r}")
    hidden = _SCALE_HIDDEN[scale]
    if key == "ARGA":
        if nodes is not None:
            dataset = _synthetic_citation(int(nodes), int(seed))
        else:
            dataset = registry._citation("cora")
        return CitationSampleEngine(dataset, device, fanouts, hidden=hidden)
    if nodes is not None:
        raise ValueError("--nodes only applies to the citation workload "
                         "(ARGA); PinSAGE samples its fixed item graph")
    dataset = (registry._movielens() if key == "PSAGE-MVL"
               else registry._nowplaying())
    return PinSAGESampleEngine(dataset, device, fanouts, hidden=hidden)


# -- the prefetch pipeline -----------------------------------------------------


@dataclass
class LoaderStats:
    """Cumulative producer/consumer accounting across epochs."""

    batches: int = 0
    edges_sampled: int = 0
    sample_cost_s: float = 0.0
    stall_s: float = 0.0
    #: integral of (batches sitting ready in the queue) over simulated time
    queue_time_s: float = 0.0
    queue_max: int = 0
    wall_s: float = 0.0

    def occupancy_mean(self) -> float:
        return self.queue_time_s / self.wall_s if self.wall_s else 0.0


@dataclass
class PrefetchPipeline:
    """Bounded-queue producer/consumer loop on the simulated clock.

    Per batch ``i`` (simulated seconds): the sampler may start once the
    previous batch is produced *and* a queue slot is free —
    ``sample_start_i = max(ready_{i-1}, pop_{i - depth})`` — and finishes at
    ``ready_i = sample_start_i + cost_i``.  The device consumes at
    ``start_i = max(device_clock, ready_i)``; any positive gap is
    ``loader_stall``, charged by jumping both device clocks forward (the
    idiom `repro.serve.BatchRunner` uses for idle gaps).  With
    ``prefetch_depth=0`` the sampler is synchronous: it only starts when the
    device asks, so every batch stalls for its full sampler cost.
    """

    loader: NeighborLoader
    engine: object
    device: SimulatedGPU
    prefetch_depth: int = 2
    stats: LoaderStats = field(default_factory=LoaderStats)

    def run_epoch(self, epoch: int, seed: int = 0) -> dict[str, float]:
        device = self.device
        tracer = trace.active()
        pid = device.device_id if device is not None else 0
        batches = self.loader.batches(epoch)
        t0 = device.elapsed_s()
        ready_prev = t0
        pop_times: list[float] = []
        ready_times: list[float] = []
        losses: list[float] = []
        epoch_stall = epoch_cost = 0.0
        for i, seeds in enumerate(batches):
            rng = self.loader.batch_rng(epoch, i)
            heads, ctx = self.engine.prepare_batch(seeds, rng)
            blocks = self.loader.sample_blocks(heads, rng)
            cost = sampler_cost_s(blocks)
            request = device.elapsed_s()
            if self.prefetch_depth <= 0:
                sample_start = request
            else:
                sample_start = ready_prev
                if i >= self.prefetch_depth:
                    sample_start = max(sample_start,
                                       pop_times[i - self.prefetch_depth])
            ready = sample_start + cost
            start = max(request, ready)
            stall = start - request
            # the device waited on the sampler: advance both clocks
            device.clock_s = start
            device.host_clock_s = start
            if tracer is not None:
                tracer.add_span(
                    f"sample b{i}", trace.CAT_LOADER, pid, "loader",
                    sample_start, ready,
                    {"batch": i, "seeds": int(seeds.size),
                     "edges": int(sum(b.edge_dst.size for b in blocks)),
                     "cost_us": cost * 1e6, "stall_us": stall * 1e6},
                )
            losses.append(self.engine.run_batch(blocks, ctx, rng))
            pop_times.append(start)
            ready_times.append(ready)
            ready_prev = ready
            epoch_stall += stall
            epoch_cost += cost
            self.stats.edges_sampled += int(
                sum(b.edge_dst.size for b in blocks))
        wall = device.elapsed_s() - t0
        self._account_queue(ready_times, pop_times, wall)
        self.stats.batches += len(batches)
        self.stats.sample_cost_s += epoch_cost
        self.stats.stall_s += epoch_stall
        self.stats.wall_s += wall
        return {
            "loss": float(np.mean(losses)) if losses else 0.0,
            "loader_stall_s": epoch_stall,
            "sample_cost_s": epoch_cost,
            "batches": float(len(batches)),
        }

    def _account_queue(self, ready: list[float], pop: list[float],
                       wall: float) -> None:
        # occupancy integral: each batch sits in the queue from ready to pop
        self.stats.queue_time_s += sum(
            max(0.0, p - r) for r, p in zip(ready, pop))
        # peak concurrent ready-but-unconsumed batches via an event sweep
        # (pops sort before pushes at equal timestamps: a batch consumed the
        # instant it lands never occupies a slot)
        events = sorted([(t, 1) for t in ready] + [(t, -1) for t in pop])
        depth = 0
        for _, delta in events:
            depth += delta
            self.stats.queue_max = max(self.stats.queue_max, depth)


# -- stall accounting ----------------------------------------------------------


class _StallAccumulator:
    """Launch listener: duration-weighted per-kernel stall shares.

    `attribute()` stays a pure memoized per-descriptor function; this
    aggregates its normalized shares across the run so the report can fold
    in ``loader_stall`` at the wall-clock level without touching the frozen
    seven-field :class:`~repro.gpu.kernel.StallBreakdown`.
    """

    def __init__(self) -> None:
        self.weighted: dict[str, float] = {}
        self.busy_s = 0.0

    def attach(self, device: SimulatedGPU) -> "_StallAccumulator":
        device.add_launch_listener(self.on_launch)
        return self

    def detach(self, device: SimulatedGPU) -> None:
        device.remove_launch_listener(self.on_launch)

    def on_launch(self, launch) -> None:
        d = launch.duration_s
        self.busy_s += d
        for name, share in launch.stalls.as_dict().items():
            self.weighted[name] = self.weighted.get(name, 0.0) + share * d

    def breakdown(self, loader_stall_s: float, wall_s: float) -> dict:
        """The seven nvprof categories renormalized over the non-loader
        share of the wall clock, plus ``loader_stall`` itself."""
        loader_share = (min(1.0, loader_stall_s / wall_s)
                        if wall_s > 0 else 0.0)
        out = {}
        for name in sorted(self.weighted):
            kernel_share = (self.weighted[name] / self.busy_s
                            if self.busy_s > 0 else 0.0)
            out[name] = kernel_share * (1.0 - loader_share)
        out["loader_stall"] = loader_share
        return out


# -- reporting -----------------------------------------------------------------


def digest_sample_report(report: dict) -> str:
    """SHA-256 over the canonical JSON of a report (digest field excluded)."""
    payload = {k: v for k, v in report.items() if k != "sample_digest"}
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def build_sample_report(
    key: str, scale: str, fanouts, batch_size: int, prefetch_depth: int,
    epochs: int, nodes: Optional[int], seed: int, engine,
    pipeline: PrefetchPipeline, results, stalls: _StallAccumulator,
    device: SimulatedGPU, memory_stats: dict,
) -> dict:
    """Canonical sample report — every field exact-deterministic."""
    stats = pipeline.stats
    wall = sum(r.sim_time_s for r in results)
    report = {
        "version": SAMPLE_VERSION,
        "workload": key,
        "scale": scale,
        "fanouts": [int(f) for f in fanouts],
        "batch_size": int(batch_size),
        "prefetch_depth": int(prefetch_depth),
        "epochs": int(epochs),
        "nodes": None if nodes is None else int(nodes),
        "seed": int(seed),
        "graph_nodes": int(engine.graph.num_nodes),
        "graph_edges": int(engine.graph.num_edges),
        "train_seeds": int(engine.train_ids.size),
        "batches": stats.batches,
        "batches_per_epoch": pipeline.loader.num_batches,
        "edges_sampled": stats.edges_sampled,
        "sample_cost_s": stats.sample_cost_s,
        "loader_stall_s": stats.stall_s,
        "loader_stall_fraction": (stats.stall_s / wall) if wall else 0.0,
        "queue_occupancy_mean": stats.occupancy_mean(),
        "queue_occupancy_max": stats.queue_max,
        "epoch_sim_times_s": [r.sim_time_s for r in results],
        "sim_wall_s": wall,
        "epochs_per_sim_s": (len(results) / wall) if wall else 0.0,
        "kernels": int(device.stats.kernel_count),
        "h2d_bytes": int(device.stats.h2d_bytes),
        "stall_breakdown": stalls.breakdown(stats.stall_s, wall),
        "peak_live_bytes": memory_stats["peak_live_bytes"],
        "peak_reserved_bytes": memory_stats["peak_reserved_bytes"],
        "hbm_utilization": memory_stats["utilization"],
        "oom_events": memory_stats["oom_events"],
    }
    report["sample_digest"] = digest_sample_report(report)
    return report


# -- trace integration ---------------------------------------------------------
# Loader spans are emitted inline by PrefetchPipeline.run_epoch (the sampler
# runs on the host timeline, so span starts are already monotone per stream);
# CAT_LOADER is deliberately outside trace.DEVICE_CATS — sampling overlaps
# device compute and must not count toward device busy time.


# -- entry points --------------------------------------------------------------


def sample_run(
    key: str,
    scale: str = "test",
    fanouts=(10, 5),
    batch_size: int = 64,
    prefetch_depth: int = 2,
    epochs: int = 2,
    nodes: Optional[int] = None,
    seed: int = 0,
    strict: bool = False,
    sim: Optional[SimulationConfig] = None,
    traced: bool = False,
) -> tuple[dict, Optional[trace.Timeline]]:
    """Simulate mini-batch sampled training; return (report, timeline-or-None).

    Runs under device-memory tracking with the cyclic GC suspended (the
    `repro.serve.serve_run` discipline), so the report is a byte-
    deterministic function of its arguments.
    """
    import gc

    fanouts = tuple(int(f) for f in fanouts)
    validate_sample_config(fanouts, batch_size, prefetch_depth, epochs)
    manual_seed(seed)
    device = SimulatedGPU(sim)
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    timeline: Optional[trace.Timeline] = None
    try:
        with gpu_memory.track(device, strict=strict) as tracker:
            with autograd.phase("setup"):
                engine = make_sample_engine(key, device, fanouts, scale=scale,
                                            nodes=nodes, seed=seed)
            device.reset()
            loader = NeighborLoader(engine.graph, engine.train_ids, fanouts,
                                    batch_size, seed=seed)
            pipeline = PrefetchPipeline(loader, engine, device,
                                        prefetch_depth=prefetch_depth)
            stalls = _StallAccumulator().attach(device)
            trace_ctx = (trace.session(devices=(device,)) if traced
                         else contextlib.nullcontext(None))
            try:
                with trace_ctx as tracer:
                    if tracer is not None:
                        tracker.set_counter_sink(tracer.counter_sink(device))
                    trainer = Trainer(workload=engine, device=device,
                                      loader=pipeline)
                    results = trainer.run(epochs=epochs, seed=seed)
            finally:
                stalls.detach(device)
            memory_stats = device.memory.stats()
            if traced:
                timeline = tracer.timeline()
    finally:
        if gc_was_enabled:
            gc.enable()

    report = build_sample_report(key, scale, fanouts, batch_size,
                                 prefetch_depth, epochs, nodes, seed, engine,
                                 pipeline, results, stalls, device,
                                 memory_stats)
    from ..profiling import metrics as metrics_mod

    metrics_mod.collect_device(device)
    metrics_mod.collect_loader(report)
    return report, timeline


def sample_report(
    key: str,
    scale: str = "test",
    fanouts=(10, 5),
    batch_size: int = 64,
    prefetch_depth: int = 2,
    epochs: int = 2,
    nodes: Optional[int] = None,
    seed: int = 0,
    strict: bool = False,
) -> dict:
    """The picklable executor-task entry point (no timeline)."""
    report, _ = sample_run(key, scale=scale, fanouts=fanouts,
                           batch_size=batch_size,
                           prefetch_depth=prefetch_depth, epochs=epochs,
                           nodes=nodes, seed=seed, strict=strict,
                           traced=False)
    return report
