"""DistributedDataParallel simulation for the Figure-9 scaling study.

Reproduces the semantics of the paper's multi-GPU implementations (PyTorch
DDP over NCCL ring allreduce on a 4xV100 NVLink node):

* one model replica per device; each optimizer step is followed by an
  allreduce of the full gradient payload;
* the global batch is *split* across replicas (per-device batch = B/N), so
  per-step kernel work shrinks while per-step fixed costs (kernel launches,
  per-level serialization, allreduce latency) do not — which is exactly why
  low-intensity workloads like TLSTM stop scaling;
* PSAGE's DGL batch sampler is incompatible with DDP, so its training data
  is replicated on every device: per-device compute does NOT shrink and the
  gradient traffic is pure overhead, making multi-GPU strictly slower, as
  the paper reports.

DDP shards are symmetric — every replica runs the same kernel-stream shape
on 1/N of the data — so the simulation trains a single replica on device 0
and charges its stream to every peer, then adds the collectives.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import registry
from ..gpu import MultiGPUSystem, SimulationConfig
from ..tensor import manual_seed


@dataclass
class ScalingPoint:
    """One (workload, gpu count) measurement for Figure 9."""

    workload: str
    num_gpus: int
    epoch_time_s: float
    compute_time_s: float
    allreduce_time_s: float
    steps: int
    grad_bytes: int

    @property
    def speedup_base(self) -> float:
        return self.compute_time_s + self.allreduce_time_s


def _shard_batch(workload, num_devices: int):
    """Apply DDP splitting to a freshly built replica.

    The global batch and step count stay fixed (strong scaling): each
    replica gets batch B/N and, for dataset-driven epochs, a 1/N shard of
    the training indices — exactly what DistributedSampler + a per-GPU
    batch of B/N produce.  Returns the index shard (or None).
    """
    if hasattr(workload, "batch_size"):
        workload.batch_size = max(1, workload.batch_size // num_devices)
    ds = getattr(workload, "dataset", None)
    if ds is not None and hasattr(ds, "train_idx") and not hasattr(
        workload, "batches_per_epoch"
    ):
        return ds.train_idx[::num_devices]
    return None


def _count_steps(workload, num_devices: int = 1) -> int:
    """Optimizer steps per epoch, for the allreduce accounting."""
    if hasattr(workload, "batches_per_epoch"):
        return int(workload.batches_per_epoch)
    if hasattr(workload, "dataset") and hasattr(workload, "batch_size"):
        ds = workload.dataset
        n = ds.train_idx.size if hasattr(ds, "train_idx") else len(ds)
        return max(1, -(-(n // num_devices) // workload.batch_size))
    return 1


def run_scaling_point(
    key: str,
    num_gpus: int,
    scale: str = "scaling",
    epochs: int = 1,
    seed: int = 0,
    sim: SimulationConfig | None = None,
) -> ScalingPoint:
    """Train ``epochs`` of one workload on ``num_gpus`` simulated devices.

    Reseeds the framework RNG so each (workload, GPU-count) point is a pure
    function of its arguments — points are independent and the executor may
    run them on pool workers or replay them from the profile cache.
    """
    spec = registry.get(key)
    if spec.ddp == "none":
        raise ValueError(
            f"{key} is excluded from multi-GPU scaling (whole-graph training)"
        )
    manual_seed(seed)
    system = MultiGPUSystem(num_gpus, sim)
    device = system.devices[0]

    replica = spec.build(device=device, scale=scale)
    index_shard = None
    if spec.ddp == "batch" and num_gpus > 1:
        index_shard = _shard_batch(replica, num_gpus)
    # spec.ddp == "replicate" (PSAGE): the sampler ignores the DDP split, so
    # every device processes the full batch — nothing to shrink.

    grad_bytes = replica.optimizer.gradient_bytes()
    steps_per_epoch = _count_steps(replica, num_gpus if spec.ddp == "batch" else 1)

    rng = np.random.default_rng(seed)
    t0 = device.elapsed_s()
    transfer0 = device.stats.transfer_time_s
    for _ in range(epochs):
        if index_shard is not None:
            replica.train_epoch(rng, indices=index_shard)
        else:
            replica.train_epoch(rng)
    compute_time = (device.elapsed_s() - t0) / max(1, epochs)
    transfer_time = (device.stats.transfer_time_s - transfer0) / max(1, epochs)

    allreduce_time = 0.0
    if num_gpus > 1:
        cost = system.allreduce_cost(grad_bytes)
        allreduce_time = cost.duration_s * steps_per_epoch
    contention_time = 0.0
    if spec.ddp == "replicate" and num_gpus > 1:
        # The single host-side sampler feeds identical batches to every GPU;
        # staging the replicated data serializes on the host, so each extra
        # device stretches the H2D-bound portion of the epoch.
        contention_time = transfer_time * 0.5 * (num_gpus - 1)

    return ScalingPoint(
        workload=key,
        num_gpus=num_gpus,
        epoch_time_s=compute_time + allreduce_time + contention_time,
        compute_time_s=compute_time,
        allreduce_time_s=allreduce_time,
        steps=steps_per_epoch,
        grad_bytes=grad_bytes,
    )


def run_scaling_study(
    keys: list[str] | None = None,
    gpu_counts: tuple[int, ...] = (1, 2, 4),
    scale: str = "scaling",
    epochs: int = 1,
    seed: int = 0,
    jobs: int | None = None,
    cache=None,
) -> dict[str, dict[int, float]]:
    """Figure 9: time-per-epoch for each workload across GPU counts.

    The (workload × GPU-count) grid runs through the suite execution
    engine: every point is an independent simulation, so ``jobs`` workers
    measure them concurrently and ``cache`` replays unchanged points.
    """
    from ..core import executor

    if keys is None:
        keys = [k for k in registry.WORKLOAD_KEYS
                if registry.get(k).ddp != "none"]
    grid = [(key, n) for key in keys for n in gpu_counts]
    points = executor.run_scaling_points(grid, scale=scale, epochs=epochs,
                                         seed=seed, jobs=jobs, cache=cache)
    results: dict[str, dict[int, float]] = {key: {} for key in keys}
    for (key, n), point in zip(grid, points):
        results[key][n] = point.epoch_time_s
    return results


def trace_scaling_point(
    key: str,
    num_gpus: int,
    scale: str = "test",
    epochs: int = 1,
    seed: int = 0,
    sim: SimulationConfig | None = None,
    launch_listener=None,
):
    """Trace a DDP epoch: per-step allreduce interleaved with the stream.

    Unlike :func:`run_scaling_point` (which accounts the collectives
    analytically after timing the compute), the traced run performs a ring
    allreduce *inside every optimizer step* — registered as a pre-step hook,
    exactly where DDP's gradient synchronization sits between the backward
    kernels and the parameter-update kernels — so the timeline shows how
    bucket spans interleave with compute.

    DDP replicas are symmetric (every device runs the same stream shape on
    the same clock), so the simulation traces device 0 and replicates its
    spans to every peer pid.  The per-device batch is left at the workload's
    configured size: the per-device kernel *sequence* is therefore identical
    at every GPU count and only timestamps shift with the collectives —
    the invariant ``tests/test_train_ddp.py`` pins.
    """
    from ..gpu import MultiGPUSystem
    from ..profiling import trace
    from .trainer import Trainer

    spec = registry.get(key)
    if spec.ddp == "none" and num_gpus > 1:
        raise ValueError(
            f"{key} is excluded from multi-GPU scaling (whole-graph training)"
        )
    manual_seed(seed)
    system = MultiGPUSystem(num_gpus, sim)
    device = system.devices[0]
    replica = spec.build(device=device, scale=scale)
    device.reset()
    if launch_listener is not None:
        # the insight engine's collector: DDP replicas are symmetric, so
        # observing device 0 characterizes every peer
        device.add_launch_listener(launch_listener)
    grad_bytes = replica.optimizer.gradient_bytes()

    hook = None
    if num_gpus > 1:
        def hook(_optimizer) -> None:
            system.allreduce(grad_bytes)

        replica.optimizer.add_pre_step_hook(hook)
    try:
        with trace.session(devices=(device,)) as tracer:
            Trainer(workload=replica, device=device).run(epochs=epochs,
                                                         seed=seed)
    finally:
        if hook is not None:
            replica.optimizer.remove_pre_step_hook(hook)
        if launch_listener is not None:
            device.remove_launch_listener(launch_listener)
    timeline = tracer.timeline()
    if num_gpus > 1:
        timeline = timeline.replicate_device(0, range(1, num_gpus))
    return timeline


def run_weak_scaling_point(
    key: str,
    num_gpus: int,
    scale: str = "scaling",
    epochs: int = 1,
    seed: int = 0,
    sim: SimulationConfig | None = None,
) -> ScalingPoint:
    """Weak scaling (the paper's future-work study): the per-GPU batch stays
    fixed and the global batch grows with N, so per-device compute is
    constant and only the collectives grow.  Efficiency = T(1) / T(N)."""
    spec = registry.get(key)
    if spec.ddp == "none":
        raise ValueError(f"{key} is excluded from multi-GPU scaling")
    manual_seed(seed)
    system = MultiGPUSystem(num_gpus, sim)
    device = system.devices[0]

    replica = spec.build(device=device, scale=scale)
    grad_bytes = replica.optimizer.gradient_bytes()
    steps_per_epoch = _count_steps(replica, 1)

    rng = np.random.default_rng(seed)
    t0 = device.elapsed_s()
    for _ in range(epochs):
        replica.train_epoch(rng)
    compute_time = (device.elapsed_s() - t0) / max(1, epochs)

    allreduce_time = 0.0
    if num_gpus > 1:
        allreduce_time = (
            system.allreduce_cost(grad_bytes).duration_s * steps_per_epoch
        )
    return ScalingPoint(
        workload=key,
        num_gpus=num_gpus,
        epoch_time_s=compute_time + allreduce_time,
        compute_time_s=compute_time,
        allreduce_time_s=allreduce_time,
        steps=steps_per_epoch,
        grad_bytes=grad_bytes,
    )


def run_weak_scaling_study(
    keys: list[str] | None = None,
    gpu_counts: tuple[int, ...] = (1, 2, 4),
    scale: str = "scaling",
    seed: int = 0,
) -> dict[str, dict[int, float]]:
    """Weak-scaling efficiency table: values near 1.0 mean the collectives
    are hidden; below 1.0 the gradient traffic bites."""
    if keys is None:
        keys = [k for k in registry.WORKLOAD_KEYS
                if registry.get(k).ddp != "none"]
    results: dict[str, dict[int, float]] = {}
    for key in keys:
        results[key] = {}
        for n in gpu_counts:
            point = run_weak_scaling_point(key, n, scale=scale, seed=seed)
            results[key][n] = point.epoch_time_s
    return results
