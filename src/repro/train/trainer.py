"""Single-device training driver with simulated epoch timing."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..gpu import memory as gpu_memory
from ..gpu.device import SimulatedGPU
from ..profiling import trace


@dataclass
class EpochResult:
    epoch: int
    metrics: dict[str, float]
    #: simulated device time consumed by this epoch (seconds)
    sim_time_s: float
    kernels: int


@dataclass
class TimeToTrain:
    """Outcome of a time-to-train run (simulated seconds to a quality bar)."""

    metric: str
    target: float
    achieved: float
    epochs: int
    sim_time_s: float
    converged: bool


@dataclass
class Trainer:
    """Runs a workload's ``train_epoch`` and accounts simulated time.

    The paper reports average time-per-epoch over five epochs (observing
    stable per-epoch times); :meth:`run` mirrors that protocol.

    ``capture_replay`` routes epochs through the
    :class:`repro.gpu.graph_capture.CaptureReplayController` state machine
    (warmup -> capture -> validate -> replay); ``fuse`` additionally merges
    adjacent elementwise launches in the replayed plan.  ``steady`` enforces
    only the static-input discipline (restore + dispatch every epoch) — the
    baseline replayed runs are differentially tested against.  The controller
    persists across :meth:`run` calls so a warm-up ``run(1)`` followed by a
    timed ``run(n)`` (the bench protocol) shares one capture.
    """

    workload: object
    device: SimulatedGPU
    capture_replay: bool = False
    fuse: bool = False
    steady: bool = False
    #: a PrefetchPipeline for mini-batch sampled training; each epoch calls
    #: ``loader.run_epoch(epoch, seed)`` instead of ``workload.train_epoch``
    loader: object = None
    history: list[EpochResult] = field(default_factory=list)
    _controller: object = field(default=None, init=False, repr=False)

    def run(self, epochs: int, seed: int = 0) -> list[EpochResult]:
        tracer = trace.active()  # one check per run, zero-cost when absent
        memtracker = gpu_memory.active()
        if memtracker is not None and memtracker.device is not self.device:
            memtracker = None
        if self.loader is not None and (
            self.capture_replay or self.fuse or self.steady
        ):
            raise ValueError(
                "mini-batch loader mode is incompatible with capture/replay: "
                "sampled batches change the launch sequence every step"
            )
        controller = None
        rng = None
        if self.capture_replay or self.fuse or self.steady:
            if self._controller is None:
                from ..gpu import graph_capture

                self._controller = graph_capture.CaptureReplayController(
                    workload=self.workload,
                    device=self.device,
                    seed=seed,
                    replay=self.capture_replay or self.fuse,
                    fuse=self.fuse,
                )
            controller = self._controller
        else:
            rng = np.random.default_rng(seed)
        for epoch in range(epochs):
            t0 = self.device.elapsed_s()
            k0 = self.device.stats.kernel_count
            if self.loader is not None:
                metrics = self.loader.run_epoch(len(self.history), seed=seed)
            elif controller is not None:
                metrics = controller.step(memtracker=memtracker)
            else:
                metrics = self.workload.train_epoch(rng)
            if tracer is not None:
                tracer.end_epoch(self.device, len(self.history), t0)
            if memtracker is not None:
                memtracker.end_epoch()
            self.history.append(
                EpochResult(
                    epoch=len(self.history),
                    metrics=metrics,
                    sim_time_s=self.device.elapsed_s() - t0,
                    kernels=self.device.stats.kernel_count - k0,
                )
            )
        return self.history[-epochs:]

    def train_to_target(
        self,
        metric: str,
        target: float,
        mode: str = "min",
        max_epochs: int = 50,
        seed: int = 0,
    ) -> "TimeToTrain":
        """MLPerf-style time-to-train (the paper's planned metric update).

        Trains until ``metric`` crosses ``target`` (mode "min": <= target;
        mode "max": >= target) and reports the simulated time spent.
        """
        if mode not in ("min", "max"):
            raise ValueError("mode must be 'min' or 'max'")
        rng = np.random.default_rng(seed)
        tracer = trace.active()
        start = self.device.elapsed_s()
        for epoch in range(max_epochs):
            t0 = self.device.elapsed_s()
            metrics = self.workload.train_epoch(rng)
            if tracer is not None:
                tracer.end_epoch(self.device, epoch, t0)
            if metric not in metrics:
                raise KeyError(
                    f"workload reports {sorted(metrics)}, not {metric!r}"
                )
            value = metrics[metric]
            reached = value <= target if mode == "min" else value >= target
            if reached:
                return TimeToTrain(
                    metric=metric, target=target, achieved=value,
                    epochs=epoch + 1,
                    sim_time_s=self.device.elapsed_s() - start,
                    converged=True,
                )
        return TimeToTrain(metric=metric, target=target, achieved=value,
                           epochs=max_epochs,
                           sim_time_s=self.device.elapsed_s() - start,
                           converged=False)

    def average_epoch_time(self, skip_first: bool = True) -> float:
        """Mean simulated time-per-epoch (first epoch skipped as warm-up)."""
        runs = self.history[1:] if skip_first and len(self.history) > 1 else self.history
        if not runs:
            return 0.0
        return float(np.mean([r.sim_time_s for r in runs]))
