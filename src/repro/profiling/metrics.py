"""Unified metrics registry: counters, gauges and histograms in one place.

The repo accumulated ad-hoc statistics as it grew — ``DeviceStats`` fields,
analysis-cache hit/miss counters, profile-cache hits, executor task
latencies, divergence and stall tallies.  This module absorbs them behind a
single process-wide :class:`MetricsRegistry` with Prometheus-style naming
and label semantics, snapshot/delta support, a deterministic canonical-JSON
export with a SHA-256 digest (the same discipline as golden streams and
traces — stable whenever the collected quantities live on the simulated
clock), and a Prometheus text-format exposition for scraping tools.

Design rule: the registry is **pull-model**.  Nothing on the kernel-launch
fast path ever touches it; instead, ``collect_*`` helpers read the existing
cheap counters (device stats, cache hit tallies, memory-pool aggregates)
into the registry at snapshot time.  The only push-style instrumentation is
per-*task* (executor wall latencies), which is orders of magnitude off the
per-launch path.
"""

from __future__ import annotations

import hashlib
import json
from typing import Iterable, Mapping, Optional

#: default latency buckets (seconds) — spans ms-scale cache hits to
#: minute-scale cold suite profiles
DEFAULT_BUCKETS = (0.005, 0.02, 0.1, 0.5, 1.0, 5.0, 15.0, 60.0, 300.0)


def _label_key(labels: Mapping[str, str]) -> str:
    """Canonical Prometheus-style series key: ``{a="x",b="y"}`` or ``""``."""
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{_escape(str(v))}"' for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A value that can go up and down (set to the latest observation)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics)."""

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, buckets: Iterable[float] = DEFAULT_BUCKETS) -> None:
        self.bounds = tuple(sorted(float(b) for b in buckets))
        self.counts = [0] * (len(self.bounds) + 1)  # +1 for +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def cumulative(self) -> list[int]:
        """Cumulative counts per bound (Prometheus ``le`` buckets, +Inf last)."""
        out, running = [], 0
        for c in self.counts:
            running += c
            out.append(running)
        return out

    def per_bucket(self) -> list[int]:
        """Non-cumulative count per bucket (+Inf last) — the view deltas
        subtract, since per-bucket shifts localize a latency regression the
        way a cumulative diff can't."""
        return list(self.counts)


_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Named, labelled metric series with snapshot/delta and export."""

    def __init__(self) -> None:
        #: name -> (type name, help text)
        self._meta: dict[str, tuple[str, str]] = {}
        #: name -> {label key -> metric instance}
        self._series: dict[str, dict[str, object]] = {}

    # -- registration --------------------------------------------------------
    def _get(self, kind: str, name: str, help: str,
             labels: Mapping[str, str], **kwargs):
        meta = self._meta.get(name)
        if meta is None:
            self._meta[name] = (kind, help)
            self._series[name] = {}
        elif meta[0] != kind:
            raise ValueError(
                f"metric {name!r} already registered as a {meta[0]}"
            )
        elif help and not meta[1]:
            self._meta[name] = (kind, help)
        key = _label_key(labels)
        series = self._series[name]
        metric = series.get(key)
        if metric is None:
            metric = series[key] = _TYPES[kind](**kwargs)
        return metric

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        return self._get("counter", name, help, labels)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        return self._get("gauge", name, help, labels)

    def histogram(self, name: str, help: str = "",
                  buckets: Iterable[float] = DEFAULT_BUCKETS,
                  **labels) -> Histogram:
        return self._get("histogram", name, help, labels, buckets=buckets)

    def clear(self) -> None:
        self._meta.clear()
        self._series.clear()

    # -- snapshot / delta ----------------------------------------------------
    def snapshot(self) -> dict:
        """Plain-data view of every series; safe to hold across mutations."""
        out: dict = {}
        for name in sorted(self._series):
            kind, help = self._meta[name]
            series_out = {}
            for key in sorted(self._series[name]):
                metric = self._series[name][key]
                if kind == "histogram":
                    les = [_le(b) for b in (*metric.bounds, float("inf"))]
                    series_out[key] = {
                        "buckets": dict(zip(les, metric.cumulative())),
                        "bucket_counts": dict(zip(les, metric.per_bucket())),
                        "sum": metric.sum,
                        "count": metric.count,
                    }
                else:
                    series_out[key] = metric.value
            out[name] = {"type": kind, "help": help, "series": series_out}
        return out

    def delta(self, previous: dict) -> dict:
        """Change since an earlier :meth:`snapshot`.

        Counters and histograms subtract (new series count from zero);
        gauges report their current value — a delta of a level is a level.
        Histogram deltas are first-class: alongside the cumulative
        ``buckets`` diff they carry ``bucket_counts`` (per-bucket count
        shifts) and the ``sum``/``count`` deltas, so two serving-latency
        runs can be compared bucket by bucket.  Snapshots taken before
        ``bucket_counts`` existed decumulate on the fly.
        """
        current = self.snapshot()
        out: dict = {}
        for name, entry in current.items():
            prev_entry = previous.get(name, {"series": {}})
            series_out = {}
            for key, value in entry["series"].items():
                prev = prev_entry["series"].get(key)
                if entry["type"] == "gauge" or prev is None:
                    series_out[key] = value
                elif entry["type"] == "counter":
                    series_out[key] = value - prev
                else:
                    cur_counts = (value.get("bucket_counts")
                                  or _decumulate(value["buckets"]))
                    prev_counts = (prev.get("bucket_counts")
                                   or _decumulate(prev["buckets"]))
                    series_out[key] = {
                        "buckets": {
                            le: cum - prev["buckets"].get(le, 0)
                            for le, cum in value["buckets"].items()
                        },
                        "bucket_counts": {
                            le: c - prev_counts.get(le, 0)
                            for le, c in cur_counts.items()
                        },
                        "sum": value["sum"] - prev["sum"],
                        "count": value["count"] - prev["count"],
                    }
            out[name] = {"type": entry["type"], "help": entry["help"],
                         "series": series_out}
        return out

    # -- export --------------------------------------------------------------
    def to_json(self, snapshot: Optional[dict] = None) -> str:
        """Canonical JSON (sorted keys, tight separators, trailing newline)."""
        payload = self.snapshot() if snapshot is None else snapshot
        return json.dumps(payload, sort_keys=True,
                          separators=(",", ":")) + "\n"

    def digest(self, snapshot: Optional[dict] = None) -> str:
        """SHA-256 of the canonical JSON export."""
        return hashlib.sha256(self.to_json(snapshot).encode()).hexdigest()

    def to_prometheus(self, snapshot: Optional[dict] = None) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        payload = self.snapshot() if snapshot is None else snapshot
        lines: list[str] = []
        for name, entry in payload.items():
            if entry["help"]:
                lines.append(f"# HELP {name} {entry['help']}")
            lines.append(f"# TYPE {name} {entry['type']}")
            for key, value in entry["series"].items():
                if entry["type"] == "histogram":
                    for le, cum in value["buckets"].items():
                        lines.append(
                            f"{name}_bucket{_merge_label(key, 'le', le)} {cum}"
                        )
                    lines.append(f"{name}_sum{key} {_num(value['sum'])}")
                    lines.append(f"{name}_count{key} {value['count']}")
                else:
                    lines.append(f"{name}{key} {_num(value)}")
        return "\n".join(lines) + "\n"


def _le(bound: float) -> str:
    if bound == float("inf"):
        return "+Inf"
    return _num(bound)


def _decumulate(buckets: Mapping[str, float]) -> dict[str, float]:
    """Per-bucket counts from Prometheus cumulative ``le`` buckets.

    Fallback for snapshots taken before ``bucket_counts`` existed: order the
    ``le`` keys numerically (``+Inf`` last) and difference the running sums.
    """
    def bound(le: str) -> float:
        return float("inf") if le == "+Inf" else float(le)

    out: dict[str, float] = {}
    running = 0.0
    for le in sorted(buckets, key=bound):
        out[le] = buckets[le] - running
        running = buckets[le]
    return out


def _num(value: float) -> str:
    """Render ints without a trailing ``.0`` — canonical and scrape-friendly."""
    f = float(value)
    return str(int(f)) if f.is_integer() else repr(f)


def _merge_label(key: str, extra_name: str, extra_value: str) -> str:
    extra = f'{extra_name}="{extra_value}"'
    if not key:
        return "{" + extra + "}"
    return key[:-1] + "," + extra + "}"


# -- the process-wide registry -------------------------------------------------
REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    return REGISTRY


def reset() -> None:
    """Drop every series (used between independent measurement runs)."""
    REGISTRY.clear()


# -- collectors: pull existing ad-hoc stats into the registry ------------------
def collect_device(device, registry: Optional[MetricsRegistry] = None) -> None:
    """Absorb one simulated device's ``DeviceStats`` + memory pool."""
    reg = registry if registry is not None else REGISTRY
    dev = str(device.device_id)
    stats = device.stats
    g = reg.gauge
    g("repro_device_clock_seconds",
      "Simulated device clock", device=dev).set(device.clock_s)
    g("repro_device_host_clock_seconds",
      "Simulated host enqueue clock", device=dev).set(device.host_clock_s)
    g("repro_device_kernel_launches_total",
      "Kernel launches", device=dev).set(stats.kernel_count)
    g("repro_device_kernel_seconds_total",
      "Simulated kernel time", device=dev).set(stats.kernel_time_s)
    g("repro_device_launch_overhead_seconds_total",
      "Launch overhead", device=dev).set(stats.launch_overhead_s)
    g("repro_device_fp32_flops_total", "Floating-point ops",
      device=dev).set(stats.fp32_flops)
    g("repro_device_int32_iops_total", "Integer ops",
      device=dev).set(stats.int32_iops)
    g("repro_device_transfers_total", "Host<->device copies",
      device=dev).set(stats.transfer_count)
    g("repro_device_h2d_bytes_total", "Host-to-device bytes",
      device=dev).set(stats.h2d_bytes)
    g("repro_device_d2h_bytes_total", "Device-to-host bytes",
      device=dev).set(stats.d2h_bytes)
    g("repro_device_transfer_seconds_total", "Transfer time",
      device=dev).set(stats.transfer_time_s)
    g("repro_analysis_cache_hits_total", "Launch-analysis cache hits",
      device=dev).set(stats.analysis_hits)
    g("repro_analysis_cache_misses_total", "Launch-analysis cache misses",
      device=dev).set(stats.analysis_misses)
    collect_memory(device, registry=reg)


def collect_memory(device, registry: Optional[MetricsRegistry] = None) -> None:
    """Absorb one device's :class:`~repro.gpu.memory.MemoryPool` aggregates."""
    reg = registry if registry is not None else REGISTRY
    pool = device.memory
    dev = str(device.device_id)
    g = reg.gauge
    g("repro_memory_live_bytes", "Live HBM bytes", device=dev).set(
        pool.live_bytes)
    g("repro_memory_reserved_bytes", "Reserved HBM footprint",
      device=dev).set(pool.reserved_bytes)
    g("repro_memory_peak_live_bytes", "Peak live HBM bytes",
      device=dev).set(pool.peak_live_bytes)
    g("repro_memory_peak_reserved_bytes", "Peak reserved HBM footprint",
      device=dev).set(pool.peak_reserved_bytes)
    g("repro_memory_capacity_bytes", "Configured HBM capacity",
      device=dev).set(pool.capacity_bytes)
    g("repro_memory_alloc_total", "Block allocations",
      device=dev).set(pool.alloc_count)
    g("repro_memory_free_total", "Block frees", device=dev).set(
        pool.free_count)
    g("repro_memory_segment_allocs_total", "New device reservations",
      device=dev).set(pool.segment_allocs)
    g("repro_memory_bucket_reuse_total", "Cached-block reuses",
      device=dev).set(pool.bucket_reuse_count)
    g("repro_memory_fragmentation_ratio", "Cached fraction of reserved",
      device=dev).set(pool.fragmentation())
    g("repro_memory_oom_events_total", "Capacity violations",
      device=dev).set(len(pool.oom_events))
    for phase, peak in sorted(pool.phase_watermarks.items()):
        g("repro_memory_phase_peak_bytes", "Per-phase peak live bytes",
          device=dev, phase=phase).set(peak)


def collect_profile_cache(cache,
                          registry: Optional[MetricsRegistry] = None) -> None:
    """Absorb a :class:`~repro.core.cache.ProfileCache`'s tallies."""
    reg = registry if registry is not None else REGISTRY
    reg.gauge("repro_profile_cache_hits_total",
              "Persistent profile-cache hits").set(cache.hits)
    reg.gauge("repro_profile_cache_misses_total",
              "Persistent profile-cache misses").set(cache.misses)
    reg.gauge("repro_profile_cache_stores_total",
              "Persistent profile-cache stores").set(cache.stores)


def collect_profile(profile,
                    registry: Optional[MetricsRegistry] = None) -> None:
    """Absorb a ``WorkloadProfile``'s stall, cache and divergence tallies."""
    reg = registry if registry is not None else REGISTRY
    wl = profile.key
    for stall, share in profile.stalls().items():
        reg.gauge("repro_stall_share", "Stall-cycle share by reason",
                  workload=wl, stall=stall).set(share)
    for name, value in profile.cache().items():
        reg.gauge("repro_cache_metric",
                  "L1/L2 hit rates and divergence measurements",
                  workload=wl, metric=name).set(value)
    reg.gauge("repro_transfer_sparsity_ratio",
              "Mean zero fraction of H2D traffic",
              workload=wl).set(profile.transfer_sparsity())
    reg.gauge("repro_analysis_cache_hit_ratio",
              "Launch-analysis hit ratio for the profiled run",
              workload=wl).set(
        profile.analysis_hits
        / max(1, profile.analysis_hits + profile.analysis_misses))


def collect_serve(report: dict,
                  registry: Optional[MetricsRegistry] = None) -> None:
    """Absorb one serving report (:func:`repro.serve.serve_report`).

    Every series carries the ``workload`` / ``arrival`` / ``batch_max``
    label triple, so latency-vs-QPS sweeps land as distinct label sets in
    one registry.
    """
    reg = registry if registry is not None else REGISTRY
    labels = {"workload": report["workload"], "arrival": report["arrival"],
              "batch_max": str(report["batch_max"])}
    g = reg.gauge
    for block, help_text in (
        ("latency_us", "End-to-end request latency (us)"),
        ("wait_us", "Queue-wait component of request latency (us)"),
        ("compute_us", "Compute component of request latency (us)"),
    ):
        for quantile, value in report[block].items():
            g(f"repro_serve_{block}", help_text,
              quantile=quantile, **labels).set(value)
    g("repro_serve_throughput_rps", "Served requests per simulated second",
      **labels).set(report["throughput_rps"])
    g("repro_serve_requests_total", "Requests served",
      **labels).set(report["completed"])
    g("repro_serve_batches_total", "Batches executed",
      **labels).set(report["batches"])
    g("repro_serve_captured_plans", "Distinct batch sizes captured",
      **labels).set(report["captured_plans"])
    g("repro_serve_replayed_batches_total", "Batches served by plan replay",
      **labels).set(report["replayed_batches"])
    g("repro_serve_peak_live_bytes", "Peak live HBM during serving",
      **labels).set(report["peak_live_bytes"])
    g("repro_serve_peak_reserved_bytes", "Peak reserved HBM during serving",
      **labels).set(report["peak_reserved_bytes"])
    for size, count in sorted(report["batch_size_hist"].items(),
                              key=lambda kv: int(kv[0])):
        g("repro_serve_batch_size_count", "Executed batches by size",
          size=size, **labels).set(count)


def collect_loader(report: dict,
                   registry: Optional[MetricsRegistry] = None) -> None:
    """Absorb one sampled-training report (:func:`repro.train.loader`).

    Every series carries ``workload`` / ``prefetch_depth`` labels so a
    prefetch sweep (the BENCH_sample comparison) lands as distinct label
    sets in one registry.
    """
    reg = registry if registry is not None else REGISTRY
    labels = {"workload": report["workload"],
              "prefetch_depth": str(report["prefetch_depth"])}
    g = reg.gauge
    g("repro_loader_batches_total", "Mini-batches produced by the sampler",
      **labels).set(report["batches"])
    g("repro_loader_edges_sampled_total", "Edges drawn across all blocks",
      **labels).set(report["edges_sampled"])
    g("repro_loader_sample_cost_seconds", "Simulated host sampling time",
      **labels).set(report["sample_cost_s"])
    g("repro_loader_stall_seconds",
      "Device time spent waiting on the sampler",
      **labels).set(report["loader_stall_s"])
    g("repro_loader_stall_fraction",
      "loader_stall_s over the simulated training wall clock",
      **labels).set(report["loader_stall_fraction"])
    g("repro_loader_queue_occupancy_mean",
      "Time-averaged ready-batches in the prefetch queue",
      **labels).set(report["queue_occupancy_mean"])
    g("repro_loader_queue_occupancy_max",
      "Peak ready-batches in the prefetch queue",
      **labels).set(report["queue_occupancy_max"])
    g("repro_loader_epochs_per_sim_second",
      "Sampled-training throughput (simulated)",
      **labels).set(report["epochs_per_sim_s"])
    g("repro_loader_peak_live_bytes", "Peak live HBM during sampled training",
      **labels).set(report["peak_live_bytes"])


def collect_shard(report: dict,
                  registry: Optional[MetricsRegistry] = None) -> None:
    """Absorb one sharded-training report (:func:`repro.train.sharded`).

    Every series carries ``workload`` / ``config`` / ``parts`` / ``offload``
    labels so a capacity sweep (the BENCH_shard frontier study) lands as
    distinct label sets in one registry.
    """
    reg = registry if registry is not None else REGISTRY
    labels = {"workload": report["workload"], "config": report["name"],
              "parts": str(report["parts"]),
              "offload": str(report["offload"]).lower()}
    g = reg.gauge
    g("repro_shard_edge_cut_total", "Edges crossing partition boundaries",
      **labels).set(report["partition"]["edge_cut"])
    g("repro_shard_cut_fraction", "Cut edges over total edges",
      **labels).set(report["partition"]["cut_fraction"])
    g("repro_shard_replication_factor",
      "Stored rows (owned + halo) over graph nodes",
      **labels).set(report["partition"]["replication_factor"])
    g("repro_shard_halo_bytes_total",
      "Bytes moved by halo exchanges across all epochs",
      **labels).set(report["halo_bytes"])
    g("repro_shard_halo_seconds", "Simulated time inside halo exchanges",
      **labels).set(report["halo_time_s"])
    g("repro_shard_allreduce_bytes_total",
      "Gradient payload bytes allreduced across all epochs",
      **labels).set(report["allreduce_bytes"])
    g("repro_shard_h2d_bytes_total", "Host-to-device staging bytes",
      **labels).set(report["h2d_bytes"])
    g("repro_shard_d2h_bytes_total", "Device-to-host staging bytes",
      **labels).set(report["d2h_bytes"])
    g("repro_shard_peak_reserved_bytes",
      "Heaviest device's peak reserved HBM",
      **labels).set(report["peak_reserved_bytes"])
    g("repro_shard_oom_events_total", "HBM capacity violations (non-strict)",
      **labels).set(report["oom_events"])
    g("repro_shard_epochs_per_sim_second",
      "Sharded-training throughput (simulated)",
      **labels).set(report["epochs_per_sim_s"])


def observe_task(kind: str, seconds: float, cached: bool,
                 registry: Optional[MetricsRegistry] = None) -> None:
    """Record one executor task completion (wall latency + cache outcome)."""
    reg = registry if registry is not None else REGISTRY
    reg.histogram("repro_task_wall_seconds",
                  "Executor task wall latency", kind=kind).observe(seconds)
    reg.counter("repro_task_total", "Executor tasks run", kind=kind,
                cached=str(cached).lower()).inc()
