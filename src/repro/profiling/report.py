"""Rendering helpers for the benchmark harness: aligned text tables that
print the same rows/series the paper's figures report."""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence

import numpy as np


def format_table(
    rows: Mapping[str, Mapping[str, float]],
    columns: Sequence[str],
    title: str = "",
    percent: bool = False,
    width: int = 12,
    mean_row: bool = True,
) -> str:
    """Render {row -> {column -> value}} as an aligned table."""
    lines = []
    if title:
        lines.append(title)
    header = "".join(f"{c:>{width}}" for c in columns)
    lines.append(f"{'workload':<14}{header}")
    lines.append("-" * (14 + width * len(columns)))

    def fmt(value: Optional[float]) -> str:
        if value is None:
            return f"{'-':>{width}}"
        if percent:
            return f"{value * 100:>{width - 1}.1f}%"
        return f"{value:>{width}.2f}"

    for name, row in rows.items():
        cells = "".join(fmt(row.get(c)) for c in columns)
        lines.append(f"{name:<14}{cells}")
    if mean_row and rows:
        lines.append("-" * (14 + width * len(columns)))
        cells = []
        for c in columns:
            values = [row[c] for row in rows.values() if c in row and row[c] is not None]
            cells.append(fmt(float(np.mean(values)) if values else None))
        lines.append(f"{'mean':<14}{''.join(cells)}")
    return "\n".join(lines)


def format_series(
    series: Mapping[str, Iterable[float]],
    title: str = "",
    points: int = 24,
    percent: bool = True,
) -> str:
    """Render named numeric series (Figure-8 style timelines) as sparklines."""
    blocks = " .:-=+*#%@"
    lines = [title] if title else []
    for name, values in series.items():
        arr = np.asarray(list(values), dtype=np.float64)
        if arr.size == 0:
            lines.append(f"{name:<14}(no data)")
            continue
        if arr.size > points:
            edges = np.linspace(0, arr.size, points + 1).astype(int)
            arr = np.array([arr[a:b].mean() for a, b in zip(edges[:-1], edges[1:])])
        lo, hi = float(arr.min()), float(arr.max())
        span = (hi - lo) or 1.0
        chars = "".join(
            blocks[int((v - lo) / span * (len(blocks) - 1))] for v in arr
        )
        scale = (f"[{lo * 100:.0f}%..{hi * 100:.0f}%]" if percent
                 else f"[{lo:.3g}..{hi:.3g}]")
        lines.append(f"{name:<14}{chars}  {scale}")
    return "\n".join(lines)


def format_scaling(
    times: Mapping[str, Mapping[int, float]],
    title: str = "Strong scaling (speedup over 1 GPU)",
) -> str:
    """Render per-workload time-per-epoch as speedups over the 1-GPU run."""
    gpu_counts = sorted({n for row in times.values() for n in row})
    lines = [title, f"{'workload':<14}" + "".join(f"{n} GPU{'s' if n > 1 else '':>2}".rjust(10) for n in gpu_counts)]
    lines.append("-" * (14 + 10 * len(gpu_counts)))
    for name, row in times.items():
        base = row.get(1)
        cells = []
        for n in gpu_counts:
            if n in row and base:
                cells.append(f"{base / row[n]:>9.2f}x")
            else:
                cells.append(f"{'-':>10}")
        lines.append(f"{name:<14}{''.join(cells)}")
    return "\n".join(lines)
