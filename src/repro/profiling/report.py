"""Rendering helpers for the benchmark harness: aligned text tables that
print the same rows/series the paper's figures report."""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence

import numpy as np


def format_table(
    rows: Mapping[str, Mapping[str, float]],
    columns: Sequence[str],
    title: str = "",
    percent: bool = False,
    width: int = 12,
    mean_row: bool = True,
) -> str:
    """Render {row -> {column -> value}} as an aligned table."""
    lines = []
    if title:
        lines.append(title)
    header = "".join(f"{c:>{width}}" for c in columns)
    lines.append(f"{'workload':<14}{header}")
    lines.append("-" * (14 + width * len(columns)))

    def fmt(value: Optional[float]) -> str:
        if value is None:
            return f"{'-':>{width}}"
        if percent:
            return f"{value * 100:>{width - 1}.1f}%"
        return f"{value:>{width}.2f}"

    for name, row in rows.items():
        cells = "".join(fmt(row.get(c)) for c in columns)
        lines.append(f"{name:<14}{cells}")
    if mean_row and rows:
        lines.append("-" * (14 + width * len(columns)))
        cells = []
        for c in columns:
            values = [row[c] for row in rows.values() if c in row and row[c] is not None]
            cells.append(fmt(float(np.mean(values)) if values else None))
        lines.append(f"{'mean':<14}{''.join(cells)}")
    return "\n".join(lines)


def format_series(
    series: Mapping[str, Iterable[float]],
    title: str = "",
    points: int = 24,
    percent: bool = True,
) -> str:
    """Render named numeric series (Figure-8 style timelines) as sparklines."""
    blocks = " .:-=+*#%@"
    lines = [title] if title else []
    for name, values in series.items():
        arr = np.asarray(list(values), dtype=np.float64)
        if arr.size == 0:
            lines.append(f"{name:<14}(no data)")
            continue
        if arr.size > points:
            edges = np.linspace(0, arr.size, points + 1).astype(int)
            arr = np.array([arr[a:b].mean() for a, b in zip(edges[:-1], edges[1:])])
        lo, hi = float(arr.min()), float(arr.max())
        span = (hi - lo) or 1.0
        chars = "".join(
            blocks[int((v - lo) / span * (len(blocks) - 1))] for v in arr
        )
        scale = (f"[{lo * 100:.0f}%..{hi * 100:.0f}%]" if percent
                 else f"[{lo:.3g}..{hi:.3g}]")
        lines.append(f"{name:<14}{chars}  {scale}")
    return "\n".join(lines)


def format_memory_table(
    reports: Mapping[str, Mapping],
    title: str = "Device-memory occupancy (simulated HBM)",
) -> str:
    """Render per-workload memory reports (``measure_memory`` dicts).

    ``peak_mem`` is the peak *live* bytes — what the workload's tensors
    actually occupy at their high-water mark; ``reserved`` is the caching
    allocator's device footprint (what ``nvidia-smi`` would show).
    """
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{'workload':<12}{'peak_mem MB':>13}{'reserved MB':>13}"
                 f"{'util %':>8}{'frag %':>8}{'allocs':>9}{'reuse %':>9}"
                 f"{'oom':>5}")
    lines.append("-" * 77)
    for key, rep in reports.items():
        allocs = rep.get("alloc_count", 0)
        reuse = (rep.get("bucket_reuse_count", 0) / allocs * 100
                 if allocs else 0.0)
        lines.append(
            f"{key:<12}{rep.get('peak_live_bytes', 0) / 1e6:>13.2f}"
            f"{rep.get('peak_reserved_bytes', 0) / 1e6:>13.2f}"
            f"{rep.get('utilization', 0.0) * 100:>8.2f}"
            f"{rep.get('fragmentation', 0.0) * 100:>8.1f}"
            f"{allocs:>9}{reuse:>9.1f}{rep.get('oom_events', 0):>5}"
        )
    if reports:
        lines.append("-" * 77)
        peak = max(rep.get("peak_live_bytes", 0) for rep in reports.values())
        total_oom = sum(rep.get("oom_events", 0) for rep in reports.values())
        lines.append(f"{'max':<12}{peak / 1e6:>13.2f}"
                     f"{'':>13}{'':>8}{'':>8}{'':>9}{'':>9}{total_oom:>5}")
    return "\n".join(lines)


def format_insights(report: Mapping, top_sites: int = 12) -> str:
    """Render an insights report: manifest line, bound-class mix, roofline
    table of the hottest launch sites, and the per-stream busy time."""
    manifest = report.get("manifest", {})
    lines = [
        f"insights: {manifest.get('workload', '?')} "
        f"(scale={manifest.get('scale', '?')}, "
        f"epochs={manifest.get('epochs', '?')}, "
        f"seed={manifest.get('seed', '?')}, "
        f"gpus={manifest.get('gpus', '?')})",
        f"wall {report.get('wall_us', 0.0) / 1e3:.2f}ms, "
        f"attributed {report.get('attributed_us', 0.0) / 1e3:.2f}ms "
        f"stream-busy across {report.get('launches', 0)} launches, "
        f"digest {report.get('insights_digest', '')[:12]}",
        "",
        "bound-class mix:",
    ]
    for cls, row in report.get("bound_summary", {}).items():
        lines.append(f"  {cls:<18}{row['share'] * 100:>6.1f}%  "
                     f"{row['duration_us'] / 1e3:>9.2f}ms")
    lines.append("")
    lines.append(f"top launch sites (of {len(report.get('sites', []))}):")
    lines.append(f"{'site':<26}{'stream':<11}{'us':>9}{'class':>16}"
                 f"{'AI':>8}{'%roof':>7}{'top stall':>21}")
    lines.append("-" * 98)
    for site in report.get("sites", [])[:top_sites]:
        if "launches" in site:
            ai = f"{site['arithmetic_intensity']:>8.2f}"
            roof = f"{site['pct_of_roof'] * 100:>6.1f}%"
            stall = (f"{site['top_stall']:>15} "
                     f"{site['top_stall_share'] * 100:>4.0f}%")
        else:
            ai, roof = f"{'-':>8}", f"{'-':>7}"
            stall = f"{'-':>20}"
        lines.append(f"{site['site']:<26}{site['stream']:<11}"
                     f"{site['duration_us']:>9.1f}"
                     f"{site['bound_class']:>16}{ai}{roof} {stall}")
    lines.append("")
    lines.append("stream busy time:")
    for stream, dur in report.get("stream_summary", {}).items():
        lines.append(f"  {stream:<11}{dur / 1e3:>9.2f}ms")
    return "\n".join(lines)


def format_insights_diff(diff: Mapping, top: int = 8) -> str:
    """Render a ``diff_insights`` result: aggregate delta + top movers."""
    from .insights import render_diff_lines

    kind = diff.get("kind", "unknown")
    lines = [f"insights diff ({kind}):"]
    if kind == "insights":
        lines.append(
            f"attributed {diff.get('a_us', 0.0) / 1e3:.2f}ms -> "
            f"{diff.get('b_us', 0.0) / 1e3:.2f}ms "
            f"({diff.get('delta_us', 0.0) / 1e3:+.2f}ms)"
        )
        deltas = {s: d for s, d in diff.get("stream_deltas", {}).items() if d}
        if deltas:
            lines.append("stream deltas: " + ", ".join(
                f"{s} {d:+.1f}us" for s, d in deltas.items()))
    elif kind in ("hotpath", "sample"):
        lines.append(f"suite speedup {diff.get('a_speedup', 0.0):.2f}x -> "
                     f"{diff.get('b_speedup', 0.0):.2f}x")
    attribution = render_diff_lines(diff, top=top)
    if attribution:
        lines.extend(attribution)
    else:
        lines.append("no movers: reports are equivalent "
                     "(or the reference carries only aggregates)")
    return "\n".join(lines)


def format_scaling(
    times: Mapping[str, Mapping[int, float]],
    title: str = "Strong scaling (speedup over 1 GPU)",
) -> str:
    """Render per-workload time-per-epoch as speedups over the 1-GPU run."""
    gpu_counts = sorted({n for row in times.values() for n in row})
    lines = [title, f"{'workload':<14}" + "".join(f"{n} GPU{'s' if n > 1 else '':>2}".rjust(10) for n in gpu_counts)]
    lines.append("-" * (14 + 10 * len(gpu_counts)))
    for name, row in times.items():
        base = row.get(1)
        cells = []
        for n in gpu_counts:
            if n in row and base:
                cells.append(f"{base / row[n]:>9.2f}x")
            else:
                cells.append(f"{'-':>10}")
        lines.append(f"{name:<14}{''.join(cells)}")
    return "\n".join(lines)
