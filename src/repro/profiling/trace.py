"""Kernel-timeline tracing: ordered, timestamped spans on the simulated clock.

The rest of the profiling layer reports *aggregates* — op-class time sums,
stall averages, cache ratios.  Nothing there can observe *when* kernels run,
how H2D staging interleaves with compute, or how DDP's allreduce buckets sit
between backward and optimizer.  This module records exactly that: every
kernel launch, host<->device transfer and collective becomes a
:class:`Span` with a start timestamp and duration on the simulated clock,
grouped per device (Chrome ``pid``) and per stream (``tid``).

Event model
-----------

One ``pid`` per simulated GPU; within a pid, spans live on named streams:

=============  =========================================================
tid            contents
=============  =========================================================
``epoch``      one span per training epoch (emitted by the Trainer)
``phase``      derived phase spans: maximal runs of same-phase kernels
               (``forward`` / ``backward`` / ``optimizer``) plus
               ``transfer`` runs — the sample→transfer→forward→backward→
               optimizer cadence of each training step
``kernels``    every kernel launch (the launch-site fast path's replayed
               timings included — replay rebuilds the launch envelope
               whenever a listener is attached)
``h2d``/``d2h``  transfers, annotated with byte counts and (for H2D,
               where the payload is deterministic input data) sparsity
``allreduce``  NVLink ring-allreduce bucket spans (multi-GPU runs)
``serve``      one span per executed serving batch (repro.serve), from
               batch start to completion, annotated with size and
               capture-vs-replay mode
``queue``      one span per serving request's queue wait, from arrival
               to its batch's start
``loader``     one span per sampled mini-batch (repro.train.loader),
               from sampler start to batch-ready, annotated with seed
               count, sampled edges and device stall
``halo``       one span per device per halo-feature exchange
               (repro.train.sharded), annotated with byte counts and
               peer count
=============  =========================================================

Determinism rules
-----------------

Traces must be byte-identical across ``--jobs``, analysis-cache on/off and
repeat runs, so golden trace digests are snapshot-testable:

* timestamps come from the simulated clock, which the launch-analysis cache
  reproduces exactly (``tests/test_analysis_cache.py`` pins replay-clock
  equality);
* span ordering is canonical — sorted by ``(pid, stream, start)`` with a
  stable sort, so insertion order only breaks exact ties, and insertion
  order is itself deterministic;
* D2H payloads are compute results, so their zero counts never enter a
  span (mirroring the golden kernel-stream rule); H2D sparsity is derived
  from seeded input data and is recorded;
* serialization is canonical JSON (sorted keys, fixed separators), so the
  digest is just SHA-256 over the exported bytes.

Zero-cost guard
---------------

Tracing uses the same guard pattern as the launch-site memo: when no tracer
is installed (:func:`active` returns ``None``) the per-kernel path is
untouched — the device only builds :class:`KernelLaunch` envelopes when a
listener is attached, and the Trainer/optimizer/allreduce hooks are single
``is None`` checks per epoch/step/collective, never per kernel.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
from dataclasses import dataclass, replace
from typing import Iterable, Optional, Sequence

from ..gpu import memory as gpu_memory
from ..gpu.device import SimulatedGPU
from ..gpu.kernel import KernelLaunch, TransferRecord

TRACE_VERSION = 1

#: span categories
CAT_KERNEL = "kernel"
CAT_TRANSFER = "transfer"
CAT_ALLREDUCE = "allreduce"
CAT_PHASE = "phase"
CAT_EPOCH = "epoch"
#: zero-duration samples exported as Chrome Counter ("C") events — Perfetto
#: renders them as a memory-over-time track beside the kernel spans
CAT_COUNTER = "counter"
#: serving-simulation spans (repro.serve): one per executed batch on the
#: ``serve`` stream, one per request's queue wait on the ``queue`` stream
CAT_SERVE = "serve"
CAT_QUEUE = "queue"
#: mini-batch sampler spans (repro.train.loader): one per sampled batch on
#: the ``loader`` stream, from sample start to batch-ready.  Deliberately
#: NOT a device category — sampling runs on the host and overlaps compute.
CAT_LOADER = "loader"
#: halo-feature exchange spans (repro.train.sharded): one per device per
#: collective on the ``halo`` stream — the NVLink gather of out-of-part
#: neighbor features before a partition's aggregation can run
CAT_HALO = "halo"

#: categories that occupy the device (busy/idle accounting)
DEVICE_CATS = (CAT_KERNEL, CAT_TRANSFER, CAT_ALLREDUCE, CAT_HALO)

#: canonical stream display order inside one pid
_TID_RANK = {"epoch": 0, "phase": 1, "kernels": 2, "h2d": 3, "d2h": 4,
             "allreduce": 5, "memory": 6, "serve": 7, "queue": 8,
             "loader": 9, "halo": 10}


def _tid_rank(tid: str) -> int:
    return _TID_RANK.get(tid, len(_TID_RANK))


@dataclass(frozen=True)
class Span:
    """One timestamped interval on a device stream (times in microseconds)."""

    name: str
    cat: str
    pid: int
    tid: str
    ts_us: float
    dur_us: float
    #: sorted ``(key, value)`` pairs; values are str/int/float so spans stay
    #: hashable and serialize canonically
    args: tuple = ()

    @property
    def end_us(self) -> float:
        return self.ts_us + self.dur_us

    def arg(self, key: str, default=None):
        for k, v in self.args:
            if k == key:
                return v
        return default

    def args_dict(self) -> dict:
        return dict(self.args)

    @staticmethod
    def make(name: str, cat: str, pid: int, tid: str, start_s: float,
             end_s: float, args: Optional[dict] = None) -> "Span":
        """Build a span from clock seconds, normalizing ``args`` ordering."""
        items = tuple(sorted((args or {}).items()))
        return Span(name=name, cat=cat, pid=int(pid), tid=tid,
                    ts_us=start_s * 1e6,
                    dur_us=max(0.0, (end_s - start_s) * 1e6),
                    args=items)


class Tracer:
    """Collects spans from simulated devices and host-side emitters.

    Attach to one or more devices (kernel/transfer listeners) and install
    globally (:func:`install`) so the Trainer, optimizer hooks and
    :class:`~repro.gpu.multigpu.MultiGPUSystem` can emit host spans.  Phase
    spans are *derived*: maximal runs of consecutive same-phase kernels (or
    transfers) on one device collapse into one ``phase``-stream span, which
    keeps them a pure function of the event stream — and therefore exactly
    as deterministic as the golden kernel streams.
    """

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self._devices: list[SimulatedGPU] = []
        #: pid -> [phase name, run start_s, run end_s]
        self._phase_runs: dict[int, list] = {}
        #: pid -> index of its latest counter span (same-timestamp coalescing)
        self._last_counter: dict[int, int] = {}

    # -- device plumbing ---------------------------------------------------
    def attach(self, device: SimulatedGPU) -> "Tracer":
        device.add_launch_listener(self.on_launch)
        device.add_transfer_listener(self.on_transfer)
        self._devices.append(device)
        return self

    def detach(self) -> None:
        for device in self._devices:
            device.remove_launch_listener(self.on_launch)
            device.remove_transfer_listener(self.on_transfer)
        self._devices.clear()
        self.flush_phases()

    # -- event ingestion ---------------------------------------------------
    def on_launch(self, launch: KernelLaunch) -> None:
        desc = launch.descriptor
        end = launch.start_s + launch.duration_s
        self._extend_phase(launch.device_id, desc.phase, launch.start_s, end)
        self.spans.append(Span.make(
            desc.name, CAT_KERNEL, launch.device_id, "kernels",
            launch.start_s, end,
            {"op": desc.op_class.value, "phase": desc.phase},
        ))

    def on_transfer(self, record: TransferRecord) -> None:
        end = record.start_s + record.duration_s
        self._extend_phase(record.device_id, "transfer", record.start_s, end)
        args = {
            "label": record.label,
            "nbytes": record.nbytes,
            "wire_bytes": record.wire_bytes,
            "num_values": record.num_values,
        }
        if record.direction == "h2d":
            # D2H payloads are compute results; their zero counts must not
            # enter the (byte-deterministic) trace — same rule as goldens.
            args["sparsity"] = round(record.sparsity, 9)
        self.spans.append(Span.make(
            record.label or record.direction, CAT_TRANSFER, record.device_id,
            record.direction, record.start_s, end, args,
        ))

    def add_span(self, name: str, cat: str, pid: int, tid: str,
                 start_s: float, end_s: float,
                 args: Optional[dict] = None) -> None:
        """Record an explicit host-side span (epoch, allreduce bucket, ...)."""
        self.spans.append(Span.make(name, cat, pid, tid, start_s, end_s, args))

    # -- counter samples (memory-over-time) --------------------------------
    def add_counter(self, pid: int, clock_s: float, values: dict,
                    name: str = "HBM") -> None:
        """Record one counter sample (a zero-duration span on the ``memory``
        stream).  Multiple samples at one timestamp coalesce to the last —
        an alloc/free burst inside a single simulated instant exports as one
        Chrome ``C`` event, keeping per-stream timestamps strictly usable."""
        span = Span.make(name, CAT_COUNTER, pid, "memory",
                         clock_s, clock_s, values)
        idx = self._last_counter.get(pid)
        if (idx is not None and self.spans[idx].ts_us == span.ts_us
                and self.spans[idx].name == name):
            self.spans[idx] = span
            return
        self._last_counter[pid] = len(self.spans)
        self.spans.append(span)

    def counter_sink(self, device: SimulatedGPU):
        """Adapter for :meth:`DeviceMemoryTracker.set_counter_sink`."""
        pid = device.device_id

        def sink(clock_s: float, live: int, reserved: int) -> None:
            self.add_counter(pid, clock_s,
                             {"live_bytes": int(live),
                              "reserved_bytes": int(reserved)})

        return sink

    # -- derived phase spans ----------------------------------------------
    def _extend_phase(self, pid: int, name: str, start_s: float,
                      end_s: float) -> None:
        run = self._phase_runs.get(pid)
        if run is not None and run[0] == name:
            run[2] = end_s
            return
        if run is not None:
            self._close_phase(pid, run)
        self._phase_runs[pid] = [name, start_s, end_s]

    def _close_phase(self, pid: int, run: list) -> None:
        self.spans.append(Span.make(run[0], CAT_PHASE, pid, "phase",
                                    run[1], run[2]))

    def flush_phases(self, pid: Optional[int] = None) -> None:
        """Close open phase runs (epoch boundaries must not be straddled)."""
        if pid is None:
            pids = list(self._phase_runs)
        else:
            pids = [pid] if pid in self._phase_runs else []
        for p in pids:
            self._close_phase(p, self._phase_runs.pop(p))

    def end_epoch(self, device: SimulatedGPU, index: int,
                  start_s: float) -> None:
        """Trainer hook: close phase runs and emit the epoch span."""
        self.flush_phases(device.device_id)
        self.add_span(f"epoch {index}", CAT_EPOCH, device.device_id, "epoch",
                      start_s, device.elapsed_s())

    def timeline(self) -> "Timeline":
        self.flush_phases()
        return Timeline(self.spans)


# -- the global tracer (zero-cost when absent) --------------------------------
_TRACER: Optional[Tracer] = None


def active() -> Optional[Tracer]:
    """The installed tracer, or ``None`` — the single-check fast guard."""
    return _TRACER


def install(tracer: Tracer) -> Tracer:
    global _TRACER
    if _TRACER is not None:
        raise RuntimeError("a tracer is already installed; uninstall() first")
    _TRACER = tracer
    return tracer


def uninstall() -> None:
    global _TRACER
    _TRACER = None


@contextlib.contextmanager
def session(devices: Sequence[SimulatedGPU] = (),
            tracer: Optional[Tracer] = None):
    """Install a tracer (attached to ``devices``) for the duration of a block."""
    tracer = tracer or Tracer()
    for device in devices:
        tracer.attach(device)
    install(tracer)
    try:
        yield tracer
    finally:
        uninstall()
        tracer.detach()


class Timeline:
    """Compact in-memory span store with interval queries and Chrome export.

    Spans are held in canonical order — ``(pid, stream rank, start)`` under
    a stable sort — so two timelines built from the same event stream are
    equal element-wise and serialize byte-identically.
    """

    def __init__(self, spans: Iterable[Span]) -> None:
        self.spans: list[Span] = sorted(
            spans, key=lambda s: (s.pid, _tid_rank(s.tid), s.ts_us)
        )

    def __len__(self) -> int:
        return len(self.spans)

    def __eq__(self, other) -> bool:
        return isinstance(other, Timeline) and self.spans == other.spans

    # -- queries -----------------------------------------------------------
    def query(self, pid: Optional[int] = None, tid: Optional[str] = None,
              cat: Optional[str] = None,
              name: Optional[str] = None) -> list[Span]:
        return [
            s for s in self.spans
            if (pid is None or s.pid == pid)
            and (tid is None or s.tid == tid)
            and (cat is None or s.cat == cat)
            and (name is None or s.name == name)
        ]

    def device_ids(self) -> list[int]:
        return sorted({s.pid for s in self.spans})

    def wall_us(self) -> float:
        return max((s.end_us for s in self.spans), default=0.0)

    def wall_s(self) -> float:
        return self.wall_us() / 1e6

    def _intervals(self, pid: Optional[int],
                   cats: Sequence[str]) -> list[tuple[float, float]]:
        ivals = [(s.ts_us, s.end_us) for s in self.spans
                 if s.cat in cats and (pid is None or s.pid == pid)]
        return _merge_intervals(ivals)

    def busy_us(self, pid: int) -> float:
        """Microseconds the device is occupied (union of device-cat spans)."""
        return sum(b - a for a, b in self._intervals(pid, DEVICE_CATS))

    def idle_fraction(self, pid: int) -> float:
        """Fraction of the trace wall-clock this device spends idle."""
        wall = self.wall_us()
        if wall <= 0:
            return 0.0
        return 1.0 - self.busy_us(pid) / wall

    def overlap_us(self, cat_a: str, cat_b: str,
                   pid: Optional[int] = None) -> float:
        """Total time where a ``cat_a`` span and a ``cat_b`` span coexist."""
        return _intersect_total(self._intervals(pid, (cat_a,)),
                                self._intervals(pid, (cat_b,)))

    def compute_transfer_overlap(self, pid: Optional[int] = None) -> float:
        """Fraction of transfer time hidden under kernel execution.

        Pageable PyTorch-1.5-style copies are synchronous, so this is ~0 on
        faithful configurations — the observability exists precisely so a
        future pinned/async transfer model has a measurable target.
        """
        transfer = sum(b - a for a, b in self._intervals(pid, (CAT_TRANSFER,)))
        if transfer <= 0:
            return 0.0
        return self.overlap_us(CAT_KERNEL, CAT_TRANSFER, pid) / transfer

    def phase_occupancy(self, pid: Optional[int] = None) -> dict[str, float]:
        """Per-phase share of the trace wall-clock (derived phase spans).

        With ``pid=None`` the share is averaged over devices, so a
        symmetric multi-GPU trace reports the same occupancy as any one
        of its replicas.
        """
        wall = self.wall_us()
        if wall <= 0:
            return {}
        if pid is None:
            wall *= max(1, len(self.device_ids()))
        acc: dict[str, float] = {}
        for s in self.spans:
            if s.cat == CAT_PHASE and (pid is None or s.pid == pid):
                acc[s.name] = acc.get(s.name, 0.0) + s.dur_us
        return {name: acc[name] / wall for name in sorted(acc)}

    def critical_path(self) -> list[Span]:
        """Device-occupying spans of the last-finishing device, in order.

        Every per-device stream is serialized (in-order launch semantics) and
        collectives are barriers, so the chain of kernel/transfer/allreduce
        spans on the device that finishes last covers the end-to-end
        wall-clock minus that device's idle gaps.
        """
        best_pid, best_end = None, -1.0
        for pid in self.device_ids():
            end = max((s.end_us for s in self.spans
                       if s.pid == pid and s.cat in DEVICE_CATS), default=0.0)
            if end > best_end:
                best_pid, best_end = pid, end
        if best_pid is None:
            return []
        return [s for s in self.spans
                if s.pid == best_pid and s.cat in DEVICE_CATS]

    def critical_path_s(self) -> float:
        return sum(s.dur_us for s in self.critical_path()) / 1e6

    def span_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for s in self.spans:
            counts[s.cat] = counts.get(s.cat, 0) + 1
        return {cat: counts[cat] for cat in sorted(counts)}

    def summary(self) -> dict:
        """The profiling report's timeline block (small, picklable)."""
        wall = self.wall_s()
        devices = {
            str(pid): {
                "busy_s": self.busy_us(pid) / 1e6,
                "idle_fraction": self.idle_fraction(pid),
            }
            for pid in self.device_ids()
        }
        idle = [d["idle_fraction"] for d in devices.values()]
        return {
            "wall_s": wall,
            "span_count": len(self.spans),
            "span_counts": self.span_counts(),
            "devices": devices,
            "idle_fraction": max(idle) if idle else 0.0,
            "compute_transfer_overlap": self.compute_transfer_overlap(),
            "phase_occupancy": self.phase_occupancy(),
        }

    # -- multi-GPU symmetry ------------------------------------------------
    def replicate_device(self, src_pid: int,
                         dst_pids: Iterable[int]) -> "Timeline":
        """Clone one device's non-collective spans onto peer pids.

        DDP replicas are symmetric — every device runs the same stream shape
        on the same clock — so an N-GPU trace is device 0's stream replicated
        N ways plus the per-pid allreduce bucket spans already recorded.
        """
        clones = [
            replace(s, pid=int(pid))
            for pid in dst_pids
            for s in self.spans
            if s.pid == src_pid and s.cat != CAT_ALLREDUCE
        ]
        return Timeline(self.spans + clones)

    # -- Chrome trace JSON -------------------------------------------------
    def to_chrome(self, manifest: Optional[dict] = None) -> dict:
        """``chrome://tracing`` / Perfetto JSON object format.

        ``manifest`` (a :class:`repro.profiling.insights.RunManifest` dict)
        rides along under ``otherData`` so exported traces are
        provenance-comparable; :meth:`digest` never passes one, keeping
        golden trace digests a function of the spans alone.
        """
        events: list[dict] = []
        pids = self.device_ids()
        tids = sorted({(s.pid, s.tid) for s in self.spans},
                      key=lambda pt: (pt[0], _tid_rank(pt[1])))
        for pid in pids:
            events.append({"ph": "M", "pid": pid, "tid": "", "ts": 0,
                           "name": "process_name",
                           "args": {"name": f"simulated GPU {pid}"}})
        for pid, tid in tids:
            events.append({"ph": "M", "pid": pid, "tid": tid, "ts": 0,
                           "name": "thread_name", "args": {"name": tid}})
            events.append({"ph": "M", "pid": pid, "tid": tid, "ts": 0,
                           "name": "thread_sort_index",
                           "args": {"sort_index": _tid_rank(tid)}})
        for s in self.spans:
            if s.cat == CAT_COUNTER:
                events.append({
                    "ph": "C", "name": s.name, "cat": s.cat, "pid": s.pid,
                    "tid": s.tid, "ts": s.ts_us, "args": s.args_dict(),
                })
                continue
            events.append({
                "ph": "X", "name": s.name, "cat": s.cat, "pid": s.pid,
                "tid": s.tid, "ts": s.ts_us, "dur": s.dur_us,
                "args": s.args_dict(),
            })
        other = {"generator": "repro.profiling.trace",
                 "version": TRACE_VERSION}
        if manifest is not None:
            other["runManifest"] = manifest
        return {"traceEvents": events, "displayTimeUnit": "ms",
                "otherData": other}

    def to_json(self, manifest: Optional[dict] = None) -> str:
        """Canonical serialization: the bytes the digest is defined over."""
        return json.dumps(self.to_chrome(manifest), sort_keys=True,
                          separators=(",", ":")) + "\n"

    def write(self, path, manifest: Optional[dict] = None) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json(manifest))

    def digest(self) -> str:
        return hashlib.sha256(self.to_json().encode()).hexdigest()

    @classmethod
    def from_chrome(cls, data: dict) -> "Timeline":
        """Rebuild a Timeline from Chrome JSON (lossless for ``X`` span and
        ``C`` counter events)."""
        spans = []
        for event in data.get("traceEvents", ()):
            ph = event.get("ph")
            if ph == "X":
                spans.append(Span(
                    name=event["name"], cat=event.get("cat", ""),
                    pid=int(event["pid"]), tid=str(event["tid"]),
                    ts_us=float(event["ts"]), dur_us=float(event["dur"]),
                    args=tuple(sorted(event.get("args", {}).items())),
                ))
            elif ph == "C":
                spans.append(Span(
                    name=event["name"], cat=event.get("cat", CAT_COUNTER),
                    pid=int(event["pid"]),
                    tid=str(event.get("tid", "memory")),
                    ts_us=float(event["ts"]), dur_us=0.0,
                    args=tuple(sorted(event.get("args", {}).items())),
                ))
        return cls(spans)


def _merge_intervals(
    intervals: list[tuple[float, float]]
) -> list[tuple[float, float]]:
    if not intervals:
        return []
    intervals.sort()
    merged = [intervals[0]]
    for start, end in intervals[1:]:
        last_start, last_end = merged[-1]
        if start <= last_end:
            if end > last_end:
                merged[-1] = (last_start, end)
        else:
            merged.append((start, end))
    return merged


def _intersect_total(a: list[tuple[float, float]],
                     b: list[tuple[float, float]]) -> float:
    total, i, j = 0.0, 0, 0
    while i < len(a) and j < len(b):
        lo = max(a[i][0], b[j][0])
        hi = min(a[i][1], b[j][1])
        if hi > lo:
            total += hi - lo
        if a[i][1] <= b[j][1]:
            i += 1
        else:
            j += 1
    return total


def validate_chrome(data: dict) -> None:
    """Raise ``ValueError`` unless ``data`` is a well-formed Chrome trace.

    Checks the required keys per event and that ``ts`` is monotone
    non-decreasing within every ``(pid, tid)`` stream — the CI gate for
    exported artifacts.
    """
    if not isinstance(data, dict) or not isinstance(
        data.get("traceEvents"), list
    ):
        raise ValueError("Chrome trace must be an object with a "
                         "'traceEvents' list")
    last_ts: dict[tuple, float] = {}
    for i, event in enumerate(data["traceEvents"]):
        if not isinstance(event, dict) or "ph" not in event:
            raise ValueError(f"traceEvents[{i}]: not an event object")
        if event["ph"] == "M":
            continue
        if event["ph"] == "C":
            for field in ("name", "pid", "ts", "args"):
                if field not in event:
                    raise ValueError(f"traceEvents[{i}]: missing {field!r}")
            ts = float(event["ts"])
            if ts < 0:
                raise ValueError(f"traceEvents[{i}]: negative ts")
            stream = (event["pid"], "C", event["name"])
            if ts < last_ts.get(stream, 0.0):
                raise ValueError(
                    f"traceEvents[{i}]: ts {ts} not monotone on counter "
                    f"stream {stream}"
                )
            last_ts[stream] = ts
            continue
        if event["ph"] != "X":
            raise ValueError(f"traceEvents[{i}]: unsupported phase "
                             f"{event['ph']!r}")
        for field in ("name", "cat", "pid", "tid", "ts", "dur"):
            if field not in event:
                raise ValueError(f"traceEvents[{i}]: missing {field!r}")
        ts, dur = float(event["ts"]), float(event["dur"])
        if ts < 0 or dur < 0:
            raise ValueError(f"traceEvents[{i}]: negative ts/dur")
        stream = (event["pid"], event["tid"])
        if ts < last_ts.get(stream, 0.0):
            raise ValueError(
                f"traceEvents[{i}]: ts {ts} not monotone on stream {stream}"
            )
        last_ts[stream] = ts


# -- workload tracing entry points -------------------------------------------
def trace_workload(key: str, scale: str = "test", epochs: int = 1,
                   seed: int = 0, sim=None, memory: bool = False,
                   mode: Optional[str] = None,
                   launch_listener=None) -> Timeline:
    """Train ``epochs`` of one workload on a single traced device.

    Mirrors :func:`repro.testing.golden.fingerprint_workload`: reseed, build,
    reset (setup excluded), then record every event of training.  With
    ``memory=True`` a device-memory tracker rides along and every alloc/free
    emits a live/reserved counter sample — Perfetto shows the HBM footprint
    as a counter track beside the kernel spans.  Golden trace fingerprints
    keep ``memory=False``, so their digests are untouched by the samples.

    ``mode`` selects the training loop: ``None`` is the plain trainer,
    ``"steady"`` enforces the static-input discipline, ``"capture"`` runs
    capture/replay (repro.gpu.graph_capture) — the differential trace tests
    compare the latter two byte-for-byte.

    ``launch_listener`` rides along as an extra device launch listener for
    the duration of training (the insight engine's per-launch collector);
    it is attached after the post-build ``reset()``, so it sees exactly the
    launches the trace does.
    """
    from ..core import registry
    from ..tensor import manual_seed
    from ..train.trainer import Trainer

    spec = registry.get(key)
    manual_seed(seed)
    device = SimulatedGPU(sim)
    mem_ctx = (gpu_memory.track(device) if memory
               else contextlib.nullcontext(None))
    with mem_ctx as memtracker:
        workload = spec.build(device=device, scale=scale)
        device.reset()
        if launch_listener is not None:
            device.add_launch_listener(launch_listener)
        try:
            with session(devices=(device,)) as tracer:
                if memtracker is not None:
                    memtracker.set_counter_sink(tracer.counter_sink(device))
                Trainer(workload=workload, device=device,
                        steady=mode == "steady",
                        capture_replay=mode == "capture").run(epochs=epochs,
                                                              seed=seed)
        finally:
            if launch_listener is not None:
                device.remove_launch_listener(launch_listener)
    return tracer.timeline()


def trace_point(key: str, num_gpus: int = 1, scale: str = "test",
                epochs: int = 1, seed: int = 0, sim=None,
                memory: bool = False, launch_listener=None) -> Timeline:
    """Trace one workload on ``num_gpus`` simulated devices.

    Memory counter tracks are single-device only: the DDP path replicates
    device 0's spans to every peer, and cloning footprint samples would
    assert knowledge the allocator model doesn't have about replicas.
    ``launch_listener`` observes device 0's launches on either path (DDP
    replicas are symmetric, so device 0's stream characterizes each peer).
    """
    if num_gpus <= 1:
        return trace_workload(key, scale=scale, epochs=epochs, seed=seed,
                              sim=sim, memory=memory,
                              launch_listener=launch_listener)
    from ..train import ddp

    return ddp.trace_scaling_point(key, num_gpus, scale=scale, epochs=epochs,
                                   seed=seed, sim=sim,
                                   launch_listener=launch_listener)


def trace_fingerprint(key: str, scale: str = "test", epochs: int = 1,
                      seed: int = 0, num_gpus: int = 1) -> dict:
    """Golden-trace payload: structural counts plus the canonical digest."""
    timeline = trace_point(key, num_gpus=num_gpus, scale=scale, epochs=epochs,
                           seed=seed)
    return {
        "version": TRACE_VERSION,
        "workload": key,
        "scale": scale,
        "epochs": epochs,
        "seed": seed,
        "num_gpus": num_gpus,
        "span_count": len(timeline),
        "span_counts": timeline.span_counts(),
        "wall_us": timeline.wall_us(),
        "trace_digest": timeline.digest(),
    }
