"""Insight engine: roofline attribution, run provenance, differential diagnosis.

The profiling layer *emits* everything the paper's analysis needs — per-launch
``MemoryMetrics``/``TimingResult``/``StallBreakdown``, the PR-4 timeline, the
PR-5 metrics registry — but nothing *interprets* it.  This module folds those
raw streams into verdicts:

* a **roofline classifier** tags every launch site with exactly one bound
  class — ``compute`` (issue/fp32/int32/serial-limited), ``dram_bandwidth``
  (lsu/l2/dram-limited), ``latency`` (dependency-chain-limited) — with
  arithmetic-intensity and %-of-roof numbers against the V100 peaks; spans on
  the non-kernel streams (h2d/d2h/allreduce/halo/loader/serve/queue) are
  ``transfer_or_stall`` by definition;
* a deterministic **attribution tree** ``run → epoch → phase → stream →
  site`` whose node durations are exact sums of their children (streams
  overlap on real hardware, so ``attributed_us`` can exceed wall time — it is
  stream-busy time, not elapsed time);
* a frozen :class:`RunManifest` (workload, scale, seed, gpus/parts, a digest
  of the :class:`SimulationConfig`, the repro source-tree hash, and the
  analysis-cache/capture flags) embedded in every insights report and — via
  ``Timeline.write(manifest=...)`` — in trace and metrics exports, so any two
  artifacts are provenance-comparable;
* a **differential diagnoser** :func:`diff_insights` that attributes the
  delta between two reports (insights reports, or the hotpath/sample/shard
  bench payloads and their committed baselines) to the top-N shifted
  sites/phases/streams — the three CI bench gates route their failure
  messages through :func:`render_diff_lines` so a red gate names *what*
  regressed, not just the aggregate ratio.

Determinism rules (the golden family ``tests/golden/insights_*.json`` pins
these):

* every number folds pure functions of ``(descriptor, SimulationConfig)``
  over the simulated clock — never wall time, never live cache state;
* the collector memoizes ``timing.analyze`` in its *own* signature-keyed
  dict, so reports are byte-identical with the global analysis cache on or
  off;
* ``insights_digest`` is SHA-256 over the canonical JSON of the report with
  ``insights_digest`` itself and ``manifest.source_digest`` removed — the
  digest covers the measurements, while the source hash identifies the code
  that produced them (and legitimately changes every commit).
"""

from __future__ import annotations

import bisect
import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Optional, Sequence

from ..gpu import analysis_cache, timing
from ..gpu.config import DEFAULT_SIMULATION, SimulationConfig

INSIGHTS_VERSION = 1

#: the four verdicts; every classified site carries exactly one
BOUND_CLASSES = ("compute", "dram_bandwidth", "latency", "transfer_or_stall")

#: cycle-limiter (``TimingResult.components`` key) → bound class
_COMPONENT_CLASS = {
    "issue": "compute",
    "fp32": "compute",
    "int32": "compute",
    "serial": "compute",
    "lsu": "dram_bandwidth",
    "l2_bw": "dram_bandwidth",
    "dram_bw": "dram_bandwidth",
    "latency": "latency",
}

#: non-kernel timeline streams folded into the tree, and the phase each is
#: attributed to (kernel launches carry their own descriptor phase)
_STREAM_PHASE = {
    "h2d": "transfer",
    "d2h": "transfer",
    "allreduce": "allreduce",
    "halo": "halo",
    "loader": "loader",
    "serve": "serve",
    "queue": "serve",
}


def _r(value: float) -> float:
    """Round a derived ratio for readability (inputs are already exact)."""
    return round(float(value), 9)


# -- run provenance ----------------------------------------------------------
def sim_digest(sim: Optional[SimulationConfig] = None) -> str:
    """Canonical SHA-256 over every calibration constant of a config."""
    payload = dataclasses.asdict(sim or DEFAULT_SIMULATION)
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      default=str)
    return hashlib.sha256(blob.encode()).hexdigest()


@dataclass(frozen=True)
class RunManifest:
    """Frozen provenance record identifying one simulated run.

    ``analysis_cache`` records the *requested* cache discipline (``None`` =
    unconstrained: the run's outputs are independent of the cache, which is
    what the determinism matrix asserts) — it is a pinned input, never a
    sample of live process state, so embedding it cannot break
    byte-determinism.
    """

    version: int
    workload: str
    scale: str
    epochs: int
    seed: int
    gpus: int
    parts: int
    sim_digest: str
    source_digest: str
    analysis_cache: Optional[bool]
    capture_replay: bool

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)


def build_manifest(key: str, scale: str = "test", epochs: int = 1,
                   seed: int = 0, gpus: int = 1, parts: int = 1,
                   sim: Optional[SimulationConfig] = None,
                   analysis_cache_flag: Optional[bool] = None,
                   capture_replay: bool = False) -> RunManifest:
    """The manifest for a run described by these parameters."""
    from ..core.cache import source_fingerprint

    return RunManifest(
        version=INSIGHTS_VERSION,
        workload=key,
        scale=scale,
        epochs=int(epochs),
        seed=int(seed),
        gpus=int(gpus),
        parts=int(parts),
        sim_digest=sim_digest(sim),
        source_digest=source_fingerprint(),
        analysis_cache=analysis_cache_flag,
        capture_replay=bool(capture_replay),
    )


# -- per-launch collection ---------------------------------------------------
@dataclass(frozen=True)
class LaunchRow:
    """One kernel launch, reduced to what the classifier folds."""

    start_s: float
    duration_s: float
    name: str
    op: str
    phase: str
    fp32_flops: int
    int32_iops: int
    dram_bytes: int
    l2_bytes: int
    components: dict
    stalls: dict


class SiteCollector:
    """Launch listener recording :class:`LaunchRow` per launch.

    ``KernelLaunch`` envelopes carry memory metrics and stall shares but not
    the timing *components* (the per-bound cycle counts the classifier
    needs), so the collector recomputes ``timing.analyze`` — memoized in its
    own signature-keyed dict rather than the global analysis cache, keeping
    the report byte-identical whether that cache is on or off.  ``replay``
    rebuilds the envelope whenever a listener is attached, so the collector
    sees every launch including fast-path replays.
    """

    def __init__(self, sim: Optional[SimulationConfig] = None) -> None:
        self.sim = sim or DEFAULT_SIMULATION
        self.rows: list[LaunchRow] = []
        self._timings: dict[tuple, object] = {}

    def on_launch(self, launch) -> None:
        desc = launch.descriptor
        sig = analysis_cache.signature(desc, self.sim)
        result = self._timings.get(sig)
        if result is None:
            result = timing.analyze(desc, launch.memory, self.sim)
            self._timings[sig] = result
        self.rows.append(LaunchRow(
            start_s=launch.start_s,
            duration_s=launch.duration_s,
            name=desc.name,
            op=desc.op_class.value,
            phase=desc.phase,
            fp32_flops=desc.fp32_flops,
            int32_iops=desc.int32_iops,
            dram_bytes=launch.memory.dram_bytes,
            l2_bytes=launch.memory.l2_bytes,
            components=result.components,
            stalls=launch.stalls.as_dict(),
        ))


# -- the attribution tree ----------------------------------------------------
def _new_kernel_acc(row: LaunchRow) -> dict:
    return {
        "launches": 0, "duration_us": 0.0, "op": row.op,
        "fp32_flops": 0, "int32_iops": 0, "dram_bytes": 0, "l2_bytes": 0,
        "_components": dict.fromkeys(row.components, 0.0),
        "_stall_us": dict.fromkeys(row.stalls, 0.0),
    }


def _fold_row(acc: dict, row: LaunchRow) -> None:
    dur_us = row.duration_s * 1e6
    acc["launches"] += 1
    acc["duration_us"] += dur_us
    acc["fp32_flops"] += row.fp32_flops
    acc["int32_iops"] += row.int32_iops
    acc["dram_bytes"] += row.dram_bytes
    acc["l2_bytes"] += row.l2_bytes
    for comp, cycles in row.components.items():
        acc["_components"][comp] += cycles
    for reason, share in row.stalls.items():
        acc["_stall_us"][reason] += share * dur_us


def _merge_acc(dst: dict, src: dict) -> None:
    for field in ("launches", "duration_us", "fp32_flops", "int32_iops",
                  "dram_bytes", "l2_bytes", "events", "bytes"):
        if field in src:
            dst[field] = dst.get(field, 0) + src[field]
    for table in ("_components", "_stall_us"):
        if table in src:
            out = dst.setdefault(table, dict.fromkeys(src[table], 0.0))
            for k, v in src[table].items():
                out[k] = out.get(k, 0.0) + v
    dst.setdefault("op", src.get("op"))


def _roofline(flops: int, iops: int, dram_bytes: int, duration_us: float,
              sim: SimulationConfig) -> dict:
    """Arithmetic intensity and %-of-roof for one aggregated kernel site."""
    dev = sim.device
    duration_s = duration_us * 1e-6
    if flops > 0:
        basis, ops, peak = "fp32", flops, dev.peak_fp32_flops
    elif iops > 0:
        basis, ops, peak = "int32", iops, dev.peak_int32_iops
    else:
        basis, ops, peak = "memory", 0, 0.0
    dram_rate = dram_bytes / duration_s if duration_s else 0.0
    dram_util = dram_rate / dev.dram_bandwidth_bytes_per_s
    if basis == "memory":
        # pure data movement: the only meaningful roof is DRAM bandwidth
        return {"roof_basis": basis, "arithmetic_intensity": 0.0,
                "pct_of_roof": _r(dram_util), "dram_utilization": _r(dram_util)}
    ai = ops / dram_bytes if dram_bytes else 0.0
    achieved = ops / duration_s if duration_s else 0.0
    roof = min(peak, ai * dev.dram_bandwidth_bytes_per_s) if ai > 0 else peak
    return {
        "roof_basis": basis,
        "arithmetic_intensity": _r(ai),
        "pct_of_roof": _r(achieved / roof if roof else 0.0),
        "dram_utilization": _r(dram_util),
    }


def _finalize_site(name: str, stream: str, acc: dict,
                   sim: SimulationConfig) -> dict:
    node = {"name": name, "kind": "site", "stream": stream,
            "duration_us": acc["duration_us"]}
    if "launches" in acc:
        comp = acc["_components"]
        stall_us = acc["_stall_us"]
        bound = max(comp, key=comp.get)
        top_stall = max(stall_us, key=stall_us.get) if stall_us else "other"
        total_stall = sum(stall_us.values())
        node.update({
            "launches": acc["launches"],
            "op": acc["op"],
            "bound": bound,
            "bound_class": _COMPONENT_CLASS[bound],
            "fp32_flops": acc["fp32_flops"],
            "int32_iops": acc["int32_iops"],
            "dram_bytes": acc["dram_bytes"],
            "l2_bytes": acc["l2_bytes"],
            "top_stall": top_stall,
            "top_stall_share": _r(stall_us.get(top_stall, 0.0) / total_stall
                                  if total_stall else 0.0),
        })
        node.update(_roofline(acc["fp32_flops"], acc["int32_iops"],
                              acc["dram_bytes"], acc["duration_us"], sim))
    else:
        node.update({
            "events": acc["events"],
            "bytes": acc["bytes"],
            "bound_class": "transfer_or_stall",
        })
    return node


def _node(name: str, kind: str, children: list[dict],
          sort: bool = True) -> dict:
    if sort:
        children = sorted(children,
                          key=lambda c: (-c["duration_us"], c["name"]))
    return {
        "name": name,
        "kind": kind,
        "duration_us": sum(c["duration_us"] for c in children),
        "children": children,
    }


def build_tree(timeline, rows: Sequence[LaunchRow],
               sim: Optional[SimulationConfig] = None,
               pid: int = 0) -> tuple[dict, list[dict]]:
    """Fold a timeline + launch rows into ``(tree, flat_sites)``.

    The tree nests ``run → epoch → phase → stream → site`` with every
    parent's ``duration_us`` the exact sum of its children's (the Hypothesis
    property in ``tests/test_insights_properties.py``).  ``flat_sites``
    aggregates the same accumulators across epochs — keyed ``(phase, stream,
    site)`` and classified by the identical code path — which is the
    comparable unit :func:`diff_insights` works on.  Epoch membership is by
    start timestamp against the epoch spans of ``pid``; events before the
    first epoch clamp into it.
    """
    sim = sim or DEFAULT_SIMULATION
    epoch_spans = sorted(timeline.query(pid=pid, tid="epoch"),
                         key=lambda s: s.ts_us)
    starts = [s.ts_us for s in epoch_spans]
    labels = [s.name for s in epoch_spans] or ["epoch 0"]

    def epoch_of(ts_us: float) -> str:
        if not starts:
            return labels[0]
        idx = bisect.bisect_right(starts, ts_us) - 1
        return labels[max(0, min(idx, len(labels) - 1))]

    leaves: dict[tuple, dict] = {}
    for row in rows:
        key = (epoch_of(row.start_s * 1e6), row.phase, "kernels", row.name)
        acc = leaves.get(key)
        if acc is None:
            acc = leaves[key] = _new_kernel_acc(row)
        _fold_row(acc, row)
    for span in timeline.spans:
        if span.pid != pid or span.tid not in _STREAM_PHASE:
            continue
        key = (epoch_of(span.ts_us), _STREAM_PHASE[span.tid], span.tid,
               span.name)
        acc = leaves.setdefault(key, {"events": 0, "duration_us": 0.0,
                                      "bytes": 0})
        acc["events"] += 1
        acc["duration_us"] += span.dur_us
        nbytes = span.arg("nbytes", span.arg("bytes", 0))
        acc["bytes"] += int(nbytes or 0)

    # cross-epoch aggregation shares the leaf accumulators, so flat sites are
    # classified by the same argmax the tree leaves are
    flat_accs: dict[tuple, dict] = {}
    for (epoch, phase, stream, site), acc in sorted(leaves.items()):
        flat = flat_accs.setdefault((phase, stream, site), {})
        _merge_acc(flat, acc)

    grouped: dict[str, dict[str, dict[str, dict]]] = {}
    for (epoch, phase, stream, site), acc in sorted(leaves.items()):
        grouped.setdefault(epoch, {}).setdefault(phase, {}).setdefault(
            stream, {})[site] = _finalize_site(site, stream, acc, sim)

    epoch_nodes = []
    for epoch in list(dict.fromkeys(labels)) + sorted(
            set(grouped) - set(labels)):
        streams_by_phase = grouped.pop(epoch, None)
        if not streams_by_phase:
            continue
        phase_nodes = []
        for phase, streams in streams_by_phase.items():
            stream_nodes = [_node(stream, "stream", list(sites.values()))
                            for stream, sites in streams.items()]
            phase_nodes.append(_node(phase, "phase", stream_nodes))
        epoch_nodes.append(_node(epoch, "epoch", phase_nodes))
    tree = _node("run", "run", epoch_nodes, sort=False)

    flat_sites = []
    for (phase, stream, site), acc in flat_accs.items():
        entry = _finalize_site(site, stream, acc, sim)
        entry.pop("kind", None)
        entry.pop("name", None)
        entry.update({"phase": phase, "stream": stream, "site": site})
        flat_sites.append(entry)
    flat_sites.sort(key=lambda e: (-e["duration_us"], e["phase"],
                                   e["stream"], e["site"]))
    return tree, flat_sites


def _summaries(flat_sites: list[dict]) -> dict:
    bound = {cls: 0.0 for cls in BOUND_CLASSES}
    phases: dict[str, float] = {}
    streams: dict[str, float] = {}
    for site in flat_sites:
        bound[site["bound_class"]] += site["duration_us"]
        phases[site["phase"]] = phases.get(site["phase"], 0.0) \
            + site["duration_us"]
        streams[site["stream"]] = streams.get(site["stream"], 0.0) \
            + site["duration_us"]
    total = sum(bound.values())
    return {
        "bound_summary": {
            cls: {"duration_us": dur,
                  "share": _r(dur / total if total else 0.0)}
            for cls, dur in bound.items()
        },
        "phase_summary": dict(sorted(phases.items())),
        "stream_summary": dict(sorted(streams.items())),
    }


# -- the report --------------------------------------------------------------
def canonical_insights_json(report: dict) -> str:
    """Canonical bytes of a report, excluding its own digest field."""
    payload = {k: v for k, v in report.items() if k != "insights_digest"}
    return json.dumps(payload, sort_keys=True,
                      separators=(",", ":")) + "\n"


def insights_digest(report: dict) -> str:
    """SHA-256 over the measurements: canonical JSON minus the digest field
    and minus ``manifest.source_digest`` (which changes with every commit
    even when behaviour doesn't — goldens pin behaviour, not code bytes)."""
    payload = {k: v for k, v in report.items() if k != "insights_digest"}
    manifest = dict(payload.get("manifest", {}))
    manifest.pop("source_digest", None)
    payload["manifest"] = manifest
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def insights_report(key: str, scale: str = "test", epochs: int = 2,
                    seed: int = 0, gpus: int = 1,
                    sim: Optional[SimulationConfig] = None) -> dict:
    """Run one workload under the tracer + collector and attribute it."""
    from . import trace

    sim = sim or DEFAULT_SIMULATION
    collector = SiteCollector(sim)
    timeline = trace.trace_point(key, num_gpus=gpus, scale=scale,
                                 epochs=epochs, seed=seed, sim=sim,
                                 launch_listener=collector.on_launch)
    tree, flat_sites = build_tree(timeline, collector.rows, sim=sim, pid=0)
    manifest = build_manifest(key, scale=scale, epochs=epochs, seed=seed,
                              gpus=gpus, sim=sim)
    report = {
        "version": INSIGHTS_VERSION,
        "manifest": manifest.as_dict(),
        "wall_us": timeline.wall_us(),
        "attributed_us": tree["duration_us"],
        "span_count": len(timeline),
        "launches": len(collector.rows),
        **_summaries(flat_sites),
        "sites": flat_sites,
        "tree": tree,
    }
    report["insights_digest"] = insights_digest(report)
    return report


# -- differential diagnosis --------------------------------------------------
def _report_kind(report: dict) -> str:
    if "tree" in report or "insights_digest" in report:
        return "insights"
    if "frontier" in report:
        return "shard"
    workloads = report.get("workloads", {})
    sample_fields = ("prefetch_epochs_per_s", "prefetch_wall_s")
    if any(f in report for f in sample_fields) or any(
            "prefetch_epochs_per_s" in row for row in workloads.values()
            if isinstance(row, dict)):
        return "sample"
    if "workload_speedups" in report or any(
            "warm_epochs_per_s" in row for row in workloads.values()
            if isinstance(row, dict)):
        return "hotpath"
    if "speedup" in report:
        return "hotpath"
    return "unknown"


def _site_table(report: dict) -> dict[tuple, dict]:
    return {(s["phase"], s["stream"], s["site"]): s
            for s in report.get("sites", [])}


def _diff_insights_reports(a: dict, b: dict, top: int) -> dict:
    sites_a, sites_b = _site_table(a), _site_table(b)
    movers = []
    for key in sorted(set(sites_a) | set(sites_b)):
        sa, sb = sites_a.get(key), sites_b.get(key)
        a_us = sa["duration_us"] if sa else 0.0
        b_us = sb["duration_us"] if sb else 0.0
        delta = b_us - a_us
        if delta == 0.0:
            continue
        ref = sb or sa
        movers.append({
            "phase": key[0], "stream": key[1], "site": key[2],
            "a_us": a_us, "b_us": b_us, "delta_us": delta,
            "bound_class": ref.get("bound_class", "transfer_or_stall"),
        })
    total_shift = sum(abs(m["delta_us"]) for m in movers)
    for m in movers:
        m["share"] = _r(abs(m["delta_us"]) / total_shift
                        if total_shift else 0.0)
    movers.sort(key=lambda m: (-abs(m["delta_us"]), m["phase"], m["stream"],
                               m["site"]))
    streams_a = a.get("stream_summary", {})
    streams_b = b.get("stream_summary", {})
    stream_deltas = {
        s: streams_b.get(s, 0.0) - streams_a.get(s, 0.0)
        for s in sorted(set(streams_a) | set(streams_b))
    }
    return {
        "kind": "insights",
        "workload_a": a.get("manifest", {}).get("workload"),
        "workload_b": b.get("manifest", {}).get("workload"),
        "a_us": a.get("attributed_us", 0.0),
        "b_us": b.get("attributed_us", 0.0),
        "delta_us": b.get("attributed_us", 0.0) - a.get("attributed_us", 0.0),
        "stream_deltas": stream_deltas,
        "movers": movers[:top],
    }


def _speedup_table(report: dict) -> dict[str, float]:
    table = report.get("workload_speedups")
    if isinstance(table, dict) and table:
        return {k: float(v) for k, v in table.items()}
    return {k: float(row["speedup"])
            for k, row in report.get("workloads", {}).items()
            if isinstance(row, dict) and "speedup" in row}


def _diff_hotpath(a: dict, b: dict, top: int) -> dict:
    speed_a, speed_b = _speedup_table(a), _speedup_table(b)
    movers = []
    for key in sorted(set(speed_a) & set(speed_b)):
        delta = speed_b[key] - speed_a[key]
        if delta == 0.0:
            continue
        movers.append({
            "workload": key, "stream": "kernels",
            "a_speedup": speed_a[key], "b_speedup": speed_b[key],
            "delta": delta,
        })
    movers.sort(key=lambda m: (m["delta"], m["workload"]))
    return {
        "kind": "hotpath",
        "a_speedup": float(a.get("speedup", 0.0)),
        "b_speedup": float(b.get("speedup", 0.0)),
        "movers": movers[:top],
    }


def _diff_sample(a: dict, b: dict, top: int) -> dict:
    rows_a = a.get("workloads", {})
    rows_b = b.get("workloads", {})
    movers = []
    for key in sorted(set(rows_a) & set(rows_b)):
        ra, rb = rows_a[key], rows_b[key]
        if not (isinstance(ra, dict) and isinstance(rb, dict)):
            continue
        sa = float(ra.get("speedup", 0.0))
        sb = float(rb.get("speedup", 0.0))
        stall_a = float(ra.get("prefetch_stall_s", 0.0))
        stall_b = float(rb.get("prefetch_stall_s", 0.0))
        delta = sb - sa
        stall_delta = stall_b - stall_a
        if delta == 0.0 and stall_delta == 0.0:
            continue
        movers.append({
            "workload": key,
            "stream": "loader" if stall_delta > 0 else "kernels",
            "a_speedup": sa, "b_speedup": sb, "delta": delta,
            "a_stall_s": stall_a, "b_stall_s": stall_b,
            "stall_delta_s": stall_delta,
        })
    movers.sort(key=lambda m: (m["delta"], -m["stall_delta_s"],
                               m["workload"]))
    return {
        "kind": "sample",
        "a_speedup": float(a.get("speedup", 0.0)),
        "b_speedup": float(b.get("speedup", 0.0)),
        "movers": movers[:top],
    }


def _shard_stream(label: str, config: dict) -> str:
    if config.get("offload"):
        return "h2d"
    if int(config.get("parts", 1)) > 1:
        return "halo"
    return "kernels"


def _diff_shard(a: dict, b: dict, top: int) -> dict:
    front_a = a.get("frontier", {})
    front_b = b.get("frontier", {})
    configs = b.get("configs", a.get("configs", {}))
    movers = []
    for label in sorted(set(front_a) | set(front_b)):
        fa = int(front_a.get(label, 0))
        fb = int(front_b.get(label, 0))
        if fa == fb:
            continue
        cfg = configs.get(label, {})
        if not cfg:
            cfg = {"parts": 1 if label == "gpus1" else 4,
                   "offload": label == "offload"}
        movers.append({
            "config": label,
            "workload": label,
            "stream": _shard_stream(label, cfg),
            "a_frontier": fa, "b_frontier": fb, "delta": fb - fa,
        })
    movers.sort(key=lambda m: (m["delta"], m["config"]))
    return {"kind": "shard", "movers": movers[:top]}


def diff_insights(a: dict, b: dict, top: int = 8) -> dict:
    """Attribute the delta between two reports to the top shifted units.

    ``a`` is the reference (committed baseline or "before"), ``b`` the
    measurement.  Accepts full insights reports or any of the three bench
    payloads/baselines (``BENCH_hotpath``/``BENCH_sample``/``BENCH_shard``
    shapes); sparse baselines that carry only an aggregate produce an empty
    ``movers`` list rather than an error.
    """
    kind_a, kind_b = _report_kind(a), _report_kind(b)
    kind = kind_b if kind_a in ("unknown", kind_b) else kind_a
    if kind == "insights" and kind_a == kind_b:
        return _diff_insights_reports(a, b, top)
    if kind == "shard":
        return _diff_shard(a, b, top)
    if kind == "sample":
        return _diff_sample(a, b, top)
    if kind == "hotpath":
        return _diff_hotpath(a, b, top)
    return {"kind": "unknown", "movers": []}


def render_diff_lines(diff: dict, top: int = 5) -> list[str]:
    """Human-readable attribution lines for gate failures and the CLI."""
    movers = diff.get("movers", [])[:top]
    if not movers:
        return []
    kind = diff.get("kind")
    lines = [f"top movers ({kind}, measured vs reference):"]
    for m in movers:
        if kind == "insights":
            lines.append(
                f"  {m['phase']}/{m['stream']}/{m['site']}: "
                f"{m['a_us']:.1f}us -> {m['b_us']:.1f}us "
                f"({m['delta_us']:+.1f}us, {m['share'] * 100:.0f}% of shift, "
                f"{m['bound_class']})"
            )
        elif kind == "hotpath":
            lines.append(
                f"  {m['workload']}: warm/cold speedup "
                f"{m['a_speedup']:.2f}x -> {m['b_speedup']:.2f}x "
                f"({m['delta']:+.2f}x, stream {m['stream']})"
            )
        elif kind == "sample":
            lines.append(
                f"  {m['workload']}: prefetch speedup "
                f"{m['a_speedup']:.2f}x -> {m['b_speedup']:.2f}x "
                f"({m['delta']:+.2f}x, stall "
                f"{m['stall_delta_s'] * 1e3:+.2f}ms, stream {m['stream']})"
            )
        elif kind == "shard":
            lines.append(
                f"  {m['config']}: capacity frontier "
                f"{m['a_frontier']} -> {m['b_frontier']} nodes "
                f"({m['delta']:+d}, stream {m['stream']})"
            )
    return lines
