"""Host-to-device transfer sparsity instrumentation.

The paper modified PyTorch's H2D copy path to count zero values in every
CPU->GPU transfer during training (Figures 7 and 8).  Our simulated device
measures the zero fraction of the real numpy buffers; this tracker
aggregates per-transfer records into the average (Figure 7) and the
transfer-indexed timeline (Figure 8).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..gpu import TransferRecord
from ..gpu.device import SimulatedGPU


@dataclass
class TransferSample:
    index: int
    label: str
    nbytes: int
    num_values: int
    sparsity: float
    #: bytes moved over PCIe (smaller than nbytes under compression)
    wire_bytes: int = 0


class SparsityTracker:
    """Collects every H2D transfer's measured value sparsity."""

    def __init__(self) -> None:
        self.samples: list[TransferSample] = []
        self._device: Optional[SimulatedGPU] = None

    def attach(self, device: SimulatedGPU) -> "SparsityTracker":
        device.add_transfer_listener(self.on_transfer)
        self._device = device
        return self

    def detach(self) -> None:
        if self._device is not None:
            self._device.remove_transfer_listener(self.on_transfer)
            self._device = None

    def on_transfer(self, record: TransferRecord) -> None:
        if record.direction != "h2d":
            return
        self.samples.append(
            TransferSample(
                index=len(self.samples),
                label=record.label,
                nbytes=record.nbytes,
                num_values=record.num_values,
                sparsity=record.sparsity,
                wire_bytes=record.wire_bytes,
            )
        )

    # -- aggregation ---------------------------------------------------------
    def average_sparsity(self) -> float:
        """Figure 7: zeros / values over all H2D traffic (value-weighted)."""
        values = sum(s.num_values for s in self.samples)
        if values == 0:
            return 0.0
        zeros = sum(s.sparsity * s.num_values for s in self.samples)
        return zeros / values

    def timeline(self) -> np.ndarray:
        """Figure 8: per-transfer sparsity in transfer order."""
        return np.array([s.sparsity for s in self.samples], dtype=np.float64)

    def by_label(self) -> dict[str, float]:
        acc: dict[str, list[TransferSample]] = {}
        for s in self.samples:
            acc.setdefault(s.label, []).append(s)
        return {
            label: sum(x.sparsity * x.num_values for x in group)
            / max(1, sum(x.num_values for x in group))
            for label, group in acc.items()
        }

    def total_bytes(self) -> int:
        return sum(s.nbytes for s in self.samples)

    def total_wire_bytes(self) -> int:
        """Bytes that crossed PCIe (reflects any transfer compression)."""
        return sum(s.wire_bytes for s in self.samples)

    def compression_ratio(self) -> float:
        wire = self.total_wire_bytes()
        if wire <= 0:
            return 1.0
        return self.total_bytes() / wire

    def periodicity_score(self) -> float:
        """Autocorrelation peak of the sparsity timeline (Figure 8's
        "clear, predictable pattern"): ~1 for periodic, ~0 for noise."""
        series = self.timeline()
        if series.size < 8 or series.std() < 1e-9:
            return 0.0
        x = series - series.mean()
        ac = np.correlate(x, x, mode="full")[x.size - 1 :]
        ac /= x.var() * np.arange(x.size, 0, -1)
        return float(np.nanmax(ac[1 : max(2, x.size // 2)]))
