"""Profiling toolchain: nvprof-style kernel metrics, NVBit-style divergence
instrumentation, transfer-sparsity tracking, kernel-timeline tracing, a
process-wide metrics registry, and report rendering."""

from . import metrics, trace
from .metrics import MetricsRegistry
from .nvbit import DivergenceInstrument, DivergenceRecord
from .nvprof import METRIC_SAMPLE_LIMIT, KernelProfiler, KernelStats
from .report import (
    format_memory_table,
    format_scaling,
    format_series,
    format_table,
)
from .sparsity import SparsityTracker, TransferSample
from .trace import Span, Timeline, Tracer

__all__ = [
    "DivergenceInstrument",
    "DivergenceRecord",
    "KernelProfiler",
    "KernelStats",
    "METRIC_SAMPLE_LIMIT",
    "MetricsRegistry",
    "Span",
    "SparsityTracker",
    "Timeline",
    "Tracer",
    "TransferSample",
    "format_memory_table",
    "format_scaling",
    "format_series",
    "format_table",
    "metrics",
    "trace",
]
