"""Profiling toolchain: nvprof-style kernel metrics, NVBit-style divergence
instrumentation, transfer-sparsity tracking, and report rendering."""

from .nvbit import DivergenceInstrument, DivergenceRecord
from .nvprof import METRIC_SAMPLE_LIMIT, KernelProfiler, KernelStats
from .report import format_scaling, format_series, format_table
from .sparsity import SparsityTracker, TransferSample

__all__ = [
    "DivergenceInstrument",
    "DivergenceRecord",
    "KernelProfiler",
    "KernelStats",
    "METRIC_SAMPLE_LIMIT",
    "SparsityTracker",
    "TransferSample",
    "format_scaling",
    "format_series",
    "format_table",
]
