"""Profiling toolchain: nvprof-style kernel metrics, NVBit-style divergence
instrumentation, transfer-sparsity tracking, kernel-timeline tracing, and
report rendering."""

from . import trace
from .nvbit import DivergenceInstrument, DivergenceRecord
from .nvprof import METRIC_SAMPLE_LIMIT, KernelProfiler, KernelStats
from .report import format_scaling, format_series, format_table
from .sparsity import SparsityTracker, TransferSample
from .trace import Span, Timeline, Tracer

__all__ = [
    "DivergenceInstrument",
    "DivergenceRecord",
    "KernelProfiler",
    "KernelStats",
    "METRIC_SAMPLE_LIMIT",
    "Span",
    "SparsityTracker",
    "Timeline",
    "Tracer",
    "TransferSample",
    "format_scaling",
    "format_series",
    "format_table",
    "trace",
]
