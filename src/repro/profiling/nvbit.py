"""Memory-divergence instrumentation, modeled on NVBit.

nvprof cannot report warp-level memory divergence, so the paper uses NVBit
binary instrumentation to count, per load, how many 128-byte lines a warp
touches.  In the simulator, irregular kernels carry their real index
streams and the device computes per-launch divergence; this pass aggregates
load-weighted divergence per kernel and per operation category.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Optional

from ..gpu import KernelLaunch
from ..gpu.device import SimulatedGPU


@dataclass
class DivergenceRecord:
    kernel: str
    op_category: str
    warp_loads: float
    divergent_fraction: float
    lines_per_warp: float


class DivergenceInstrument:
    """Aggregates divergent-load statistics weighted by warp-load count."""

    def __init__(self) -> None:
        self._loads: dict[str, float] = defaultdict(float)
        self._divergent: dict[str, float] = defaultdict(float)
        self._lines: dict[str, float] = defaultdict(float)
        self.total_loads = 0.0
        self.total_divergent = 0.0
        self._device: Optional[SimulatedGPU] = None

    def attach(self, device: SimulatedGPU) -> "DivergenceInstrument":
        device.add_launch_listener(self.on_launch)
        self._device = device
        return self

    def detach(self) -> None:
        if self._device is not None:
            self._device.remove_launch_listener(self.on_launch)
            self._device = None

    def on_launch(self, launch: KernelLaunch) -> None:
        desc = launch.descriptor
        warp_loads = desc.ldst_instrs / 32.0
        category = desc.op_class.figure_category()
        self._loads[category] += warp_loads
        self._divergent[category] += warp_loads * launch.memory.divergent_load_fraction
        self._lines[category] += warp_loads * launch.memory.lines_per_warp
        self.total_loads += warp_loads
        self.total_divergent += warp_loads * launch.memory.divergent_load_fraction

    def divergent_load_fraction(self) -> float:
        """Suite metric: fraction of warp loads touching > 1 line."""
        if self.total_loads <= 0:
            return 0.0
        return self.total_divergent / self.total_loads

    def by_category(self) -> dict[str, float]:
        return {
            cat: self._divergent[cat] / self._loads[cat]
            for cat in self._loads
            if self._loads[cat] > 0
        }

    def lines_per_warp(self) -> dict[str, float]:
        return {
            cat: self._lines[cat] / self._loads[cat]
            for cat in self._loads
            if self._loads[cat] > 0
        }
