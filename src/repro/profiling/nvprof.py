"""Kernel-level metric collection, modeled on nvprof.

The paper's methodology: hardware counters are collected per kernel for at
most *fifty invocations of each kernel or one epoch, whichever is shorter*;
timeline quantities (durations, launch counts) cover every launch.  The
:class:`KernelProfiler` reproduces both collection modes.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..gpu import FIGURE_CATEGORIES, KernelLaunch, OpClass
from ..gpu.device import SimulatedGPU

METRIC_SAMPLE_LIMIT = 50


@dataclass
class KernelStats:
    """Aggregated per-kernel-name statistics."""

    name: str
    op_class: OpClass
    launches: int = 0
    total_time_s: float = 0.0
    # metric-sampled accumulators (first METRIC_SAMPLE_LIMIT launches),
    # weighted by kernel duration
    sampled_launches: int = 0
    sampled_time_s: float = 0.0
    w_ipc: float = 0.0
    w_occupancy: float = 0.0
    w_l1_hit: float = 0.0
    w_l2_hit: float = 0.0
    w_divergent: float = 0.0
    w_stalls: dict[str, float] = field(default_factory=lambda: defaultdict(float))
    flops: float = 0.0
    iops: float = 0.0
    instructions: float = 0.0
    fp32_instrs: float = 0.0
    int32_instrs: float = 0.0
    dram_bytes: float = 0.0

    def metric(self, name: str) -> float:
        if self.sampled_time_s <= 0:
            return 0.0
        if name == "ipc":
            return self.w_ipc / self.sampled_time_s
        if name == "occupancy":
            return self.w_occupancy / self.sampled_time_s
        if name == "l1_hit":
            return self.w_l1_hit / self.sampled_time_s
        if name == "l2_hit":
            return self.w_l2_hit / self.sampled_time_s
        if name == "divergent":
            return self.w_divergent / self.sampled_time_s
        raise KeyError(name)

    def stall_shares(self) -> dict[str, float]:
        if self.sampled_time_s <= 0:
            return {}
        return {k: v / self.sampled_time_s for k, v in self.w_stalls.items()}

    @property
    def gflops(self) -> float:
        return self.flops / self.total_time_s / 1e9 if self.total_time_s else 0.0

    @property
    def giops(self) -> float:
        return self.iops / self.total_time_s / 1e9 if self.total_time_s else 0.0


class KernelProfiler:
    """Subscribes to a device and aggregates every kernel launch."""

    def __init__(self, sample_limit: int = METRIC_SAMPLE_LIMIT) -> None:
        self.sample_limit = sample_limit
        self.kernels: dict[str, KernelStats] = {}
        self.phase_time: dict[str, float] = defaultdict(float)
        self.total_time_s = 0.0
        self.total_launches = 0
        self._device: Optional[SimulatedGPU] = None

    # -- attach/detach ----------------------------------------------------
    def attach(self, device: SimulatedGPU) -> "KernelProfiler":
        device.add_launch_listener(self.on_launch)
        self._device = device
        return self

    def detach(self) -> None:
        if self._device is not None:
            self._device.remove_launch_listener(self.on_launch)
            self._device = None

    def __enter__(self) -> "KernelProfiler":
        return self

    def __exit__(self, *exc) -> None:
        self.detach()

    # -- collection ----------------------------------------------------------
    def on_launch(self, launch: KernelLaunch) -> None:
        desc = launch.descriptor
        stats = self.kernels.get(desc.name)
        if stats is None:
            stats = KernelStats(name=desc.name, op_class=desc.op_class)
            self.kernels[desc.name] = stats

        stats.launches += 1
        stats.total_time_s += launch.duration_s
        stats.flops += desc.fp32_flops
        stats.iops += desc.int32_iops
        stats.instructions += launch.instructions
        stats.fp32_instrs += launch.fp32_instrs
        stats.int32_instrs += launch.int32_instrs
        stats.dram_bytes += launch.memory.dram_bytes
        self.total_time_s += launch.duration_s
        self.total_launches += 1
        self.phase_time[desc.phase] += launch.duration_s

        if stats.sampled_launches < self.sample_limit:
            w = launch.duration_s
            stats.sampled_launches += 1
            stats.sampled_time_s += w
            stats.w_ipc += launch.ipc * w
            stats.w_occupancy += launch.occupancy * w
            stats.w_l1_hit += launch.memory.l1_hit_rate * w
            stats.w_l2_hit += launch.memory.l2_hit_rate * w
            stats.w_divergent += launch.memory.divergent_load_fraction * w
            for key, value in launch.stalls.as_dict().items():
                stats.w_stalls[key] += value * w

    # -- aggregation (the figures' inputs) ---------------------------------------
    def op_time_breakdown(self) -> dict[str, float]:
        """Figure 2: fraction of kernel time per operation category."""
        times: dict[str, float] = defaultdict(float)
        for stats in self.kernels.values():
            times[stats.op_class.figure_category()] += stats.total_time_s
        total = sum(times.values())
        if total <= 0:
            return {cat: 0.0 for cat in FIGURE_CATEGORIES}
        return {cat: times.get(cat, 0.0) / total for cat in FIGURE_CATEGORIES}

    def instruction_mix(self) -> dict[str, float]:
        """Figure 3: share of executed instructions by type."""
        fp32 = sum(s.fp32_instrs for s in self.kernels.values())
        int32 = sum(s.int32_instrs for s in self.kernels.values())
        total = sum(s.instructions for s in self.kernels.values())
        other = max(total - fp32 - int32, 0.0)
        if total <= 0:
            return {"fp32": 0.0, "int32": 0.0, "other": 0.0}
        return {"fp32": fp32 / total, "int32": int32 / total,
                "other": other / total}

    def throughput(self) -> dict[str, float]:
        """Figure 4: achieved GFLOPS / GIOPS and time-weighted IPC."""
        flops = sum(s.flops for s in self.kernels.values())
        iops = sum(s.iops for s in self.kernels.values())
        ipc_weighted = sum(
            s.w_ipc / s.sampled_time_s * s.total_time_s
            for s in self.kernels.values()
            if s.sampled_time_s > 0
        )
        t = self.total_time_s
        return {
            "gflops": flops / t / 1e9 if t else 0.0,
            "giops": iops / t / 1e9 if t else 0.0,
            "ipc": ipc_weighted / t if t else 0.0,
        }

    def stall_breakdown(self) -> dict[str, float]:
        """Figure 5: time-weighted issue-stall attribution."""
        acc: dict[str, float] = defaultdict(float)
        total = 0.0
        for stats in self.kernels.values():
            if stats.sampled_time_s <= 0:
                continue
            shares = stats.stall_shares()
            for key, share in shares.items():
                acc[key] += share * stats.total_time_s
            total += stats.total_time_s
        return {k: v / total for k, v in acc.items()} if total else dict(acc)

    def cache_stats(self) -> dict[str, float]:
        """Figure 6: time-weighted L1/L2 hit rates and divergence."""
        l1 = l2 = div = total = 0.0
        for stats in self.kernels.values():
            if stats.sampled_time_s <= 0:
                continue
            weight = stats.total_time_s
            l1 += stats.metric("l1_hit") * weight
            l2 += stats.metric("l2_hit") * weight
            div += stats.metric("divergent") * weight
            total += weight
        if total <= 0:
            return {"l1_hit": 0.0, "l2_hit": 0.0, "divergent_loads": 0.0}
        return {"l1_hit": l1 / total, "l2_hit": l2 / total,
                "divergent_loads": div / total}

    def per_op_class(self, metric: str) -> dict[str, float]:
        """Per-op-category metric averages (paper's per-op cache/stall view)."""
        acc: dict[str, float] = defaultdict(float)
        weight: dict[str, float] = defaultdict(float)
        for stats in self.kernels.values():
            if stats.sampled_time_s <= 0:
                continue
            cat = stats.op_class.figure_category()
            if metric.startswith("stall_"):
                value = stats.stall_shares().get(metric[len("stall_"):], 0.0)
            else:
                value = stats.metric(metric)
            acc[cat] += value * stats.total_time_s
            weight[cat] += stats.total_time_s
        return {cat: acc[cat] / weight[cat] for cat in acc if weight[cat] > 0}

    def phase_breakdown(self) -> dict[str, float]:
        total = sum(self.phase_time.values())
        if total <= 0:
            return dict(self.phase_time)
        return {k: v / total for k, v in self.phase_time.items()}

    def top_kernels(self, n: int = 10) -> list[KernelStats]:
        return sorted(self.kernels.values(), key=lambda s: -s.total_time_s)[:n]
