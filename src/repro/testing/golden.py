"""Golden kernel-stream fingerprints for every registry workload.

The op stream a workload emits is *emergent* from its forward/backward math,
so a refactor that silently changes the math changes the stream.  This module
snapshots a deterministic fingerprint of each workload's one-epoch kernel
stream — launch counts per op class and phase, closed-form instruction/byte
totals, transfer totals, training losses, and a SHA-256 digest of the full
ordered stream — as JSON under ``tests/golden/``.

Regenerate after an *intentional* stream change with::

    PYTHONPATH=src python -m repro golden --update

Everything hashed is derived from tensor shapes, graph structure and seeded
RNG draws (never from float compute results), so fingerprints are bit-stable
across machines; training losses ARE compute results and are therefore
compared with a tolerance instead of entering the digest.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Optional

import numpy as np

from ..core import registry
from ..gpu import SimulatedGPU
from ..gpu.kernel import KernelLaunch, TransferRecord
from ..tensor import manual_seed
from ..train.trainer import Trainer

FINGERPRINT_VERSION = 1

#: repo-root tests/golden/ (this file lives at src/repro/testing/golden.py)
GOLDEN_DIR = Path(__file__).resolve().parents[3] / "tests" / "golden"


def golden_dir() -> Path:
    """Snapshot directory (override with ``REPRO_GOLDEN_DIR``)."""
    override = os.environ.get("REPRO_GOLDEN_DIR")
    return Path(override) if override else GOLDEN_DIR


class StreamRecorder:
    """Device listener that keeps the full ordered launch/transfer stream."""

    def __init__(self) -> None:
        self.events: list[tuple] = []
        self._device: Optional[SimulatedGPU] = None

    def attach(self, device: SimulatedGPU) -> "StreamRecorder":
        device.add_launch_listener(self.on_launch)
        device.add_transfer_listener(self.on_transfer)
        self._device = device
        return self

    def detach(self) -> None:
        if self._device is not None:
            self._device.remove_launch_listener(self.on_launch)
            self._device.remove_transfer_listener(self.on_transfer)
            self._device = None

    def on_launch(self, launch: KernelLaunch) -> None:
        d = launch.descriptor
        self.events.append((
            "K", d.name, d.op_class.value, d.phase, d.threads, d.block_size,
            d.fp32_flops, d.int32_iops, d.ldst_instrs, d.control_instrs,
            d.bytes_read, d.bytes_written,
        ))

    def on_transfer(self, record: TransferRecord) -> None:
        # num_zeros is intentionally absent: d2h payloads are compute results,
        # and a borderline value flipping to exact zero must not change the
        # structural digest.
        self.events.append((
            "T", record.direction, record.label, record.nbytes,
            record.num_values, record.wire_bytes,
        ))

    def digest(self) -> str:
        h = hashlib.sha256()
        for event in self.events:
            h.update(repr(event).encode())
            h.update(b"\n")
        return h.hexdigest()


def fingerprint_workload(
    key: str,
    scale: str = "test",
    epochs: int = 1,
    seed: int = 0,
) -> dict:
    """Train ``epochs`` of a workload and fingerprint its kernel stream.

    Reseeds the framework RNG before building so parameter initialization —
    and hence any data-dependent control flow — is reproducible across
    processes.
    """
    spec = registry.get(key)
    manual_seed(seed)
    device = SimulatedGPU()
    workload = spec.build(device=device, scale=scale)
    device.reset()
    recorder = StreamRecorder().attach(device)
    results = Trainer(workload=workload, device=device).run(epochs=epochs,
                                                            seed=seed)
    recorder.detach()

    launches = [e for e in recorder.events if e[0] == "K"]
    transfers = [e for e in recorder.events if e[0] == "T"]
    op_hist: dict[str, int] = {}
    phase_hist: dict[str, int] = {}
    totals = {"fp32_flops": 0.0, "int32_iops": 0.0, "ldst_instrs": 0.0,
              "control_instrs": 0.0, "bytes_read": 0.0, "bytes_written": 0.0}
    for (_, _, op_class, phase, _, _, flops, iops, ldst, control,
         br, bw) in launches:
        op_hist[op_class] = op_hist.get(op_class, 0) + 1
        phase_hist[phase] = phase_hist.get(phase, 0) + 1
        totals["fp32_flops"] += flops
        totals["int32_iops"] += iops
        totals["ldst_instrs"] += ldst
        totals["control_instrs"] += control
        totals["bytes_read"] += br
        totals["bytes_written"] += bw

    transfer_totals = {"h2d_bytes": 0, "d2h_bytes": 0, "wire_bytes": 0}
    for _, direction, _, nbytes, _, wire in transfers:
        transfer_totals[f"{direction}_bytes"] += nbytes
        transfer_totals["wire_bytes"] += wire

    return {
        "version": FINGERPRINT_VERSION,
        "workload": key,
        "scale": scale,
        "epochs": epochs,
        "seed": seed,
        "launch_count": len(launches),
        "transfer_count": len(transfers),
        "op_class_launches": dict(sorted(op_hist.items())),
        "phase_launches": dict(sorted(phase_hist.items())),
        "totals": totals,
        "transfer_totals": transfer_totals,
        "losses": [float(r.metrics.get("loss", 0.0)) for r in results],
        "stream_digest": recorder.digest(),
    }


def golden_path(key: str) -> Path:
    return golden_dir() / f"{key}.json"


def load_golden(key: str) -> dict:
    path = golden_path(key)
    if not path.exists():
        raise FileNotFoundError(
            f"no golden snapshot for {key!r} at {path}; generate it with "
            f"`python -m repro golden --update`"
        )
    return json.loads(path.read_text())


def save_golden(fingerprint: dict) -> Path:
    path = golden_path(fingerprint["workload"])
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(fingerprint, indent=2, sort_keys=True) + "\n")
    return path


def compare_fingerprints(expected: dict, actual: dict) -> list[str]:
    """Human-readable list of differences (empty when streams match).

    Structural quantities (counts, histograms, digest) compare exactly;
    instruction/byte totals allow float-accumulation noise; losses are
    compute results and get a loose fp32 tolerance.
    """
    diffs: list[str] = []

    def exact(field: str) -> None:
        if expected.get(field) != actual.get(field):
            diffs.append(f"{field}: expected {expected.get(field)!r}, "
                         f"got {actual.get(field)!r}")

    for field in ("version", "workload", "scale", "epochs", "seed",
                  "launch_count", "transfer_count"):
        exact(field)

    for field in ("op_class_launches", "phase_launches"):
        exp, act = expected.get(field, {}), actual.get(field, {})
        for name in sorted(set(exp) | set(act)):
            if exp.get(name, 0) != act.get(name, 0):
                diffs.append(f"{field}[{name}]: expected {exp.get(name, 0)}, "
                             f"got {act.get(name, 0)}")

    for field, rtol in (("totals", 1e-9), ("transfer_totals", 1e-9)):
        exp, act = expected.get(field, {}), actual.get(field, {})
        for name in sorted(set(exp) | set(act)):
            e, a = exp.get(name, 0.0), act.get(name, 0.0)
            if not np.isclose(e, a, rtol=rtol, atol=0.0):
                diffs.append(f"{field}[{name}]: expected {e!r}, got {a!r}")

    exp_losses = expected.get("losses", [])
    act_losses = actual.get("losses", [])
    if len(exp_losses) != len(act_losses):
        diffs.append(f"losses: expected {len(exp_losses)} epochs, "
                     f"got {len(act_losses)}")
    else:
        for i, (e, a) in enumerate(zip(exp_losses, act_losses)):
            if not np.isclose(e, a, rtol=1e-4, atol=1e-6):
                diffs.append(f"losses[{i}]: expected {e!r}, got {a!r}")

    if expected.get("stream_digest") != actual.get("stream_digest"):
        diffs.append(
            f"stream_digest: expected {expected.get('stream_digest')}, "
            f"got {actual.get('stream_digest')} — the ordered kernel/transfer "
            f"stream changed even though the summary stats above "
            f"{'also differ' if diffs else 'still match'}"
        )
    return diffs


def fingerprint_suite(keys: Optional[list[str]] = None, scale: str = "test",
                      epochs: int = 1, seed: int = 0,
                      jobs: Optional[int] = None, cache=None) -> dict[str, dict]:
    """Fingerprint many workloads through the suite execution engine.

    Each fingerprint hashes only its own workload's ordered stream, so
    digests are order-independent across workloads and may be generated on
    pool workers (or replayed from the profile cache) with byte-identical
    results — ``tests/test_executor.py`` asserts exactly that.
    """
    from ..core import executor

    return executor.fingerprint_suite(keys, scale=scale, epochs=epochs,
                                      seed=seed, jobs=jobs, cache=cache)


def verify_golden(key: str, scale: str = "test", epochs: int = 1,
                  seed: int = 0) -> list[str]:
    """Diff a fresh fingerprint against the committed snapshot."""
    expected = load_golden(key)
    actual = fingerprint_workload(
        key,
        scale=expected.get("scale", scale),
        epochs=expected.get("epochs", epochs),
        seed=expected.get("seed", seed),
    )
    return compare_fingerprints(expected, actual)


def verify_goldens(keys: Optional[list[str]] = None,
                   jobs: Optional[int] = None,
                   cache=None) -> dict[str, list[str]]:
    """Diff fresh fingerprints for ``keys`` against committed snapshots.

    Fingerprints are computed in parallel (each under its snapshot's own
    recorded scale/epochs/seed); a missing snapshot surfaces as a
    one-line diff instead of raising, so one absent file doesn't abort
    the remaining workloads.
    """
    from ..core import executor

    keys = list(keys or registry.WORKLOAD_KEYS)
    expected: dict[str, dict] = {}
    diffs: dict[str, list[str]] = {}
    for key in keys:
        try:
            expected[key] = load_golden(key)
        except FileNotFoundError as exc:
            diffs[key] = [f"missing snapshot: {exc}"]

    present = [k for k in keys if k in expected]
    by_params: dict[tuple, list[str]] = {}
    for key in present:
        exp = expected[key]
        params = (exp.get("scale", "test"), exp.get("epochs", 1),
                  exp.get("seed", 0))
        by_params.setdefault(params, []).append(key)
    actual: dict[str, dict] = {}
    for (scale, epochs, seed), group in by_params.items():
        actual.update(executor.fingerprint_suite(
            group, scale=scale, epochs=epochs, seed=seed, jobs=jobs,
            cache=cache,
        ))
    for key in present:
        diffs[key] = compare_fingerprints(expected[key], actual[key])
    return {key: diffs[key] for key in keys}


def update_goldens(keys: Optional[list[str]] = None, scale: str = "test",
                   epochs: int = 1, seed: int = 0,
                   jobs: Optional[int] = None, cache=None) -> list[Path]:
    """Regenerate snapshots for ``keys`` (default: the whole registry)."""
    keys = list(keys or registry.WORKLOAD_KEYS)
    fingerprints = fingerprint_suite(keys, scale=scale, epochs=epochs,
                                     seed=seed, jobs=jobs, cache=cache)
    return [save_golden(fingerprints[key]) for key in keys]


# -- capture/replay differential fingerprints ---------------------------------
# These extend the stream-digest contract to the *replay fast path*
# (repro.gpu.graph_capture): a capture-replay run must be byte-identical to a
# steady-dispatch run — same ordered stream, same final clocks, same
# DeviceStats.  tests/test_graph_capture.py fans these out through the
# execution engine across --jobs counts and analysis-cache settings.

def capture_fingerprint(
    key: str,
    scale: str = "test",
    epochs: int = 5,
    seed: int = 0,
    mode: str = "capture",
    analysis_cache_enabled: Optional[bool] = None,
) -> dict:
    """Fingerprint a steady-state run, dispatched or captured-and-replayed.

    ``mode="steady"`` restores the steady-state snapshot and dispatches every
    epoch; ``mode="capture"`` runs the full warmup/capture/validate/replay
    state machine.  Beyond :func:`fingerprint_workload`'s stream digest, the
    payload pins the final device clocks and the complete ``DeviceStats`` —
    the quantities replay recomputes rather than records.  The process-global
    launch-analysis cache is cleared first (and forced on/off when
    ``analysis_cache_enabled`` is not ``None``) so hit/miss telemetry is a
    function of this run alone, regardless of what the hosting process or
    pool worker executed before.
    """
    import contextlib
    import dataclasses

    from ..gpu import analysis_cache

    if mode not in ("steady", "capture"):
        raise ValueError(f"mode must be 'steady' or 'capture', not {mode!r}")
    cache_ctx = (
        contextlib.nullcontext()
        if analysis_cache_enabled is None
        else analysis_cache.override(analysis_cache_enabled)
    )
    with cache_ctx:
        analysis_cache.clear()
        spec = registry.get(key)
        manual_seed(seed)
        device = SimulatedGPU()
        workload = spec.build(device=device, scale=scale)
        device.reset()
        recorder = StreamRecorder().attach(device)
        trainer = Trainer(
            workload=workload,
            device=device,
            steady=mode == "steady",
            capture_replay=mode == "capture",
        )
        results = trainer.run(epochs=epochs, seed=seed)
        recorder.detach()
        analysis_cache.clear()

    controller = trainer._controller
    return {
        "version": FINGERPRINT_VERSION,
        "workload": key,
        "scale": scale,
        "epochs": epochs,
        "seed": seed,
        "mode": mode,
        "analysis_cache": analysis_cache_enabled,
        "launch_count": sum(1 for e in recorder.events if e[0] == "K"),
        "transfer_count": sum(1 for e in recorder.events if e[0] == "T"),
        "stream_digest": recorder.digest(),
        "clock_s": device.clock_s,
        "host_clock_s": device.host_clock_s,
        "device_stats": dataclasses.asdict(device.stats),
        "losses": [float(r.metrics.get("loss", 0.0)) for r in results],
        "controller": controller.describe(),
    }


# -- golden fused streams -----------------------------------------------------
# Fused plans intentionally diverge from dispatch (adjacent elementwise
# launches merge into synthetic kernels), so they get their own snapshot
# family instead of the differential contract: fused_<KEY>.json pins the
# fused event stream, the fusion census, and the work-conservation totals.
# Default goldens never see fusion — ``python -m repro golden`` output is
# byte-for-byte unchanged by this feature.

def fused_fingerprint(
    key: str,
    scale: str = "test",
    epochs: int = 5,
    seed: int = 0,
) -> dict:
    """Capture, fuse, and replay one workload; fingerprint the fused plan.

    ``epochs`` must cover warmup + capture + validate + at least one replayed
    epoch (>= 4).  Work conservation (summed instruction/byte counts equal
    before and after fusion) is asserted here, at generation time, on top of
    the property-test coverage.
    """
    import hashlib as _hashlib

    from ..gpu import analysis_cache

    if epochs < 4:
        raise ValueError("fused fingerprints need epochs >= 4 "
                         "(warmup, capture, validate, replay)")
    analysis_cache.clear()
    spec = registry.get(key)
    manual_seed(seed)
    device = SimulatedGPU()
    workload = spec.build(device=device, scale=scale)
    device.reset()
    trainer = Trainer(workload=workload, device=device, fuse=True)
    results = trainer.run(epochs=epochs, seed=seed)
    analysis_cache.clear()

    controller = trainer._controller
    if controller.state != "replay":
        raise RuntimeError(
            f"{key}: capture fell back to dispatch: "
            f"{controller.fallback_reason}"
        )
    plan, fused = controller.plan, controller.fused_plan

    h = _hashlib.sha256()
    fused_names: dict[str, int] = {}
    for event in fused.events:
        if event[0] == "K":
            d = event[1].descriptor
            line = ("K", d.name, d.op_class.value, d.phase, d.threads,
                    d.block_size, d.fp32_flops, d.int32_iops, d.ldst_instrs,
                    d.control_instrs, d.bytes_read, d.bytes_written)
            if d.name.startswith("fused_elementwise_x"):
                fused_names[d.name] = fused_names.get(d.name, 0) + 1
        elif event[0] == "T":
            r = event[1]
            line = ("T", r.direction, r.label, r.nbytes, r.num_values,
                    r.wire_bytes)
        else:
            line = event
        h.update(repr(line).encode())
        h.update(b"\n")

    totals = plan.totals()
    fused_totals = fused.totals()
    for name, value in totals.items():
        if not np.isclose(value, fused_totals[name], rtol=1e-9, atol=0.0):
            raise AssertionError(
                f"{key}: fusion lost work: {name} {value!r} -> "
                f"{fused_totals[name]!r}"
            )

    # epoch 2 is the validated dispatch epoch, the last one a fused replay
    return {
        "version": FINGERPRINT_VERSION,
        "workload": key,
        "scale": scale,
        "epochs": epochs,
        "seed": seed,
        "launch_count": plan.kernel_count,
        "fused_launch_count": fused.kernel_count,
        "fused_kernels": fused.fused_kernels,
        "fused_members": fused.fused_members,
        "fused_name_counts": dict(sorted(fused_names.items())),
        "transfer_count": plan.transfer_count,
        "totals": totals,
        "epoch_sim_time_s_dispatch": results[2].sim_time_s,
        "epoch_sim_time_s_fused": results[-1].sim_time_s,
        "fused_stream_digest": h.hexdigest(),
    }


def fused_golden_path(key: str) -> Path:
    return golden_dir() / f"fused_{key}.json"


def load_fused_golden(key: str) -> dict:
    path = fused_golden_path(key)
    if not path.exists():
        raise FileNotFoundError(
            f"no golden fused stream for {key!r} at {path}; generate it with "
            f"`python -m repro golden --fused --update`"
        )
    return json.loads(path.read_text())


def save_fused_golden(fingerprint: dict) -> Path:
    path = fused_golden_path(fingerprint["workload"])
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(fingerprint, indent=2, sort_keys=True) + "\n")
    return path


def compare_fused_fingerprints(expected: dict, actual: dict) -> list[str]:
    """Human-readable diffs (empty when fused streams match).

    Counts, census and digest compare exactly; work totals allow float
    accumulation noise; per-epoch simulated times are analytical-model
    outputs and compare exactly, like trace timestamps.
    """
    diffs: list[str] = []
    for field in ("version", "workload", "scale", "epochs", "seed",
                  "launch_count", "fused_launch_count", "fused_kernels",
                  "fused_members", "transfer_count",
                  "epoch_sim_time_s_dispatch", "epoch_sim_time_s_fused"):
        if expected.get(field) != actual.get(field):
            diffs.append(f"{field}: expected {expected.get(field)!r}, "
                         f"got {actual.get(field)!r}")
    exp, act = (expected.get("fused_name_counts", {}),
                actual.get("fused_name_counts", {}))
    for name in sorted(set(exp) | set(act)):
        if exp.get(name, 0) != act.get(name, 0):
            diffs.append(f"fused_name_counts[{name}]: expected "
                         f"{exp.get(name, 0)}, got {act.get(name, 0)}")
    exp, act = expected.get("totals", {}), actual.get("totals", {})
    for name in sorted(set(exp) | set(act)):
        e, a = exp.get(name, 0.0), act.get(name, 0.0)
        if not np.isclose(e, a, rtol=1e-9, atol=0.0):
            diffs.append(f"totals[{name}]: expected {e!r}, got {a!r}")
    if expected.get("fused_stream_digest") != actual.get("fused_stream_digest"):
        diffs.append(
            f"fused_stream_digest: expected "
            f"{expected.get('fused_stream_digest')}, got "
            f"{actual.get('fused_stream_digest')} — the fused event stream "
            f"changed even though the summary stats above "
            f"{'also differ' if diffs else 'still match'}"
        )
    return diffs


def verify_fused_goldens(keys: Optional[list[str]] = None,
                         jobs: Optional[int] = None,
                         cache=None) -> dict[str, list[str]]:
    """Diff fresh fused fingerprints against committed snapshots."""
    from ..core import executor

    keys = list(keys or registry.WORKLOAD_KEYS)
    expected: dict[str, dict] = {}
    diffs: dict[str, list[str]] = {}
    for key in keys:
        try:
            expected[key] = load_fused_golden(key)
        except FileNotFoundError as exc:
            diffs[key] = [f"missing snapshot: {exc}"]

    present = [k for k in keys if k in expected]
    by_params: dict[tuple, list[str]] = {}
    for key in present:
        exp = expected[key]
        params = (exp.get("scale", "test"), exp.get("epochs", 5),
                  exp.get("seed", 0))
        by_params.setdefault(params, []).append(key)
    actual: dict[str, dict] = {}
    for (scale, epochs, seed), group in by_params.items():
        actual.update(executor.fused_suite(
            group, scale=scale, epochs=epochs, seed=seed, jobs=jobs,
            cache=cache,
        ))
    for key in present:
        diffs[key] = compare_fused_fingerprints(expected[key], actual[key])
    return {key: diffs[key] for key in keys}


def update_fused_goldens(keys: Optional[list[str]] = None,
                         scale: str = "test", epochs: int = 5, seed: int = 0,
                         jobs: Optional[int] = None,
                         cache=None) -> list[Path]:
    """Regenerate fused snapshots for ``keys`` (default: whole registry)."""
    from ..core import executor

    keys = list(keys or registry.WORKLOAD_KEYS)
    fingerprints = executor.fused_suite(keys, scale=scale, epochs=epochs,
                                        seed=seed, jobs=jobs, cache=cache)
    return [save_fused_golden(fingerprints[key]) for key in keys]


# -- golden timeline traces ---------------------------------------------------
# Trace fingerprints (repro.profiling.trace.trace_fingerprint) extend the
# stream-digest contract to the *time domain*: they pin not just which
# kernels launch in which order, but when every span sits on the simulated
# clock.  Timestamps come from the analytical device model, so they are as
# bit-stable as the stream itself — and must stay byte-identical across
# --jobs counts and analysis-cache on/off (tests/test_trace_golden.py).

def trace_golden_path(key: str) -> Path:
    return golden_dir() / f"trace_{key}.json"


def load_trace_golden(key: str) -> dict:
    path = trace_golden_path(key)
    if not path.exists():
        raise FileNotFoundError(
            f"no golden trace for {key!r} at {path}; generate it with "
            f"`python -m repro golden --traces --update`"
        )
    return json.loads(path.read_text())


def save_trace_golden(fingerprint: dict) -> Path:
    path = trace_golden_path(fingerprint["workload"])
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(fingerprint, indent=2, sort_keys=True) + "\n")
    return path


def compare_trace_fingerprints(expected: dict, actual: dict) -> list[str]:
    """Human-readable diffs (empty when traces match byte-for-byte).

    Every field compares exactly: span timestamps are integer microseconds
    on the simulated clock, so there is no float-accumulation slack to
    forgive — any drift means the timing model or the stream changed.
    """
    diffs: list[str] = []
    for field in ("version", "workload", "scale", "epochs", "seed",
                  "num_gpus", "span_count", "wall_us"):
        if expected.get(field) != actual.get(field):
            diffs.append(f"{field}: expected {expected.get(field)!r}, "
                         f"got {actual.get(field)!r}")
    exp, act = expected.get("span_counts", {}), actual.get("span_counts", {})
    for name in sorted(set(exp) | set(act)):
        if exp.get(name, 0) != act.get(name, 0):
            diffs.append(f"span_counts[{name}]: expected {exp.get(name, 0)}, "
                         f"got {act.get(name, 0)}")
    if expected.get("trace_digest") != actual.get("trace_digest"):
        diffs.append(
            f"trace_digest: expected {expected.get('trace_digest')}, "
            f"got {actual.get('trace_digest')} — the canonical trace JSON "
            f"changed even though the summary stats above "
            f"{'also differ' if diffs else 'still match'}"
        )
    return diffs


def verify_trace_goldens(keys: Optional[list[str]] = None,
                         jobs: Optional[int] = None,
                         cache=None) -> dict[str, list[str]]:
    """Diff fresh trace fingerprints against committed snapshots.

    Mirrors :func:`verify_goldens`: traces regenerate under each snapshot's
    own recorded parameters, missing snapshots surface as one-line diffs,
    and generation fans out through the execution engine.
    """
    from ..core import executor

    keys = list(keys or registry.WORKLOAD_KEYS)
    expected: dict[str, dict] = {}
    diffs: dict[str, list[str]] = {}
    for key in keys:
        try:
            expected[key] = load_trace_golden(key)
        except FileNotFoundError as exc:
            diffs[key] = [f"missing snapshot: {exc}"]

    present = [k for k in keys if k in expected]
    by_params: dict[tuple, list[str]] = {}
    for key in present:
        exp = expected[key]
        params = (exp.get("scale", "test"), exp.get("epochs", 1),
                  exp.get("seed", 0), exp.get("num_gpus", 1))
        by_params.setdefault(params, []).append(key)
    actual: dict[str, dict] = {}
    for (scale, epochs, seed, num_gpus), group in by_params.items():
        actual.update(executor.trace_suite(
            group, scale=scale, epochs=epochs, seed=seed, num_gpus=num_gpus,
            jobs=jobs, cache=cache,
        ))
    for key in present:
        diffs[key] = compare_trace_fingerprints(expected[key], actual[key])
    return {key: diffs[key] for key in keys}


def update_trace_goldens(keys: Optional[list[str]] = None, scale: str = "test",
                         epochs: int = 1, seed: int = 0,
                         jobs: Optional[int] = None,
                         cache=None) -> list[Path]:
    """Regenerate trace snapshots for ``keys`` (default: whole registry)."""
    from ..core import executor

    keys = list(keys or registry.WORKLOAD_KEYS)
    fingerprints = executor.trace_suite(keys, scale=scale, epochs=epochs,
                                        seed=seed, jobs=jobs, cache=cache)
    return [save_trace_golden(fingerprints[key]) for key in keys]


# -- golden memory snapshots --------------------------------------------------
# Memory reports (repro.core.characterize.measure_memory) pin the *capacity
# domain*: peak live/reserved HBM bytes, per-phase and per-epoch watermarks,
# allocator churn and the per-label byte breakdown.  Every quantity is
# shape-derived (never a float compute result) and frees are refcount-driven
# with the cyclic GC suspended, so snapshots compare EXACTLY — byte-for-byte
# across repeat runs, --jobs counts, and analysis-cache on/off
# (tests/test_memory_golden.py asserts all three).

def memory_golden_path(key: str) -> Path:
    return golden_dir() / f"memory_{key}.json"


def load_memory_golden(key: str) -> dict:
    path = memory_golden_path(key)
    if not path.exists():
        raise FileNotFoundError(
            f"no golden memory snapshot for {key!r} at {path}; generate it "
            f"with `python -m repro golden --memory --update`"
        )
    return json.loads(path.read_text())


def save_memory_golden(report: dict) -> Path:
    path = memory_golden_path(report["workload"])
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def compare_memory_fingerprints(expected: dict, actual: dict) -> list[str]:
    """Human-readable diffs (empty when reports match byte-for-byte).

    Everything compares exactly: allocation sizes come from tensor shapes
    and free points from refcounts with the cyclic GC off, so there is no
    nondeterminism to forgive — any drift means tensor lifetimes (or the
    allocator's bucketing policy) changed.
    """
    diffs: list[str] = []
    scalar_fields = sorted(
        (set(expected) | set(actual))
        - {"phase_watermarks", "epoch_watermarks", "label_stats",
           "top_labels", "memory_digest"}
    )
    for field in scalar_fields:
        if expected.get(field) != actual.get(field):
            diffs.append(f"{field}: expected {expected.get(field)!r}, "
                         f"got {actual.get(field)!r}")

    exp, act = expected.get("phase_watermarks", {}), actual.get(
        "phase_watermarks", {})
    for name in sorted(set(exp) | set(act)):
        if exp.get(name) != act.get(name):
            diffs.append(f"phase_watermarks[{name}]: expected "
                         f"{exp.get(name)!r}, got {act.get(name)!r}")

    if expected.get("epoch_watermarks") != actual.get("epoch_watermarks"):
        diffs.append(f"epoch_watermarks: expected "
                     f"{expected.get('epoch_watermarks')!r}, got "
                     f"{actual.get('epoch_watermarks')!r}")

    exp_labels = {t[0]: t[1:] for t in expected.get("top_labels", [])}
    act_labels = {t[0]: t[1:] for t in actual.get("top_labels", [])}
    for name in sorted(set(exp_labels) | set(act_labels)):
        if exp_labels.get(name) != act_labels.get(name):
            diffs.append(f"top_labels[{name}]: expected "
                         f"{exp_labels.get(name)!r}, got "
                         f"{act_labels.get(name)!r}")

    if expected.get("memory_digest") != actual.get("memory_digest"):
        diffs.append(
            f"memory_digest: expected {expected.get('memory_digest')}, "
            f"got {actual.get('memory_digest')} — the canonical memory "
            f"report changed even though the summary stats above "
            f"{'also differ' if diffs else 'still match'}"
        )
    return diffs


# -- golden serving snapshots -------------------------------------------------
# Serving reports (repro.serve.serve_report) pin the *latency domain*:
# request arrivals from seeded RNG streams, queue waits and batch spans on
# the simulated clock, capture/replay batch execution, and the serving HBM
# peaks.  Every field is analytic (shapes + seeded draws + the device model),
# so snapshots compare EXACTLY — byte-for-byte across repeat runs, --jobs
# counts, and analysis-cache on/off (tests/test_serve_golden.py).

#: default snapshot set for ``python -m repro golden --serve``: the flagship
#: recsys serving scenarios plus the batched-molecule classifier
SERVE_GOLDEN_KEYS = ("PSAGE-MVL", "PSAGE-NWP", "DGCN")

#: the parameters a serve snapshot records (and verification replays under)
_SERVE_PARAM_FIELDS = ("scale", "qps", "arrival", "batch_max", "max_wait_us",
                       "requests", "num_users", "seed")


def serve_golden_path(key: str) -> Path:
    return golden_dir() / f"serve_{key}.json"


def load_serve_golden(key: str) -> dict:
    path = serve_golden_path(key)
    if not path.exists():
        raise FileNotFoundError(
            f"no golden serving snapshot for {key!r} at {path}; generate it "
            f"with `python -m repro golden --serve --update`"
        )
    return json.loads(path.read_text())


def save_serve_golden(report: dict) -> Path:
    path = serve_golden_path(report["workload"])
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def compare_serve_reports(expected: dict, actual: dict) -> list[str]:
    """Human-readable diffs (empty when reports match byte-for-byte).

    Everything compares exactly: latencies are simulated-clock arithmetic,
    arrivals are seeded RNG draws, and HBM peaks are shape-derived — there
    is no nondeterminism to forgive.  The digest-drift line comes last, as
    in every other golden family.
    """
    diffs: list[str] = []
    nested = {"latency_us", "wait_us", "compute_us", "batch_size_hist",
              "plan_kernels"}
    scalar_fields = sorted(
        (set(expected) | set(actual)) - nested - {"serve_digest"}
    )
    for field in scalar_fields:
        if expected.get(field) != actual.get(field):
            diffs.append(f"{field}: expected {expected.get(field)!r}, "
                         f"got {actual.get(field)!r}")
    for block in sorted(nested):
        exp, act = expected.get(block, {}), actual.get(block, {})
        for name in sorted(set(exp) | set(act)):
            if exp.get(name) != act.get(name):
                diffs.append(f"{block}[{name}]: expected {exp.get(name)!r}, "
                             f"got {act.get(name)!r}")
    if expected.get("serve_digest") != actual.get("serve_digest"):
        diffs.append(
            f"serve_digest: expected {expected.get('serve_digest')}, "
            f"got {actual.get('serve_digest')} — the canonical serving "
            f"report changed even though the summary stats above "
            f"{'also differ' if diffs else 'still match'}"
        )
    return diffs


def verify_serve_goldens(keys: Optional[list[str]] = None,
                         jobs: Optional[int] = None,
                         cache=None) -> dict[str, list[str]]:
    """Diff fresh serving reports against committed snapshots.

    Mirrors :func:`verify_memory_goldens`: reports regenerate under each
    snapshot's own recorded parameters, missing snapshots surface as
    one-line diffs, and generation fans out through the execution engine.
    """
    from ..core import executor

    keys = list(keys or SERVE_GOLDEN_KEYS)
    expected: dict[str, dict] = {}
    diffs: dict[str, list[str]] = {}
    for key in keys:
        try:
            expected[key] = load_serve_golden(key)
        except FileNotFoundError as exc:
            diffs[key] = [f"missing snapshot: {exc}"]

    present = [k for k in keys if k in expected]
    by_params: dict[tuple, list[str]] = {}
    for key in present:
        exp = expected[key]
        params = tuple(exp.get(f) for f in _SERVE_PARAM_FIELDS)
        by_params.setdefault(params, []).append(key)
    actual: dict[str, dict] = {}
    for params, group in by_params.items():
        actual.update(executor.serve_suite(
            group, jobs=jobs, cache=cache,
            **dict(zip(_SERVE_PARAM_FIELDS, params)),
        ))
    for key in present:
        diffs[key] = compare_serve_reports(expected[key], actual[key])
    return {key: diffs[key] for key in keys}


def update_serve_goldens(keys: Optional[list[str]] = None,
                         scale: str = "test", qps: float = 100.0,
                         arrival: str = "poisson", batch_max: int = 8,
                         max_wait_us: float = 2000.0, requests: int = 256,
                         num_users: int = 64, seed: int = 0,
                         jobs: Optional[int] = None,
                         cache=None) -> list[Path]:
    """Regenerate serving snapshots for ``keys`` (default: the flagships)."""
    from ..core import executor

    keys = list(keys or SERVE_GOLDEN_KEYS)
    reports = executor.serve_suite(keys, scale=scale, qps=qps,
                                   arrival=arrival, batch_max=batch_max,
                                   max_wait_us=max_wait_us, requests=requests,
                                   num_users=num_users, seed=seed, jobs=jobs,
                                   cache=cache)
    return [save_serve_golden(reports[key]) for key in keys]


# -- sampled-training goldens -------------------------------------------------
# Mini-batch loader snapshots (repro.train.loader): batch/edge counts, the
# sampler cost model's totals, loader-stall accounting and HBM peaks.  Every
# field is analytic (seeded neighbor draws + simulated-clock arithmetic), so
# snapshots compare EXACTLY across repeat runs, --jobs counts and
# analysis-cache on/off (tests/test_sample_golden.py).

#: default snapshot set for ``python -m repro golden --sample``: the
#: citation + PinSAGE flagships the mini-batch pipeline targets
SAMPLE_GOLDEN_KEYS = ("ARGA", "PSAGE-MVL")

#: the parameters a sample snapshot records (and verification replays under)
_SAMPLE_PARAM_FIELDS = ("scale", "fanouts", "batch_size", "prefetch_depth",
                        "epochs", "nodes", "seed")


def sample_golden_path(key: str) -> Path:
    return golden_dir() / f"sample_{key}.json"


def load_sample_golden(key: str) -> dict:
    path = sample_golden_path(key)
    if not path.exists():
        raise FileNotFoundError(
            f"no golden sampled-training snapshot for {key!r} at {path}; "
            f"generate it with `python -m repro golden --sample --update`"
        )
    return json.loads(path.read_text())


def save_sample_golden(report: dict) -> Path:
    path = sample_golden_path(report["workload"])
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def compare_sample_reports(expected: dict, actual: dict) -> list[str]:
    """Human-readable diffs (empty when reports match byte-for-byte).

    Everything compares exactly: batch composition is seeded RNG, sampler
    costs are closed-form in the block shapes, and stall times are
    simulated-clock arithmetic — there is no nondeterminism to forgive.
    The digest-drift line comes last, as in every other golden family.
    """
    diffs: list[str] = []
    nested = {"stall_breakdown"}
    scalar_fields = sorted(
        (set(expected) | set(actual)) - nested - {"sample_digest"}
    )
    for field in scalar_fields:
        if expected.get(field) != actual.get(field):
            diffs.append(f"{field}: expected {expected.get(field)!r}, "
                         f"got {actual.get(field)!r}")
    for block in sorted(nested):
        exp, act = expected.get(block, {}), actual.get(block, {})
        for name in sorted(set(exp) | set(act)):
            if exp.get(name) != act.get(name):
                diffs.append(f"{block}[{name}]: expected {exp.get(name)!r}, "
                             f"got {act.get(name)!r}")
    if expected.get("sample_digest") != actual.get("sample_digest"):
        diffs.append(
            f"sample_digest: expected {expected.get('sample_digest')}, "
            f"got {actual.get('sample_digest')} — the canonical sampled-"
            f"training report changed even though the summary stats above "
            f"{'also differ' if diffs else 'still match'}"
        )
    return diffs


def verify_sample_goldens(keys: Optional[list[str]] = None,
                          jobs: Optional[int] = None,
                          cache=None) -> dict[str, list[str]]:
    """Diff fresh sampled-training reports against committed snapshots.

    Mirrors :func:`verify_serve_goldens`: reports regenerate under each
    snapshot's own recorded parameters, missing snapshots surface as
    one-line diffs, and generation fans out through the execution engine.
    """
    from ..core import executor

    keys = list(keys or SAMPLE_GOLDEN_KEYS)
    expected: dict[str, dict] = {}
    diffs: dict[str, list[str]] = {}
    for key in keys:
        try:
            expected[key] = load_sample_golden(key)
        except FileNotFoundError as exc:
            diffs[key] = [f"missing snapshot: {exc}"]

    present = [k for k in keys if k in expected]
    by_params: dict[tuple, list[str]] = {}
    for key in present:
        exp = expected[key]
        params = tuple(
            tuple(exp.get(f)) if f == "fanouts" else exp.get(f)
            for f in _SAMPLE_PARAM_FIELDS
        )
        by_params.setdefault(params, []).append(key)
    actual: dict[str, dict] = {}
    for params, group in by_params.items():
        actual.update(executor.sample_suite(
            group, jobs=jobs, cache=cache,
            **dict(zip(_SAMPLE_PARAM_FIELDS, params)),
        ))
    for key in present:
        diffs[key] = compare_sample_reports(expected[key], actual[key])
    return {key: diffs[key] for key in keys}


def update_sample_goldens(keys: Optional[list[str]] = None,
                          scale: str = "test", fanouts=(10, 5),
                          batch_size: int = 64, prefetch_depth: int = 2,
                          epochs: int = 2, nodes=None, seed: int = 0,
                          jobs: Optional[int] = None,
                          cache=None) -> list[Path]:
    """Regenerate sampled-training snapshots (default: the flagships)."""
    from ..core import executor

    keys = list(keys or SAMPLE_GOLDEN_KEYS)
    reports = executor.sample_suite(keys, scale=scale, fanouts=fanouts,
                                    batch_size=batch_size,
                                    prefetch_depth=prefetch_depth,
                                    epochs=epochs, nodes=nodes, seed=seed,
                                    jobs=jobs, cache=cache)
    return [save_sample_golden(reports[key]) for key in keys]


def verify_memory_goldens(keys: Optional[list[str]] = None,
                          jobs: Optional[int] = None,
                          cache=None) -> dict[str, list[str]]:
    """Diff fresh memory reports against committed snapshots.

    Mirrors :func:`verify_trace_goldens`: reports regenerate under each
    snapshot's own recorded parameters, missing snapshots surface as
    one-line diffs, and generation fans out through the execution engine.
    """
    from ..core import executor

    keys = list(keys or registry.WORKLOAD_KEYS)
    expected: dict[str, dict] = {}
    diffs: dict[str, list[str]] = {}
    for key in keys:
        try:
            expected[key] = load_memory_golden(key)
        except FileNotFoundError as exc:
            diffs[key] = [f"missing snapshot: {exc}"]

    present = [k for k in keys if k in expected]
    by_params: dict[tuple, list[str]] = {}
    for key in present:
        exp = expected[key]
        params = (exp.get("scale", "test"), exp.get("epochs", 1),
                  exp.get("seed", 0))
        by_params.setdefault(params, []).append(key)
    actual: dict[str, dict] = {}
    for (scale, epochs, seed), group in by_params.items():
        actual.update(executor.memstats_suite(
            group, scale=scale, epochs=epochs, seed=seed, jobs=jobs,
            cache=cache,
        ))
    for key in present:
        diffs[key] = compare_memory_fingerprints(expected[key], actual[key])
    return {key: diffs[key] for key in keys}


def update_memory_goldens(keys: Optional[list[str]] = None,
                          scale: str = "test", epochs: int = 1, seed: int = 0,
                          jobs: Optional[int] = None,
                          cache=None) -> list[Path]:
    """Regenerate memory snapshots for ``keys`` (default: whole registry)."""
    from ..core import executor

    keys = list(keys or registry.WORKLOAD_KEYS)
    reports = executor.memstats_suite(keys, scale=scale, epochs=epochs,
                                      seed=seed, jobs=jobs, cache=cache)
    return [save_memory_golden(reports[key]) for key in keys]


# -- sharded-training goldens -------------------------------------------------
# Partition-parallel snapshots (repro.train.sharded): the partition plan's
# quality metrics and digest, halo-exchange volumes and the halo span-stream
# digest, staging transfers, HBM peaks and simulated epoch times.  Everything
# but the fp64 losses is integer geometry or simulated-clock arithmetic and
# compares EXACTLY; losses compare within fp64 tolerance because cross-part
# summation order differs from the whole-graph run.

#: default snapshot set for ``python -m repro golden --shard``: numeric-mode
#: runs at 2/4 parts and under host offload, plus a capacity-mode run
SHARD_GOLDEN_KEYS = ("ARGA-P2", "ARGA-P4", "ARGA-OFFLOAD", "ARGA-CAP4")

#: the parameters a shard snapshot records (and verification replays under)
_SHARD_PARAM_FIELDS = ("parts", "offload", "nodes", "feat_dim", "hidden",
                       "epochs", "seed", "mode")

#: max |expected - actual| for per-epoch losses (cross-part fp64 reorder)
_SHARD_LOSS_TOL = 1e-9


def shard_golden_path(name: str) -> Path:
    return golden_dir() / f"shard_{name}.json"


def load_shard_golden(name: str) -> dict:
    path = shard_golden_path(name)
    if not path.exists():
        raise FileNotFoundError(
            f"no golden sharded-training snapshot for {name!r} at {path}; "
            f"generate it with `python -m repro golden --shard --update`"
        )
    return json.loads(path.read_text())


def save_shard_golden(report: dict) -> Path:
    path = shard_golden_path(report["name"])
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def compare_shard_reports(expected: dict, actual: dict) -> list[str]:
    """Human-readable diffs (empty when reports match).

    Plan metrics, halo/staging byte counts, kernel counts and HBM peaks are
    integer geometry; epoch times are simulated-clock arithmetic — all
    compare exactly.  Losses are real fp64 training values whose cross-part
    summation order is partition-dependent, so they get a tolerance.  The
    digest-drift line comes last, as in every other golden family.
    """
    diffs: list[str] = []
    nested = {"partition"}
    tolerant = {"losses", "loss_final"}
    scalar_fields = sorted(
        (set(expected) | set(actual)) - nested - tolerant - {"shard_digest"}
    )
    for field in scalar_fields:
        if expected.get(field) != actual.get(field):
            diffs.append(f"{field}: expected {expected.get(field)!r}, "
                         f"got {actual.get(field)!r}")
    for block in sorted(nested):
        exp, act = expected.get(block, {}), actual.get(block, {})
        for name in sorted(set(exp) | set(act)):
            if exp.get(name) != act.get(name):
                diffs.append(f"{block}[{name}]: expected {exp.get(name)!r}, "
                             f"got {act.get(name)!r}")
    exp_losses = expected.get("losses") or []
    act_losses = actual.get("losses") or []
    if len(exp_losses) != len(act_losses):
        diffs.append(f"losses: expected {len(exp_losses)} epochs, "
                     f"got {len(act_losses)}")
    elif exp_losses and max(abs(e - a) for e, a in
                            zip(exp_losses, act_losses)) > _SHARD_LOSS_TOL:
        diffs.append(f"losses: expected {exp_losses}, got {act_losses} "
                     f"(tolerance {_SHARD_LOSS_TOL})")
    if expected.get("shard_digest") != actual.get("shard_digest"):
        diffs.append(
            f"shard_digest: expected {expected.get('shard_digest')}, "
            f"got {actual.get('shard_digest')} — the canonical sharded-"
            f"training report changed even though the summary stats above "
            f"{'also differ' if diffs else 'still match'}"
        )
    return diffs


def verify_shard_goldens(names: Optional[list[str]] = None,
                         jobs: Optional[int] = None,
                         cache=None) -> dict[str, list[str]]:
    """Diff fresh sharded-training reports against committed snapshots.

    Mirrors :func:`verify_sample_goldens`: reports regenerate under each
    snapshot's own recorded parameters, missing snapshots surface as
    one-line diffs, and generation fans out through the execution engine.
    """
    from ..core import executor

    names = list(names or SHARD_GOLDEN_KEYS)
    expected: dict[str, dict] = {}
    diffs: dict[str, list[str]] = {}
    for name in names:
        try:
            expected[name] = load_shard_golden(name)
        except FileNotFoundError as exc:
            diffs[name] = [f"missing snapshot: {exc}"]

    present = [n for n in names if n in expected]
    by_params: dict[tuple, list[str]] = {}
    for name in present:
        exp = expected[name]
        params = tuple(exp.get(f) for f in _SHARD_PARAM_FIELDS)
        by_params.setdefault(params, []).append(name)
    actual: dict[str, dict] = {}
    for params, group in by_params.items():
        actual.update(executor.shard_suite(
            group, jobs=jobs, cache=cache,
            **dict(zip(_SHARD_PARAM_FIELDS, params)),
        ))
    for name in present:
        diffs[name] = compare_shard_reports(expected[name], actual[name])
    return {name: diffs[name] for name in names}


def update_shard_goldens(names: Optional[list[str]] = None,
                         jobs: Optional[int] = None,
                         cache=None) -> list[Path]:
    """Regenerate sharded-training snapshots (default: the golden configs)."""
    from ..core import executor

    names = list(names or SHARD_GOLDEN_KEYS)
    reports = executor.shard_suite(names, jobs=jobs, cache=cache)
    return [save_shard_golden(reports[name]) for name in names]


# -- insight-engine goldens ---------------------------------------------------
# Insights snapshots (repro.profiling.insights) pin the *interpretation
# domain*: the roofline classifier's bound-class verdicts, the attribution
# tree's totals, and the canonical-report digest.  Snapshots store a compact
# fingerprint rather than the full report (the tree is large and every byte
# of it is already covered by ``insights_digest``); the digest deliberately
# excludes ``manifest.source_digest``, so snapshots survive commits that
# don't change behaviour.  Byte-determinism across repeat runs, --jobs
# counts, profile-cache warm/cold and analysis-cache on/off is asserted by
# tests/test_insights_golden.py on the shared determinism matrix.

#: default snapshot set for ``python -m repro golden --insights``: the
#: paper's flagship 3D-GNN plus the memory-bound knowledge-graph workload
INSIGHTS_GOLDEN_KEYS = ("DGCN", "KGNNL")

#: the parameters an insights snapshot records (and verification replays
#: under)
_INSIGHTS_PARAM_FIELDS = ("scale", "epochs", "seed", "gpus")

#: flat sites carried verbatim in the fingerprint (the hottest N)
_INSIGHTS_TOP_SITES = 5


def insights_fingerprint(report: dict) -> dict:
    """Reduce a full insights report to the snapshot the goldens store."""
    manifest = report.get("manifest", {})
    top_sites = [
        {f: site[f] for f in ("phase", "stream", "site", "duration_us",
                              "bound_class")}
        for site in report.get("sites", [])[:_INSIGHTS_TOP_SITES]
    ]
    return {
        "version": report.get("version"),
        "workload": manifest.get("workload"),
        "scale": manifest.get("scale"),
        "epochs": manifest.get("epochs"),
        "seed": manifest.get("seed"),
        "gpus": manifest.get("gpus"),
        "sim_digest": manifest.get("sim_digest"),
        "wall_us": report.get("wall_us"),
        "attributed_us": report.get("attributed_us"),
        "span_count": report.get("span_count"),
        "launches": report.get("launches"),
        "site_count": len(report.get("sites", [])),
        "bound_summary": report.get("bound_summary", {}),
        "stream_summary": report.get("stream_summary", {}),
        "top_sites": top_sites,
        "insights_digest": report.get("insights_digest"),
    }


def insights_golden_path(key: str) -> Path:
    return golden_dir() / f"insights_{key}.json"


def load_insights_golden(key: str) -> dict:
    path = insights_golden_path(key)
    if not path.exists():
        raise FileNotFoundError(
            f"no golden insights snapshot for {key!r} at {path}; generate it "
            f"with `python -m repro golden --insights --update`"
        )
    return json.loads(path.read_text())


def save_insights_golden(report: dict) -> Path:
    fingerprint = (report if "top_sites" in report
                   else insights_fingerprint(report))
    path = insights_golden_path(fingerprint["workload"])
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(fingerprint, indent=2, sort_keys=True) + "\n")
    return path


def compare_insights_fingerprints(expected: dict, actual: dict) -> list[str]:
    """Human-readable diffs (empty when snapshots match byte-for-byte).

    Every field compares exactly: durations and shares are analytic
    functions of the simulated clock and the kernel descriptors, so there
    is no nondeterminism to forgive.  The digest-drift line comes last, as
    in every other golden family.
    """
    diffs: list[str] = []
    nested = {"bound_summary", "stream_summary", "top_sites"}
    scalar_fields = sorted(
        (set(expected) | set(actual)) - nested - {"insights_digest"}
    )
    for field in scalar_fields:
        if expected.get(field) != actual.get(field):
            diffs.append(f"{field}: expected {expected.get(field)!r}, "
                         f"got {actual.get(field)!r}")
    for block in ("bound_summary", "stream_summary"):
        exp, act = expected.get(block, {}), actual.get(block, {})
        for name in sorted(set(exp) | set(act)):
            if exp.get(name) != act.get(name):
                diffs.append(f"{block}[{name}]: expected {exp.get(name)!r}, "
                             f"got {act.get(name)!r}")
    exp_sites = expected.get("top_sites", [])
    act_sites = actual.get("top_sites", [])
    if len(exp_sites) != len(act_sites):
        diffs.append(f"top_sites: expected {len(exp_sites)} sites, "
                     f"got {len(act_sites)}")
    else:
        for i, (e, a) in enumerate(zip(exp_sites, act_sites)):
            if e != a:
                diffs.append(f"top_sites[{i}]: expected {e!r}, got {a!r}")
    if expected.get("insights_digest") != actual.get("insights_digest"):
        diffs.append(
            f"insights_digest: expected {expected.get('insights_digest')}, "
            f"got {actual.get('insights_digest')} — the canonical insights "
            f"report changed even though the summary stats above "
            f"{'also differ' if diffs else 'still match'}"
        )
    return diffs


def verify_insights_goldens(keys: Optional[list[str]] = None,
                            jobs: Optional[int] = None,
                            cache=None) -> dict[str, list[str]]:
    """Diff fresh insights fingerprints against committed snapshots.

    Mirrors :func:`verify_serve_goldens`: reports regenerate under each
    snapshot's own recorded parameters, missing snapshots surface as
    one-line diffs, and generation fans out through the execution engine.
    """
    from ..core import executor

    keys = list(keys or INSIGHTS_GOLDEN_KEYS)
    expected: dict[str, dict] = {}
    diffs: dict[str, list[str]] = {}
    for key in keys:
        try:
            expected[key] = load_insights_golden(key)
        except FileNotFoundError as exc:
            diffs[key] = [f"missing snapshot: {exc}"]

    present = [k for k in keys if k in expected]
    by_params: dict[tuple, list[str]] = {}
    for key in present:
        exp = expected[key]
        params = tuple(exp.get(f) for f in _INSIGHTS_PARAM_FIELDS)
        by_params.setdefault(params, []).append(key)
    actual: dict[str, dict] = {}
    for params, group in by_params.items():
        actual.update(executor.insights_suite(
            group, jobs=jobs, cache=cache,
            **dict(zip(_INSIGHTS_PARAM_FIELDS, params)),
        ))
    for key in present:
        diffs[key] = compare_insights_fingerprints(
            expected[key], insights_fingerprint(actual[key]))
    return {key: diffs[key] for key in keys}


def update_insights_goldens(keys: Optional[list[str]] = None,
                            scale: str = "test", epochs: int = 2,
                            seed: int = 0, gpus: int = 1,
                            jobs: Optional[int] = None,
                            cache=None) -> list[Path]:
    """Regenerate insights snapshots (default: the flagship pair)."""
    from ..core import executor

    keys = list(keys or INSIGHTS_GOLDEN_KEYS)
    reports = executor.insights_suite(keys, scale=scale, epochs=epochs,
                                      seed=seed, gpus=gpus, jobs=jobs,
                                      cache=cache)
    return [save_insights_golden(reports[key]) for key in keys]
