"""Central-difference numerical gradient checking.

The autograd tape is the foundation every reproduced figure stands on: the
kernel stream a workload emits is whatever forward/backward actually computes,
so a wrong ``Function.backward`` silently corrupts every downstream number
without failing a launch-count test.  This module makes backward mechanically
checkable against finite differences:

* inputs are promoted to float64 (under :func:`repro.tensor.float64_mode`) so
  the central-difference truncation error, not float32 rounding, limits the
  comparison;
* integer tensors, raw numpy index arrays and :class:`SparseTensor` operands
  pass through unperturbed (their "gradients" are undefined by construction);
* tolerances can be set per input, because e.g. a conv weight sees a much
  deeper reduction than an elementwise operand;
* :func:`gradcheck_module` extends the same check to every parameter of an
  ``nn.Module``, which is how the layer zoo in ``repro/models/layers.py`` is
  certified.

Checks run on CPU tensors — no simulated device is involved, so the math is
verified independently of the kernel-accounting layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Union

import numpy as np

from ..tensor import Tensor, float64_mode, no_grad

Tolerance = Union[float, Sequence[float], dict]


class GradcheckError(AssertionError):
    """Raised when analytic and numerical gradients disagree."""


@dataclass
class GradMismatch:
    """One disagreeing gradient element."""

    input_label: str
    flat_index: int
    analytic: float
    numeric: float

    @property
    def abs_err(self) -> float:
        return abs(self.analytic - self.numeric)

    @property
    def rel_err(self) -> float:
        scale = max(abs(self.analytic), abs(self.numeric), 1e-12)
        return self.abs_err / scale

    def __str__(self) -> str:
        return (
            f"{self.input_label}[{self.flat_index}]: "
            f"analytic={self.analytic:+.6e} numeric={self.numeric:+.6e} "
            f"(abs={self.abs_err:.2e}, rel={self.rel_err:.2e})"
        )


@dataclass
class GradcheckResult:
    """Outcome of one gradient check."""

    ok: bool
    checked_elements: int
    max_abs_err: float
    max_rel_err: float
    mismatches: list[GradMismatch] = field(default_factory=list)

    def report(self, max_lines: int = 12) -> str:
        head = (
            f"gradcheck: {len(self.mismatches)} mismatching elements out of "
            f"{self.checked_elements} checked "
            f"(max abs={self.max_abs_err:.3e}, max rel={self.max_rel_err:.3e})"
        )
        lines = [str(m) for m in self.mismatches[:max_lines]]
        if len(self.mismatches) > max_lines:
            lines.append(f"... and {len(self.mismatches) - max_lines} more")
        return "\n  ".join([head] + lines)


def _is_float_tensor(x) -> bool:
    return isinstance(x, Tensor) and np.issubdtype(x.data.dtype, np.floating)


def _tolerance_for(tol: Tolerance, index: int, label: str, default: float) -> float:
    if tol is None:
        return default
    if isinstance(tol, dict):
        return float(tol.get(label, tol.get(index, default)))
    if isinstance(tol, (list, tuple)):
        return float(tol[index])
    return float(tol)


def _run_check(
    run: Callable[[], Tensor],
    checked: list[tuple[str, Tensor]],
    *,
    eps: float,
    rtol: Tolerance,
    atol: Tolerance,
    rng: np.random.Generator,
    raise_on_failure: bool,
) -> GradcheckResult:
    """Core engine: compare tape gradients against central differences.

    ``run`` re-evaluates the function using the *current* payloads of the
    checked tensors, so numerical perturbation mutates ``t.data`` in place.
    """
    with float64_mode():
        out = run()
        if not isinstance(out, Tensor):
            raise TypeError(f"gradcheck target returned {type(out).__name__}, "
                            "expected a Tensor")
        cotangent = rng.standard_normal(out.data.shape)

        for _, t in checked:
            t.grad = None
        out.backward(cotangent)
        analytic = [
            np.zeros_like(t.data) if t.grad is None else t.grad.data.astype(np.float64)
            for _, t in checked
        ]

        def scalar() -> float:
            with no_grad():
                return float((run().data * cotangent).sum())

        mismatches: list[GradMismatch] = []
        max_abs = max_rel = 0.0
        checked_elements = 0
        for pos, (label, t) in enumerate(checked):
            flat = t.data.reshape(-1)
            ana = analytic[pos].reshape(-1)
            r = _tolerance_for(rtol, pos, label, 1e-4)
            a = _tolerance_for(atol, pos, label, 1e-6)
            for j in range(flat.size):
                orig = flat[j]
                h = eps * max(1.0, abs(orig))
                flat[j] = orig + h
                f_plus = scalar()
                flat[j] = orig - h
                f_minus = scalar()
                flat[j] = orig
                numeric = (f_plus - f_minus) / (2.0 * h)
                checked_elements += 1
                err = abs(ana[j] - numeric)
                rel = err / max(abs(ana[j]), abs(numeric), 1e-12)
                max_abs = max(max_abs, err)
                if err > a + r * max(abs(ana[j]), abs(numeric)):
                    max_rel = max(max_rel, rel)
                    mismatches.append(
                        GradMismatch(label, j, float(ana[j]), float(numeric))
                    )

    result = GradcheckResult(
        ok=not mismatches,
        checked_elements=checked_elements,
        max_abs_err=max_abs,
        max_rel_err=max_rel,
        mismatches=mismatches,
    )
    if raise_on_failure and not result.ok:
        raise GradcheckError(result.report())
    return result


def gradcheck(
    fn: Callable[..., Tensor],
    inputs: Sequence,
    *,
    eps: float = 1e-6,
    rtol: Tolerance = 1e-4,
    atol: Tolerance = 1e-6,
    seed: int = 0,
    raise_on_failure: bool = True,
) -> GradcheckResult:
    """Check ``fn``'s tape gradients against central differences.

    ``inputs`` may mix float Tensors (checked), integer Tensors, raw numpy
    arrays, SparseTensors and python scalars (all passed through untouched).
    The output need not be scalar: a random cotangent contracts it, so every
    output element contributes to the checked directional derivative.
    """
    rng = np.random.default_rng(seed)
    promoted: list = []
    checked: list[tuple[str, Tensor]] = []
    for i, x in enumerate(inputs):
        if _is_float_tensor(x):
            with float64_mode():
                t = Tensor(x.data.astype(np.float64), dtype=np.float64,
                           requires_grad=True)
            promoted.append(t)
            checked.append((f"input{i}", t))
        else:
            promoted.append(x)
    if not checked:
        raise ValueError("gradcheck needs at least one float Tensor input")
    return _run_check(
        lambda: fn(*promoted),
        checked,
        eps=eps, rtol=rtol, atol=atol,
        rng=rng, raise_on_failure=raise_on_failure,
    )


def gradcheck_module(
    module,
    args: Sequence,
    *,
    eps: float = 1e-6,
    rtol: Tolerance = 1e-4,
    atol: Tolerance = 1e-6,
    seed: int = 0,
    check_inputs: bool = True,
    raise_on_failure: bool = True,
) -> GradcheckResult:
    """Check an ``nn.Module``'s gradients w.r.t. its parameters (and,
    optionally, its float-tensor inputs).

    Parameter payloads are promoted to float64 in place for the duration of
    the check and restored bit-exactly afterwards, so the module can keep
    being used at fp32.
    """
    rng = np.random.default_rng(seed)
    promoted: list = []
    checked: list[tuple[str, Tensor]] = []
    for i, x in enumerate(args):
        if _is_float_tensor(x):
            with float64_mode():
                t = Tensor(x.data.astype(np.float64), dtype=np.float64,
                           requires_grad=check_inputs)
            promoted.append(t)
            if check_inputs:
                checked.append((f"input{i}", t))
        else:
            promoted.append(x)

    params = list(module.named_parameters())
    saved = [(p, p.data) for _, p in params]
    for name, p in params:
        p.data = p.data.astype(np.float64)
        checked.append((name, p))
    if not checked:
        raise ValueError("module has no parameters and no checked inputs")
    try:
        return _run_check(
            lambda: module(*promoted),
            checked,
            eps=eps, rtol=rtol, atol=atol,
            rng=rng, raise_on_failure=raise_on_failure,
        )
    finally:
        for p, data in saved:
            p.data = data
            p.grad = None
