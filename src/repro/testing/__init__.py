"""Differential correctness harness for the reproduction.

Three pillars, each mechanically checkable:

* :mod:`.gradcheck` — every ``Function.backward`` against fp64 central
  differences;
* :mod:`.golden` — every registry workload's kernel stream against a
  committed JSON fingerprint (``python -m repro golden --update``);
* :mod:`.invariants` — every simulated launch/transfer against the GPU
  model's physical-consistency invariants ("strict mode").
"""

from .gradcheck import (
    GradcheckError,
    GradcheckResult,
    gradcheck,
    gradcheck_module,
)
from .golden import (
    StreamRecorder,
    compare_fingerprints,
    compare_trace_fingerprints,
    fingerprint_suite,
    fingerprint_workload,
    golden_dir,
    golden_path,
    load_golden,
    load_trace_golden,
    save_golden,
    save_trace_golden,
    trace_golden_path,
    update_goldens,
    update_trace_goldens,
    verify_golden,
    verify_goldens,
    verify_trace_goldens,
)
from .invariants import (
    InvariantChecker,
    InvariantViolation,
    check_descriptor,
    check_launch,
    check_stalls,
    check_transfer,
    strict_mode,
)

__all__ = [
    "GradcheckError",
    "GradcheckResult",
    "InvariantChecker",
    "InvariantViolation",
    "StreamRecorder",
    "check_descriptor",
    "check_launch",
    "check_stalls",
    "check_transfer",
    "compare_fingerprints",
    "compare_trace_fingerprints",
    "fingerprint_suite",
    "fingerprint_workload",
    "golden_dir",
    "golden_path",
    "gradcheck",
    "gradcheck_module",
    "load_golden",
    "load_trace_golden",
    "save_golden",
    "save_trace_golden",
    "strict_mode",
    "trace_golden_path",
    "update_goldens",
    "update_trace_goldens",
    "verify_golden",
    "verify_goldens",
    "verify_trace_goldens",
]
