"""Differential correctness harness for the reproduction.

Three pillars, each mechanically checkable:

* :mod:`.gradcheck` — every ``Function.backward`` against fp64 central
  differences;
* :mod:`.golden` — every registry workload's kernel stream against a
  committed JSON fingerprint (``python -m repro golden --update``);
* :mod:`.invariants` — every simulated launch/transfer against the GPU
  model's physical-consistency invariants ("strict mode").

Plus :mod:`.launch_sequences`, a synthetic launch-sequence generator
(Hypothesis strategy and seeded plain generator) used by the kernel-fusion
property tests.
"""

from .gradcheck import (
    GradcheckError,
    GradcheckResult,
    gradcheck,
    gradcheck_module,
)
from .golden import (
    StreamRecorder,
    capture_fingerprint,
    compare_fingerprints,
    compare_fused_fingerprints,
    compare_trace_fingerprints,
    fingerprint_suite,
    fingerprint_workload,
    fused_fingerprint,
    fused_golden_path,
    golden_dir,
    golden_path,
    load_fused_golden,
    load_golden,
    load_trace_golden,
    save_fused_golden,
    save_golden,
    save_trace_golden,
    trace_golden_path,
    update_fused_goldens,
    update_goldens,
    update_trace_goldens,
    verify_fused_goldens,
    verify_golden,
    verify_goldens,
    verify_trace_goldens,
)
from .invariants import (
    InvariantChecker,
    InvariantViolation,
    check_descriptor,
    check_launch,
    check_stalls,
    check_transfer,
    strict_mode,
)
from .launch_sequences import (
    EPOCH_BOUNDARY,
    make_launch,
    make_transfer,
    random_events,
)

__all__ = [
    "EPOCH_BOUNDARY",
    "GradcheckError",
    "GradcheckResult",
    "InvariantChecker",
    "InvariantViolation",
    "StreamRecorder",
    "capture_fingerprint",
    "check_descriptor",
    "check_launch",
    "check_stalls",
    "check_transfer",
    "compare_fingerprints",
    "compare_fused_fingerprints",
    "compare_trace_fingerprints",
    "fingerprint_suite",
    "fingerprint_workload",
    "fused_fingerprint",
    "fused_golden_path",
    "golden_dir",
    "golden_path",
    "gradcheck",
    "gradcheck_module",
    "load_fused_golden",
    "load_golden",
    "load_trace_golden",
    "make_launch",
    "make_transfer",
    "random_events",
    "save_fused_golden",
    "save_golden",
    "save_trace_golden",
    "strict_mode",
    "trace_golden_path",
    "update_fused_goldens",
    "update_goldens",
    "update_trace_goldens",
    "verify_fused_goldens",
    "verify_golden",
    "verify_goldens",
    "verify_trace_goldens",
]
