"""Random launch-sequence generators for fusion property tests.

The fusion pass (:func:`repro.gpu.graph_capture.fuse_events`) is a pure
function over captured epoch event lists, so its legality rules — never fuse
across a phase or epoch boundary, a reduction, a transfer, a device change,
or any non-elementwise kernel — are checkable on *synthetic* sequences
without building a workload.  This module provides:

* :func:`make_launch` / :func:`make_transfer` — single-event constructors
  with dummy timing (fusion only reads descriptors and device ids);
* :data:`EPOCH_BOUNDARY` — the synthetic epoch-boundary marker.  Real
  captured plans cover exactly one epoch so never contain one; the fusion
  pass treats every unknown event tag as a barrier, which this marker (and
  the property suite) pins down;
* :func:`events` — a shrinkable Hypothesis strategy over event lists
  (imported lazily so the package works without Hypothesis installed);
* :func:`random_events` — a plain seeded generator for non-Hypothesis reuse
  (fuzzing loops, benchmarks, notebooks).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..gpu.kernel import (
    AccessPattern,
    KernelDescriptor,
    KernelLaunch,
    MemoryMetrics,
    OpClass,
    StallBreakdown,
    TransferRecord,
)

#: synthetic epoch-boundary event: any tag the replay/fusion machinery does
#: not recognise acts as a fusion barrier
EPOCH_BOUNDARY = ("E",)

PHASES = ("forward", "backward", "optimizer")

ELEMENTWISE_NAMES = ("add", "mul", "relu", "sigmoid", "dropout", "sgd_step")


def make_launch(
    name: str = "add",
    op_class: OpClass = OpClass.ELEMENTWISE,
    phase: str = "forward",
    device_id: int = 0,
    threads: int = 1024,
    block_size: int = 256,
    element_bytes: int = 4,
    fp32_flops: float = 1024.0,
    int32_iops: float = 0.0,
    ldst_instrs: float = 64.0,
    control_instrs: float = 32.0,
    bytes_read: float = 4096.0,
    bytes_written: float = 4096.0,
    reuse_factor: float = 1.0,
    compute_scale: float = 1.0,
    access: Optional[AccessPattern] = None,
) -> tuple:
    """One ``("K", launch)`` event with zeroed timing fields.

    Fusion never reads timing from its *inputs* (only from the re-analysed
    fused descriptor), so synthetic launches don't need the analysis
    pipeline.
    """
    desc = KernelDescriptor(
        name=name,
        op_class=op_class,
        threads=threads,
        fp32_flops=fp32_flops,
        int32_iops=int32_iops,
        ldst_instrs=ldst_instrs,
        control_instrs=control_instrs,
        bytes_read=bytes_read,
        bytes_written=bytes_written,
        reuse_factor=reuse_factor,
        access=access or AccessPattern.coalesced(element_bytes),
        block_size=block_size,
        phase=phase,
        compute_scale=compute_scale,
    )
    launch = KernelLaunch(
        descriptor=desc,
        launch_id=-1,
        device_id=device_id,
        cycles=0.0,
        duration_s=0.0,
        start_s=0.0,
        instructions=0.0,
        fp32_instrs=0.0,
        int32_instrs=0.0,
        ipc=0.0,
        occupancy=0.0,
        memory=MemoryMetrics(),
        stalls=StallBreakdown(),
    )
    return ("K", launch)


def make_transfer(direction: str = "h2d", nbytes: int = 4096,
                  label: str = "batch") -> tuple:
    """One ``("T", record)`` event (always a fusion barrier)."""
    return ("T", TransferRecord(
        direction=direction,
        nbytes=nbytes,
        num_values=nbytes // 4,
        num_zeros=0,
        label=label,
        start_s=0.0,
        duration_s=0.0,
        device_id=0,
    ))


def events(max_size: int = 40):
    """Shrinkable Hypothesis strategy over launch-sequence event lists.

    Skews towards fusible elementwise launches so generated sequences
    actually contain runs, while still mixing in every barrier kind:
    reductions (both by op class and by ``reuse_factor``), GEMMs, strided
    elementwise kernels, transfers, epoch boundaries, phase switches, and a
    second device.
    """
    from hypothesis import strategies as st

    # exact-in-float integers: cost-conservation asserts exact FP equality
    work = st.integers(min_value=0, max_value=2**20).map(float)

    fusible_kernel = st.builds(
        make_launch,
        name=st.sampled_from(ELEMENTWISE_NAMES),
        # skew every compatibility axis towards its common value so adjacent
        # fusible launches actually form runs, while keeping each axis able
        # to break one
        phase=st.sampled_from(("forward", "forward", "forward", "backward",
                               "optimizer")),
        device_id=st.sampled_from((0, 0, 0, 0, 1)),
        threads=st.integers(min_value=32, max_value=1 << 16),
        block_size=st.sampled_from((256, 256, 256, 128)),
        element_bytes=st.sampled_from((4, 4, 4, 8)),
        fp32_flops=work,
        int32_iops=work,
        bytes_read=work,
        bytes_written=work,
        control_instrs=work,
    )
    unfusible_elementwise = st.one_of(
        # elementwise but cache-reusing (acts like a fused-unsafe kernel)
        st.builds(make_launch, name=st.just("ew_reuse"),
                  reuse_factor=st.just(1.5), fp32_flops=work),
        # elementwise but strided access
        st.builds(make_launch, name=st.just("ew_strided"),
                  access=st.just(AccessPattern.strided(128)),
                  fp32_flops=work),
        # elementwise with shape-dependent compute scaling
        st.builds(make_launch, name=st.just("ew_scaled"),
                  compute_scale=st.just(2.0), fp32_flops=work),
    )
    barrier_kernel = st.one_of(
        st.builds(make_launch, name=st.just("rowsum"),
                  op_class=st.just(OpClass.REDUCTION),
                  reuse_factor=st.just(1.5), fp32_flops=work),
        st.builds(make_launch, name=st.just("gemm"),
                  op_class=st.just(OpClass.GEMM),
                  reuse_factor=st.just(8.0), fp32_flops=work),
        st.builds(make_launch, name=st.just("gather"),
                  op_class=st.just(OpClass.GATHER), fp32_flops=work),
    )
    event = st.one_of(
        fusible_kernel,
        fusible_kernel,  # bias towards runs forming at all
        unfusible_elementwise,
        barrier_kernel,
        st.builds(make_transfer, direction=st.sampled_from(("h2d", "d2h")),
                  nbytes=st.integers(min_value=4, max_value=1 << 20)),
        st.just(EPOCH_BOUNDARY),
    )
    return st.lists(event, max_size=max_size)


def random_events(rng: np.random.Generator, size: int = 40) -> list[tuple]:
    """Seeded, Hypothesis-free equivalent of :func:`events` for reuse."""
    out: list[tuple] = []
    for _ in range(size):
        roll = rng.random()
        work = float(rng.integers(0, 2**20))
        if roll < 0.55:
            out.append(make_launch(
                name=ELEMENTWISE_NAMES[int(rng.integers(len(ELEMENTWISE_NAMES)))],
                phase=PHASES[int(rng.integers(len(PHASES)))] if rng.random() < 0.3
                else "forward",
                device_id=int(rng.random() < 0.2),
                threads=int(rng.integers(32, 1 << 16)),
                block_size=128 if rng.random() < 0.25 else 256,
                element_bytes=8 if rng.random() < 0.25 else 4,
                fp32_flops=work,
                bytes_read=float(rng.integers(0, 2**20)),
                bytes_written=float(rng.integers(0, 2**20)),
            ))
        elif roll < 0.7:
            out.append(make_launch(name="rowsum",
                                   op_class=OpClass.REDUCTION,
                                   reuse_factor=1.5, fp32_flops=work))
        elif roll < 0.85:
            out.append(make_transfer(
                direction=("h2d", "d2h")[int(rng.integers(2))],
                nbytes=int(rng.integers(4, 1 << 20)),
            ))
        else:
            out.append(EPOCH_BOUNDARY)
    return out
