"""Physical-consistency validators for the simulated GPU's output records.

The analytical cache/timing/stall models produce numbers that downstream
figures treat as ground truth.  These validators encode what must hold for
*every* record regardless of workload — times nonnegative and monotone,
stall shares a probability distribution, hit rates genuine rates, byte flows
consistent with the memory hierarchy — so a model refactor that breaks the
physics fails loudly instead of skewing a figure.

Use :class:`InvariantChecker` as a device listener ("strict mode"):

    checker = InvariantChecker().attach(device)
    ... run training ...
    checker.detach()

or the :func:`strict_mode` context manager.  Violations raise
:class:`InvariantViolation` (an ``AssertionError`` subclass, so pytest
reports them as failures, not errors).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..gpu.device import SimulatedGPU
from ..gpu.kernel import (
    AccessKind,
    KernelDescriptor,
    KernelLaunch,
    StallBreakdown,
    TransferRecord,
)

#: stall shares are normalized exactly; allow float accumulation noise.
_STALL_SUM_TOL = 1e-6
#: RLE byte-pair encoding can expand dense payloads slightly; anything past
#: this bound means the compression model (or wire_bytes plumbing) broke.
_WIRE_EXPANSION_LIMIT = 1.25


class InvariantViolation(AssertionError):
    """A simulated record violated a physical-consistency invariant."""


def _fail(record: str, message: str) -> None:
    raise InvariantViolation(f"{record}: {message}")


def check_descriptor(desc: KernelDescriptor) -> None:
    """Validate the static kernel description."""
    where = f"descriptor {desc.name!r}"
    if desc.threads < 1:
        _fail(where, f"threads={desc.threads} < 1")
    if desc.block_size < 1:
        _fail(where, f"block_size={desc.block_size} < 1")
    for attr in ("fp32_flops", "int32_iops", "ldst_instrs", "control_instrs",
                 "bytes_read", "bytes_written"):
        value = getattr(desc, attr)
        if not np.isfinite(value) or value < 0:
            _fail(where, f"{attr}={value} is negative or non-finite")
    if desc.working_set_bytes <= 0:
        _fail(where, f"working_set_bytes={desc.working_set_bytes} <= 0")
    if desc.reuse_factor < 1.0:
        _fail(where, f"reuse_factor={desc.reuse_factor} < 1")
    if desc.compute_scale <= 0:
        _fail(where, f"compute_scale={desc.compute_scale} <= 0")
    if desc.phase not in ("forward", "backward", "optimizer"):
        _fail(where, f"unknown phase {desc.phase!r}")
    if desc.access.kind is AccessKind.IRREGULAR and desc.access.indices is None:
        _fail(where, "IRREGULAR access pattern carries no index array")


def check_stalls(stalls: StallBreakdown, where: str = "stalls") -> None:
    """Stall shares must form a probability distribution."""
    for key, share in stalls.as_dict().items():
        if not np.isfinite(share) or share < 0 or share > 1:
            _fail(where, f"stall share {key}={share} outside [0, 1]")
    total = stalls.total()
    if abs(total - 1.0) > _STALL_SUM_TOL:
        _fail(where, f"stall shares sum to {total!r}, expected 1")


def check_launch(launch: KernelLaunch) -> None:
    """Validate one completed kernel launch."""
    desc = launch.descriptor
    where = f"launch #{launch.launch_id} ({desc.name!r})"
    check_descriptor(desc)

    if not np.isfinite(launch.start_s) or launch.start_s < 0:
        _fail(where, f"start_s={launch.start_s} is negative or non-finite")
    if not np.isfinite(launch.duration_s) or launch.duration_s <= 0:
        _fail(where, f"duration_s={launch.duration_s} must be positive")
    if launch.cycles <= 0:
        _fail(where, f"cycles={launch.cycles} must be positive")
    if launch.ipc <= 0:
        _fail(where, f"ipc={launch.ipc} must be positive")
    if not (0.0 < launch.occupancy <= 1.0):
        _fail(where, f"occupancy={launch.occupancy} outside (0, 1]")

    # instruction identity: total = fp32 + int32 + ldst + control, where the
    # timing model substitutes an 8% control-overhead estimate when the
    # descriptor leaves control_instrs unset.
    control = desc.control_instrs
    if control <= 0:
        control = 0.08 * (launch.fp32_instrs + launch.int32_instrs
                          + desc.ldst_instrs)
    expected = (launch.fp32_instrs + launch.int32_instrs
                + desc.ldst_instrs + control)
    if launch.instructions <= 0:
        _fail(where, f"instructions={launch.instructions} must be positive")
    if not np.isclose(launch.instructions, expected, rtol=1e-6):
        _fail(where, f"instructions={launch.instructions} != "
                     f"fp32+int32+ldst+control={expected}")

    mem = launch.memory
    for attr in ("l1_hit_rate", "l2_hit_rate", "divergent_load_fraction"):
        rate = getattr(mem, attr)
        if not np.isfinite(rate) or rate < 0 or rate > 1:
            _fail(where, f"{attr}={rate} outside [0, 1]")
    if mem.transactions < 0:
        _fail(where, f"transactions={mem.transactions} negative")
    if mem.lines_per_warp < 1.0:
        _fail(where, f"lines_per_warp={mem.lines_per_warp} < 1")
    if mem.l2_bytes < 0 or mem.dram_bytes < 0:
        _fail(where, f"negative byte flow (l2={mem.l2_bytes}, "
                     f"dram={mem.dram_bytes})")
    # traffic only ever shrinks moving down the hierarchy
    if mem.dram_bytes > mem.l2_bytes * (1 + 1e-9):
        _fail(where, f"dram_bytes={mem.dram_bytes} exceeds "
                     f"l2_bytes={mem.l2_bytes}")

    check_stalls(launch.stalls, where=f"{where} stalls")


def check_transfer(record: TransferRecord) -> None:
    """Validate one host<->device copy record."""
    where = f"transfer {record.label!r} ({record.direction})"
    if record.direction not in ("h2d", "d2h"):
        _fail(where, f"unknown direction {record.direction!r}")
    if record.nbytes < 0 or record.num_values < 0:
        _fail(where, f"negative size (nbytes={record.nbytes}, "
                     f"num_values={record.num_values})")
    if not (0 <= record.num_zeros <= record.num_values):
        _fail(where, f"num_zeros={record.num_zeros} outside "
                     f"[0, num_values={record.num_values}]")
    if not np.isfinite(record.start_s) or record.start_s < 0:
        _fail(where, f"start_s={record.start_s} is negative or non-finite")
    if not np.isfinite(record.duration_s) or record.duration_s < 0:
        _fail(where, f"duration_s={record.duration_s} negative or non-finite")
    if record.wire_bytes < 0:
        _fail(where, f"wire_bytes={record.wire_bytes} negative")
    if record.wire_bytes > record.nbytes * _WIRE_EXPANSION_LIMIT + 64:
        _fail(where, f"wire_bytes={record.wire_bytes} expands nbytes="
                     f"{record.nbytes} beyond the RLE worst case")


class InvariantChecker:
    """Device listener that validates every launch and transfer as it occurs.

    Also enforces stream-level ordering: record start times must be
    nondecreasing (the simulated clock never rewinds), and launch starts
    never precede the previous launch's enqueue-constrained start.
    """

    def __init__(self) -> None:
        self.launches_checked = 0
        self.transfers_checked = 0
        self._last_start_s = 0.0
        self._device: Optional[SimulatedGPU] = None

    def attach(self, device: SimulatedGPU) -> "InvariantChecker":
        device.add_launch_listener(self.on_launch)
        device.add_transfer_listener(self.on_transfer)
        self._device = device
        return self

    def detach(self) -> None:
        if self._device is not None:
            self._device.remove_launch_listener(self.on_launch)
            self._device.remove_transfer_listener(self.on_transfer)
            self._device = None

    def __enter__(self) -> "InvariantChecker":
        return self

    def __exit__(self, *exc) -> None:
        self.detach()

    def _check_monotone(self, start_s: float, where: str) -> None:
        if start_s + 1e-12 < self._last_start_s:
            _fail(where, f"start_s={start_s} precedes previous record at "
                         f"{self._last_start_s} (clock rewound)")
        self._last_start_s = start_s

    def on_launch(self, launch: KernelLaunch) -> None:
        check_launch(launch)
        self._check_monotone(
            launch.start_s, f"launch #{launch.launch_id} ({launch.name!r})"
        )
        self.launches_checked += 1

    def on_transfer(self, record: TransferRecord) -> None:
        check_transfer(record)
        self._check_monotone(
            record.start_s, f"transfer {record.label!r} ({record.direction})"
        )
        self.transfers_checked += 1


class strict_mode:
    """Context manager enabling invariant checking on a device.

        with strict_mode(device):
            trainer.run(epochs=1, seed=0)
    """

    def __init__(self, device: SimulatedGPU) -> None:
        self.checker = InvariantChecker()
        self._device = device

    def __enter__(self) -> InvariantChecker:
        return self.checker.attach(self._device)

    def __exit__(self, *exc) -> None:
        self.checker.detach()
