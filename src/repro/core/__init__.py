"""GNNMark core: workload registry (Table I), characterization pipeline and
the top-level :class:`GNNMark` suite API."""

from . import cache, executor, registry
from .cache import ProfileCache
from .characterize import (
    SuiteProfile,
    WorkloadProfile,
    profile_inference,
    profile_suite,
    profile_workload,
)
from .suite import GNNMark

__all__ = [
    "GNNMark",
    "ProfileCache",
    "cache",
    "executor",
    "profile_inference",
    "SuiteProfile",
    "WorkloadProfile",
    "profile_suite",
    "profile_workload",
    "registry",
]
