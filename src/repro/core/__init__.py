"""GNNMark core: workload registry (Table I), characterization pipeline and
the top-level :class:`GNNMark` suite API."""

from . import registry
from .characterize import (
    SuiteProfile,
    WorkloadProfile,
    profile_inference,
    profile_suite,
    profile_workload,
)
from .suite import GNNMark

__all__ = [
    "GNNMark",
    "profile_inference",
    "SuiteProfile",
    "WorkloadProfile",
    "profile_suite",
    "profile_workload",
    "registry",
]
