"""Persistent on-disk cache for suite characterization artifacts.

PR 1's golden fingerprints prove that every workload's kernel stream is a
deterministic function of ``(workload key, scale, epochs, seed)`` — so a
profile computed once is valid until the *code* changes.  This module keys
cached payloads by exactly those fields plus a **code fingerprint**: a
SHA-256 over every ``.py`` file in the installed ``repro`` source tree.
Re-running an unchanged suite replays profiles from disk in milliseconds;
editing any source file changes the fingerprint and invalidates every
entry cleanly (stale files are simply never addressed again).

The cache is defensive by design: a corrupted, truncated or
version-skewed entry is treated as a miss (and deleted best-effort), never
an error — the worst failure mode is recomputing a profile.

Layout: one pickle per entry under the cache root
(``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro-gnnmark``, else
``~/.cache/repro-gnnmark``), named ``<sha256 of the key fields>.pkl``.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Optional

#: bump to orphan every existing cache entry after a format change
CACHE_VERSION = 1

_SOURCE_FINGERPRINT: Optional[str] = None


def source_fingerprint() -> str:
    """SHA-256 over the ``repro`` package's source tree (paths + contents).

    Computed once per process; any edit to any ``repro/**/*.py`` changes it,
    so cached profiles can never outlive the code that produced them.
    """
    global _SOURCE_FINGERPRINT
    if _SOURCE_FINGERPRINT is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        h = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            h.update(path.relative_to(root).as_posix().encode())
            h.update(b"\0")
            h.update(path.read_bytes())
            h.update(b"\0")
        _SOURCE_FINGERPRINT = h.hexdigest()
    return _SOURCE_FINGERPRINT


def default_cache_dir() -> Path:
    """Cache root (override with ``REPRO_CACHE_DIR``)."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-gnnmark"


class ProfileCache:
    """Content-addressed pickle store for profile/fingerprint payloads."""

    def __init__(self, root: Optional[Path] = None,
                 fingerprint: Optional[str] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.fingerprint = (fingerprint if fingerprint is not None
                            else source_fingerprint())
        self.hits = 0
        self.misses = 0
        self.stores = 0

    # -- addressing -------------------------------------------------------
    def key_for(self, kind: str, **fields) -> str:
        """Stable address for one task's payload.

        ``kind`` separates task families ("profile", "fingerprint",
        "scaling"); ``fields`` carry the task parameters (workload key,
        scale, epochs, seed, ...).  The code fingerprint and cache version
        are always mixed in, so any source edit or format bump is a clean
        invalidation.
        """
        payload = json.dumps(
            {"version": CACHE_VERSION, "code": self.fingerprint,
             "kind": kind, "fields": fields},
            sort_keys=True, default=repr,
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.pkl"

    # -- load/store -------------------------------------------------------
    def load(self, key: str):
        """Return the cached payload, or ``None`` on any miss or damage."""
        path = self.path_for(key)
        try:
            with open(path, "rb") as fh:
                entry = pickle.load(fh)
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            # corrupted / truncated / unpicklable: recompute, don't crash
            self.misses += 1
            self._discard(path)
            return None
        if (not isinstance(entry, dict)
                or entry.get("version") != CACHE_VERSION
                or entry.get("key") != key
                or "payload" not in entry):
            self.misses += 1
            self._discard(path)
            return None
        self.hits += 1
        return entry["payload"]

    def store(self, key: str, payload) -> Optional[Path]:
        """Atomically persist ``payload`` under ``key`` (best-effort)."""
        path = self.path_for(key)
        entry = {"version": CACHE_VERSION, "key": key, "payload": payload}
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(entry, fh, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)
            except BaseException:
                self._discard(Path(tmp))
                raise
        except (OSError, pickle.PicklingError):
            # read-only FS / unpicklable payload: caching is an optimisation,
            # never a reason to fail the run
            return None
        self.stores += 1
        return path

    @staticmethod
    def _discard(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass


def resolve_cache(cache) -> Optional[ProfileCache]:
    """Normalize a user-facing ``cache`` argument.

    ``True`` → a default :class:`ProfileCache`; ``None``/``False`` →
    caching disabled; an existing :class:`ProfileCache` passes through.
    """
    if cache is True:
        return ProfileCache()
    if cache is None or cache is False:
        return None
    return cache
