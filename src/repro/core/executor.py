"""Suite execution engine: process-pool fan-out + persistent profile cache.

``GNNMark.characterize_suite`` historically profiled all workloads strictly
serially in one process and recomputed everything from scratch on every
invocation.  Both costs are unnecessary:

* workloads are **independent** — each run builds its own
  :class:`~repro.gpu.device.SimulatedGPU` and reseeds the framework RNG, so
  characterizations fan out over a ``multiprocessing`` pool with no shared
  state (workers return picklable payloads);
* workloads are **deterministic** functions of
  ``(key, scale, epochs, seed)`` and the source tree (PR 1's golden
  fingerprints are the proof), so finished payloads persist in a
  :class:`~repro.core.cache.ProfileCache` and replay in milliseconds until
  the code changes.

Correctness here means *bit-identical kernel streams*: the serial, parallel
and cache-hit paths all execute the same self-seeding task functions, and
``tests/test_executor.py`` asserts byte-identical golden digests across all
three for every registry workload.

Tasks are declarative ``(kind, params)`` pairs so they cross process
boundaries without pickling closures:

* ``("profile", {...})``      → :func:`repro.core.characterize.profile_workload`
* ``("fingerprint", {...})``  → :func:`repro.testing.golden.fingerprint_workload`
* ``("scaling", {...})``      → :func:`repro.train.ddp.run_scaling_point`
* ``("trace", {...})``        → :func:`repro.profiling.trace.trace_fingerprint`
* ``("memstats", {...})``     → :func:`repro.core.characterize.measure_memory`
* ``("capture_fingerprint", {...})`` → :func:`repro.testing.golden.capture_fingerprint`
* ``("fused_fingerprint", {...})``   → :func:`repro.testing.golden.fused_fingerprint`
* ``("serve", {...})``        → :func:`repro.serve.serve_report`
* ``("sample", {...})``       → :func:`repro.train.loader.sample_report`
* ``("shard", {...})``        → :func:`repro.train.sharded.shard_report`

``jobs=None`` resolves the worker count from ``$REPRO_JOBS`` (default 1),
which is how CI exercises the parallel path under the stock pytest suite.
"""

from __future__ import annotations

import multiprocessing
import os
import tempfile
import time
import warnings
from typing import Optional, Sequence

from .cache import ProfileCache, resolve_cache
from . import registry

Task = tuple  # (kind: str, params: dict)


def _run_profile(params: dict):
    from . import characterize

    return characterize.profile_workload(**params)


def _run_fingerprint(params: dict):
    from ..testing import golden

    return golden.fingerprint_workload(**params)


def _run_scaling(params: dict):
    from ..train import ddp

    return ddp.run_scaling_point(**params)


def _run_trace(params: dict):
    from ..profiling import trace

    return trace.trace_fingerprint(**params)


def _run_memstats(params: dict):
    from . import characterize

    return characterize.measure_memory(**params)


def _run_capture_fingerprint(params: dict):
    from ..testing import golden

    return golden.capture_fingerprint(**params)


def _run_fused_fingerprint(params: dict):
    from ..testing import golden

    return golden.fused_fingerprint(**params)


def _run_serve(params: dict):
    from ..serve import server

    return server.serve_report(**params)


def _run_sample(params: dict):
    from ..train import loader

    return loader.sample_report(**params)


def _run_shard(params: dict):
    from ..train import sharded

    return sharded.shard_report(**params)


def _run_insights(params: dict):
    from ..profiling import insights

    return insights.insights_report(**params)


_TASK_RUNNERS = {
    "profile": _run_profile,
    "fingerprint": _run_fingerprint,
    "scaling": _run_scaling,
    "trace": _run_trace,
    "memstats": _run_memstats,
    "capture_fingerprint": _run_capture_fingerprint,
    "fused_fingerprint": _run_fused_fingerprint,
    "serve": _run_serve,
    "sample": _run_sample,
    "shard": _run_shard,
    "insights": _run_insights,
}


def execute_task(task: Task):
    """Run one task in the current process.

    Reseeds the framework RNG from the task's own seed first, so a pool
    worker that just finished another workload starts from exactly the
    state a fresh process would — the task functions reseed themselves
    too, but the engine must not *rely* on that for worker isolation.
    """
    kind, params = task
    if kind not in _TASK_RUNNERS:
        raise ValueError(f"unknown task kind {kind!r}; have {sorted(_TASK_RUNNERS)}")
    from ..profiling import metrics
    from ..tensor import manual_seed

    manual_seed(int(params.get("seed", 0)))
    t0 = time.perf_counter()
    result = _TASK_RUNNERS[kind](params)
    # Per-task wall latency into the metrics registry.  This runs once per
    # *task* (a whole workload characterization), never per launch, so the
    # kernel hot path stays untouched; in a pool worker the observation
    # lands in that worker's registry and dies with the process.
    metrics.observe_task(kind, time.perf_counter() - t0, cached=False)
    return result


def resolve_jobs(jobs: Optional[int]) -> int:
    """``None`` → ``$REPRO_JOBS`` (default 1); always at least 1."""
    if jobs is None:
        try:
            jobs = int(os.environ.get("REPRO_JOBS", "1"))
        except ValueError:
            jobs = 1
    return max(1, int(jobs))


def _pool_context():
    # fork shares the already-imported interpreter (cheap workers on the
    # platforms CI runs on); fall back to spawn where fork is unavailable.
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def run_tasks(tasks: Sequence[Task], jobs: Optional[int] = None,
              cache=None) -> list:
    """Execute ``tasks``, returning results aligned with the input order.

    Cache hits short-circuit execution entirely; misses run serially or on
    a process pool (``jobs`` workers) and are persisted afterwards.
    """
    tasks = list(tasks)
    jobs = resolve_jobs(jobs)
    store: Optional[ProfileCache] = resolve_cache(cache)

    from ..profiling import metrics

    results: list = [None] * len(tasks)
    keys: list = [None] * len(tasks)
    pending: list[int] = []
    for i, (kind, params) in enumerate(tasks):
        if store is not None:
            keys[i] = store.key_for(kind, **params)
            t0 = time.perf_counter()
            hit = store.load(keys[i])
            if hit is not None:
                metrics.observe_task(kind, time.perf_counter() - t0,
                                     cached=True)
                results[i] = hit
                continue
        pending.append(i)

    if pending:
        if jobs > 1 and len(pending) > 1:
            ctx = _pool_context()
            with ctx.Pool(processes=min(jobs, len(pending))) as pool:
                computed = pool.map(
                    execute_task, [tasks[i] for i in pending], chunksize=1
                )
        else:
            computed = [execute_task(tasks[i]) for i in pending]
        for i, result in zip(pending, computed):
            results[i] = result
            if store is not None:
                store.store(keys[i], result)
    if store is not None:
        metrics.collect_profile_cache(store)
    return results


# -- suite-level conveniences -------------------------------------------------
def profile_tasks(keys: Optional[Sequence[str]] = None, scale: str = "profile",
                  epochs: int = 1, seed: int = 0,
                  strict: bool = False) -> list[Task]:
    if keys is None:
        keys = list(registry.WORKLOAD_KEYS)
    return [("profile", dict(key=k, scale=scale, epochs=epochs, seed=seed,
                             strict=strict)) for k in keys]


def run_suite(keys: Optional[Sequence[str]] = None, scale: str = "profile",
              epochs: int = 1, seed: int = 0, strict: bool = False,
              jobs: Optional[int] = None, cache=None):
    """Characterize workloads through the engine → :class:`SuiteProfile`."""
    from .characterize import SuiteProfile

    tasks = profile_tasks(keys, scale=scale, epochs=epochs, seed=seed,
                          strict=strict)
    profiles = run_tasks(tasks, jobs=jobs, cache=cache)
    suite = SuiteProfile()
    for (_, params), profile in zip(tasks, profiles):
        suite.profiles[params["key"]] = profile
    return suite


def fingerprint_suite(keys: Optional[Sequence[str]] = None,
                      scale: str = "test", epochs: int = 1, seed: int = 0,
                      jobs: Optional[int] = None, cache=None) -> dict:
    """Golden kernel-stream fingerprints for ``keys``, keyed by workload.

    Digests are order-independent per workload (each fingerprint hashes
    only its own stream), so generating them in parallel is equivalent to
    the serial loop by construction.
    """
    if keys is None:
        keys = list(registry.WORKLOAD_KEYS)
    tasks: list[Task] = [
        ("fingerprint", dict(key=k, scale=scale, epochs=epochs, seed=seed))
        for k in keys
    ]
    return dict(zip(keys, run_tasks(tasks, jobs=jobs, cache=cache)))


def trace_suite(keys: Optional[Sequence[str]] = None, scale: str = "test",
                epochs: int = 1, seed: int = 0, num_gpus: int = 1,
                jobs: Optional[int] = None, cache=None) -> dict:
    """Golden timeline-trace fingerprints for ``keys``, keyed by workload.

    Each fingerprint digests only its own workload's canonical trace JSON
    (simulated-clock timestamps, canonical span order), so — like stream
    fingerprints — parallel generation and cache replay are byte-identical
    to the serial loop.
    """
    if keys is None:
        keys = list(registry.WORKLOAD_KEYS)
    tasks: list[Task] = [
        ("trace", dict(key=k, scale=scale, epochs=epochs, seed=seed,
                       num_gpus=num_gpus))
        for k in keys
    ]
    return dict(zip(keys, run_tasks(tasks, jobs=jobs, cache=cache)))


def memstats_suite(keys: Optional[Sequence[str]] = None, scale: str = "test",
                   epochs: int = 1, seed: int = 0, strict: bool = False,
                   jobs: Optional[int] = None, cache=None) -> dict:
    """Device-memory reports for ``keys``, keyed by workload.

    Each report digests only shape-derived byte counts from its own seeded
    run (:func:`repro.core.characterize.measure_memory` suspends the cyclic
    GC so free timing is refcount-deterministic), so memory snapshots are
    byte-identical across ``--jobs``, cache settings and repeat runs.
    """
    if keys is None:
        keys = list(registry.WORKLOAD_KEYS)
    tasks: list[Task] = [
        ("memstats", dict(key=k, scale=scale, epochs=epochs, seed=seed,
                          strict=strict))
        for k in keys
    ]
    return dict(zip(keys, run_tasks(tasks, jobs=jobs, cache=cache)))


def capture_suite(keys: Optional[Sequence[str]] = None, scale: str = "test",
                  epochs: int = 5, seed: int = 0, mode: str = "capture",
                  analysis_cache_enabled: Optional[bool] = None,
                  jobs: Optional[int] = None, cache=None) -> dict:
    """Capture-replay (or steady-dispatch) run fingerprints, keyed by key.

    Each task clears the launch-analysis cache and applies the requested
    cache setting *inside* the task function, so results are byte-identical
    whether they run in-process, on pool workers, or from the profile cache —
    the differential replay suite fans its dispatch-vs-replay comparisons
    out through here.
    """
    if keys is None:
        keys = list(registry.WORKLOAD_KEYS)
    tasks: list[Task] = [
        ("capture_fingerprint",
         dict(key=k, scale=scale, epochs=epochs, seed=seed, mode=mode,
              analysis_cache_enabled=analysis_cache_enabled))
        for k in keys
    ]
    return dict(zip(keys, run_tasks(tasks, jobs=jobs, cache=cache)))


def fused_suite(keys: Optional[Sequence[str]] = None, scale: str = "test",
                epochs: int = 5, seed: int = 0,
                jobs: Optional[int] = None, cache=None) -> dict:
    """Fused-plan fingerprints (``golden --fused``), keyed by workload."""
    if keys is None:
        keys = list(registry.WORKLOAD_KEYS)
    tasks: list[Task] = [
        ("fused_fingerprint", dict(key=k, scale=scale, epochs=epochs,
                                   seed=seed))
        for k in keys
    ]
    return dict(zip(keys, run_tasks(tasks, jobs=jobs, cache=cache)))


def serve_suite(keys: Optional[Sequence[str]] = None, scale: str = "test",
                qps: float = 100.0, arrival: str = "poisson",
                batch_max: int = 8, max_wait_us: float = 2000.0,
                requests: int = 256, num_users: int = 64, seed: int = 0,
                jobs: Optional[int] = None, cache=None) -> dict:
    """Serving reports for ``keys`` (default: the serveable workloads).

    Each report is a pure function of its own parameters — seeded arrivals,
    simulated-clock queueing, capture/replay batch execution — so serving
    digests are byte-identical across ``--jobs``, cache settings and repeat
    runs (``tests/test_serve_golden.py`` pins the matrix).
    """
    if keys is None:
        from ..serve import SERVEABLE

        keys = list(SERVEABLE)
    tasks: list[Task] = [
        ("serve", dict(key=k, scale=scale, qps=qps, arrival=arrival,
                       batch_max=batch_max, max_wait_us=max_wait_us,
                       requests=requests, num_users=num_users, seed=seed))
        for k in keys
    ]
    return dict(zip(keys, run_tasks(tasks, jobs=jobs, cache=cache)))


def sample_suite(keys: Optional[Sequence[str]] = None, scale: str = "test",
                 fanouts=(10, 5), batch_size: int = 64,
                 prefetch_depth: int = 2, epochs: int = 2,
                 nodes=None, seed: int = 0,
                 jobs: Optional[int] = None, cache=None) -> dict:
    """Sampled-training reports for ``keys`` (default: goldened workloads).

    Each report is a pure function of its own parameters — seeded neighbor
    draws, the closed-form sampler cost model, simulated-clock overlap — so
    sample digests are byte-identical across ``--jobs``, cache settings and
    repeat runs (``tests/test_sample_golden.py`` pins the matrix).
    """
    if keys is None:
        from ..train.loader import SAMPLE_DEFAULT_KEYS

        keys = list(SAMPLE_DEFAULT_KEYS)
    tasks: list[Task] = [
        ("sample", dict(key=k, scale=scale, fanouts=tuple(fanouts),
                        batch_size=batch_size, prefetch_depth=prefetch_depth,
                        epochs=epochs, nodes=nodes, seed=seed))
        for k in keys
    ]
    return dict(zip(keys, run_tasks(tasks, jobs=jobs, cache=cache)))


def shard_suite(names: Optional[Sequence[str]] = None, seed: Optional[int] = None,
                jobs: Optional[int] = None, cache=None, **overrides) -> dict:
    """Sharded-training reports for ``names`` (default: goldened configs).

    Each name is either a named shard configuration (``ARGA-P4``) or a bare
    shardable workload key; ``overrides`` land on top of the resolved
    parameters.  Reports are pure functions of their parameters (partition
    plans, simulated clocks, integer geometry), so shard digests are
    byte-identical across ``--jobs``, cache settings and repeat runs
    (``tests/test_shard_golden.py`` pins the matrix).
    """
    from ..train.sharded import SHARD_GOLDEN_KEYS, resolve_shard_config

    if names is None:
        names = list(SHARD_GOLDEN_KEYS)
    tasks: list[Task] = []
    for name in names:
        key, params = resolve_shard_config(name)
        params.update(overrides)
        if seed is not None:
            params["seed"] = seed
        tasks.append(("shard", dict(key=key, **params)))
    return dict(zip(names, run_tasks(tasks, jobs=jobs, cache=cache)))


def insights_suite(keys: Optional[Sequence[str]] = None, scale: str = "test",
                   epochs: int = 2, seed: int = 0, gpus: int = 1,
                   jobs: Optional[int] = None, cache=None) -> dict:
    """Roofline/bottleneck insights reports for ``keys`` (default: suite).

    Each report folds pure functions of ``(descriptor, SimulationConfig)``
    over the simulated clock, so ``insights_digest`` is byte-identical
    across ``--jobs``, profile-cache warm/cold, analysis-cache on/off and
    repeat runs (``tests/test_insights_golden.py`` pins the matrix).
    """
    if keys is None:
        keys = list(registry.WORKLOAD_KEYS)
    tasks: list[Task] = [
        ("insights", dict(key=k, scale=scale, epochs=epochs, seed=seed,
                          gpus=gpus))
        for k in keys
    ]
    return dict(zip(keys, run_tasks(tasks, jobs=jobs, cache=cache)))


def run_scaling_points(points: Sequence[tuple[str, int]],
                       scale: str = "scaling", epochs: int = 1, seed: int = 0,
                       jobs: Optional[int] = None, cache=None) -> list:
    """Fan the Figure-9 grid out over the pool: every ``(workload,
    gpu count)`` measurement is an independent simulation."""
    tasks: list[Task] = [
        ("scaling", dict(key=k, num_gpus=n, scale=scale, epochs=epochs,
                         seed=seed))
        for k, n in points
    ]
    return run_tasks(tasks, jobs=jobs, cache=cache)


# -- benchmark ---------------------------------------------------------------
def benchmark_suite(keys: Optional[Sequence[str]] = None, scale: str = "test",
                    epochs: int = 1, seed: int = 0,
                    jobs: Optional[int] = None) -> dict:
    """Time cold-serial, cold-parallel and warm (cache-hit) suite runs.

    Uses throwaway cache directories so the measurement is hermetic: the
    "cold" timings never see a developer's populated cache, and nothing is
    left behind.  Returns the ``BENCH_suite.json`` payload.
    """
    if keys is None:
        keys = list(registry.WORKLOAD_KEYS)
    jobs = resolve_jobs(jobs)
    if jobs <= 1:
        cpus = os.cpu_count() or 1
        jobs = max(2, min(4, cpus))

    def timed(run_jobs: int, cache: ProfileCache) -> float:
        t0 = time.perf_counter()
        run_suite(keys, scale=scale, epochs=epochs, seed=seed,
                  jobs=run_jobs, cache=cache)
        return time.perf_counter() - t0

    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        serial_cache = ProfileCache(root=os.path.join(tmp, "serial"))
        parallel_cache = ProfileCache(root=os.path.join(tmp, "parallel"))
        cold_serial_s = timed(1, serial_cache)
        cold_parallel_s = timed(jobs, parallel_cache)
        warm_s = timed(1, serial_cache)  # now fully populated
        warm_hits = serial_cache.hits

    return {
        "suite": list(keys),
        "scale": scale,
        "epochs": epochs,
        "seed": seed,
        "jobs": jobs,
        "cold_serial_s": cold_serial_s,
        "cold_parallel_s": cold_parallel_s,
        "warm_cache_s": warm_s,
        "warm_cache_hits": warm_hits,
        "parallel_speedup": cold_serial_s / cold_parallel_s
        if cold_parallel_s else 0.0,
        "warm_speedup": cold_serial_s / warm_s if warm_s else 0.0,
    }


def _steady_state_run(
    key: str, scale: str, epochs: int, seed: int,
    capture_replay: bool = False, fuse: bool = False, steady: bool = False,
) -> tuple[float, "object", "object"]:
    """Time ``epochs`` of steady-state training for one workload.

    Build and the first (warm-up) epoch are excluded: the paper's protocol
    reports stable per-epoch times, and the warm-up is what populates the
    launch-analysis cache, so the timed region measures the launch path a
    long training run actually lives on.  With ``capture_replay`` the timed
    region covers the capture, validation, and replayed epochs (the
    controller persists across the two ``run`` calls, so the warm-up epoch
    is also the capture warm-up); ``steady`` times restore-and-dispatch
    epochs under the same input discipline, which is the apples-to-apples
    dispatch baseline for replay.  Returns (wall seconds, device stats,
    controller-or-None).
    """
    from ..gpu.device import SimulatedGPU
    from ..tensor import manual_seed
    from ..train.trainer import Trainer

    spec = registry.get(key)
    manual_seed(seed)
    device = SimulatedGPU()
    workload = spec.build(device=device, scale=scale)
    trainer = Trainer(workload=workload, device=device,
                      capture_replay=capture_replay, fuse=fuse, steady=steady)
    trainer.run(epochs=1, seed=seed)
    device.stats.analysis_hits = device.stats.analysis_misses = 0
    t0 = time.perf_counter()
    trainer.run(epochs=epochs, seed=seed)
    return time.perf_counter() - t0, device.stats, trainer._controller


def benchmark_hotpath(keys: Optional[Sequence[str]] = None,
                      scale: str = "test", epochs: int = 3,
                      seed: int = 0, capture_replay: bool = False,
                      fuse: bool = False) -> dict:
    """Steady-state epochs/sec per workload, analysis cache on vs. off.

    The "warm" pass runs with the launch-analysis cache enabled (launches
    degrade to dict lookups after the warm-up epoch); the "cold" pass forces
    ``REPRO_ANALYSIS_CACHE=0`` semantics, running the full analytical
    pipeline on every launch — the pre-cache behaviour.  Both passes train
    identical workloads from identical seeds, so the simulated streams are
    byte-identical and only wall-clock differs.  Returns the
    ``BENCH_hotpath.json`` payload.

    With ``capture_replay`` the warm pass additionally captures the epoch
    plan and replays it (``repro.gpu.graph_capture``); the cold pass then
    runs steady dispatch under the same input discipline so the two streams
    stay identical.  ``fuse`` also merges adjacent elementwise launches in
    the replayed plan — the stream intentionally shrinks, so the comparison
    becomes epochs/sec only.
    """
    from ..gpu import analysis_cache

    if keys is None:
        keys = list(registry.WORKLOAD_KEYS)
    capture_replay = capture_replay or fuse
    workloads: dict[str, dict] = {}
    warm_total = cold_total = 0.0
    for key in keys:
        analysis_cache.clear()
        with analysis_cache.override(True):
            warm_s, stats, controller = _steady_state_run(
                key, scale, epochs, seed,
                capture_replay=capture_replay, fuse=fuse,
            )
            # snapshot while still inside the override: leaving the block
            # toggles the effective cache setting, which resets per-device
            # hit/miss counters (analysis_cache.register_toggle_hook)
            hits, misses = stats.analysis_hits, stats.analysis_misses
        with analysis_cache.override(False):
            cold_s, _, _ = _steady_state_run(
                key, scale, epochs, seed, steady=capture_replay,
            )
        warm_total += warm_s
        cold_total += cold_s
        launches = hits + misses
        workloads[key] = {
            "warm_s": warm_s,
            "cold_s": cold_s,
            "warm_epochs_per_s": epochs / warm_s if warm_s else 0.0,
            "cold_epochs_per_s": epochs / cold_s if cold_s else 0.0,
            "speedup": cold_s / warm_s if warm_s else 0.0,
            "steady_state_launches": launches,
            "analysis_hits": hits,
            "analysis_misses": misses,
            "hit_rate": hits / launches if launches else 0.0,
            "mode": "capture-replay" if capture_replay else "dispatch",
        }
        if controller is not None:
            workloads[key].update(controller.describe())
    analysis_cache.clear()
    return {
        "suite": list(keys),
        "scale": scale,
        "epochs": epochs,
        "seed": seed,
        "capture_replay": capture_replay,
        "fuse": fuse,
        "workloads": workloads,
        "warm_total_s": warm_total,
        "cold_total_s": cold_total,
        "warm_epochs_per_s": len(keys) * epochs / warm_total
        if warm_total else 0.0,
        "cold_epochs_per_s": len(keys) * epochs / cold_total
        if cold_total else 0.0,
        "speedup": cold_total / warm_total if warm_total else 0.0,
    }


def _attribute_failures(failures: list[str], baseline: dict,
                        report: dict) -> list[str]:
    """Append ``diff_insights`` attribution lines to a failing gate.

    The diagnoser tolerates sparse baselines (aggregate-only payloads yield
    no movers), so the gates stay usable against hand-written baselines.
    """
    if failures:
        from ..profiling.insights import diff_insights, render_diff_lines

        failures.extend(render_diff_lines(diff_insights(baseline, report)))
    return failures


def check_hotpath_regression(report: dict, baseline: dict,
                             tolerance: float = 0.25) -> list[str]:
    """Compare a hot-path report against a committed baseline.

    Wall-clock epochs/sec is machine-dependent, so the tracked numbers are
    warm-vs-cold *speedup ratios* — same-machine quantities.  The suite
    aggregate must stay within ``tolerance`` of the committed ratio, and
    each workload must stay above ``max(workload_floor, committed ratio *
    (1 - its tolerance))`` — ``workload_floor`` (default 1.2, the ROADMAP
    target) is a hard floor, and ``workload_tolerance`` in the baseline can
    loosen or tighten individual workloads.  On failure the messages end
    with a ``diff_insights`` attribution of which workloads shifted.
    """
    failures: list[str] = []
    base = float(baseline.get("speedup", 0.0))
    got = float(report.get("speedup", 0.0))
    floor = base * (1.0 - tolerance)
    if got < floor:
        failures.append(
            f"suite warm/cold speedup {got:.2f}x fell below "
            f"{floor:.2f}x ({(1 - tolerance) * 100:.0f}% of the committed "
            f"baseline {base:.2f}x)"
        )
    base_speedups = baseline.get("workload_speedups") or {}
    tolerances = baseline.get("workload_tolerance") or {}
    hard_floor = float(baseline.get("workload_floor", 0.0))
    rows = report.get("workloads", {})
    gated = set(base_speedups) | (set(rows) if hard_floor else set())
    for key in sorted(gated):
        row = rows.get(key)
        if not isinstance(row, dict) or "speedup" not in row:
            continue
        got_w = float(row["speedup"])
        tol_w = float(tolerances.get(key, tolerance))
        base_w = float(base_speedups.get(key, 0.0))
        floor_w = max(hard_floor, base_w * (1.0 - tol_w))
        if got_w < floor_w:
            failures.append(
                f"{key}: warm/cold speedup {got_w:.2f}x fell below "
                f"{floor_w:.2f}x (committed {base_w:.2f}x, tolerance "
                f"{tol_w * 100:.0f}%, hard floor {hard_floor:.2f}x)"
            )
    return _attribute_failures(failures, baseline, report)


def benchmark_sample(keys: Optional[Sequence[str]] = None,
                     scale: str = "test", fanouts=(10, 5),
                     batch_size: int = 64, prefetch_depth: int = 2,
                     epochs: int = 2, seed: int = 0,
                     jobs: Optional[int] = None, cache=None) -> dict:
    """Prefetch-vs-synchronous loader comparison (``BENCH_sample.json``).

    Runs every workload twice on the simulated clock — ``prefetch_depth=0``
    (the sampler blocks the device every batch) and ``prefetch_depth``
    (sampling overlaps compute behind a bounded queue) — and reports
    simulated epochs/sec for both.  Unlike the hot-path benchmark this
    measures *simulated* time, so the numbers are machine-independent and
    byte-deterministic; the CI gate can demand strict improvement.
    """
    from ..train.loader import SAMPLE_DEFAULT_KEYS

    if keys is None:
        keys = list(SAMPLE_DEFAULT_KEYS)
    fanouts = tuple(int(f) for f in fanouts)
    depths = (0, int(prefetch_depth))
    tasks: list[Task] = [
        ("sample", dict(key=k, scale=scale, fanouts=fanouts,
                        batch_size=batch_size, prefetch_depth=d,
                        epochs=epochs, nodes=None, seed=seed))
        for k in keys for d in depths
    ]
    results = run_tasks(tasks, jobs=jobs, cache=cache)
    reports = {(k, d): r for (k, d), r
               in zip([(k, d) for k in keys for d in depths], results)}
    workloads: dict[str, dict] = {}
    sync_wall = prefetch_wall = 0.0
    for key in keys:
        sync, pre = reports[(key, 0)], reports[(key, depths[1])]
        sync_wall += sync["sim_wall_s"]
        prefetch_wall += pre["sim_wall_s"]
        workloads[key] = {
            "sync_epochs_per_s": sync["epochs_per_sim_s"],
            "prefetch_epochs_per_s": pre["epochs_per_sim_s"],
            "speedup": (pre["epochs_per_sim_s"] / sync["epochs_per_sim_s"]
                        if sync["epochs_per_sim_s"] else 0.0),
            "sync_stall_s": sync["loader_stall_s"],
            "prefetch_stall_s": pre["loader_stall_s"],
            "sync_stall_fraction": sync["loader_stall_fraction"],
            "prefetch_stall_fraction": pre["loader_stall_fraction"],
            "queue_occupancy_mean": pre["queue_occupancy_mean"],
            "queue_occupancy_max": pre["queue_occupancy_max"],
            "sample_digest": pre["sample_digest"],
        }
    return {
        "suite": list(keys),
        "scale": scale,
        "fanouts": list(fanouts),
        "batch_size": int(batch_size),
        "prefetch_depth": int(depths[1]),
        "epochs": int(epochs),
        "seed": int(seed),
        "workloads": workloads,
        "sync_wall_s": sync_wall,
        "prefetch_wall_s": prefetch_wall,
        "speedup": sync_wall / prefetch_wall if prefetch_wall else 0.0,
    }


def check_sample_regression(report: dict, baseline: dict,
                            tolerance: float = 0.05) -> list[str]:
    """Gate the prefetch pipeline against its committed baseline.

    All quantities are simulated-clock, hence deterministic: every workload
    must show prefetch strictly beating the synchronous loader on epochs/sec
    with less stall time, and the suite-level speedup must stay within
    ``tolerance`` of the committed baseline's.
    """
    failures: list[str] = []
    for key, w in report.get("workloads", {}).items():
        if w["prefetch_epochs_per_s"] <= w["sync_epochs_per_s"]:
            failures.append(
                f"{key}: prefetch {w['prefetch_epochs_per_s']:.2f} ep/s does "
                f"not beat synchronous {w['sync_epochs_per_s']:.2f} ep/s"
            )
        if w["prefetch_stall_s"] >= w["sync_stall_s"]:
            failures.append(
                f"{key}: prefetch stall {w['prefetch_stall_s']:.6f}s did not "
                f"shrink vs synchronous {w['sync_stall_s']:.6f}s"
            )
    base = float(baseline.get("speedup", 0.0))
    got = float(report.get("speedup", 0.0))
    floor = base * (1.0 - tolerance)
    if got < floor:
        failures.append(
            f"suite prefetch speedup {got:.3f}x fell below {floor:.3f}x "
            f"({(1 - tolerance) * 100:.0f}% of the committed baseline "
            f"{base:.3f}x)"
        )
    return _attribute_failures(failures, baseline, report)


#: capacity-frontier probe grid: node-count ladder x device configurations
SHARD_BENCH = dict(
    ladder=(40960, 49152, 57344, 65536, 73728, 81920, 90112, 98304),
    feat_dim=65536,
    hidden=64,
    configs=(
        ("gpus1", 1, False),
        ("gpus2", 2, False),
        ("gpus4", 4, False),
        ("offload", 4, True),
    ),
)


def benchmark_shard(ladder: Optional[Sequence[int]] = None,
                    feat_dim: Optional[int] = None,
                    hidden: Optional[int] = None,
                    epochs: int = 1, seed: int = 0,
                    jobs: Optional[int] = None, cache=None) -> dict:
    """Capacity-frontier study (``BENCH_shard.json``).

    For each device configuration (1/2/4 partition-parallel GPUs, plus
    host-offload through one GPU) every node count on the ladder runs one
    capacity-mode epoch under the 16 GiB HBM model; a point *fits* when no
    device records an OOM event.  The frontier is the largest fitting node
    count.  Everything is geometry + simulated clocks, hence
    byte-deterministic; the CI gate pins the frontiers exactly.
    """
    ladder = tuple(int(n) for n in (ladder or SHARD_BENCH["ladder"]))
    feat_dim = int(feat_dim or SHARD_BENCH["feat_dim"])
    hidden = int(hidden or SHARD_BENCH["hidden"])
    configs = SHARD_BENCH["configs"]
    grid = [(cfg, nodes) for cfg in configs for nodes in ladder]
    tasks: list[Task] = [
        ("shard", dict(key="ARGA", parts=parts, offload=offload, nodes=nodes,
                       feat_dim=feat_dim, hidden=hidden, epochs=epochs,
                       seed=seed, mode="capacity", strict=False,
                       name=f"frontier-{label}-{nodes}"))
        for (label, parts, offload), nodes in grid
    ]
    with warnings.catch_warnings():
        # non-fitting probes intentionally overflow the capacity model
        warnings.simplefilter("ignore", ResourceWarning)
        results = run_tasks(tasks, jobs=jobs, cache=cache)
    by_point = {(label, nodes): r for ((label, _, _), nodes), r
                in zip(grid, results)}
    out_configs: dict[str, dict] = {}
    frontier: dict[str, int] = {}
    for label, parts, offload in configs:
        points = {}
        best = 0
        for nodes in ladder:
            r = by_point[(label, nodes)]
            fits = r["oom_events"] == 0
            if fits:
                best = nodes
            points[str(nodes)] = {
                "fits": fits,
                "oom_events": r["oom_events"],
                "peak_reserved_bytes": r["peak_reserved_bytes"],
                "halo_bytes": r["halo_bytes"],
                "sim_wall_s": r["sim_wall_s"],
            }
        out_configs[label] = {"parts": parts, "offload": offload,
                              "frontier": best, "points": points}
        frontier[label] = best
    return {
        "ladder": list(ladder),
        "feat_dim": feat_dim,
        "hidden": hidden,
        "epochs": int(epochs),
        "seed": int(seed),
        "configs": out_configs,
        "frontier": frontier,
    }


def check_shard_regression(report: dict, baseline: dict) -> list[str]:
    """Gate the capacity frontier against its committed baseline.

    The frontier is a deterministic function of the partitioner, the byte
    model and the HBM capacity, so the gate demands exact equality per
    configuration, monotone growth with GPU count, and that host offload
    extends the plain single-GPU frontier.
    """
    failures: list[str] = []
    got = report.get("frontier", {})
    base = baseline.get("frontier", {})
    for label in sorted(set(base) | set(got)):
        if got.get(label) != base.get(label):
            failures.append(
                f"{label}: capacity frontier {got.get(label)} != committed "
                f"baseline {base.get(label)}"
            )
    order = [got.get(label, 0) for label in ("gpus1", "gpus2", "gpus4")]
    if sorted(order) != order:
        failures.append(
            f"frontier not monotone in GPU count: {order} (gpus1/2/4)"
        )
    if got.get("offload", 0) <= got.get("gpus1", 0):
        failures.append(
            f"host offload frontier {got.get('offload')} does not extend "
            f"the plain single-GPU frontier {got.get('gpus1')}"
        )
    return _attribute_failures(failures, baseline, report)
