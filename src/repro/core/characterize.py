"""The characterization pipeline: run a workload under the full profiling
toolchain and collect every metric the paper's figures report."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..gpu import SimulatedGPU, SimulationConfig
from ..profiling import (
    DivergenceInstrument,
    KernelProfiler,
    SparsityTracker,
    trace,
)
from ..tensor import manual_seed
from ..train.trainer import Trainer
from . import registry


@dataclass
class WorkloadProfile:
    """Everything measured from profiling one workload's training."""

    key: str
    spec: registry.WorkloadSpec
    kernels: KernelProfiler
    sparsity: SparsityTracker
    divergence: DivergenceInstrument
    epoch_times: list[float]
    train_metrics: list[dict[str, float]]
    sim_time_s: float
    launch_count: int
    #: model + Adam-state device bytes, captured at profile time so the
    #: memory view survives pickling across process boundaries
    model_bytes: float = 0.0
    #: launch-analysis cache outcome over this run (repro.gpu.analysis_cache):
    #: hits replayed a memoized (memory, timing, stalls) triple, misses ran
    #: the cold pipeline.  hits + misses == launch_count.
    analysis_hits: int = 0
    analysis_misses: int = 0
    #: :meth:`repro.profiling.trace.Timeline.summary` of the profiled run —
    #: wall-clock, device idle fraction, compute/transfer overlap and
    #: per-phase occupancy (small and picklable; the full span list is not
    #: retained across cache/process boundaries)
    timeline_summary: dict = field(default_factory=dict)
    #: back-reference to the trained workload (set by profile_workload);
    #: in-process only — dropped when the profile crosses a process or
    #: cache boundary (it drags the whole device graph along)
    _workload: object = None

    def __getstate__(self):
        state = dict(self.__dict__)
        state["_workload"] = None
        return state

    # -- figure accessors ---------------------------------------------------
    def op_breakdown(self) -> dict[str, float]:
        return self.kernels.op_time_breakdown()

    def instruction_mix(self) -> dict[str, float]:
        return self.kernels.instruction_mix()

    def throughput(self) -> dict[str, float]:
        return self.kernels.throughput()

    def stalls(self) -> dict[str, float]:
        return self.kernels.stall_breakdown()

    def cache(self) -> dict[str, float]:
        stats = self.kernels.cache_stats()
        stats["divergent_loads"] = self.divergence.divergent_load_fraction()
        return stats

    def transfer_sparsity(self) -> float:
        return self.sparsity.average_sparsity()

    def memory_footprint(self) -> dict[str, float]:
        """Device-memory occupancy split (the paper: the input graph can
        occupy up to 90% of GPU memory, motivating compression).

        Returns bytes for the model (parameters + Adam state) and for the
        training data shipped per epoch, plus the data fraction.
        """
        model_bytes = float(self.model_bytes)
        workload = getattr(self, "_workload", None)
        if not model_bytes and workload is not None and hasattr(workload, "model"):
            param_bytes = workload.model.parameter_bytes()
            # Adam keeps two fp32 moments per parameter
            model_bytes = float(param_bytes * 3)
        data_bytes = float(self.sparsity.total_bytes())
        epochs = max(1, len(self.epoch_times))
        data_bytes /= epochs
        total = model_bytes + data_bytes
        return {
            "model_bytes": model_bytes,
            "data_bytes_per_epoch": data_bytes,
            "data_fraction": data_bytes / total if total else 0.0,
        }

    def sparsity_timeline(self) -> np.ndarray:
        return self.sparsity.timeline()


def profile_workload(
    key: str,
    scale: str = "profile",
    epochs: int = 1,
    seed: int = 0,
    sim: Optional[SimulationConfig] = None,
    strict: bool = False,
) -> WorkloadProfile:
    """Train ``epochs`` of a workload on a freshly instrumented device.

    With ``strict=True`` every launch and transfer is additionally validated
    against the GPU model's physical-consistency invariants
    (:mod:`repro.testing.invariants`), raising on the first violation.

    Reseeds the framework RNG first (as :func:`fingerprint_workload` does),
    so the profile is a pure function of ``(key, scale, epochs, seed)`` —
    never of hidden RNG state left by earlier runs.  That property is what
    lets the executor cache profiles on disk and fan them out over worker
    processes while staying bit-identical to a serial run.
    """
    spec = registry.get(key)
    manual_seed(seed)
    device = SimulatedGPU(sim)
    # Build first, then instrument: the paper profiles *training*, so one-off
    # setup work (weight H2D copies, dataset staging) is excluded.
    workload = spec.build(device=device, scale=scale)
    device.reset()
    checker = None
    if strict:
        from ..testing.invariants import InvariantChecker

        checker = InvariantChecker().attach(device)
    kernels = KernelProfiler().attach(device)
    sparsity = SparsityTracker().attach(device)
    divergence = DivergenceInstrument().attach(device)
    # Timeline tracing rides along unless the caller brought a tracer of
    # their own (then their trace owns the run and the summary is theirs).
    tracer = None
    if trace.active() is None:
        tracer = trace.install(trace.Tracer().attach(device))
    trainer = Trainer(workload=workload, device=device)
    try:
        results = trainer.run(epochs=epochs, seed=seed)
    finally:
        if tracer is not None:
            trace.uninstall()
            tracer.detach()
        if checker is not None:
            checker.detach()

    kernels.detach()
    sparsity.detach()
    divergence.detach()
    profile = WorkloadProfile(
        key=key,
        spec=spec,
        kernels=kernels,
        sparsity=sparsity,
        divergence=divergence,
        epoch_times=[r.sim_time_s for r in results],
        train_metrics=[r.metrics for r in results],
        sim_time_s=device.elapsed_s(),
        launch_count=device.stats.kernel_count,
        analysis_hits=device.stats.analysis_hits,
        analysis_misses=device.stats.analysis_misses,
        timeline_summary=tracer.timeline().summary() if tracer else {},
    )
    if hasattr(workload, "model"):
        # Adam keeps two fp32 moments per parameter
        profile.model_bytes = float(workload.model.parameter_bytes() * 3)
    profile._workload = workload
    # Absorb the run's ad-hoc stats into the process-wide metrics registry
    # (pull-model: a handful of gauge writes, nothing on the launch path).
    from ..profiling import metrics as metrics_mod

    metrics_mod.collect_device(device)
    metrics_mod.collect_profile(profile)
    return profile


def measure_memory(
    key: str,
    scale: str = "test",
    epochs: int = 1,
    seed: int = 0,
    sim: Optional[SimulationConfig] = None,
    strict: bool = False,
    mode: Optional[str] = None,
) -> dict:
    """Train a workload under device-memory tracking and report HBM usage.

    Unlike :func:`profile_workload`, the tracker attaches *before* build so
    parameter and optimizer-state allocations are captured (the clock still
    resets after build — setup time stays excluded, setup memory doesn't).
    With ``strict=True`` exceeding the configured HBM capacity raises
    :class:`repro.gpu.memory.OOMError` instead of warning.

    ``mode`` (``None`` / ``"steady"`` / ``"capture"``) selects the training
    loop exactly as in :func:`repro.profiling.trace.trace_workload`; the
    mode is deliberately left out of the report so steady and capture-replay
    snapshots stay directly comparable — the memory-differential tests rely
    on it.

    The cyclic garbage collector is suspended for the run, so every tracked
    free happens at its refcount-determined instant — the report (and its
    digest) is a pure function of ``(key, scale, epochs, seed)``, making
    memory snapshots golden-testable across jobs/cache configurations.
    """
    import gc

    from ..gpu import memory as gpu_memory
    from ..tensor import autograd

    spec = registry.get(key)
    manual_seed(seed)
    device = SimulatedGPU(sim)
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        with gpu_memory.track(device, strict=strict) as tracker:
            with autograd.phase("setup"):
                workload = spec.build(device=device, scale=scale)
            device.reset()
            Trainer(workload=workload, device=device,
                    steady=mode == "steady",
                    capture_replay=mode == "capture").run(epochs=epochs,
                                                          seed=seed)
            report = tracker.report()
    finally:
        if gc_was_enabled:
            gc.enable()
    report.update(workload=key, scale=scale, epochs=epochs, seed=seed)
    report["memory_digest"] = gpu_memory.digest_report(report)
    from ..profiling import metrics as metrics_mod

    metrics_mod.collect_device(device)
    return report


@dataclass
class SuiteProfile:
    """Profiles for every requested workload, plus suite-level summaries."""

    profiles: dict[str, WorkloadProfile] = field(default_factory=dict)

    def __getitem__(self, key: str) -> WorkloadProfile:
        return self.profiles[key]

    def keys(self):
        return self.profiles.keys()

    def mean_over_workloads(self, getter) -> dict[str, float]:
        """Average a per-workload dict metric across the suite."""
        acc: dict[str, list[float]] = {}
        for profile in self.profiles.values():
            for name, value in getter(profile).items():
                acc.setdefault(name, []).append(value)
        return {name: float(np.mean(values)) for name, values in acc.items()}


def profile_suite(
    keys: Optional[list[str]] = None,
    scale: str = "profile",
    epochs: int = 1,
    seed: int = 0,
    strict: bool = False,
    jobs: Optional[int] = None,
    cache=None,
) -> SuiteProfile:
    """Profile the whole suite (Figures 2-8 derive from this).

    Delegates to :mod:`repro.core.executor`: ``jobs`` workloads are
    characterized concurrently on a process pool (``None`` → ``$REPRO_JOBS``,
    default serial) and ``cache`` (``True`` or a
    :class:`~repro.core.cache.ProfileCache`) replays unchanged profiles
    from disk.  All paths produce bit-identical kernel streams because
    :func:`profile_workload` is self-seeding.
    """
    from . import executor

    return executor.run_suite(keys, scale=scale, epochs=epochs, seed=seed,
                              strict=strict, jobs=jobs, cache=cache)


def profile_inference(
    key: str,
    scale: str = "profile",
    seed: int = 0,
    sim: Optional[SimulationConfig] = None,
) -> WorkloadProfile:
    """Profile a workload's *inference* pass (the paper's planned extension:
    train first, then characterize forward-only execution).

    One warm-up training epoch brings the model off its initialization;
    instrumentation then captures only the no-grad evaluation pass.

    Instrumentation matches :func:`profile_workload`: a timeline tracer
    rides along (unless the caller already installed one), so inference
    profiles carry ``timeline_summary`` with forward-phase spans, and the
    finished profile lands in the metrics registry.
    """
    import numpy as np

    spec = registry.get(key)
    manual_seed(seed)
    device = SimulatedGPU(sim)
    workload = spec.build(device=device, scale=scale)
    rng = np.random.default_rng(seed)
    workload.train_epoch(rng)

    device.reset()
    kernels = KernelProfiler().attach(device)
    sparsity = SparsityTracker().attach(device)
    divergence = DivergenceInstrument().attach(device)
    tracer = None
    if trace.active() is None:
        tracer = trace.install(trace.Tracer().attach(device))

    try:
        t0 = device.elapsed_s()
        _run_inference(key, workload, rng)
        elapsed = device.elapsed_s() - t0
    finally:
        if tracer is not None:
            trace.uninstall()
            tracer.detach()

    kernels.detach()
    sparsity.detach()
    divergence.detach()
    profile = WorkloadProfile(
        key=key,
        spec=spec,
        kernels=kernels,
        sparsity=sparsity,
        divergence=divergence,
        epoch_times=[elapsed],
        train_metrics=[],
        sim_time_s=elapsed,
        launch_count=device.stats.kernel_count,
        analysis_hits=device.stats.analysis_hits,
        analysis_misses=device.stats.analysis_misses,
        timeline_summary=tracer.timeline().summary() if tracer else {},
    )
    from ..profiling import metrics as metrics_mod

    metrics_mod.collect_device(device)
    metrics_mod.collect_profile(profile)
    return profile


def _run_inference(key: str, workload, rng) -> None:
    """Dispatch to each workload's forward-only evaluation path."""
    if key.startswith("PSAGE"):
        workload.evaluate(rng)
    elif key == "STGCN":
        workload.evaluate_mae(num_batches=2)
    elif key == "ARGA":
        workload.embeddings()
    elif hasattr(workload, "evaluate"):
        ds = workload.dataset
        indices = ds.val_idx if hasattr(ds, "val_idx") else None
        workload.evaluate(indices)
    else:  # pragma: no cover - all workloads currently covered above
        raise ValueError(f"{key} has no inference path")
