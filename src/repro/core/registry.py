"""The GNNMark workload registry (the paper's Table I).

Each entry records the model, application domain, graph type, dataset and
origin framework style (DGL workloads lower aggregation to fused SpMM,
PyG workloads to explicit gather/scatter), plus builders at three scales:

* ``test``     — seconds-fast configs for the unit/integration tests;
* ``profile``  — the default configs behind Figures 2-8;
* ``scaling``  — larger batches for the Figure-9 multi-GPU study, where
  per-step compute must dominate fixed launch overhead as it does on the
  paper's full-size datasets.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Optional

from .. import datasets as D
from ..models import (
    ARGAWorkload,
    DeepGCNWorkload,
    GraphWriterWorkload,
    KGNNWorkload,
    PinSAGEWorkload,
    STGCNWorkload,
    TreeLSTMWorkload,
)

SCALES = ("test", "profile", "scaling")


@dataclass(frozen=True)
class WorkloadSpec:
    """One Table-I row."""

    key: str
    model: str
    domain: str
    graph_type: str
    dataset: str
    framework: str
    builder: Callable
    #: DDP sharding behaviour for the Figure-9 study
    ddp: str = "batch"  # "batch" (split batch), "replicate" (PSAGE), "none" (ARGA)

    def build(self, device=None, scale: str = "profile"):
        if scale not in SCALES:
            raise ValueError(f"unknown scale {scale!r}; have {SCALES}")
        return self.builder(device, scale)

    def __reduce__(self):
        # builders are closures and cannot pickle; every live spec is a
        # registry entry, so specs cross process boundaries by key
        return (get, (self.key,))


# -- cached dataset loaders (datasets are deterministic & read-only) ----------
@lru_cache(maxsize=None)
def _citation(name: str):
    return D.load_citation(name)


@lru_cache(maxsize=None)
def _movielens():
    return D.load_movielens()


@lru_cache(maxsize=None)
def _nowplaying():
    return D.load_nowplaying()


@lru_cache(maxsize=None)
def _metr_la(num_steps: int):
    return D.load_metr_la(num_steps=num_steps)


@lru_cache(maxsize=None)
def _molhiv(num_graphs: int):
    return D.load_molhiv(num_graphs=num_graphs)


@lru_cache(maxsize=None)
def _proteins(num_graphs: int):
    return D.load_proteins(num_graphs=num_graphs)


@lru_cache(maxsize=None)
def _agenda(num_samples: int):
    return D.load_agenda(num_samples=num_samples)


@lru_cache(maxsize=None)
def _sst(num_trees: int):
    return D.load_sst(num_trees=num_trees)


# -- builders -------------------------------------------------------------------
def _build_arga(dataset_name: str):
    def build(device, scale):
        return ARGAWorkload.build(_citation(dataset_name), device=device)

    return build


def _build_dgcn(device, scale):
    cfg = {
        "test": dict(graphs=48, layers=4, hidden=32, batch=16),
        "profile": dict(graphs=128, layers=14, hidden=128, batch=32),
        "scaling": dict(graphs=320, layers=10, hidden=192, batch=256),
    }[scale]
    return DeepGCNWorkload.build(
        _molhiv(cfg["graphs"]), device=device, hidden=cfg["hidden"],
        num_layers=cfg["layers"], batch_size=cfg["batch"],
    )


def _build_stgcn(device, scale):
    cfg = {
        "test": dict(steps=120, batch=4, batches=2),
        "profile": dict(steps=400, batch=8, batches=6),
        "scaling": dict(steps=400, batch=32, batches=4),
    }[scale]
    return STGCNWorkload.build(
        _metr_la(cfg["steps"]), device=device, batch_size=cfg["batch"],
        batches_per_epoch=cfg["batches"],
    )


def _build_gw(device, scale):
    cfg = {
        "test": dict(samples=24, dim=64, batch=4, batches=2),
        "profile": dict(samples=64, dim=320, batch=8, batches=4),
        "scaling": dict(samples=256, dim=448, batch=96, batches=2),
    }[scale]
    return GraphWriterWorkload.build(
        _agenda(cfg["samples"]), device=device, dim=cfg["dim"],
        batch_size=cfg["batch"], batches_per_epoch=cfg["batches"],
        max_decode_steps=24 if scale == "scaling" else 0,
    )


def _build_kgnn(order: int):
    def build(device, scale):
        cfg = {
            "test": dict(graphs=32, batch=16),
            "profile": dict(graphs=128 if order == 2 else 64,
                            batch=32 if order == 2 else 16),
            "scaling": dict(graphs=192 if order == 2 else 96,
                            batch=64 if order == 2 else 32),
        }[scale]
        return KGNNWorkload.build(
            _proteins(cfg["graphs"]), order=order, device=device,
            batch_size=cfg["batch"],
        )

    return build


def _build_tlstm(device, scale):
    cfg = {
        "test": dict(trees=32, batch=16),
        "profile": dict(trees=128, batch=32),
        "scaling": dict(trees=128, batch=64),
    }[scale]
    return TreeLSTMWorkload.build(
        _sst(cfg["trees"]), device=device, batch_size=cfg["batch"],
    )


def _build_psage(dataset: str):
    def build(device, scale):
        loader = _movielens if dataset == "movielens" else _nowplaying
        cfg = {
            "test": dict(batch=16, batches=2),
            "profile": dict(batch=256, batches=3),
            "scaling": dict(batch=256, batches=3),
        }[scale]
        return PinSAGEWorkload.build(
            loader(), device=device, batch_size=cfg["batch"],
            batches_per_epoch=cfg["batches"], hidden=16,
        )

    return build


WORKLOADS: dict[str, WorkloadSpec] = {
    spec.key: spec
    for spec in [
        WorkloadSpec(
            key="DGCN", model="DeepGCN", domain="Molecular property prediction",
            graph_type="Homogeneous (batched molecules)", dataset="ogbg-molhiv*",
            framework="PyG", builder=_build_dgcn,
        ),
        WorkloadSpec(
            key="GW", model="GraphWriter", domain="Knowledge-graph text generation",
            graph_type="Knowledge graph", dataset="AGENDA*",
            framework="DGL", builder=_build_gw,
        ),
        WorkloadSpec(
            key="KGNNL", model="k-GNN (1-2)", domain="Protein classification",
            graph_type="Homogeneous (batched proteins)", dataset="PROTEINS*",
            framework="PyG", builder=_build_kgnn(2),
        ),
        WorkloadSpec(
            key="KGNNH", model="k-GNN (1-2-3)", domain="Protein classification",
            graph_type="Homogeneous (batched proteins)", dataset="PROTEINS*",
            framework="PyG", builder=_build_kgnn(3),
        ),
        WorkloadSpec(
            key="PSAGE-MVL", model="PinSAGE", domain="Recommendation",
            graph_type="Heterogeneous (user-item)", dataset="MovieLens*",
            framework="DGL", builder=_build_psage("movielens"), ddp="replicate",
        ),
        WorkloadSpec(
            key="PSAGE-NWP", model="PinSAGE", domain="Recommendation",
            graph_type="Heterogeneous (user-item)", dataset="NowPlaying*",
            framework="DGL", builder=_build_psage("nowplaying"), ddp="replicate",
        ),
        WorkloadSpec(
            key="STGCN", model="STGCN", domain="Traffic forecasting",
            graph_type="Spatio-temporal (dynamic signal)", dataset="METR-LA*",
            framework="PyTorch", builder=_build_stgcn,
        ),
        WorkloadSpec(
            key="TLSTM", model="Child-Sum Tree-LSTM", domain="Sentiment classification",
            graph_type="Batched trees", dataset="SST*",
            framework="DGL", builder=_build_tlstm,
        ),
        WorkloadSpec(
            key="ARGA", model="ARGA", domain="Node clustering (graph embedding)",
            graph_type="Homogeneous (citation)", dataset="Cora*",
            framework="PyG", builder=_build_arga("cora"), ddp="none",
        ),
    ]
}

#: the order figures list workloads in
WORKLOAD_KEYS = tuple(WORKLOADS)


def get(key: str) -> WorkloadSpec:
    if key not in WORKLOADS:
        raise KeyError(f"unknown workload {key!r}; have {sorted(WORKLOADS)}")
    return WORKLOADS[key]


def table1_rows() -> list[dict[str, str]]:
    """Table I: the suite inventory (* marks synthetic dataset equivalents)."""
    return [
        {
            "workload": spec.key,
            "model": spec.model,
            "domain": spec.domain,
            "graph type": spec.graph_type,
            "dataset": spec.dataset,
            "framework": spec.framework,
        }
        for spec in WORKLOADS.values()
    ]
