"""GNNMark: the top-level suite API.

    from repro import GNNMark

    mark = GNNMark()
    profile = mark.characterize("ARGA", epochs=2)
    print(mark.render_op_breakdown(mark.characterize_suite()))

Everything the benchmark harness prints for the paper's tables and figures
goes through this class, so downstream users get the same views.
"""

from __future__ import annotations

from typing import Optional

from ..profiling import format_scaling, format_series, format_table
from ..train import ddp
from . import characterize, registry


class GNNMark:
    """Facade over the registry, profiler pipeline and scaling study."""

    SCALES = registry.SCALES

    def __init__(self, scale: str = "profile", seed: int = 0) -> None:
        self.scale = scale
        self.seed = seed

    # -- inventory (Table I) --------------------------------------------------
    def workloads(self) -> list[str]:
        return list(registry.WORKLOAD_KEYS)

    def spec(self, key: str) -> registry.WorkloadSpec:
        return registry.get(key)

    def table1(self) -> list[dict[str, str]]:
        return registry.table1_rows()

    def render_table1(self, rows: Optional[list[dict[str, str]]] = None) -> str:
        rows = self.table1() if rows is None else rows
        if not rows:
            return "(no workloads)"
        cols = list(rows[0].keys())
        widths = {c: max(len(c), *(len(r[c]) for r in rows)) + 2 for c in cols}
        lines = ["".join(c.ljust(widths[c]) for c in cols)]
        lines.append("-" * sum(widths.values()))
        for r in rows:
            lines.append("".join(r[c].ljust(widths[c]) for c in cols))
        return "\n".join(lines)

    # -- characterization -----------------------------------------------------------
    def characterize(self, key: str, epochs: int = 1,
                     scale: Optional[str] = None
                     ) -> characterize.WorkloadProfile:
        return characterize.profile_workload(
            key, scale=scale or self.scale, epochs=epochs, seed=self.seed
        )

    def characterize_suite(self, keys: Optional[list[str]] = None,
                           epochs: int = 1, scale: Optional[str] = None,
                           jobs: Optional[int] = None, cache=None
                           ) -> characterize.SuiteProfile:
        """Characterize workloads through the suite execution engine.

        ``jobs`` fans independent workloads out over a process pool
        (``None`` → ``$REPRO_JOBS``, default serial); ``cache=True`` (or a
        :class:`~repro.core.cache.ProfileCache`) replays unchanged
        profiles from the persistent on-disk cache.
        """
        return characterize.profile_suite(
            keys, scale=scale or self.scale, epochs=epochs, seed=self.seed,
            jobs=jobs, cache=cache,
        )

    # -- figure renderers -------------------------------------------------------------
    @staticmethod
    def _empty(title: str) -> str:
        return f"{title}\n(no workloads)"

    def render_op_breakdown(self, suite: characterize.SuiteProfile) -> str:
        from ..gpu import FIGURE_CATEGORIES

        title = "Figure 2: execution-time breakdown by operation"
        if not suite.profiles:
            return self._empty(title)
        rows = {k: p.op_breakdown() for k, p in suite.profiles.items()}
        return format_table(rows, list(FIGURE_CATEGORIES), title=title,
                            percent=True, width=11)

    def render_instruction_mix(self, suite: characterize.SuiteProfile) -> str:
        title = "Figure 3: dynamic instruction mix"
        if not suite.profiles:
            return self._empty(title)
        rows = {k: p.instruction_mix() for k, p in suite.profiles.items()}
        return format_table(rows, ["int32", "fp32", "other"], title=title,
                            percent=True)

    def render_throughput(self, suite: characterize.SuiteProfile) -> str:
        title = "Figure 4: achieved GFLOPS / GIOPS / IPC"
        if not suite.profiles:
            return self._empty(title)
        rows = {k: p.throughput() for k, p in suite.profiles.items()}
        return format_table(rows, ["gflops", "giops", "ipc"], title=title,
                            percent=False)

    def render_stalls(self, suite: characterize.SuiteProfile) -> str:
        title = "Figure 5: issue-stall breakdown"
        if not suite.profiles:
            return self._empty(title)
        cols = ["memory_dependency", "execution_dependency", "instruction_fetch",
                "synchronization", "pipe_busy", "not_selected", "other"]
        rows = {k: p.stalls() for k, p in suite.profiles.items()}
        return format_table(rows, cols, title=title, percent=True, width=13)

    def render_cache(self, suite: characterize.SuiteProfile) -> str:
        title = "Figure 6: cache hit rates and divergent loads"
        if not suite.profiles:
            return self._empty(title)
        rows = {k: p.cache() for k, p in suite.profiles.items()}
        return format_table(rows, ["l1_hit", "l2_hit", "divergent_loads"],
                            title=title, percent=True)

    def render_sparsity(self, suite: characterize.SuiteProfile) -> str:
        title = "Figure 7: average H2D transfer sparsity"
        if not suite.profiles:
            return self._empty(title)
        rows = {k: {"h2d_sparsity": p.transfer_sparsity()}
                for k, p in suite.profiles.items()}
        return format_table(rows, ["h2d_sparsity"], title=title, percent=True)

    def render_sparsity_timeline(self, suite: characterize.SuiteProfile) -> str:
        title = "Figure 8: per-transfer sparsity timeline"
        if not suite.profiles:
            return self._empty(title)
        series = {k: p.sparsity_timeline() for k, p in suite.profiles.items()}
        return format_series(series, title=title)

    # -- multi-GPU ------------------------------------------------------------------------
    def scaling_study(self, keys: Optional[list[str]] = None,
                      gpu_counts: tuple[int, ...] = (1, 2, 4),
                      epochs: int = 1, jobs: Optional[int] = None,
                      cache=None) -> dict[str, dict[int, float]]:
        return ddp.run_scaling_study(keys, gpu_counts=gpu_counts,
                                     scale="scaling", epochs=epochs,
                                     seed=self.seed, jobs=jobs, cache=cache)

    def render_scaling(self, times: dict[str, dict[int, float]]) -> str:
        title = "Figure 9: strong scaling (speedup vs 1 GPU)"
        if not times:
            return self._empty(title)
        return format_scaling(times, title=title)
