"""GNNMark: the top-level suite API.

    from repro import GNNMark

    mark = GNNMark()
    profile = mark.characterize("ARGA", epochs=2)
    print(mark.render_op_breakdown(mark.characterize_suite()))

Everything the benchmark harness prints for the paper's tables and figures
goes through this class, so downstream users get the same views.
"""

from __future__ import annotations

from typing import Optional

from ..profiling import format_scaling, format_series, format_table
from ..train import ddp
from . import characterize, registry


class GNNMark:
    """Facade over the registry, profiler pipeline and scaling study."""

    SCALES = registry.SCALES

    def __init__(self, scale: str = "profile", seed: int = 0) -> None:
        self.scale = scale
        self.seed = seed

    # -- inventory (Table I) --------------------------------------------------
    def workloads(self) -> list[str]:
        return list(registry.WORKLOAD_KEYS)

    def spec(self, key: str) -> registry.WorkloadSpec:
        return registry.get(key)

    def table1(self) -> list[dict[str, str]]:
        return registry.table1_rows()

    def render_table1(self) -> str:
        rows = self.table1()
        cols = list(rows[0].keys())
        widths = {c: max(len(c), *(len(r[c]) for r in rows)) + 2 for c in cols}
        lines = ["".join(c.ljust(widths[c]) for c in cols)]
        lines.append("-" * sum(widths.values()))
        for r in rows:
            lines.append("".join(r[c].ljust(widths[c]) for c in cols))
        return "\n".join(lines)

    # -- characterization -----------------------------------------------------------
    def characterize(self, key: str, epochs: int = 1,
                     scale: Optional[str] = None
                     ) -> characterize.WorkloadProfile:
        return characterize.profile_workload(
            key, scale=scale or self.scale, epochs=epochs, seed=self.seed
        )

    def characterize_suite(self, keys: Optional[list[str]] = None,
                           epochs: int = 1, scale: Optional[str] = None
                           ) -> characterize.SuiteProfile:
        return characterize.profile_suite(
            keys, scale=scale or self.scale, epochs=epochs, seed=self.seed
        )

    # -- figure renderers -------------------------------------------------------------
    def render_op_breakdown(self, suite: characterize.SuiteProfile) -> str:
        from ..gpu import FIGURE_CATEGORIES

        rows = {k: p.op_breakdown() for k, p in suite.profiles.items()}
        return format_table(rows, list(FIGURE_CATEGORIES),
                            title="Figure 2: execution-time breakdown by operation",
                            percent=True, width=11)

    def render_instruction_mix(self, suite: characterize.SuiteProfile) -> str:
        rows = {k: p.instruction_mix() for k, p in suite.profiles.items()}
        return format_table(rows, ["int32", "fp32", "other"],
                            title="Figure 3: dynamic instruction mix",
                            percent=True)

    def render_throughput(self, suite: characterize.SuiteProfile) -> str:
        rows = {k: p.throughput() for k, p in suite.profiles.items()}
        return format_table(rows, ["gflops", "giops", "ipc"],
                            title="Figure 4: achieved GFLOPS / GIOPS / IPC",
                            percent=False)

    def render_stalls(self, suite: characterize.SuiteProfile) -> str:
        cols = ["memory_dependency", "execution_dependency", "instruction_fetch",
                "synchronization", "pipe_busy", "not_selected", "other"]
        rows = {k: p.stalls() for k, p in suite.profiles.items()}
        return format_table(rows, cols,
                            title="Figure 5: issue-stall breakdown",
                            percent=True, width=13)

    def render_cache(self, suite: characterize.SuiteProfile) -> str:
        rows = {k: p.cache() for k, p in suite.profiles.items()}
        return format_table(rows, ["l1_hit", "l2_hit", "divergent_loads"],
                            title="Figure 6: cache hit rates and divergent loads",
                            percent=True)

    def render_sparsity(self, suite: characterize.SuiteProfile) -> str:
        rows = {k: {"h2d_sparsity": p.transfer_sparsity()}
                for k, p in suite.profiles.items()}
        return format_table(rows, ["h2d_sparsity"],
                            title="Figure 7: average H2D transfer sparsity",
                            percent=True)

    def render_sparsity_timeline(self, suite: characterize.SuiteProfile) -> str:
        series = {k: p.sparsity_timeline() for k, p in suite.profiles.items()}
        return format_series(series,
                             title="Figure 8: per-transfer sparsity timeline")

    # -- multi-GPU ------------------------------------------------------------------------
    def scaling_study(self, keys: Optional[list[str]] = None,
                      gpu_counts: tuple[int, ...] = (1, 2, 4),
                      epochs: int = 1) -> dict[str, dict[int, float]]:
        return ddp.run_scaling_study(keys, gpu_counts=gpu_counts,
                                     scale="scaling", epochs=epochs,
                                     seed=self.seed)

    def render_scaling(self, times: dict[str, dict[int, float]]) -> str:
        return format_scaling(
            times, title="Figure 9: strong scaling (speedup vs 1 GPU)"
        )
