"""Figure 4: achieved GFLOPS / GIOPS and IPC per workload.

Paper anchors: suite averages of 214 GFLOPS / 705 GIOPS — far below the
V100's 14 TFLOPS peak (memory-bound training); GraphWriter peaks at
1.99 TFLOPS; the batched Tree-LSTM still only reaches 74 GFLOPS; average
IPC is 0.55.
"""

import pytest

from conftest import run_once


def test_fig4_throughput(benchmark, mark, suite):
    text = run_once(benchmark, lambda: mark.render_throughput(suite))
    print("\n" + text)

    th = {key: suite[key].throughput() for key in suite.keys()}
    mean = suite.mean_over_workloads(lambda p: p.throughput())

    # far below peak: GNN training is memory/overhead bound (paper's core claim)
    peak_gflops = 14100.0
    assert mean["gflops"] < 0.08 * peak_gflops

    # integer throughput exceeds float throughput on average (paper 705 vs 214)
    assert mean["giops"] > mean["gflops"]

    # GW reaches ~2 TFLOPS, the suite's fp32 peak (paper: 1.99 TFLOPS)
    assert th["GW"]["gflops"] == pytest.approx(1990.0, rel=0.35)

    # TLSTM's batching still leaves it at double-digit GFLOPS (paper: 74)
    assert th["TLSTM"]["gflops"] == pytest.approx(74.0, rel=0.45)
    assert th["TLSTM"]["gflops"] == min(
        v["gflops"] for k, v in th.items() if k != "PSAGE-MVL"
    )

    # IPC far below the 4-issue width (paper: 0.55 average)
    assert 0.1 < mean["ipc"] < 1.0
