"""Ablation: half-precision training (the paper's proposed mitigation).

The paper's Section V-C takeaway: the extremely low L1 hit rates could be
alleviated by half-precision training, which halves data footprints.  This
ablation trains representative workloads at fp32 and fp16 and reports the
L1 hit-rate and epoch-time deltas.
"""

import pytest

from conftest import run_once
from repro.core import profile_workload
from repro.gpu import SimulationConfig

WORKLOADS = ("DGCN", "TLSTM", "ARGA")


def test_ablation_half_precision(benchmark):
    def run():
        rows = {}
        for key in WORKLOADS:
            fp32 = profile_workload(key, scale="test", epochs=1)
            fp16 = profile_workload(key, scale="test", epochs=1,
                                    sim=SimulationConfig(precision="fp16"))
            rows[key] = {
                "fp32_l1": fp32.cache()["l1_hit"],
                "fp16_l1": fp16.cache()["l1_hit"],
                "time_ratio": fp16.kernels.total_time_s
                / fp32.kernels.total_time_s,
            }
        return rows

    rows = run_once(benchmark, run)
    print("\nfp16 ablation (kernel-time ratio fp16/fp32, L1 hit rates):")
    for key, row in rows.items():
        print(f"  {key:<6} time x{row['time_ratio']:.2f}  "
              f"L1 {row['fp32_l1'] * 100:.1f}% -> {row['fp16_l1'] * 100:.1f}%")

    for key, row in rows.items():
        # fp16 never slows training down and the L1 never gets worse
        assert row["time_ratio"] < 1.0, key
        assert row["fp16_l1"] >= row["fp32_l1"] - 1e-6, key
    # at least one workload shows a substantive speedup
    assert min(r["time_ratio"] for r in rows.values()) < 0.85
