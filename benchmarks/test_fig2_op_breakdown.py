"""Figure 2: execution-time breakdown by operation type per workload.

Paper anchors (V100, nvprof):
  * GEMM + SpMM take only ~25% of suite time (vs >50% for DNNs);
  * STGCN is ~60% convolution — unique in the suite;
  * PSAGE-MVL spends 20.7% sorting and 7.0% in reductions;
  * sorting/indexing/reductions/scatter-gather average ~20.8%.
"""

import pytest

from conftest import run_once


def test_fig2_op_breakdown(benchmark, mark, suite):
    text = run_once(benchmark, lambda: mark.render_op_breakdown(suite))
    print("\n" + text)

    rows = {key: suite[key].op_breakdown() for key in suite.keys()}
    mean = suite.mean_over_workloads(lambda p: p.op_breakdown())

    # GEMM+SpMM well below DNN-like dominance (paper: ~25%)
    assert mean["GEMM"] + mean["SpMM"] < 0.45

    # STGCN conv-dominated (paper: ~60%)
    assert rows["STGCN"]["Conv"] == pytest.approx(0.60, abs=0.12)
    # ...and the ONLY conv-heavy workload
    for key, row in rows.items():
        if key != "STGCN":
            assert row["Conv"] < 0.05

    # PSAGE-MVL sort share (paper: 20.7%)
    assert rows["PSAGE-MVL"]["Sort"] == pytest.approx(0.207, abs=0.07)
    # PSAGE-MVL reductions (paper: 7.0%)
    assert rows["PSAGE-MVL"]["Reduction"] == pytest.approx(0.07, abs=0.04)

    # aggregation-phase ops are a first-class cost (paper: ~20.8% average)
    agg = (mean["Sort"] + mean["IndexSelect"] + mean["Reduction"]
           + mean["Scatter"] + mean["Gather"])
    assert 0.10 < agg < 0.35

    # ARGA is reduction-heavy relative to the suite (paper: 23%)
    assert rows["ARGA"]["Reduction"] > 2 * mean["Reduction"] * 0.8

    # every workload's shares sum to 1
    for row in rows.values():
        assert sum(row.values()) == pytest.approx(1.0)
