"""Figure 3: dynamic instruction mix per workload.

Paper anchors: 64% of executed instructions are int32 on average and only
28.7% fp32; GraphWriter is the sole workload where the mix is reversed
(floating point dominated).
"""

import pytest

from conftest import run_once


def test_fig3_instruction_mix(benchmark, mark, suite):
    text = run_once(benchmark, lambda: mark.render_instruction_mix(suite))
    print("\n" + text)

    mix = {key: suite[key].instruction_mix() for key in suite.keys()}
    mean = suite.mean_over_workloads(lambda p: p.instruction_mix())

    # integer dominates on average (paper: 64% int32 vs 28.7% fp32)
    assert mean["int32"] == pytest.approx(0.64, abs=0.08)
    assert mean["int32"] > 2 * mean["fp32"] * 0.8

    # GW is the one reversed workload (fp32 > int32)...
    assert mix["GW"]["fp32"] > mix["GW"]["int32"]
    # ...and the most fp-heavy of the suite
    assert mix["GW"]["fp32"] == max(m["fp32"] for m in mix.values())

    # higher-order k-GNN is more integer-heavy than the lower-order one
    assert mix["KGNNH"]["int32"] > mix["KGNNL"]["int32"]

    for m in mix.values():
        assert sum(m.values()) == pytest.approx(1.0)
