"""Figure 9: strong scaling of GNN training on 1/2/4 GPUs (DDP + NVLink).

Paper anchors: DGCN, STGCN and GW show considerable gains; TLSTM does not
benefit (low-intensity serialized kernels); PSAGE *degrades* because its
DGL batch sampler is incompatible with DDP and replicates the training data
on every device; ARGA is excluded (whole-graph training).
"""

import pytest

from conftest import run_once
from repro.core import registry


def test_fig9_strong_scaling(benchmark, mark, scaling_times):
    text = run_once(benchmark, lambda: mark.render_scaling(scaling_times))
    print("\n" + text)

    speedup = {
        key: {n: times[1] / times[n] for n in times}
        for key, times in scaling_times.items()
    }

    # considerable gains for the compute-dense workloads
    for key in ("DGCN", "STGCN", "GW"):
        assert speedup[key][4] > 1.8, key
        assert speedup[key][4] > speedup[key][2] * 0.95, key

    # TLSTM does not benefit from multi-GPU training
    assert speedup["TLSTM"][4] < 1.3

    # PSAGE degrades on both datasets
    assert speedup["PSAGE-MVL"][4] < 1.0
    assert speedup["PSAGE-NWP"][4] < 1.0

    # ARGA excluded by design
    assert "ARGA" not in scaling_times
    with pytest.raises(ValueError):
        from repro.train import run_scaling_point

        run_scaling_point("ARGA", 2)


def test_fig9_allreduce_accounting(benchmark):
    """Allreduce cost exists for N>1 and step counts stay fixed (strong
    scaling semantics)."""
    from repro.train import run_scaling_point

    def measure():
        one = run_scaling_point("KGNNL", 1, scale="test")
        four = run_scaling_point("KGNNL", 4, scale="test")
        return one, four

    one, four = run_once(benchmark, measure)
    assert one.allreduce_time_s == 0.0
    assert four.allreduce_time_s > 0.0
    assert abs(four.steps - one.steps) <= 1
    assert four.grad_bytes == one.grad_bytes
