"""Figure 5: issue-stall breakdown per workload and per operation.

Paper anchors: memory dependency 34.3%, execution dependency 29.5% and —
surprisingly — instruction fetch 21.6% on average; scatter/gather/index ops
stall on memory more than GEMM does.
"""

import pytest

from conftest import run_once


def test_fig5_stall_breakdown(benchmark, mark, suite):
    text = run_once(benchmark, lambda: mark.render_stalls(suite))
    print("\n" + text)

    mean = suite.mean_over_workloads(lambda p: p.stalls())

    assert mean["memory_dependency"] == pytest.approx(0.343, abs=0.07)
    assert mean["execution_dependency"] == pytest.approx(0.295, abs=0.07)
    assert mean["instruction_fetch"] == pytest.approx(0.216, abs=0.07)

    # the big three dominate
    big3 = (mean["memory_dependency"] + mean["execution_dependency"]
            + mean["instruction_fetch"])
    assert big3 > 0.70

    for key in suite.keys():
        assert sum(suite[key].stalls().values()) == pytest.approx(1.0)


def test_fig5_per_op_stalls(benchmark, suite):
    def per_op():
        return {
            key: suite[key].kernels.per_op_class("stall_memory_dependency")
            for key in suite.keys()
        }

    tables = run_once(benchmark, per_op)
    # irregular data movement stalls on memory more than GEMM, averaged over
    # the suite (the paper's per-op view)
    acc: dict[str, list[float]] = {}
    for table in tables.values():
        for cat, value in table.items():
            acc.setdefault(cat, []).append(value)
    mean = {cat: sum(v) / len(v) for cat, v in acc.items()}
    print("\nper-op mean memory-dependency stall:",
          {k: round(v, 3) for k, v in mean.items()})
    for cat in ("Scatter", "IndexSelect", "Gather"):
        assert mean[cat] > mean["GEMM"], cat
