"""Serving latency vs offered load (the ``repro.serve`` flagship sweep).

Sweeps queries-per-second for the PinSage recommendation workloads and
prints the classic serving curves: tail latency, throughput and mean
batch size as the arrival rate climbs.  Under dynamic batching the
latency-vs-QPS curve is *not* monotone — at low load the batcher waits
out ``max_wait_us`` on nearly every request, at high load batches fill
early — so the assertions stick to structural validity: conservation at
every point, saturation in mean batch size, and throughput tracking the
offered load until the server saturates.
"""

import pytest

from conftest import run_once
from repro.serve import serve_run

QPS_SWEEP = (50.0, 100.0, 200.0, 400.0)
KEYS = ("PSAGE-MVL", "PSAGE-NWP")


@pytest.mark.parametrize("key", KEYS)
def test_latency_vs_qps(benchmark, key):
    def run():
        rows = {}
        for qps in QPS_SWEEP:
            report, _ = serve_run(key, scale="test", qps=qps,
                                  batch_max=8, max_wait_us=2000.0,
                                  requests=128, seed=0)
            rows[qps] = report
        return rows

    rows = run_once(benchmark, run)

    print(f"\n{key}: serving latency vs offered load "
          "(batch_max=8, max_wait=2000us)")
    print(f"  {'qps':>6} {'p50 us':>10} {'p95 us':>10} {'p99 us':>10}"
          f" {'rps':>8} {'mean batch':>11}")
    for qps, r in rows.items():
        lat = r["latency_us"]
        print(f"  {qps:>6.0f} {lat['p50']:>10.1f} {lat['p95']:>10.1f}"
              f" {lat['p99']:>10.1f} {r['throughput_rps']:>8.1f}"
              f" {r['mean_batch_size']:>11.2f}")

    for qps, r in rows.items():
        # structural validity at every sweep point
        assert r["completed"] == r["requests"] == 128, qps
        assert sum(r["batch_size_hist"].values()) == r["batches"], qps
        assert r["latency_us"]["p50"] <= r["latency_us"]["p99"], qps
        assert r["throughput_rps"] > 0, qps
        assert r["oom_events"] == 0, qps
    # dynamic batching responds to load: batches fill as qps climbs
    assert rows[QPS_SWEEP[-1]]["mean_batch_size"] \
        >= rows[QPS_SWEEP[0]]["mean_batch_size"]


def test_arrival_processes_share_mean_rate(benchmark):
    """Bursty (MMPP) arrivals average the same qps as Poisson but queue
    deeper during high-rate dwells — mean batch size should not shrink."""

    def run():
        out = {}
        for arrival in ("poisson", "bursty"):
            report, _ = serve_run("PSAGE-MVL", scale="test", qps=200.0,
                                  arrival=arrival, batch_max=8,
                                  max_wait_us=2000.0, requests=128, seed=0)
            out[arrival] = report
        return out

    out = run_once(benchmark, run)
    print("\narrival-process comparison at qps=200:")
    for arrival, r in out.items():
        print(f"  {arrival:<8} p99 {r['latency_us']['p99']:>9.1f} us"
              f"   mean batch {r['mean_batch_size']:.2f}"
              f"   {r['throughput_rps']:.1f} req/s")
    for r in out.values():
        assert r["completed"] == 128
        assert r["throughput_rps"] > 0
