"""Ablation: sparsity-exploiting transfer compression (the paper's
Figure-7/8 proposal).

GNNMark measures 43% average H2D sparsity and proposes compressing
transfers.  This ablation re-runs the sparse-transfer workloads with the
zero-value-compression DMA engine enabled and reports the measured wire
traffic and transfer-time savings — the evaluation the paper leaves to
future work.
"""

import pytest

from conftest import run_once
from repro.core import profile_workload
from repro.gpu import SimulationConfig

#: ARGA ships a dense adjacency-label matrix, TLSTM zero-initialized node
#: state — the suite's sparsest transfer streams; STGCN is the densest.
WORKLOADS = ("ARGA", "TLSTM", "STGCN")


def test_ablation_transfer_compression(benchmark):
    def run():
        rows = {}
        for key in WORKLOADS:
            base = profile_workload(key, scale="test", epochs=1)
            zvc = profile_workload(
                key, scale="test", epochs=1,
                sim=SimulationConfig(transfer_compression="zvc"),
            )
            rows[key] = {
                "sparsity": base.transfer_sparsity(),
                "raw_mb": zvc.sparsity.total_bytes() / 1e6,
                "ratio": zvc.sparsity.compression_ratio(),
            }
        return rows

    rows = run_once(benchmark, run)
    print("\nZVC transfer-compression ablation:")
    for key, row in rows.items():
        print(f"  {key:<6} sparsity {row['sparsity'] * 100:5.1f}%"
              f"  raw {row['raw_mb']:8.2f} MB"
              f"  wire reduction x{row['ratio']:.2f}")

    # the sparse workloads compress substantially...
    assert rows["ARGA"]["ratio"] > 3.0
    assert rows["TLSTM"]["ratio"] > 2.0
    # ...while the dense traffic stream gains little
    assert rows["STGCN"]["ratio"] < 1.6
    # compression never inflates the wire traffic
    for row in rows.values():
        assert row["ratio"] >= 1.0
