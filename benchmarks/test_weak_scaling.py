"""Weak scaling across 1/2/4 GPUs (the paper's stated future work).

Per-GPU batch fixed, global batch grows with N: per-device compute stays
constant, so efficiency T(1)/T(N) isolates the cost of the gradient
collectives — near 1.0 when allreduce hides behind compute, below it when
gradient traffic bites.
"""

import pytest

from conftest import run_once
from repro.train import run_weak_scaling_point

WORKLOADS = ("DGCN", "STGCN", "TLSTM", "GW")


def test_weak_scaling_efficiency(benchmark):
    def run():
        rows = {}
        for key in WORKLOADS:
            times = {n: run_weak_scaling_point(key, n, epochs=1).epoch_time_s
                     for n in (1, 2, 4)}
            rows[key] = {n: times[1] / times[n] for n in times}
        return rows

    rows = run_once(benchmark, run)
    print("\nweak-scaling efficiency (T1/TN, 1.0 = perfect):")
    for key, row in rows.items():
        print(f"  {key:<6} " + "  ".join(f"{n}GPU {row[n]:.2f}"
                                         for n in sorted(row)))

    for key, row in rows.items():
        assert row[1] == pytest.approx(1.0)
        # efficiency cannot exceed 1 and only degrades with more devices
        assert row[4] <= row[2] + 0.02, key
        assert row[4] <= 1.0 + 1e-9, key
        # compute-per-device is constant, so even 4 GPUs stay above 50%
        assert row[4] > 0.5, key
