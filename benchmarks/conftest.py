"""Shared fixtures for the figure-regeneration benchmarks.

Profiling the full suite takes ~15 s of wall time; every figure derives from
the same profiled run (as in the paper, where one nvprof campaign feeds all
the analyses), so the suite profile is computed once per benchmark session.
"""

import pytest

from repro import GNNMark


def pytest_collection_modifyitems(items):
    """Everything under benchmarks/ profiles the full suite — mark it slow
    so `pytest -m 'not slow'` (the default addopts) skips it."""
    for item in items:
        item.add_marker(pytest.mark.slow)


@pytest.fixture(scope="session")
def mark() -> GNNMark:
    return GNNMark(scale="profile", seed=0)


@pytest.fixture(scope="session")
def suite(mark):
    """One profiled training epoch of every workload (Figures 2-8)."""
    return mark.characterize_suite(epochs=1)


@pytest.fixture(scope="session")
def scaling_times(mark):
    """The Figure-9 strong-scaling study (1/2/4 simulated GPUs)."""
    return mark.scaling_study(epochs=1)


def run_once(benchmark, fn):
    """Benchmark a derivation exactly once (the run itself is deterministic)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
