"""Figure 6: L1/L2 hit rates and divergent-load fraction per workload.

Paper anchors: a mere 15% L1 D-cache hit rate on average, ~70% L2, and
32.5% divergent load instructions; GEMM/SpMM/GEMV show the worst locality
(< 10% L1), other irregular ops stay below ~15%.
"""

import pytest

from conftest import run_once


def test_fig6_cache_hit_rates(benchmark, mark, suite):
    text = run_once(benchmark, lambda: mark.render_cache(suite))
    print("\n" + text)

    mean = suite.mean_over_workloads(lambda p: p.cache())

    # L1 is nearly useless for GNN training (paper: ~15%)
    assert mean["l1_hit"] == pytest.approx(0.15, abs=0.07)
    # the larger L2 fares far better (paper: ~70%)
    assert mean["l2_hit"] == pytest.approx(0.70, abs=0.08)
    # L2 always beats L1 by a wide margin
    for key in suite.keys():
        cache = suite[key].cache()
        assert cache["l2_hit"] > 2 * cache["l1_hit"]


def test_fig6_divergent_loads(benchmark, suite):
    def fractions():
        return {key: suite[key].divergence.divergent_load_fraction()
                for key in suite.keys()}

    div = run_once(benchmark, fractions)
    print("\ndivergent-load fraction:",
          {k: round(v, 3) for k, v in div.items()})
    mean = sum(div.values()) / len(div)
    # paper: 32.5% of warp loads touch more than one line
    assert mean == pytest.approx(0.325, abs=0.10)


def test_fig6_per_op_l1_locality(benchmark, suite):
    """GEMM-family kernels have the worst L1 locality (paper: < 10%)."""

    def per_op():
        acc = {}
        for key in suite.keys():
            for cat, value in suite[key].kernels.per_op_class("l1_hit").items():
                acc.setdefault(cat, []).append(value)
        return {cat: sum(v) / len(v) for cat, v in acc.items()}

    table = run_once(benchmark, per_op)
    print("\nper-op L1 hit:", {k: round(v, 3) for k, v in table.items()})
    for cat in ("GEMM", "SpMM"):
        if cat in table:
            assert table[cat] < 0.12, cat
    for cat in ("Scatter", "Gather", "IndexSelect", "Sort"):
        if cat in table:
            assert table[cat] < 0.25, cat
