"""Inference characterization (the paper's planned suite extension).

The paper contrasts its training focus with prior *inference* studies
(where GEMM reportedly exceeds 50% of time) and plans to ship pretrained
models for inference characterization.  This benchmark profiles the
forward-only pass of every workload after a warm-up training epoch.
"""

import pytest

from conftest import run_once
from repro.core import profile_inference, profile_workload, registry


def test_inference_profiles(benchmark):
    def run():
        rows = {}
        for key in registry.WORKLOAD_KEYS:
            infer = profile_inference(key, scale="test")
            train = profile_workload(key, scale="test", epochs=1)
            rows[key] = {
                "inference_ms": infer.kernels.total_time_s * 1e3,
                "train_ms": train.kernels.total_time_s * 1e3,
                "phases": set(infer.kernels.phase_breakdown()),
            }
        return rows

    rows = run_once(benchmark, run)
    print("\ninference vs training kernel time (ms):")
    for key, row in rows.items():
        print(f"  {key:<10} inference {row['inference_ms']:8.3f}"
              f"   training {row['train_ms']:8.3f}")

    for key, row in rows.items():
        # forward-only: no backward or optimizer kernels
        assert row["phases"] == {"forward"}, key
        # inference is cheaper than a training epoch for every workload
        assert row["inference_ms"] < row["train_ms"], key
