"""Figure 7: average sparsity of CPU-to-GPU transfers during training.

Paper anchors: 43.2% of transferred values are zero on average, so
compression could stretch effective GPU memory; PSAGE's sparsity is
input-dependent — 22% on MovieLens but only 11% on NowPlaying.
"""

import pytest

from conftest import run_once


def test_fig7_average_sparsity(benchmark, mark, suite):
    text = run_once(benchmark, lambda: mark.render_sparsity(suite))
    print("\n" + text)

    sparsity = {key: suite[key].transfer_sparsity() for key in suite.keys()}
    mean = sum(sparsity.values()) / len(sparsity)

    # suite average (paper: 43.2%)
    assert mean == pytest.approx(0.432, abs=0.08)

    # PSAGE sparsity is a function of the dataset (paper: 22% vs 11%)
    assert sparsity["PSAGE-MVL"] == pytest.approx(0.22, abs=0.06)
    assert sparsity["PSAGE-NWP"] == pytest.approx(0.11, abs=0.05)
    assert sparsity["PSAGE-MVL"] > sparsity["PSAGE-NWP"]

    # activation-sparse models (ReLU/PReLU pipelines + zero-initialized
    # state) transfer highly sparse data
    assert sparsity["ARGA"] > 0.9
    assert sparsity["TLSTM"] > 0.7

    for value in sparsity.values():
        assert 0.0 <= value <= 1.0
