"""Figure 8: per-transfer sparsity over the course of training.

Paper anchor: the sparsity of H2D transfers follows a clear, predictable
(periodic) pattern, opening the door to adaptive compression.
"""

from conftest import run_once


def test_fig8_sparsity_timeline(benchmark, mark, suite):
    text = run_once(benchmark, lambda: mark.render_sparsity_timeline(suite))
    print("\n" + text)

    # per-batch transfer schedules repeat, so the timeline autocorrelates
    periodic = {
        key: suite[key].sparsity.periodicity_score() for key in suite.keys()
    }
    print("periodicity:", {k: round(v, 2) for k, v in periodic.items()})
    strongly_periodic = [k for k, v in periodic.items() if v > 0.5]
    # most workloads show the paper's predictable pattern
    assert len(strongly_periodic) >= 5

    # timelines are non-trivial (many transfers recorded)
    for key in suite.keys():
        assert suite[key].sparsity_timeline().size >= 3
