"""Table I: the GNNMark suite inventory.

Regenerates the paper's workload table: model, application domain, graph
type, dataset (synthetic equivalents marked *) and origin framework.
"""

from conftest import run_once


def test_table1_suite_inventory(benchmark, mark):
    text = run_once(benchmark, mark.render_table1)
    print("\n" + text)
    rows = mark.table1()
    assert len(rows) == 9
    # every paper workload family present
    models = {r["model"] for r in rows}
    assert {"DeepGCN", "GraphWriter", "PinSAGE", "STGCN", "ARGA",
            "Child-Sum Tree-LSTM"} <= models
