"""Setuptools entry point.

The offline environment has no ``wheel`` package, so modern PEP-517 editable
installs (which build a wheel) fail; this file enables the legacy path:

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.1.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy", "scipy", "networkx"],
)
