"""Mini-batch loader: determinism, prefetch overlap, stall accounting, HBM."""

import json

import numpy as np
import pytest

from repro.datasets.citation import HashedFeatures, synthetic_citation
from repro.gpu import SimulatedGPU
from repro.graph import generators
from repro.profiling import trace
from repro.train.loader import (
    SAMPLE_COST_PER_BATCH_S,
    SAMPLEABLE,
    NeighborLoader,
    make_sample_engine,
    sample_run,
    sampler_cost_s,
    validate_sample_config,
)
from repro.train.trainer import Trainer


def _graph(seed=0, sizes=(40, 40)):
    g, _ = generators.stochastic_block_model(list(sizes), 0.2, 0.02,
                                             np.random.default_rng(seed))
    return g


class TestNeighborLoader:
    def test_epoch_order_is_permutation_of_train_ids(self):
        ids = np.arange(10, 90)
        loader = NeighborLoader(_graph(), ids, (4, 3), batch_size=16, seed=1)
        order = np.concatenate(loader.batches(epoch=0))
        np.testing.assert_array_equal(np.sort(order), ids)

    def test_epochs_shuffle_differently(self):
        loader = NeighborLoader(_graph(), np.arange(80), (4,), 16, seed=1)
        assert not np.array_equal(loader.epoch_order(0), loader.epoch_order(1))

    def test_batches_deterministic_across_instances(self):
        a = NeighborLoader(_graph(), np.arange(80), (4, 3), 16, seed=5)
        b = NeighborLoader(_graph(), np.arange(80), (4, 3), 16, seed=5)
        for x, y in zip(a.batches(2), b.batches(2)):
            np.testing.assert_array_equal(x, y)

    def test_blocks_nest_layer_to_layer(self, rng):
        loader = NeighborLoader(_graph(), np.arange(80), (6, 4, 2), 16)
        seeds = np.arange(8)
        blocks = loader.sample_blocks(seeds, rng)
        assert len(blocks) == 3
        np.testing.assert_array_equal(blocks[-1].dst_nodes, seeds)
        for outer, inner in zip(blocks, blocks[1:]):
            # inner layer's sources are exactly the outer layer's dsts
            np.testing.assert_array_equal(outer.dst_nodes, inner.src_nodes)
        # forward order: frontiers shrink toward the seeds
        assert blocks[0].num_src >= blocks[-1].num_src

    def test_sampler_cost_scales_with_edges(self, rng):
        loader = NeighborLoader(_graph(), np.arange(80), (8,), 16)
        small = loader.sample_blocks(np.arange(2), rng)
        large = loader.sample_blocks(np.arange(40), rng)
        assert sampler_cost_s(large) > sampler_cost_s(small)
        assert sampler_cost_s([]) == SAMPLE_COST_PER_BATCH_S

    def test_validate_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            validate_sample_config((), 64, 2, 1)
        with pytest.raises(ValueError):
            validate_sample_config((0, 5), 64, 2, 1)
        with pytest.raises(ValueError):
            validate_sample_config((10,), 0, 2, 1)
        with pytest.raises(ValueError):
            validate_sample_config((10,), 64, -1, 1)
        with pytest.raises(ValueError):
            validate_sample_config((10,), 64, 2, 0)


class TestHashedFeatures:
    def test_lazy_shape_and_determinism(self):
        feats = HashedFeatures(10**6, 64, seed=3)
        assert feats.shape == (10**6, 64)
        ids = np.array([0, 17, 999_999])
        np.testing.assert_array_equal(feats[ids], feats[ids])
        assert feats[ids].dtype == np.float32

    def test_density_roughly_honored(self):
        feats = HashedFeatures(1000, 256, density=0.05)
        block = feats[np.arange(200)]
        assert 0.03 < block.mean() < 0.07

    def test_different_seeds_differ(self):
        ids = np.arange(50)
        a = HashedFeatures(100, 32, seed=0)[ids]
        b = HashedFeatures(100, 32, seed=1)[ids]
        assert not np.array_equal(a, b)


class TestSyntheticCitation:
    def test_scales_with_capped_train_split(self):
        ds = synthetic_citation(5000, train_cap=128, seed=0)
        assert ds.graph.num_nodes == 5000
        assert ds.train_idx.size == 128
        assert ds.num_classes == 8
        assert ds.feature_dim == 128

    def test_rejects_tiny_graphs(self):
        with pytest.raises(ValueError):
            synthetic_citation(3)


class TestPrefetchPipeline:
    def test_prefetch_beats_synchronous_with_less_stall(self):
        r0, _ = sample_run("ARGA", epochs=2, prefetch_depth=0)
        r2, _ = sample_run("ARGA", epochs=2, prefetch_depth=2)
        assert r2["epochs_per_sim_s"] > r0["epochs_per_sim_s"]
        assert r2["loader_stall_s"] < r0["loader_stall_s"]
        # synchronous sampling stalls for the full sampler cost
        assert r0["loader_stall_s"] == pytest.approx(r0["sample_cost_s"])

    def test_deeper_queue_never_slower(self):
        walls = [sample_run("ARGA", epochs=1, prefetch_depth=d)[0]
                 ["sim_wall_s"] for d in (0, 1, 2)]
        assert walls[0] >= walls[1] >= walls[2]

    def test_queue_occupancy_bounded_by_depth(self):
        for depth in (1, 2, 3):
            r, _ = sample_run("ARGA", epochs=1, prefetch_depth=depth)
            assert r["queue_occupancy_max"] <= depth
            assert 0.0 <= r["queue_occupancy_mean"] <= depth

    def test_stall_breakdown_includes_loader_and_sums_to_one(self):
        r, _ = sample_run("ARGA", epochs=1, prefetch_depth=0)
        breakdown = r["stall_breakdown"]
        assert "loader_stall" in breakdown
        assert breakdown["loader_stall"] > 0
        assert sum(breakdown.values()) == pytest.approx(1.0)

    def test_report_byte_identical_across_repeats(self):
        a, _ = sample_run("PSAGE-MVL", epochs=1)
        b, _ = sample_run("PSAGE-MVL", epochs=1)
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_loader_spans_on_their_own_stream(self):
        r, timeline = sample_run("ARGA", epochs=1, traced=True)
        spans = [s for s in timeline.spans if s.cat == trace.CAT_LOADER]
        assert len(spans) == r["batches"]
        assert all(s.tid == "loader" for s in spans)
        # host-side sampler spans must not count toward device busy time
        assert trace.CAT_LOADER not in trace.DEVICE_CATS
        assert timeline.busy_us(spans[0].pid) / 1e6 < r["sim_wall_s"]

    def test_trainer_rejects_loader_with_capture(self, gpu):
        trainer = Trainer(workload=object(), device=gpu,
                          capture_replay=True, loader=object())
        with pytest.raises(ValueError):
            trainer.run(epochs=1)


class TestEngines:
    def test_unknown_workload_rejected(self, gpu):
        with pytest.raises(ValueError):
            make_sample_engine("TLSTM", gpu, (10, 5))
        with pytest.raises(ValueError):
            make_sample_engine("ARGA", gpu, (10, 5), scale="nope")

    def test_nodes_only_for_citation(self, gpu):
        with pytest.raises(ValueError):
            make_sample_engine("PSAGE-MVL", gpu, (10, 5), nodes=1000)

    def test_sampleable_set(self):
        assert set(SAMPLEABLE) == {"ARGA", "PSAGE-MVL", "PSAGE-NWP"}

    def test_losses_are_finite(self):
        from repro.train.loader import (
            NeighborLoader,
            PrefetchPipeline,
        )

        device = SimulatedGPU()
        engine = make_sample_engine("PSAGE-MVL", device, (4, 3))
        loader = NeighborLoader(engine.graph, engine.train_ids[:64], (4, 3),
                                batch_size=32, seed=0)
        pipeline = PrefetchPipeline(loader, engine, device, prefetch_depth=2)
        metrics = pipeline.run_epoch(0, seed=0)
        assert np.isfinite(metrics["loss"])
        assert metrics["batches"] == 2


class TestMillionNodeGraph:
    def test_million_node_epoch_fits_hbm_strict(self):
        # acceptance: a 10^6-node citation graph completes a mini-batch
        # epoch under the 16 GiB capacity model with strict OOM checking
        report, _ = sample_run("ARGA", epochs=1, nodes=1_000_000,
                               batch_size=256, strict=True)
        assert report["graph_nodes"] == 1_000_000
        assert report["oom_events"] == 0
        assert report["peak_reserved_bytes"] < 16 * 2**30
        # bounded per-step memory: nothing node-count-sized is resident
        assert report["peak_live_bytes"] < 2**30
