"""Suite execution engine: serial ≡ parallel ≡ cache-hit, cache hygiene.

The engine's correctness bar is *bit-identical kernel streams*: golden
SHA-256 digests from serial execution, process-pool execution (jobs=1,2,4)
and cache-hit replay must match byte for byte for every registry workload.
Everything else here guards the cache's failure modes: keys must change
with any profile parameter or source edit, and damaged entries must fall
back to recomputation, never crash.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core import executor, registry
from repro.core.cache import CACHE_VERSION, ProfileCache, default_cache_dir
from repro.testing import golden

ALL_KEYS = list(registry.WORKLOAD_KEYS)


@pytest.fixture(scope="module")
def populated_cache(tmp_path_factory):
    """A ProfileCache whose root outlives individual tests in this module."""
    return ProfileCache(root=tmp_path_factory.mktemp("executor-cache"))


@pytest.fixture(scope="module")
def serial_fingerprints(populated_cache):
    """Ground truth: the whole registry fingerprinted serially (this run
    also populates ``populated_cache`` for the cache-hit leg)."""
    return golden.fingerprint_suite(ALL_KEYS, scale="test", epochs=1, seed=0,
                                    jobs=1, cache=populated_cache)


def _digests(fps: dict) -> dict[str, str]:
    return {k: fp["stream_digest"] for k, fp in fps.items()}


class TestEquivalence:
    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_parallel_digests_byte_identical(self, jobs, serial_fingerprints):
        fps = golden.fingerprint_suite(ALL_KEYS, scale="test", epochs=1,
                                       seed=0, jobs=jobs, cache=None)
        assert _digests(fps) == _digests(serial_fingerprints)

    def test_cache_hit_digests_byte_identical(self, serial_fingerprints,
                                              populated_cache, monkeypatch):
        hits_before = populated_cache.hits
        # prove hits replay from disk: recomputation would now blow up
        monkeypatch.setattr(
            golden, "fingerprint_workload",
            lambda *a, **k: pytest.fail("cache hit still recomputed"),
        )
        again = golden.fingerprint_suite(ALL_KEYS, scale="test", epochs=1,
                                         seed=0, jobs=1,
                                         cache=populated_cache)
        assert populated_cache.hits - hits_before == len(ALL_KEYS)
        assert _digests(again) == _digests(serial_fingerprints)

    def test_serial_fingerprints_match_committed_snapshots(self,
                                                           serial_fingerprints):
        """Anchor the equivalence chain to the committed snapshots: with
        serial == committed here and parallel/cache == serial above, every
        execution path reproduces tests/golden/*.json byte for byte."""
        for key in ALL_KEYS:
            expected = golden.load_golden(key)
            assert (serial_fingerprints[key]["stream_digest"]
                    == expected["stream_digest"]), key


class TestCacheInvalidation:
    def test_key_changes_with_every_field(self, tmp_path):
        cache = ProfileCache(root=tmp_path, fingerprint="code-v1")
        base = dict(key="TLSTM", scale="test", epochs=1, seed=0)
        reference = cache.key_for("fingerprint", **base)
        for variant in (dict(base, seed=1), dict(base, scale="profile"),
                        dict(base, epochs=2), dict(base, key="ARGA")):
            assert cache.key_for("fingerprint", **variant) != reference
        assert cache.key_for("profile", **base) != reference
        other_code = ProfileCache(root=tmp_path, fingerprint="code-v2")
        assert other_code.key_for("fingerprint", **base) != reference

    def test_seed_change_is_a_miss(self, tmp_path):
        cache = ProfileCache(root=tmp_path)
        first = golden.fingerprint_suite(["TLSTM"], seed=0, cache=cache)
        second = golden.fingerprint_suite(["TLSTM"], seed=1, cache=cache)
        assert cache.hits == 0 and cache.misses == 2
        assert (first["TLSTM"]["stream_digest"]
                != second["TLSTM"]["stream_digest"])

    def test_source_edit_is_a_miss(self, tmp_path):
        before = ProfileCache(root=tmp_path, fingerprint="code-v1")
        golden.fingerprint_suite(["TLSTM"], cache=before)
        assert before.stores == 1
        after = ProfileCache(root=tmp_path, fingerprint="code-v2")
        golden.fingerprint_suite(["TLSTM"], cache=after)
        assert after.hits == 0 and after.misses == 1

    def test_unchanged_params_hit(self, tmp_path):
        cache = ProfileCache(root=tmp_path)
        first = golden.fingerprint_suite(["TLSTM"], cache=cache)
        again = golden.fingerprint_suite(["TLSTM"], cache=cache)
        assert cache.hits == 1
        assert first["TLSTM"] == again["TLSTM"]


class TestCacheDamage:
    def _store_one(self, tmp_path):
        cache = ProfileCache(root=tmp_path)
        fps = golden.fingerprint_suite(["TLSTM"], cache=cache)
        [path] = sorted(tmp_path.glob("*.pkl"))
        return fps["TLSTM"], path

    def test_corrupted_entry_recomputes(self, tmp_path):
        reference, path = self._store_one(tmp_path)
        path.write_bytes(b"this is not a pickle")
        fresh = ProfileCache(root=tmp_path)
        fps = golden.fingerprint_suite(["TLSTM"], cache=fresh)
        assert fresh.hits == 0 and fresh.misses == 1
        assert fps["TLSTM"]["stream_digest"] == reference["stream_digest"]

    def test_truncated_entry_recomputes(self, tmp_path):
        reference, path = self._store_one(tmp_path)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        fresh = ProfileCache(root=tmp_path)
        fps = golden.fingerprint_suite(["TLSTM"], cache=fresh)
        assert fresh.hits == 0
        assert fps["TLSTM"]["stream_digest"] == reference["stream_digest"]

    def test_version_skew_is_a_miss(self, tmp_path):
        cache = ProfileCache(root=tmp_path)
        key = cache.key_for("fingerprint", key="TLSTM")
        entry = {"version": CACHE_VERSION + 1, "key": key, "payload": {"x": 1}}
        cache.root.mkdir(parents=True, exist_ok=True)
        cache.path_for(key).write_bytes(pickle.dumps(entry))
        assert cache.load(key) is None
        # the skewed file is discarded so it cannot shadow a future store
        assert not cache.path_for(key).exists()

    def test_unwritable_root_is_not_fatal(self, tmp_path):
        cache = ProfileCache(root=tmp_path / "file-in-the-way")
        (tmp_path / "file-in-the-way").write_text("not a directory")
        fps = golden.fingerprint_suite(["TLSTM"], cache=cache)
        assert fps["TLSTM"]["workload"] == "TLSTM"
        assert cache.stores == 0


class TestExecutor:
    def test_unknown_task_kind_raises(self):
        with pytest.raises(ValueError, match="unknown task kind"):
            executor.execute_task(("teleport", {"key": "TLSTM"}))

    def test_resolve_jobs(self, monkeypatch):
        assert executor.resolve_jobs(4) == 4
        assert executor.resolve_jobs(0) == 1
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert executor.resolve_jobs(None) == 1
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert executor.resolve_jobs(None) == 3
        monkeypatch.setenv("REPRO_JOBS", "soon")
        assert executor.resolve_jobs(None) == 1

    def test_default_cache_dir_honours_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
        assert default_cache_dir() == tmp_path / "elsewhere"

    def test_pooled_profiles_are_usable(self):
        """WorkloadProfiles crossing the process boundary keep every figure
        view working (spec repickles by registry key; the memory view uses
        bytes captured at profile time, not the dropped workload ref)."""
        suite = executor.run_suite(["TLSTM", "KGNNL"], scale="test", jobs=2,
                                   cache=None)
        for key in ("TLSTM", "KGNNL"):
            profile = suite[key]
            assert profile.spec.key == key
            assert profile._workload is None  # dropped in transit
            assert sum(profile.op_breakdown().values()) == pytest.approx(1.0)
            assert profile.memory_footprint()["model_bytes"] > 0
            assert profile.launch_count > 0

    def test_scaling_points_parallel_equals_serial(self):
        points = [("TLSTM", 1), ("TLSTM", 2)]
        serial = executor.run_scaling_points(points, jobs=1, cache=None)
        pooled = executor.run_scaling_points(points, jobs=2, cache=None)
        assert [p.epoch_time_s for p in serial] == \
            [p.epoch_time_s for p in pooled]
        assert [p.grad_bytes for p in serial] == \
            [p.grad_bytes for p in pooled]

    def test_benchmark_suite_report(self):
        report = executor.benchmark_suite(keys=["TLSTM", "KGNNL"],
                                          scale="test", jobs=2)
        assert report["suite"] == ["TLSTM", "KGNNL"]
        assert report["warm_cache_hits"] == 2
        assert report["cold_serial_s"] > 0
        assert report["warm_cache_s"] > 0
        # the acceptance bar is 5x on the full suite; even a two-workload
        # test-scale suite replays far faster than it recomputes
        assert report["warm_speedup"] > 5.0
