"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.gpu import SimulatedGPU
from repro.tensor import manual_seed


@pytest.fixture(autouse=True)
def _seeded():
    """Every test starts from the same framework RNG state."""
    manual_seed(1234)
    yield


@pytest.fixture
def gpu() -> SimulatedGPU:
    return SimulatedGPU()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(7)
