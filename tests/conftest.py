"""Shared fixtures for the test suite."""

import os

import numpy as np
import pytest

from repro.gpu import SimulatedGPU
from repro.tensor import manual_seed


@pytest.fixture(autouse=True, scope="session")
def _isolated_profile_cache(tmp_path_factory):
    """Point the persistent profile cache at a session tmpdir.

    Tests must never read (stale hits) or pollute (junk entries) a
    developer's real ``~/.cache/repro-gnnmark``; the env var is what
    :func:`repro.core.cache.default_cache_dir` resolves first, and it is
    inherited by executor worker processes.
    """
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("profile-cache"))
    yield
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous


@pytest.fixture(autouse=True)
def _seeded():
    """Every test starts from the same framework RNG state."""
    manual_seed(1234)
    yield


@pytest.fixture
def gpu() -> SimulatedGPU:
    return SimulatedGPU()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(7)
