"""Unit tests for the insight engine: provenance, diagnosis, gates, CLI.

The acceptance bar for the differential diagnoser is concrete: perturb a
committed baseline and the failing gate must *name* the regressed workload
and the stream the time moved to, not just report an aggregate miss.
"""

import json

import pytest

from repro.core import executor
from repro.profiling import insights, report as report_mod
from tests.cli_helpers import run_cli


@pytest.fixture(scope="module")
def dgcn_report():
    return insights.insights_report("DGCN", scale="test", epochs=1)


class TestManifest:
    def test_sim_digest_is_stable(self):
        assert insights.sim_digest() == insights.sim_digest()
        assert len(insights.sim_digest()) == 64

    def test_manifest_pins_run_parameters(self):
        m = insights.build_manifest("DGCN", scale="test", epochs=3, seed=7,
                                    gpus=2, parts=4)
        d = m.as_dict()
        assert d["workload"] == "DGCN"
        assert (d["scale"], d["epochs"], d["seed"]) == ("test", 3, 7)
        assert (d["gpus"], d["parts"]) == (2, 4)
        assert d["sim_digest"] == insights.sim_digest()
        assert d["source_digest"]
        assert d["analysis_cache"] is None
        assert d["capture_replay"] is False
        with pytest.raises(Exception):  # frozen provenance record
            m.workload = "other"

    def test_report_embeds_manifest(self, dgcn_report):
        m = dgcn_report["manifest"]
        assert m["workload"] == "DGCN"
        assert m["epochs"] == 1 and m["gpus"] == 1

    def test_digest_ignores_source_hash_only(self, dgcn_report):
        mutated = json.loads(json.dumps(dgcn_report))
        mutated["manifest"]["source_digest"] = "f" * 64
        assert (insights.insights_digest(mutated)
                == dgcn_report["insights_digest"])
        mutated["wall_us"] += 1.0
        assert (insights.insights_digest(mutated)
                != dgcn_report["insights_digest"])


class TestReportShape:
    def test_summaries_cover_all_bound_classes(self, dgcn_report):
        assert tuple(dgcn_report["bound_summary"]) == insights.BOUND_CLASSES
        shares = sum(v["share"]
                     for v in dgcn_report["bound_summary"].values())
        assert shares == pytest.approx(1.0, abs=1e-6)

    def test_sites_sorted_by_duration(self, dgcn_report):
        durs = [s["duration_us"] for s in dgcn_report["sites"]]
        assert durs == sorted(durs, reverse=True)

    def test_kernel_sites_carry_roofline_fields(self, dgcn_report):
        kernel_sites = [s for s in dgcn_report["sites"] if "launches" in s]
        assert kernel_sites
        for s in kernel_sites:
            assert s["roof_basis"] in ("fp32", "int32", "memory")
            assert s["pct_of_roof"] >= 0.0
            assert s["arithmetic_intensity"] >= 0.0


class TestDiff:
    def test_identical_reports_have_no_movers(self, dgcn_report):
        diff = insights.diff_insights(dgcn_report, dgcn_report)
        assert diff["kind"] == "insights"
        assert diff["movers"] == []
        assert diff["delta_us"] == 0.0
        assert insights.render_diff_lines(diff) == []

    def test_perturbed_site_is_named_with_full_share(self, dgcn_report):
        mutated = json.loads(json.dumps(dgcn_report))
        victim = mutated["sites"][0]
        victim["duration_us"] += 500.0
        diff = insights.diff_insights(dgcn_report, mutated)
        assert len(diff["movers"]) == 1
        mover = diff["movers"][0]
        assert mover["site"] == victim["site"]
        assert mover["stream"] == victim["stream"]
        assert mover["delta_us"] == pytest.approx(500.0)
        assert mover["share"] == pytest.approx(1.0)
        lines = insights.render_diff_lines(diff)
        assert any(victim["site"] in line for line in lines)

    def test_kind_detection(self, dgcn_report):
        assert insights._report_kind(dgcn_report) == "insights"
        assert insights._report_kind({"frontier": {"gpus1": 2}}) == "shard"
        assert insights._report_kind(
            {"workloads": {"X": {"prefetch_epochs_per_s": 1.0}}}) == "sample"
        assert insights._report_kind(
            {"workload_speedups": {"X": 2.0}}) == "hotpath"
        assert insights._report_kind({"note": "hi"}) == "unknown"

    def test_sparse_baseline_yields_no_movers(self):
        report = {"speedup": 2.0,
                  "workloads": {"KGNNL": {"speedup": 2.0}}}
        diff = insights.diff_insights({"speedup": 1e9}, report)
        assert diff["movers"] == []
        assert insights.render_diff_lines(diff) == []


class TestGateAttribution:
    """Acceptance criteria: a perturbed baseline makes the gate print
    top-N attribution naming the regressed workload and stream."""

    def test_hotpath_gate_names_workload_and_stream(self):
        baseline = {
            "speedup": 2.5, "workload_floor": 1.2,
            "workload_speedups": {"DGCN": 4.0, "STGCN": 1.7},
            "workload_tolerance": {"DGCN": 0.1, "STGCN": 0.1},
        }
        report = {
            "speedup": 2.4,
            "workloads": {"DGCN": {"speedup": 1.0},
                          "STGCN": {"speedup": 1.7}},
        }
        failures = executor.check_hotpath_regression(report, baseline)
        assert any(f.startswith("DGCN:") for f in failures)
        # STGCN held its committed ratio: it must not be flagged
        assert not any(f.startswith("STGCN:") for f in failures)
        attribution = [f for f in failures if "stream" in f]
        assert any("DGCN" in f and "stream kernels" in f for f in attribution)
        assert any(f.startswith("top movers (hotpath") for f in failures)

    def test_hotpath_hard_floor_applies_without_committed_ratio(self):
        baseline = {"speedup": 2.5, "workload_floor": 1.2}
        report = {"speedup": 2.5,
                  "workloads": {"TLSTM": {"speedup": 1.1}}}
        failures = executor.check_hotpath_regression(report, baseline)
        assert any(f.startswith("TLSTM:") and "hard floor 1.20x" in f
                   for f in failures)

    def test_shard_gate_names_config_and_stream(self):
        baseline = {"frontier": {"gpus1": 3, "gpus2": 5, "gpus4": 8,
                                 "offload": 6}}
        report = {"frontier": {"gpus1": 3, "gpus2": 4, "gpus4": 8,
                               "offload": 6}}
        failures = executor.check_shard_regression(report, baseline)
        assert any(f.startswith("gpus2:") for f in failures)
        assert any("gpus2" in f and "stream halo" in f for f in failures)

    def test_passing_gate_prints_nothing(self):
        baseline = {"speedup": 2.5,
                    "workload_speedups": {"DGCN": 4.0}}
        report = {"speedup": 2.5,
                  "workloads": {"DGCN": {"speedup": 4.0}}}
        assert executor.check_hotpath_regression(report, baseline) == []


class TestRenderers:
    def test_format_insights_mentions_key_facts(self, dgcn_report):
        text = report_mod.format_insights(dgcn_report)
        assert "DGCN" in text
        assert dgcn_report["insights_digest"][:12] in text
        for cls in insights.BOUND_CLASSES:
            assert cls in text

    def test_format_insights_diff_renders_movers(self, dgcn_report):
        mutated = json.loads(json.dumps(dgcn_report))
        mutated["sites"][0]["duration_us"] += 500.0
        diff = insights.diff_insights(dgcn_report, mutated)
        text = report_mod.format_insights_diff(diff)
        assert "insights diff" in text
        assert mutated["sites"][0]["site"] in text


class TestCLI:
    def test_insights_command_writes_report(self, capsys, tmp_path):
        out = tmp_path / "insights.json"
        res = run_cli(["insights", "dgcn", "-o", str(out)], capsys)
        assert res.code == 0
        payload = json.loads(out.read_text())
        assert payload["manifest"]["workload"] == "DGCN"
        assert payload["insights_digest"] == insights.insights_digest(payload)
        assert "DGCN" in res.out

    def test_insights_diff_mode(self, capsys, tmp_path):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        report = insights.insights_report("DGCN", scale="test", epochs=1)
        mutated = json.loads(json.dumps(report))
        mutated["sites"][0]["duration_us"] += 500.0
        a.write_text(json.dumps(report))
        b.write_text(json.dumps(mutated))
        res = run_cli(["insights", "--diff", str(a), str(b)], capsys)
        assert res.code == 0
        assert "top movers" in res.out

    def test_insights_requires_workload_or_diff(self, capsys):
        res = run_cli(["insights"], capsys)
        assert res.code != 0
