"""Heterogeneous and temporal graph support."""

import numpy as np
import pytest

from repro.graph import DynamicGraph, Graph, HeteroGraph, TemporalSignal


def _bipartite():
    return HeteroGraph(
        num_nodes={"user": 3, "item": 4},
        edges={
            ("user", "buys", "item"): (np.array([0, 1, 2, 0]),
                                       np.array([0, 1, 2, 3])),
            ("item", "bought-by", "user"): (np.array([0, 1, 2, 3]),
                                            np.array([0, 1, 2, 0])),
        },
    )


class TestHeteroGraph:
    def test_counts(self):
        g = _bipartite()
        assert g.num_nodes("user") == 3
        assert g.num_edges(("user", "buys", "item")) == 4
        assert set(g.node_types) == {"user", "item"}
        assert len(g.edge_types) == 2

    def test_rejects_unknown_type(self):
        with pytest.raises(KeyError):
            HeteroGraph({"a": 2}, {("a", "r", "b"): (np.array([0]), np.array([0]))})

    def test_rejects_out_of_range_ids(self):
        with pytest.raises(ValueError):
            HeteroGraph({"a": 2, "b": 2},
                        {("a", "r", "b"): (np.array([5]), np.array([0]))})

    def test_adjacency_shape(self):
        adj = _bipartite().adjacency(("user", "buys", "item"))
        assert adj.shape == (4, 3)  # dst-by-src

    def test_rw_normalization(self):
        adj = _bipartite().adjacency(("user", "buys", "item"), norm="rw").scipy()
        sums = np.asarray(adj.sum(axis=1)).reshape(-1)
        np.testing.assert_allclose(sums[sums > 0], 1.0)

    def test_bipartite_projection_items_linked_via_users(self):
        g = _bipartite()
        proj = g.bipartite_projection(
            via=("item", "bought-by", "user"), back=("user", "buys", "item")
        )
        assert isinstance(proj, Graph)
        assert proj.num_nodes == 4
        # items 0 and 3 share user 0 -> connected, no self loops
        pairs = set(zip(proj.src.tolist(), proj.dst.tolist()))
        assert (0, 3) in pairs or (3, 0) in pairs
        assert all(s != d for s, d in pairs)


class TestTemporalSignal:
    def _signal(self, steps=20, nodes=4):
        g = Graph(np.arange(nodes - 1), np.arange(1, nodes), num_nodes=nodes)
        values = np.arange(steps * nodes, dtype=np.float32).reshape(steps, nodes)
        return TemporalSignal(g, values, history=3, horizon=2)

    def test_window_count(self):
        sig = self._signal(steps=20)
        assert len(sig) == 20 - 3 - 2 + 1

    def test_window_contents(self):
        sig = self._signal()
        x, y = sig.window(0)
        assert x.shape == (3, 4, 1)
        np.testing.assert_allclose(x[:, :, 0], sig.signal[:3, :, 0])
        np.testing.assert_allclose(y[:, 0], sig.signal[4, :, 0])

    def test_window_out_of_range(self):
        with pytest.raises(IndexError):
            self._signal().window(1000)

    def test_batches_cover_everything(self):
        sig = self._signal()
        seen = sum(x.shape[0] for x, _ in sig.batches(4))
        assert seen == len(sig)

    def test_shuffled_batches(self):
        sig = self._signal()
        a = np.concatenate([x for x, _ in sig.batches(4)])
        b = np.concatenate(
            [x for x, _ in sig.batches(4, rng=np.random.default_rng(0))]
        )
        assert a.shape == b.shape

    def test_mismatched_nodes_rejected(self):
        g = Graph([0], [1], num_nodes=2)
        with pytest.raises(ValueError):
            TemporalSignal(g, np.zeros((5, 3)), 2, 1)


class TestDynamicGraph:
    def test_append_and_index(self):
        dyn = DynamicGraph()
        dyn.append(Graph([0], [1], num_nodes=3))
        dyn.append(Graph([1], [2], num_nodes=3))
        assert len(dyn) == 2
        assert dyn[1].src[0] == 1

    def test_node_overlap(self):
        dyn = DynamicGraph()
        dyn.append(Graph([0], [1], num_nodes=3))
        dyn.append(Graph([0], [1], num_nodes=3))
        dyn.append(Graph([1], [2], num_nodes=3))
        assert dyn.node_overlap(0, 1) == 1.0
        assert 0 < dyn.node_overlap(0, 2) < 1.0
