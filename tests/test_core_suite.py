"""GNNMark core: registry (Table I), characterization pipeline, suite API."""

import numpy as np
import pytest

from repro import GNNMark
from repro.core import profile_workload, registry


class TestRegistry:
    def test_all_nine_workloads_present(self):
        assert set(registry.WORKLOAD_KEYS) == {
            "DGCN", "GW", "KGNNL", "KGNNH", "PSAGE-MVL", "PSAGE-NWP",
            "STGCN", "TLSTM", "ARGA",
        }

    def test_unknown_key_raises(self):
        with pytest.raises(KeyError):
            registry.get("RESNET")

    def test_unknown_scale_raises(self):
        with pytest.raises(ValueError):
            registry.get("TLSTM").build(scale="enormous")

    def test_table1_rows_complete(self):
        rows = registry.table1_rows()
        assert len(rows) == 9
        for row in rows:
            assert row["model"] and row["dataset"] and row["framework"]

    def test_framework_attribution(self):
        """DGL vs PyG origins, as in the paper's Table I."""
        assert registry.get("PSAGE-MVL").framework == "DGL"
        assert registry.get("TLSTM").framework == "DGL"
        assert registry.get("KGNNL").framework == "PyG"
        assert registry.get("ARGA").framework == "PyG"

    def test_ddp_modes(self):
        assert registry.get("ARGA").ddp == "none"
        assert registry.get("PSAGE-MVL").ddp == "replicate"
        assert registry.get("DGCN").ddp == "batch"

    def test_every_workload_builds_at_test_scale(self):
        for key in registry.WORKLOAD_KEYS:
            workload = registry.get(key).build(scale="test")
            assert hasattr(workload, "train_epoch")
            assert hasattr(workload, "optimizer")


class TestProfileWorkload:
    @pytest.fixture(scope="class")
    def tlstm_profile(self):
        return profile_workload("TLSTM", scale="test", epochs=1)

    def test_profile_contains_all_views(self, tlstm_profile):
        p = tlstm_profile
        assert sum(p.op_breakdown().values()) == pytest.approx(1.0)
        assert sum(p.instruction_mix().values()) == pytest.approx(1.0)
        assert p.throughput()["gflops"] > 0
        assert sum(p.stalls().values()) == pytest.approx(1.0)
        cache = p.cache()
        assert 0 <= cache["l1_hit"] <= 1
        assert 0 <= cache["divergent_loads"] <= 1
        assert 0 <= p.transfer_sparsity() <= 1
        assert p.launch_count > 0
        assert len(p.epoch_times) == 1

    def test_setup_excluded_from_profile(self, tlstm_profile):
        """Weight-upload transfers happen before instrumentation attaches."""
        labels = {s.label for s in tlstm_profile.sparsity.samples}
        assert "param" not in labels

    def test_epoch_time_positive(self, tlstm_profile):
        assert tlstm_profile.epoch_times[0] > 0


class TestGNNMarkFacade:
    @pytest.fixture(scope="class")
    def mark(self):
        return GNNMark(scale="test")

    @pytest.fixture(scope="class")
    def mini_suite(self, mark):
        return mark.characterize_suite(keys=["TLSTM", "KGNNL"], epochs=1)

    def test_workload_listing(self, mark):
        assert len(mark.workloads()) == 9

    def test_render_table1(self, mark):
        text = mark.render_table1()
        assert "PinSAGE" in text and "METR-LA" in text

    def test_figure_renderers_produce_rows(self, mark, mini_suite):
        for render in [mark.render_op_breakdown, mark.render_instruction_mix,
                       mark.render_throughput, mark.render_stalls,
                       mark.render_cache, mark.render_sparsity,
                       mark.render_sparsity_timeline]:
            text = render(mini_suite)
            assert "TLSTM" in text and "KGNNL" in text

    def test_suite_mean_helper(self, mini_suite):
        means = mini_suite.mean_over_workloads(lambda p: p.instruction_mix())
        assert set(means) == {"fp32", "int32", "other"}
        assert sum(means.values()) == pytest.approx(1.0)

    def test_suite_getitem(self, mini_suite):
        assert mini_suite["TLSTM"].key == "TLSTM"
        assert set(mini_suite.keys()) == {"TLSTM", "KGNNL"}

    def test_render_table1_empty_rows(self, mark):
        # regression: used to crash (rows[0] / bare max() over no rows)
        assert mark.render_table1(rows=[]) == "(no workloads)"

    def test_figure_renderers_empty_suite(self, mark):
        from repro.core.characterize import SuiteProfile

        empty = SuiteProfile()
        for render in [mark.render_op_breakdown, mark.render_instruction_mix,
                       mark.render_throughput, mark.render_stalls,
                       mark.render_cache, mark.render_sparsity,
                       mark.render_sparsity_timeline]:
            text = render(empty)
            assert "(no workloads)" in text
        assert "(no workloads)" in mark.render_scaling({})
