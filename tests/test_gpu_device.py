"""SimulatedGPU device behaviour: clocks, listeners, transfers."""

import numpy as np
import pytest

from repro.gpu import KernelDescriptor, OpClass, SimulatedGPU


def _desc(threads=1 << 16, **kw):
    base = dict(name="k", op_class=OpClass.ELEMENTWISE, threads=threads,
                bytes_read=float(threads * 4), bytes_written=float(threads * 4))
    base.update(kw)
    return KernelDescriptor(**base)


class TestClocks:
    def test_clock_advances_per_launch(self, gpu):
        t0 = gpu.elapsed_s()
        gpu.launch(_desc())
        assert gpu.elapsed_s() > t0

    def test_async_launches_absorb_overhead(self):
        """Big kernels hide the host enqueue cost (CUDA streams)."""
        gpu = SimulatedGPU()
        big = _desc(threads=1 << 22, bytes_read=float(512 << 20),
                    bytes_written=float(128 << 20))
        for _ in range(10):
            gpu.launch(big)
        # gaps only on the first launch; the rest enqueue while GPU is busy
        assert gpu.stats.launch_overhead_s < 2 * gpu.sim.device.kernel_launch_overhead_s

    def test_tiny_kernels_are_launch_bound(self):
        gpu = SimulatedGPU()
        tiny = _desc(threads=32, bytes_read=128.0, bytes_written=128.0)
        for _ in range(100):
            gpu.launch(tiny)
        # host enqueue (4us each) dominates these sub-2us kernels
        assert gpu.stats.launch_overhead_s > 0.5 * 100 * gpu.sim.device.kernel_launch_overhead_s

    def test_reset_clears_everything(self, gpu):
        gpu.launch(_desc())
        gpu.h2d(np.zeros(10), "x")
        gpu.reset()
        assert gpu.elapsed_s() == 0.0
        assert gpu.host_clock_s == 0.0
        assert gpu.stats.kernel_count == 0
        assert gpu.stats.transfer_count == 0


class TestTransfers:
    def test_h2d_measures_sparsity(self, gpu):
        arr = np.array([0.0, 1.0, 0.0, 0.0], dtype=np.float32)
        record = gpu.h2d(arr, "test")
        assert record.sparsity == pytest.approx(0.75)
        assert record.nbytes == 16

    def test_dense_array_zero_sparsity(self, gpu):
        record = gpu.h2d(np.ones(100, dtype=np.float32))
        assert record.sparsity == 0.0

    def test_int_arrays_counted_too(self, gpu):
        record = gpu.h2d(np.array([0, 5, 0], dtype=np.int64))
        assert record.sparsity == pytest.approx(2 / 3)

    def test_transfer_duration_scales_with_bytes(self, gpu):
        small = gpu.h2d(np.zeros(1 << 10, dtype=np.float32))
        large = gpu.h2d(np.zeros(1 << 22, dtype=np.float32))
        assert large.duration_s > small.duration_s

    def test_d2h_direction_recorded(self, gpu):
        record = gpu.d2h(np.zeros(4))
        assert record.direction == "d2h"
        assert gpu.stats.d2h_bytes == 32


class TestListeners:
    def test_launch_listener_sees_every_kernel(self, gpu):
        seen = []
        gpu.add_launch_listener(seen.append)
        gpu.launch(_desc())
        gpu.launch(_desc())
        assert len(seen) == 2
        assert seen[0].launch_id == 0 and seen[1].launch_id == 1

    def test_removed_listener_stops_receiving(self, gpu):
        seen = []
        gpu.add_launch_listener(seen.append)
        gpu.remove_launch_listener(seen.append)
        gpu.launch(_desc())
        assert seen == []

    def test_transfer_listener(self, gpu):
        seen = []
        gpu.add_transfer_listener(seen.append)
        gpu.h2d(np.zeros(8))
        # unlabelled copies default to their direction, never ""
        assert len(seen) == 1 and seen[0].label == "h2d"

    def test_reset_clears_listeners_and_site_memo(self, gpu):
        """A tracer detached (or leaked) before reset must not leak into the
        next measurement run on a reused device."""
        seen = []
        gpu.add_launch_listener(seen.append)
        gpu.add_transfer_listener(seen.append)
        gpu.site_records[("stale",)] = ("whatever",)
        gpu.reset()
        assert gpu._launch_listeners == []
        assert gpu._transfer_listeners == []
        assert gpu.site_records == {}
        gpu.launch(_desc())
        gpu.h2d(np.zeros(8))
        assert seen == []

    def test_override_toggle_resets_analysis_counters(self, gpu):
        """Hit/miss telemetry sampled with the cache on must not bleed into
        a run measured with it off (and vice versa)."""
        from repro.gpu import analysis_cache

        with analysis_cache.override(True):
            gpu.launch(_desc())
            gpu.launch(_desc())
            assert gpu.stats.analysis_hits + gpu.stats.analysis_misses == 2
            with analysis_cache.override(not analysis_cache.enabled()):
                # effective setting flipped: counters start from zero
                assert gpu.stats.analysis_hits == 0
                assert gpu.stats.analysis_misses == 0
                gpu.launch(_desc())
                assert gpu.stats.analysis_hits + gpu.stats.analysis_misses == 1
                with analysis_cache.override(analysis_cache.enabled()):
                    # redundant override (same effective value): no reset
                    assert (gpu.stats.analysis_hits
                            + gpu.stats.analysis_misses == 1)


class TestStats:
    def test_flop_accounting(self, gpu):
        gpu.launch(_desc(fp32_flops=1e6, int32_iops=2e6))
        assert gpu.stats.fp32_flops == pytest.approx(1e6)
        assert gpu.stats.int32_iops == pytest.approx(2e6)

    def test_kernel_rejects_zero_threads(self):
        with pytest.raises(ValueError):
            KernelDescriptor(name="bad", op_class=OpClass.GEMM, threads=0)

    def test_launch_metrics_attached(self, gpu):
        launch = gpu.launch(_desc())
        assert launch.duration_s > 0
        assert launch.stalls.total() == pytest.approx(1.0)
        assert 0 <= launch.memory.l1_hit_rate <= 1
        assert launch.gflops >= 0
