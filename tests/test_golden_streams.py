"""Every registry workload's kernel stream against its golden snapshot.

A failure here means the op stream a workload emits changed.  If the change
is intentional (new kernel, different lowering, fixed gradient), regenerate
the snapshots with `PYTHONPATH=src python -m repro golden --update` and
commit the JSON diff; if not, you just caught a silent math change.
"""

from __future__ import annotations

import json

import pytest

from repro.core.registry import WORKLOAD_KEYS
from repro.testing import golden_path, load_golden, save_golden, verify_golden


@pytest.mark.parametrize("key", WORKLOAD_KEYS)
def test_stream_matches_golden(key):
    diffs = verify_golden(key)
    assert not diffs, (
        f"{key} kernel stream diverged from tests/golden/{key}.json:\n  "
        + "\n  ".join(diffs)
        + "\nIf intentional: PYTHONPATH=src python -m repro golden --update"
    )


def test_snapshots_exist_for_whole_registry():
    missing = [k for k in WORKLOAD_KEYS if not golden_path(k).exists()]
    assert not missing, f"no golden snapshot for {missing}"


def test_snapshot_files_round_trip():
    # save_golden writes canonical JSON (sorted keys, trailing newline), so
    # re-saving a loaded snapshot must be byte-identical to the file on disk.
    for key in WORKLOAD_KEYS:
        path = golden_path(key)
        original = path.read_text()
        fingerprint = load_golden(key)
        assert save_golden(fingerprint).read_text() == original
        assert json.dumps(fingerprint, indent=2, sort_keys=True) + "\n" == original
