"""Shared helper for exercising ``python -m repro`` in-process.

``cli.main`` returns an int on the happy path but raises ``SystemExit``
(with either an int code or a message string) on argparse rejections and
workload-resolution failures.  :func:`run_cli` normalizes both shapes
into one :class:`CLIResult` so CLI tests can assert on exit code, stdout
and stderr uniformly without sprinkling ``pytest.raises`` everywhere.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass

from repro import __main__ as cli


@dataclass(frozen=True)
class CLIResult:
    code: int
    out: str
    err: str


def run_cli(argv, capsys) -> CLIResult:
    """Run ``python -m repro`` with ``argv`` and capture the outcome.

    ``SystemExit`` is folded into the result the way the interpreter
    would: ``None`` → 0, an int → that code, a message string → printed
    to stderr with exit code 1.
    """
    code = 0
    try:
        rc = cli.main(list(argv))
        code = 0 if rc is None else int(rc)
    except SystemExit as exc:  # argparse / workload-resolution errors
        if exc.code is None:
            code = 0
        elif isinstance(exc.code, int):
            code = exc.code
        else:
            print(exc.code, file=sys.stderr)
            code = 1
    captured = capsys.readouterr()
    return CLIResult(code=code, out=captured.out, err=captured.err)
