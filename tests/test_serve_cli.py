"""CLI tests for ``python -m repro serve`` and ``golden --serve``.

Error paths (unknown workload, contradictory flags) must exit non-zero
with a usable message; the happy path prints the latency report and the
digest, and ``-o`` exports a schema-valid Chrome trace.
"""

import json

import pytest

from repro.profiling import trace
from tests.cli_helpers import run_cli


class TestServeCommand:
    def test_happy_path_prints_report(self, capsys):
        res = run_cli(["serve", "psage-mvl", "--qps", "200",
                       "--requests", "32"], capsys)
        assert res.code == 0
        assert "PSAGE-MVL" in res.out
        assert "latency" in res.out
        assert "p50" in res.out and "p99" in res.out
        assert "serve digest" in res.out
        assert "req/s" in res.out

    def test_trace_export_validates(self, capsys, tmp_path):
        out_path = tmp_path / "serve.json"
        res = run_cli(["serve", "dgcn", "--qps", "200", "--requests", "16",
                       "--arrival", "bursty", "-o", str(out_path)], capsys)
        assert res.code == 0
        data = json.loads(out_path.read_text())
        trace.validate_chrome(data)
        cats = {ev.get("cat") for ev in data["traceEvents"]}
        assert "serve" in cats and "queue" in cats
        assert str(out_path) in res.out

    def test_repeat_runs_print_same_digest(self, capsys):
        argv = ["serve", "dgcn", "--qps", "150", "--requests", "16"]
        first = run_cli(argv, capsys)
        second = run_cli(argv, capsys)
        digest = [ln for ln in first.out.splitlines() if "digest" in ln]
        assert digest and digest == \
            [ln for ln in second.out.splitlines() if "digest" in ln]

    def test_missing_workload_rejected(self, capsys):
        res = run_cli(["serve"], capsys)
        assert res.code == 2
        assert "workload" in (res.out + res.err).lower()

    def test_unknown_workload_rejected(self, capsys):
        res = run_cli(["serve", "nope"], capsys)
        assert res.code != 0
        assert "unknown workload" in res.err

    def test_unserveable_workload_rejected(self, capsys):
        res = run_cli(["serve", "tlstm"], capsys)
        assert res.code == 2
        assert "no serving engine" in res.out + res.err

    @pytest.mark.parametrize("argv,needle", [
        (["serve", "dgcn", "--qps", "0"], "qps"),
        (["serve", "dgcn", "--qps", "-5"], "qps"),
        (["serve", "dgcn", "--batch-max", "0"], "batch-max"),
        (["serve", "dgcn", "--max-wait-us", "-1"], "max-wait-us"),
        (["serve", "dgcn", "--requests", "0"], "requests"),
    ])
    def test_contradictory_flags_rejected(self, capsys, argv, needle):
        res = run_cli(argv, capsys)
        assert res.code == 2
        message = res.out + res.err
        assert needle in message
        assert "got" in message  # echoes the offending value back

    def test_bad_arrival_rejected_by_argparse(self, capsys):
        res = run_cli(["serve", "dgcn", "--arrival", "uniform"], capsys)
        assert res.code == 2
        assert "invalid choice" in res.err


class TestGoldenServeFlow:
    def test_verify_against_committed_snapshots(self, capsys):
        res = run_cli(["golden", "--serve"], capsys)
        assert res.code == 0
        for key in ("PSAGE-MVL", "PSAGE-NWP", "DGCN"):
            assert f"{key}: ok" in res.out

    def test_single_key_verify(self, capsys):
        res = run_cli(["golden", "DGCN", "--serve"], capsys)
        assert res.code == 0
        assert "DGCN: ok" in res.out
        assert "PSAGE-MVL" not in res.out
