"""Tensor type basics: construction, dtype, devices, operator sugar."""

import numpy as np
import pytest

from repro.gpu import SimulatedGPU
from repro.tensor import Tensor, arange, full, ones, tensor, zeros


class TestConstruction:
    def test_float64_downcast(self):
        t = Tensor(np.zeros(3, dtype=np.float64))
        assert t.dtype == np.float32

    def test_int_dtype_preserved(self):
        t = Tensor(np.zeros(3, dtype=np.int64))
        assert t.dtype == np.int64

    def test_from_tensor_copies_payload_reference(self):
        a = Tensor(np.ones(3))
        b = Tensor(a)
        assert np.array_equal(a.data, b.data)

    def test_constructors(self):
        assert zeros((2, 3)).shape == (2, 3)
        assert ones(4).data.sum() == 4
        assert full((2,), 7.0).data[0] == 7.0
        assert arange(5).size == 5
        assert tensor([1.0, 2.0]).dtype == np.float32

    def test_shape_properties(self):
        t = zeros((2, 3, 4))
        assert t.ndim == 3
        assert t.size == 24
        assert t.nbytes == 96
        assert len(t) == 2


class TestDeviceMovement:
    def test_to_device_emits_h2d(self):
        gpu = SimulatedGPU()
        t = Tensor(np.zeros(100, dtype=np.float32))
        moved = t.to(gpu, "payload")
        assert moved.device is gpu
        assert gpu.stats.h2d_bytes == 400

    def test_to_same_device_is_noop(self):
        gpu = SimulatedGPU()
        t = Tensor(np.zeros(4), device=gpu, _skip_copy=True)
        assert t.to(gpu) is t
        assert gpu.stats.transfer_count == 0

    def test_cpu_roundtrip(self):
        gpu = SimulatedGPU()
        t = Tensor(np.ones(4)).to(gpu)
        back = t.cpu()
        assert back.device is None
        assert gpu.stats.d2h_bytes == 16

    def test_detach_keeps_device_drops_graph(self):
        gpu = SimulatedGPU()
        t = Tensor(np.ones(4, dtype=np.float32), device=gpu, requires_grad=True)
        out = (t * 2).detach()
        assert out.device is gpu
        assert out._ctx is None and not out.requires_grad

    def test_clone_copies_data(self):
        t = Tensor(np.ones(3, dtype=np.float32))
        c = t.clone()
        c.data[0] = 9
        assert t.data[0] == 1


class TestOperatorSugar:
    def test_scalar_arith(self):
        t = Tensor(np.array([2.0, 4.0], dtype=np.float32))
        np.testing.assert_allclose((t + 1).data, [3, 5])
        np.testing.assert_allclose((1 + t).data, [3, 5])
        np.testing.assert_allclose((t - 1).data, [1, 3])
        np.testing.assert_allclose((10 - t).data, [8, 6])
        np.testing.assert_allclose((t * 3).data, [6, 12])
        np.testing.assert_allclose((t / 2).data, [1, 2])
        np.testing.assert_allclose((8 / t).data, [4, 2])
        np.testing.assert_allclose((-t).data, [-2, -4])
        np.testing.assert_allclose((t ** 2).data, [4, 16])

    def test_matmul_operator(self):
        a = Tensor(np.eye(2, dtype=np.float32))
        b = Tensor(np.array([[1.0, 2.0], [3.0, 4.0]], dtype=np.float32))
        np.testing.assert_allclose((a @ b).data, b.data)

    def test_comparisons_return_raw_bool(self):
        t = Tensor(np.array([1.0, -1.0]))
        out = t > 0
        assert isinstance(out, np.ndarray)
        assert out.dtype == np.bool_
        np.testing.assert_array_equal(out, [True, False])
        np.testing.assert_array_equal(t < 0, [False, True])
        np.testing.assert_array_equal(t >= 1, [True, False])
        np.testing.assert_array_equal(t <= -1, [False, True])

    def test_getitem_slice(self):
        t = Tensor(np.arange(12, dtype=np.float32).reshape(3, 4))
        assert t[1:].shape == (2, 4)
        assert t[0, 1].item() == 1.0

    def test_getitem_int_array_routes_to_index_select(self):
        t = Tensor(np.arange(6, dtype=np.float32).reshape(3, 2))
        out = t[np.array([2, 0])]
        np.testing.assert_allclose(out.data, [[4, 5], [0, 1]])

    def test_methods_match_numpy(self):
        t = Tensor(np.arange(6, dtype=np.float32).reshape(2, 3))
        assert t.sum().item() == 15
        assert t.mean().item() == pytest.approx(2.5)
        assert t.max().item() == 5
        assert t.min().item() == 0
        assert t.argmax() == 5
        assert t.T.shape == (3, 2)
        assert t.reshape(3, 2).shape == (3, 2)
        assert t.flatten().shape == (6,)
        assert t.unsqueeze(0).shape == (1, 2, 3)
        assert t.unsqueeze(-1).shape == (2, 3, 1)
        assert t.unsqueeze(0).squeeze(0).shape == (2, 3)

    def test_repr_mentions_device(self):
        gpu = SimulatedGPU()
        t = Tensor(np.zeros(3), device=gpu, _skip_copy=True)
        assert "cuda:0" in repr(t)
        assert "cpu" in repr(Tensor(np.zeros(3)))
