"""Golden insights snapshots: committed, complete, and bit-deterministic.

An insights report folds pure per-launch analysis (memory/timing/stall
models) over the simulated clock, so the same ``(key, scale, epochs, seed,
gpus)`` must serialize byte-identically no matter how the run is executed:
serial, on pool workers, with the profile cache warm or cold, or with
launch-analysis memoization on or off.  ``insights_digest`` (which excludes
``manifest.source_digest``) pins the committed behaviour.
"""

import pytest

from repro.core import executor
from repro.profiling import insights
from repro.testing import golden
from tests.golden_matrix import GoldenMatrix, canonical

KEYS = list(golden.INSIGHTS_GOLDEN_KEYS)


class TestCommittedSnapshots:
    @pytest.mark.parametrize("key", KEYS)
    def test_snapshot_committed(self, key):
        snap = golden.load_insights_golden(key)
        assert snap["workload"] == key
        assert snap["version"] == insights.INSIGHTS_VERSION
        assert snap["attributed_us"] > 0
        assert snap["launches"] > 0
        assert snap["insights_digest"]
        # every recorded top site carries exactly one bound class
        for site in snap["top_sites"]:
            assert site["bound_class"] in insights.BOUND_CLASSES

    def test_fresh_reports_match_goldens(self):
        diffs = golden.verify_insights_goldens(KEYS)
        assert diffs == {key: [] for key in KEYS}

    def test_compare_reports_digest_drift(self):
        expected = golden.load_insights_golden("DGCN")
        mutated = dict(expected)
        mutated["launches"] = expected["launches"] + 1
        diffs = golden.compare_insights_fingerprints(expected, mutated)
        assert any(d.startswith("launches") for d in diffs)
        # the digest line fires too: the canonical payload changed
        mutated["insights_digest"] = "deadbeef"
        diffs = golden.compare_insights_fingerprints(expected, mutated)
        assert any(d.startswith("insights_digest") for d in diffs)
        assert diffs[-1].startswith("insights_digest")


class TestDeterminism(GoldenMatrix):
    keys = KEYS

    def run_single(self):
        return insights.insights_report("DGCN", scale="test", epochs=2,
                                        seed=0)

    def run_suite(self, *, jobs=None, cache=None):
        return executor.insights_suite(KEYS, scale="test", epochs=2,
                                       jobs=jobs, cache=cache)

    def test_digest_recomputes_from_payload(self):
        report = self.run_single()
        assert insights.insights_digest(report) == report["insights_digest"]

    def test_multi_gpu_report_is_deterministic(self):
        a = insights.insights_report("DGCN", scale="test", epochs=1, gpus=2)
        b = insights.insights_report("DGCN", scale="test", epochs=1, gpus=2)
        assert canonical(a) == canonical(b)
        assert "allreduce" in a["stream_summary"]
