"""Recurrent cells and multi-head attention."""

import numpy as np
import pytest

from repro.gpu import SimulatedGPU
from repro.tensor import Tensor, nn


class TestLSTMCell:
    def test_shapes_and_default_state(self):
        cell = nn.LSTMCell(6, 8)
        h, c = cell(Tensor(np.zeros((4, 6), dtype=np.float32)))
        assert h.shape == (4, 8) and c.shape == (4, 8)

    def test_fused_kernel_emitted(self):
        gpu = SimulatedGPU()
        names = []
        gpu.add_launch_listener(lambda l: names.append(l.name))
        cell = nn.LSTMCell(4, 4).to(gpu)
        cell(Tensor(np.zeros((2, 4), dtype=np.float32), device=gpu, _skip_copy=True))
        assert "fused_lstm_cell" in names

    def test_state_carries_information(self):
        cell = nn.LSTMCell(2, 3)
        x = Tensor(np.ones((1, 2), dtype=np.float32))
        h1, c1 = cell(x)
        h2, c2 = cell(x, (h1, c1))
        assert not np.allclose(h1.data, h2.data)

    def test_gradient_reaches_weights(self):
        cell = nn.LSTMCell(3, 4)
        h, c = cell(Tensor(np.ones((2, 3), dtype=np.float32)))
        (h.sum() + c.sum()).backward()
        assert cell.ih.weight.grad is not None
        assert np.abs(cell.ih.weight.grad.data).sum() > 0


class TestGRUCell:
    def test_shapes(self):
        cell = nn.GRUCell(5, 7)
        h = cell(Tensor(np.zeros((3, 5), dtype=np.float32)))
        assert h.shape == (3, 7)

    def test_bounded_output(self):
        cell = nn.GRUCell(4, 4)
        h = cell(Tensor(np.random.default_rng(0).normal(size=(8, 4)).astype(np.float32) * 10))
        assert np.abs(h.data).max() <= 1.0 + 1e-5


class TestTreeLSTMCell:
    def test_node_update_shapes(self):
        cell = nn.ChildSumTreeLSTMCell(4, 6)
        x = Tensor(np.zeros((5, 4), dtype=np.float32))
        zero = Tensor(np.zeros((5, 6), dtype=np.float32))
        h, c = cell.node_update(x, zero, zero)
        assert h.shape == (5, 6) and c.shape == (5, 6)

    def test_child_forget_gate_in_unit_interval(self):
        cell = nn.ChildSumTreeLSTMCell(4, 6)
        f = cell.child_forget(Tensor(np.ones((3, 4), dtype=np.float32)),
                              Tensor(np.ones((3, 6), dtype=np.float32)))
        assert np.all(f.data > 0) and np.all(f.data < 1)


class TestMultiheadAttention:
    def test_output_shape(self):
        attn = nn.MultiheadAttention(16, 4)
        x = Tensor(np.random.default_rng(0).normal(size=(2, 5, 16)).astype(np.float32))
        assert attn(x, x, x).shape == (2, 5, 16)

    def test_rejects_indivisible_heads(self):
        with pytest.raises(ValueError):
            nn.MultiheadAttention(10, 3)

    def test_mask_blocks_attention(self):
        """A fully-masked key never influences the output."""
        attn = nn.MultiheadAttention(8, 2)
        attn.eval()
        rng = np.random.default_rng(1)
        x = rng.normal(size=(1, 4, 8)).astype(np.float32)
        mask = np.zeros((1, 1, 4, 4), dtype=np.float32)
        mask[:, :, :, 3] = -1e9  # nobody may attend to key 3
        out1 = attn(Tensor(x), Tensor(x), Tensor(x), attn_mask=mask)
        x2 = x.copy()
        x2[0, 3] += 100.0  # perturb the masked key/value
        # query row 3 changes (it is its own query), others must not
        out2 = attn(Tensor(x2), Tensor(x2), Tensor(x2), attn_mask=mask)
        np.testing.assert_allclose(out1.data[0, :3], out2.data[0, :3],
                                   rtol=1e-4, atol=1e-4)

    def test_gradients_flow(self):
        attn = nn.MultiheadAttention(8, 2)
        x = Tensor(np.random.default_rng(2).normal(size=(1, 3, 8)).astype(np.float32),
                   requires_grad=True)
        attn(x, x, x).sum().backward()
        assert x.grad is not None
        assert np.abs(x.grad.data).sum() > 0
