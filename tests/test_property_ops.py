"""Property-based tests: tensor ops agree with numpy for arbitrary shapes,
and core invariants hold under random inputs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.tensor import Tensor, functional as F
from repro.tensor.ops.scattergather import segment_sum_data

settings.register_profile("ops", max_examples=40, deadline=None)
settings.load_profile("ops")

floats = hnp.arrays(
    dtype=np.float32,
    shape=hnp.array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=8),
    elements=st.floats(-10, 10, width=32),
)


class TestElementwiseMatchesNumpy:
    @given(floats)
    def test_add_self(self, a):
        np.testing.assert_allclose((Tensor(a) + Tensor(a)).data, a + a,
                                   rtol=1e-5)

    @given(floats)
    def test_mul_scalar(self, a):
        np.testing.assert_allclose((Tensor(a) * 3.0).data, a * 3.0, rtol=1e-5)

    @given(floats)
    def test_relu(self, a):
        np.testing.assert_allclose(F.relu(Tensor(a)).data, np.maximum(a, 0))

    @given(floats)
    def test_tanh_bounded(self, a):
        out = F.tanh(Tensor(a)).data
        np.testing.assert_allclose(out, np.tanh(a), rtol=1e-4, atol=1e-6)
        assert np.all(np.abs(out) <= 1.0 + 1e-6)

    @given(floats)
    def test_sigmoid_in_unit_interval(self, a):
        out = F.sigmoid(Tensor(a)).data
        assert np.all(out >= 0) and np.all(out <= 1)

    @given(floats)
    def test_exp_log_roundtrip(self, a):
        t = Tensor(np.abs(a) + 1.0)
        np.testing.assert_allclose(F.log(F.exp(t)).data, t.data,
                                   rtol=1e-3, atol=1e-3)

    @given(floats)
    def test_clamp_bounds(self, a):
        out = F.clamp(Tensor(a), -1.0, 1.0).data
        assert out.min() >= -1.0 and out.max() <= 1.0

    @given(floats)
    def test_neg_involution(self, a):
        np.testing.assert_allclose((-(-Tensor(a))).data, a)


class TestReductionsMatchNumpy:
    @given(floats)
    def test_sum(self, a):
        assert F.sum(Tensor(a)).item() == pytest.approx(float(a.sum()),
                                                        rel=1e-3, abs=1e-3)

    @given(floats)
    def test_mean(self, a):
        assert F.mean(Tensor(a)).item() == pytest.approx(float(a.mean()),
                                                         rel=1e-3, abs=1e-3)

    @given(floats)
    def test_max_min_order(self, a):
        assert F.max(Tensor(a)).item() >= F.min(Tensor(a)).item()

    @given(floats)
    def test_sum_axis_matches(self, a):
        out = F.sum(Tensor(a), axis=0).data
        np.testing.assert_allclose(out, a.sum(axis=0), rtol=1e-4, atol=1e-4)

    @given(hnp.arrays(np.float32, hnp.array_shapes(min_dims=2, max_dims=2,
                                                   min_side=1, max_side=10),
                      elements=st.floats(-5, 5, width=32)))
    def test_softmax_rows_sum_to_one(self, a):
        out = F.softmax(Tensor(a), axis=-1).data
        np.testing.assert_allclose(out.sum(axis=-1), 1.0, rtol=1e-4)
        assert np.all(out >= 0)

    @given(hnp.arrays(np.float32, hnp.array_shapes(min_dims=2, max_dims=2,
                                                   min_side=1, max_side=10),
                      elements=st.floats(-5, 5, width=32)))
    def test_log_softmax_is_log_of_softmax(self, a):
        ls = F.log_softmax(Tensor(a), axis=-1).data
        s = F.softmax(Tensor(a), axis=-1).data
        np.testing.assert_allclose(ls, np.log(s + 1e-12), atol=1e-3)


class TestMatmulProperties:
    mats = hnp.arrays(np.float32, (4, 4), elements=st.floats(-3, 3, width=32))

    @given(mats, mats)
    def test_matches_numpy(self, a, b):
        np.testing.assert_allclose(F.matmul(Tensor(a), Tensor(b)).data,
                                   a @ b, rtol=1e-4, atol=1e-4)

    @given(mats)
    def test_identity_neutral(self, a):
        eye = Tensor(np.eye(4, dtype=np.float32))
        np.testing.assert_allclose(F.matmul(Tensor(a), eye).data, a,
                                   rtol=1e-5, atol=1e-5)

    @given(mats, mats)
    def test_transpose_of_product(self, a, b):
        ab_t = F.matmul(Tensor(a), Tensor(b)).T.data
        bt_at = F.matmul(Tensor(b).T, Tensor(a).T).data
        np.testing.assert_allclose(ab_t, bt_at, rtol=1e-4, atol=1e-4)

    @given(mats)
    def test_linear_no_bias_is_matmul_with_wt(self, a):
        w = np.ones((3, 4), dtype=np.float32)
        np.testing.assert_allclose(F.linear(Tensor(a), Tensor(w)).data,
                                   a @ w.T, rtol=1e-5)


class TestSegmentOps:
    @given(
        hnp.arrays(np.float32, hnp.array_shapes(min_dims=2, max_dims=2,
                                                min_side=1, max_side=16),
                   elements=st.floats(-4, 4, width=32)),
        st.integers(1, 5),
        st.integers(0, 10_000),
    )
    def test_segment_sum_matches_loop(self, src, segments, seed):
        rng = np.random.default_rng(seed)
        idx = rng.integers(0, segments, size=src.shape[0])
        fast = segment_sum_data(src, idx, segments)
        slow = np.zeros((segments, src.shape[1]), dtype=np.float64)
        for row, s in zip(src, idx):
            slow[s] += row
        np.testing.assert_allclose(fast, slow.astype(np.float32),
                                   rtol=1e-3, atol=1e-3)

    @given(st.integers(1, 40), st.integers(1, 6), st.integers(0, 10_000))
    def test_scatter_add_conserves_mass(self, rows, segments, seed):
        rng = np.random.default_rng(seed)
        src = Tensor(rng.normal(size=(rows, 3)).astype(np.float32))
        idx = rng.integers(0, segments, size=rows)
        out = F.scatter_add(src, idx, segments)
        assert out.data.sum() == pytest.approx(float(src.data.sum()),
                                               abs=1e-2)

    @given(st.integers(1, 30), st.integers(0, 10_000))
    def test_index_select_then_lookup(self, rows, seed):
        rng = np.random.default_rng(seed)
        table = Tensor(rng.normal(size=(rows, 4)).astype(np.float32))
        idx = rng.integers(0, rows, size=2 * rows)
        out = F.index_select(table, idx)
        np.testing.assert_allclose(out.data, table.data[idx])

    @given(st.integers(2, 30), st.integers(0, 10_000))
    def test_segment_max_dominates_members(self, rows, seed):
        rng = np.random.default_rng(seed)
        src = rng.normal(size=(rows, 2)).astype(np.float32)
        idx = rng.integers(0, 3, size=rows)
        out = F.segment_max(Tensor(src), idx, 3).data
        for row, s in zip(src, idx):
            assert np.all(out[s] >= row - 1e-6)


class TestAutogradProperties:
    @given(hnp.arrays(np.float32, (5,), elements=st.floats(-3, 3, width=32)))
    def test_sum_gradient_is_ones(self, a):
        t = Tensor(a, requires_grad=True)
        F.sum(t).backward()
        np.testing.assert_allclose(t.grad.data, 1.0)

    @given(hnp.arrays(np.float32, (4,), elements=st.floats(0.125, 3, width=32)))
    def test_linearity_of_gradient(self, a):
        t1 = Tensor(a.copy(), requires_grad=True)
        (F.sum(t1 * 2.0)).backward()
        t2 = Tensor(a.copy(), requires_grad=True)
        (F.sum(t2) * 2.0).backward()
        np.testing.assert_allclose(t1.grad.data, t2.grad.data, rtol=1e-5)

    @given(hnp.arrays(np.float32, (3, 3), elements=st.floats(-2, 2, width=32)))
    def test_relu_grad_zero_where_negative(self, a):
        t = Tensor(a, requires_grad=True)
        F.sum(F.relu(t)).backward()
        assert np.all(t.grad.data[a < 0] == 0)
        assert np.all(t.grad.data[a > 0] == 1)

    @given(st.integers(0, 10_000))
    def test_softmax_grad_sums_to_zero(self, seed):
        """Softmax is shift-invariant, so row gradients sum to ~0."""
        rng = np.random.default_rng(seed)
        t = Tensor(rng.normal(size=(2, 5)).astype(np.float32),
                   requires_grad=True)
        weights = Tensor(rng.normal(size=(2, 5)).astype(np.float32))
        F.sum(F.softmax(t, axis=-1) * weights).backward()
        np.testing.assert_allclose(t.grad.data.sum(axis=-1), 0.0, atol=1e-4)


class TestGradcheckProperties:
    """Numerical gradient checks over randomly generated graph structure.

    The parametrized suite in test_gradcheck_ops.py covers fixed index
    patterns; here hypothesis drives arbitrary segment assignments and
    random CSR sparsity so duplicate, empty and permuted segments are all
    explored.
    """

    @given(st.integers(1, 10), st.integers(1, 5), st.integers(0, 10_000))
    def test_scatter_add_gradcheck(self, rows, segments, seed):
        from repro.testing import gradcheck

        rng = np.random.default_rng(seed)
        src = Tensor(rng.normal(size=(rows, 3)).astype(np.float32))
        idx = rng.integers(0, segments, size=rows)
        result = gradcheck(lambda x: F.scatter_add(x, idx, segments), [src])
        assert result.ok, result.report()

    @given(st.integers(2, 8), st.integers(2, 6), st.integers(0, 10_000))
    def test_spmm_gradcheck_random_csr(self, rows, cols, seed):
        from repro.tensor import SparseTensor
        from repro.testing import gradcheck

        rng = np.random.default_rng(seed)
        nnz = int(rng.integers(1, rows * cols + 1))
        sparse = SparseTensor.from_edges(
            rng.integers(0, rows, size=nnz),
            rng.integers(0, cols, size=nnz),
            rng.uniform(0.5, 1.5, size=nnz).astype(np.float32),
            (rows, cols),
        )
        x = Tensor(rng.normal(size=(cols, 3)).astype(np.float32))
        result = gradcheck(lambda v: F.spmm(sparse, v), [x])
        assert result.ok, result.report()

    @given(st.integers(2, 10), st.integers(1, 20), st.integers(0, 10_000))
    def test_gather_scatter_roundtrip_gradcheck(self, nodes, edges, seed):
        """The PyG-style message-passing primitive on a random edge list."""
        from repro.models.layers import gather_scatter
        from repro.testing import gradcheck

        rng = np.random.default_rng(seed)
        x = Tensor(rng.normal(size=(nodes, 2)).astype(np.float32))
        edge_src = rng.integers(0, nodes, size=edges)
        edge_dst = rng.integers(0, nodes, size=edges)
        result = gradcheck(
            lambda v: gather_scatter(v, edge_src, edge_dst, nodes,
                                     reduce="sum"),
            [x],
        )
        assert result.ok, result.report()

    @given(st.integers(1, 8), st.integers(1, 4), st.integers(0, 10_000))
    def test_gather_dim_gradcheck(self, rows, cols, seed):
        rng = np.random.default_rng(seed)
        x = Tensor(rng.normal(size=(rows, cols)).astype(np.float32))
        idx = rng.integers(0, rows, size=(rows + 1, cols))
        from repro.testing import gradcheck

        result = gradcheck(lambda v: F.gather(v, idx, 0), [x])
        assert result.ok, result.report()
