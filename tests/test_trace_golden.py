"""Golden timeline traces: byte-identical across jobs, cache and reruns.

Trace fingerprints extend the golden-stream contract into the time domain:
a failure here means a kernel's *timestamp* moved on the simulated clock —
either the stream changed (test_golden_streams catches that too) or the
timing model drifted.  If intentional, regenerate with
`PYTHONPATH=src python -m repro golden --traces --update`.
"""

from __future__ import annotations

import json

import pytest

from repro.core import executor
from repro.core.registry import WORKLOAD_KEYS
from repro.gpu import analysis_cache
from repro.profiling import trace
from repro.testing import (
    load_trace_golden,
    save_trace_golden,
    trace_golden_path,
    verify_trace_goldens,
)


def test_snapshots_exist_for_whole_registry():
    missing = [k for k in WORKLOAD_KEYS if not trace_golden_path(k).exists()]
    assert not missing, f"no golden trace for {missing}"


@pytest.mark.parametrize("key", WORKLOAD_KEYS)
def test_trace_matches_golden(key):
    diffs = verify_trace_goldens([key], cache=False)[key]
    assert not diffs, (
        f"{key} timeline diverged from tests/golden/trace_{key}.json:\n  "
        + "\n  ".join(diffs)
        + "\nIf intentional: PYTHONPATH=src python -m repro golden"
        " --traces --update"
    )


def test_snapshot_files_round_trip():
    # save_trace_golden writes canonical JSON (sorted keys, trailing
    # newline): re-saving a loaded snapshot must be byte-identical.
    for key in WORKLOAD_KEYS:
        path = trace_golden_path(key)
        original = path.read_text()
        fingerprint = load_trace_golden(key)
        assert save_trace_golden(fingerprint).read_text() == original
        assert json.dumps(fingerprint, indent=2, sort_keys=True) + "\n" \
            == original


class TestDigestStability:
    """The acceptance bar: one digest, however the trace is produced."""

    def test_repeat_runs_identical(self):
        a = trace.trace_fingerprint("GW", scale="test")
        b = trace.trace_fingerprint("GW", scale="test")
        assert a == b

    def test_analysis_cache_on_off_identical(self):
        """Replayed launch timings must land on the exact same clock as the
        cold analytical pipeline — timestamps enter the digest."""
        analysis_cache.clear()
        with analysis_cache.override(True):
            warm = trace.trace_fingerprint("TLSTM", scale="test")
        with analysis_cache.override(False):
            cold = trace.trace_fingerprint("TLSTM", scale="test")
        assert warm == cold

    def test_parallel_jobs_identical(self):
        """--jobs 2 fans trace tasks to pool workers; digests must match the
        serial run byte-for-byte (no cache, so both paths really execute)."""
        keys = ["GW", "STGCN", "TLSTM"]
        serial = executor.trace_suite(keys, jobs=1, cache=False)
        parallel = executor.trace_suite(keys, jobs=2, cache=False)
        assert serial == parallel

    def test_profile_cache_replays_identical(self):
        from repro.core.cache import ProfileCache

        cache = ProfileCache()
        cold = executor.trace_suite(["GW"], cache=cache)
        warm = executor.trace_suite(["GW"], cache=cache)
        assert cache.hits >= 1
        assert cold == warm

    def test_multi_gpu_digest_stable(self):
        a = trace.trace_fingerprint("TLSTM", scale="test", num_gpus=2)
        b = trace.trace_fingerprint("TLSTM", scale="test", num_gpus=2)
        assert a == b
        assert a["span_counts"]["allreduce"] > 0
