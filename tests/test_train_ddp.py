"""Trainer and the DDP multi-GPU simulation."""

import numpy as np
import pytest

from repro.core import registry
from repro.gpu import SimulatedGPU
from repro.profiling import trace
from repro.train import Trainer, run_scaling_point, trace_scaling_point
from repro.train.ddp import _count_steps, _shard_batch


class TestTrainer:
    def test_history_and_timing(self):
        device = SimulatedGPU()
        workload = registry.get("TLSTM").build(device=device, scale="test")
        trainer = Trainer(workload=workload, device=device)
        results = trainer.run(epochs=2, seed=0)
        assert len(results) == 2
        assert all(r.sim_time_s > 0 for r in results)
        assert all(r.kernels > 0 for r in results)

    def test_average_skips_warmup(self):
        device = SimulatedGPU()
        workload = registry.get("TLSTM").build(device=device, scale="test")
        trainer = Trainer(workload=workload, device=device)
        trainer.run(epochs=3, seed=0)
        avg = trainer.average_epoch_time()
        later = [r.sim_time_s for r in trainer.history[1:]]
        assert avg == pytest.approx(np.mean(later))


class TestDDPHelpers:
    def test_shard_batch_splits(self):
        w = registry.get("DGCN").build(scale="test")
        original = w.batch_size
        shard = _shard_batch(w, 4)
        assert w.batch_size == max(1, original // 4)
        assert shard is not None and shard.size <= w.dataset.train_idx.size

    def test_steps_invariant_under_sharding(self):
        """Strong scaling: global optimizer steps do not grow with N."""
        one = registry.get("DGCN").build(scale="test")
        steps_1 = _count_steps(one, 1)
        four = registry.get("DGCN").build(scale="test")
        _shard_batch(four, 4)
        steps_4 = _count_steps(four, 4)
        assert abs(steps_4 - steps_1) <= 1

    def test_batches_per_epoch_workloads_not_index_sharded(self):
        w = registry.get("STGCN").build(scale="test")
        assert _shard_batch(w, 2) is None


class TestScalingPoints:
    def test_arga_excluded(self):
        with pytest.raises(ValueError):
            run_scaling_point("ARGA", 2, scale="test")

    def test_single_gpu_no_allreduce(self):
        point = run_scaling_point("TLSTM", 1, scale="test")
        assert point.allreduce_time_s == 0.0
        assert point.epoch_time_s > 0

    def test_multi_gpu_pays_allreduce(self):
        point = run_scaling_point("TLSTM", 4, scale="test")
        assert point.allreduce_time_s > 0
        assert point.grad_bytes > 0

    def test_replicate_mode_does_not_shrink_compute(self):
        """PSAGE: data replication keeps per-device compute ~constant and
        adds contention, so multi-GPU is slower (the paper's Figure 9)."""
        one = run_scaling_point("PSAGE-MVL", 1, scale="test", epochs=1)
        four = run_scaling_point("PSAGE-MVL", 4, scale="test", epochs=1)
        assert four.epoch_time_s > one.epoch_time_s * 0.95

    def test_tlstm_does_not_scale(self):
        """Tiny serialized kernels: the paper's flat TLSTM bars."""
        one = run_scaling_point("TLSTM", 1, scale="test", epochs=1)
        four = run_scaling_point("TLSTM", 4, scale="test", epochs=1)
        speedup = one.epoch_time_s / four.epoch_time_s
        assert speedup < 1.5


@pytest.fixture(scope="module")
def ddp_traces():
    """TLSTM timelines at 1, 2 and 4 simulated GPUs."""
    return {n: trace_scaling_point("TLSTM", n, scale="test") for n in (1, 2, 4)}


def _kernel_sequence(timeline, pid):
    return [(s.name, s.arg("op"), s.arg("phase"))
            for s in timeline.query(pid=pid, cat=trace.CAT_KERNEL)]


class TestTracedDDP:
    def test_arga_excluded(self):
        with pytest.raises(ValueError):
            trace_scaling_point("ARGA", 2, scale="test")

    def test_single_gpu_has_no_allreduce_spans(self, ddp_traces):
        assert not ddp_traces[1].query(cat=trace.CAT_ALLREDUCE)

    def test_every_device_gets_allreduce_spans(self, ddp_traces):
        for n in (2, 4):
            timeline = ddp_traces[n]
            assert timeline.device_ids() == list(range(n))
            for pid in range(n):
                assert timeline.query(pid=pid, cat=trace.CAT_ALLREDUCE)

    def test_allreduce_sits_between_backward_and_optimizer(self, ddp_traces):
        """DDP's gradient sync fires after the backward kernels of its step
        and before the parameter updates — bucket spans must interleave
        exactly there on every device."""
        for n in (2, 4):
            timeline = ddp_traces[n]
            for pid in timeline.device_ids():
                events = sorted(
                    timeline.query(pid=pid, cat=trace.CAT_KERNEL)
                    + timeline.query(pid=pid, cat=trace.CAT_ALLREDUCE),
                    key=lambda s: s.ts_us,
                )
                for i, span in enumerate(events):
                    if span.cat != trace.CAT_ALLREDUCE:
                        continue
                    before = [e for e in events[:i]
                              if e.cat == trace.CAT_KERNEL]
                    assert before and before[-1].arg("phase") == "backward"
                    assert span.ts_us >= before[-1].end_us - 1e-6
                    after = [e for e in events[i + 1:]
                             if e.cat == trace.CAT_KERNEL]
                    assert after and after[0].arg("phase") == "optimizer"

    def test_replicas_identical_within_a_trace(self, ddp_traces):
        """Symmetric DDP: every pid carries the same spans, timestamps
        included (allreduce buckets too — the collective is a barrier)."""
        for n in (2, 4):
            timeline = ddp_traces[n]
            base = [(s.name, s.cat, s.tid, s.ts_us, s.dur_us, s.args)
                    for s in timeline.query(pid=0)]
            for pid in range(1, n):
                assert [(s.name, s.cat, s.tid, s.ts_us, s.dur_us, s.args)
                        for s in timeline.query(pid=pid)] == base

    def test_kernel_sequence_invariant_across_gpu_counts(self, ddp_traces):
        """Scaling the device count must not change what any device runs —
        only *when* (the collectives push later steps back)."""
        base = _kernel_sequence(ddp_traces[1], 0)
        assert len(base) > 100
        for n in (2, 4):
            for pid in range(n):
                assert _kernel_sequence(ddp_traces[n], pid) == base

    def test_timestamps_shift_with_collectives(self, ddp_traces):
        one = [s.ts_us for s in ddp_traces[1].query(pid=0,
                                                    cat=trace.CAT_KERNEL)]
        four = [s.ts_us for s in ddp_traces[4].query(pid=0,
                                                     cat=trace.CAT_KERNEL)]
        assert len(one) == len(four)
        assert four != one
        assert ddp_traces[4].wall_us() > ddp_traces[1].wall_us()

    def test_bucket_spans_account_full_payload(self, ddp_traces):
        timeline = ddp_traces[2]
        buckets = timeline.query(pid=0, cat=trace.CAT_ALLREDUCE)
        spec = registry.get("TLSTM")
        replica = spec.build(scale="test")
        grad_bytes = replica.optimizer.gradient_bytes()
        # spans group into optimizer steps; every step moves the full payload
        total = sum(b.arg("nbytes") for b in buckets)
        steps = len({b.ts_us for b in buckets
                     if b.name == "allreduce.bucket0"})
        assert total == grad_bytes * steps
