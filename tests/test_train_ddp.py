"""Trainer and the DDP multi-GPU simulation."""

import numpy as np
import pytest

from repro.core import registry
from repro.gpu import SimulatedGPU
from repro.train import Trainer, run_scaling_point
from repro.train.ddp import _count_steps, _shard_batch


class TestTrainer:
    def test_history_and_timing(self):
        device = SimulatedGPU()
        workload = registry.get("TLSTM").build(device=device, scale="test")
        trainer = Trainer(workload=workload, device=device)
        results = trainer.run(epochs=2, seed=0)
        assert len(results) == 2
        assert all(r.sim_time_s > 0 for r in results)
        assert all(r.kernels > 0 for r in results)

    def test_average_skips_warmup(self):
        device = SimulatedGPU()
        workload = registry.get("TLSTM").build(device=device, scale="test")
        trainer = Trainer(workload=workload, device=device)
        trainer.run(epochs=3, seed=0)
        avg = trainer.average_epoch_time()
        later = [r.sim_time_s for r in trainer.history[1:]]
        assert avg == pytest.approx(np.mean(later))


class TestDDPHelpers:
    def test_shard_batch_splits(self):
        w = registry.get("DGCN").build(scale="test")
        original = w.batch_size
        shard = _shard_batch(w, 4)
        assert w.batch_size == max(1, original // 4)
        assert shard is not None and shard.size <= w.dataset.train_idx.size

    def test_steps_invariant_under_sharding(self):
        """Strong scaling: global optimizer steps do not grow with N."""
        one = registry.get("DGCN").build(scale="test")
        steps_1 = _count_steps(one, 1)
        four = registry.get("DGCN").build(scale="test")
        _shard_batch(four, 4)
        steps_4 = _count_steps(four, 4)
        assert abs(steps_4 - steps_1) <= 1

    def test_batches_per_epoch_workloads_not_index_sharded(self):
        w = registry.get("STGCN").build(scale="test")
        assert _shard_batch(w, 2) is None


class TestScalingPoints:
    def test_arga_excluded(self):
        with pytest.raises(ValueError):
            run_scaling_point("ARGA", 2, scale="test")

    def test_single_gpu_no_allreduce(self):
        point = run_scaling_point("TLSTM", 1, scale="test")
        assert point.allreduce_time_s == 0.0
        assert point.epoch_time_s > 0

    def test_multi_gpu_pays_allreduce(self):
        point = run_scaling_point("TLSTM", 4, scale="test")
        assert point.allreduce_time_s > 0
        assert point.grad_bytes > 0

    def test_replicate_mode_does_not_shrink_compute(self):
        """PSAGE: data replication keeps per-device compute ~constant and
        adds contention, so multi-GPU is slower (the paper's Figure 9)."""
        one = run_scaling_point("PSAGE-MVL", 1, scale="test", epochs=1)
        four = run_scaling_point("PSAGE-MVL", 4, scale="test", epochs=1)
        assert four.epoch_time_s > one.epoch_time_s * 0.95

    def test_tlstm_does_not_scale(self):
        """Tiny serialized kernels: the paper's flat TLSTM bars."""
        one = run_scaling_point("TLSTM", 1, scale="test", epochs=1)
        four = run_scaling_point("TLSTM", 4, scale="test", epochs=1)
        speedup = one.epoch_time_s / four.epoch_time_s
        assert speedup < 1.5
