"""Graph batching and sampling (neighbor blocks, random walks, PinSAGE)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu import OpClass, SimulatedGPU
from repro.graph import (
    Graph,
    batch_graphs,
    generators,
    pinsage_neighbors,
    random_walks,
    unbatch,
    uniform_neighbor_block,
)


def _graphs(seed, count=4):
    rng = np.random.default_rng(seed)
    return [generators.random_molecule(rng) for _ in range(count)]


class TestBatching:
    def test_block_diagonal_counts(self):
        gs = _graphs(0)
        b = batch_graphs(gs)
        assert b.graph.num_nodes == sum(g.num_nodes for g in gs)
        assert b.graph.num_edges == sum(g.num_edges for g in gs)
        assert b.num_graphs == len(gs)

    def test_graph_ids_align_with_offsets(self):
        b = batch_graphs(_graphs(1))
        for i in range(b.num_graphs):
            nodes = b.nodes_of(i)
            assert np.all(b.graph_ids[nodes] == i)

    def test_edges_never_cross_graphs(self):
        b = batch_graphs(_graphs(2))
        assert np.all(b.graph_ids[b.graph.src] == b.graph_ids[b.graph.dst])

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError):
            batch_graphs([])

    @given(st.integers(1, 6), st.integers(0, 5000))
    @settings(max_examples=20, deadline=None)
    def test_unbatch_roundtrip(self, count, seed):
        rng = np.random.default_rng(seed)
        gs = [generators.random_molecule(rng) for _ in range(count)]
        out = unbatch(batch_graphs(gs))
        assert len(out) == count
        for orig, back in zip(gs, out):
            assert back.num_nodes == orig.num_nodes
            assert back.num_edges == orig.num_edges
            orig_pairs = set(zip(orig.src.tolist(), orig.dst.tolist()))
            back_pairs = set(zip(back.src.tolist(), back.dst.tolist()))
            assert orig_pairs == back_pairs


class TestNeighborSampling:
    def _graph(self):
        g, _ = generators.stochastic_block_model([30, 30], 0.2, 0.02,
                                                 np.random.default_rng(0))
        return g

    def test_seeds_lead_the_block(self, rng):
        g = self._graph()
        seeds = np.array([3, 7, 11])
        block = uniform_neighbor_block(g, seeds, fanout=4, rng=rng)
        np.testing.assert_array_equal(block.src_nodes[:3], seeds)
        assert block.num_dst == 3

    def test_fanout_respected(self, rng):
        g = self._graph()
        block = uniform_neighbor_block(g, np.array([0, 1]), fanout=3, rng=rng)
        counts = np.bincount(block.edge_dst, minlength=2)
        assert np.all(counts <= 3)

    def test_edges_reference_valid_locals(self, rng):
        g = self._graph()
        block = uniform_neighbor_block(g, np.array([0, 5, 9]), fanout=5, rng=rng)
        assert np.all(block.edge_src < block.num_src)
        assert np.all(block.edge_dst < block.num_dst)

    def test_sampled_edges_exist_in_graph(self, rng):
        g = self._graph()
        seeds = np.array([2, 4])
        block = uniform_neighbor_block(g, seeds, fanout=4, rng=rng)
        edges = set(zip(g.src.tolist(), g.dst.tolist()))
        for s_local, d_local in zip(block.edge_src, block.edge_dst):
            src = int(block.src_nodes[s_local])
            dst = int(block.dst_nodes[d_local])
            assert (src, dst) in edges

    def test_device_sampling_emits_sorts(self, rng):
        gpu = SimulatedGPU()
        ops = []
        gpu.add_launch_listener(lambda l: ops.append(l.op_class))
        uniform_neighbor_block(self._graph(), np.array([0, 1]), 4, rng,
                               device=gpu)
        assert OpClass.SORT in ops

    def test_isolated_seeds_keep_dst_slots(self, rng):
        # regression: zero-degree seeds contribute no edges but must keep
        # their dst position so gather/scatter alignment survives — the
        # per-seed loop skipped them silently, the vectorized path must not
        g = Graph(np.array([1, 2, 2]), np.array([0, 0, 1]), num_nodes=6)
        seeds = np.array([3, 0, 5, 1])  # 3 and 5 are isolated
        block = uniform_neighbor_block(g, seeds, fanout=2, rng=rng)
        np.testing.assert_array_equal(block.dst_nodes, seeds)
        np.testing.assert_array_equal(block.src_nodes[: seeds.size], seeds)
        # only the connected seeds (local slots 1 and 3) receive edges
        assert set(block.edge_dst.tolist()) <= {1, 3}
        counts = np.bincount(block.edge_dst, minlength=seeds.size)
        assert counts[0] == 0 and counts[2] == 0
        assert counts[1] == 2 and counts[3] == 1  # deg(0)=2, deg(1)=1

    def test_all_isolated_seeds_yield_empty_edges(self, rng):
        g = Graph(np.array([1]), np.array([0]), num_nodes=8)
        seeds = np.array([4, 6, 7])
        block = uniform_neighbor_block(g, seeds, fanout=3, rng=rng)
        assert block.edge_src.size == 0 and block.edge_dst.size == 0
        np.testing.assert_array_equal(block.dst_nodes, seeds)
        np.testing.assert_array_equal(block.src_nodes[: seeds.size], seeds)

    def test_without_replacement_no_duplicate_edges(self, rng):
        g = self._graph()
        seeds = np.arange(20)
        block = uniform_neighbor_block(g, seeds, fanout=6, rng=rng)
        pairs = set()
        for s_local, d_local in zip(block.edge_src.tolist(),
                                    block.edge_dst.tolist()):
            assert (s_local, d_local) not in pairs
            pairs.add((s_local, d_local))


class TestRandomWalks:
    def test_shape_and_start(self, rng):
        g, _ = generators.stochastic_block_model([20, 20], 0.3, 0.05, rng)
        starts = np.array([0, 5, 10])
        walks = random_walks(g, starts, length=4, rng=rng)
        assert walks.shape == (3, 5)
        np.testing.assert_array_equal(walks[:, 0], starts)

    def test_steps_follow_edges(self, rng):
        g, _ = generators.stochastic_block_model([20, 20], 0.3, 0.05, rng)
        walks = random_walks(g, np.arange(10), length=3, rng=rng)
        edges = set(zip(g.dst.tolist(), g.src.tolist()))  # csr: in-neighbors
        for row in walks:
            for a, b in zip(row[:-1], row[1:]):
                assert a == b or (int(a), int(b)) in edges

    def test_isolated_node_stays_put(self, rng):
        g = Graph(np.array([0]), np.array([1]), num_nodes=5)
        walks = random_walks(g, np.array([4]), length=3, rng=rng)
        np.testing.assert_array_equal(walks[0], [4, 4, 4, 4])

    def test_restart_probability_one_pins_to_start(self, rng):
        g, _ = generators.stochastic_block_model([20], 0.4, 0.0, rng)
        walks = random_walks(g, np.array([3]), length=5, rng=rng,
                             restart_prob=1.0)
        np.testing.assert_array_equal(walks[0], 3)


class TestPinSAGESampling:
    def _graph(self):
        g, _ = generators.stochastic_block_model([40, 40], 0.25, 0.03,
                                                 np.random.default_rng(1))
        return g

    def test_weights_normalized_per_seed(self, rng):
        block = pinsage_neighbors(self._graph(), np.array([0, 1, 2]),
                                  num_walks=8, walk_length=2, top_t=4, rng=rng)
        for seed_local in range(3):
            w = block.edge_weight[block.edge_dst == seed_local]
            if w.size:
                assert w.sum() == pytest.approx(1.0, rel=1e-5)

    def test_top_t_respected(self, rng):
        block = pinsage_neighbors(self._graph(), np.array([0, 1]),
                                  num_walks=8, walk_length=2, top_t=3, rng=rng)
        counts = np.bincount(block.edge_dst, minlength=2)
        assert np.all(counts <= 3)

    def test_device_emits_visit_count_sort(self, rng):
        gpu = SimulatedGPU()
        names = []
        gpu.add_launch_listener(lambda l: names.append(l.name))
        pinsage_neighbors(self._graph(), np.array([0, 1]), 8, 2, 3, rng,
                          device=gpu)
        assert "radix_sort_visit_counts" in names
        assert "radix_sort_block_edges" in names
