"""Device configuration invariants."""

import pytest

from repro.gpu import DEFAULT_SIMULATION, NVLINK2, V100, DeviceConfig, SimulationConfig


class TestV100Config:
    def test_peak_fp32_matches_datasheet(self):
        # 80 SMs x 64 FMA lanes x 2 FLOPs x 1.38 GHz ~= 14.1 TFLOPS
        assert V100.peak_fp32_flops == pytest.approx(14.1e12, rel=0.02)

    def test_peak_int32_half_of_fp32(self):
        # int ops are not FMA-fused: peak IOPS is half the FLOPs number
        assert V100.peak_int32_iops == pytest.approx(V100.peak_fp32_flops / 2)

    def test_dram_bytes_per_cycle(self):
        assert V100.dram_bytes_per_cycle == pytest.approx(900e9 / 1.38e9)

    def test_l2_size_is_paper_value(self):
        assert V100.l2_size_bytes == pytest.approx(6.14 * 1024 * 1024, rel=1e-6)

    def test_sm_count(self):
        assert V100.num_sms == 80


class TestLinkConfig:
    def test_aggregate_bandwidth_is_300gbs(self):
        assert NVLINK2.aggregate_bandwidth_bytes_per_s == pytest.approx(300e9)

    def test_six_links(self):
        assert NVLINK2.num_links == 6


class TestSimulationConfig:
    def test_profile_lookup_known_class(self):
        profile = DEFAULT_SIMULATION.profile_for("GEMM")
        assert 0.0 < profile.l1_base_hit < 0.15

    def test_profile_lookup_falls_back_to_other(self):
        assert (
            DEFAULT_SIMULATION.profile_for("NO_SUCH_CLASS")
            is DEFAULT_SIMULATION.profiles["OTHER"]
        )

    def test_gemm_l1_hit_is_single_digit(self):
        """The paper: GEMM/SpMM/GEMV L1 hit < 10%."""
        for name in ("GEMM", "GEMV", "SPMM"):
            assert DEFAULT_SIMULATION.profile_for(name).l1_base_hit < 0.10

    def test_irregular_classes_below_15_percent(self):
        for name in ("SCATTER", "GATHER", "INDEX_SELECT", "SORT"):
            assert DEFAULT_SIMULATION.profile_for(name).l1_base_hit < 0.15

    def test_unit_efficiency_in_range(self):
        for name, profile in DEFAULT_SIMULATION.profiles.items():
            assert 0.0 < profile.unit_efficiency <= 1.0, name

    def test_custom_device_config(self):
        small = SimulationConfig(device=DeviceConfig(num_sms=8))
        assert small.device.num_sms == 8
        assert small.device.peak_fp32_flops < V100.peak_fp32_flops
