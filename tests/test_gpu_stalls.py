"""Stall-attribution model behaviour."""

import numpy as np
import pytest

from repro.gpu import DEFAULT_SIMULATION, AccessPattern, KernelDescriptor, OpClass
from repro.gpu.caches import analyze as cache_analyze
from repro.gpu.stalls import attribute
from repro.gpu.timing import analyze as timing_analyze


def _stalls(desc):
    mem = cache_analyze(desc, DEFAULT_SIMULATION)
    tim = timing_analyze(desc, mem, DEFAULT_SIMULATION)
    return attribute(desc, mem, tim, DEFAULT_SIMULATION)


def _desc(op_class=OpClass.ELEMENTWISE, **kw):
    base = dict(name="k", op_class=op_class, threads=1 << 16,
                bytes_read=1 << 20, bytes_written=1 << 20)
    base.update(kw)
    return KernelDescriptor(**base)


class TestNormalization:
    def test_shares_sum_to_one(self):
        for op in OpClass:
            total = _stalls(_desc(op_class=op)).total()
            assert total == pytest.approx(1.0, abs=1e-9), op

    def test_all_shares_nonnegative(self):
        shares = _stalls(_desc()).as_dict()
        assert all(v >= 0 for v in shares.values())


class TestAttribution:
    def test_memory_bound_gather_stalls_on_memory(self):
        rng = np.random.default_rng(0)
        gather = _desc(
            op_class=OpClass.GATHER,
            int32_iops=float(1 << 16),
            access=AccessPattern.irregular(rng.integers(0, 1 << 22, 4096), 4),
        )
        shares = _stalls(gather)
        assert shares.memory_dependency == max(shares.as_dict().values())

    def test_gather_stalls_more_on_memory_than_gemm(self):
        """The paper: scatter/gather/index stalls on memory more than GEMM."""
        rng = np.random.default_rng(0)
        gather = _desc(
            op_class=OpClass.GATHER, int32_iops=float(1 << 16),
            access=AccessPattern.irregular(rng.integers(0, 1 << 22, 4096), 4),
        )
        gemm = _desc(op_class=OpClass.GEMM, fp32_flops=2e9, threads=1 << 18)
        assert (
            _stalls(gather).memory_dependency > _stalls(gemm).memory_dependency
        )

    def test_low_ilp_class_stalls_on_execution_dependency(self):
        scatter = _desc(op_class=OpClass.SCATTER)   # ilp 1.4
        gemm = _desc(op_class=OpClass.GEMM)          # ilp 3.5
        assert (
            _stalls(scatter).execution_dependency
            > _stalls(gemm).execution_dependency
        )

    def test_unrolled_sort_pressures_icache(self):
        """SORT kernels (24 KB code vs 12 KB L0) fetch-stall more than COPY."""
        assert (
            _stalls(_desc(op_class=OpClass.SORT)).instruction_fetch
            > _stalls(_desc(op_class=OpClass.COPY)).instruction_fetch
        )

    def test_barrier_heavy_classes_sync_more(self):
        assert (
            _stalls(_desc(op_class=OpClass.REDUCTION)).synchronization
            > _stalls(_desc(op_class=OpClass.ELEMENTWISE)).synchronization
        )

    def test_every_kernel_has_some_ifetch(self):
        """The paper's surprise finding: instruction fetch stalls are
        significant across ALL workloads."""
        for op in (OpClass.GEMM, OpClass.ELEMENTWISE, OpClass.GATHER):
            assert _stalls(_desc(op_class=op)).instruction_fetch > 0.05
