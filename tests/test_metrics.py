"""Unified metrics registry: series semantics, snapshot/delta, exports."""

import json

import numpy as np
import pytest

from repro.profiling import metrics
from repro.profiling.metrics import Counter, Gauge, Histogram, MetricsRegistry


@pytest.fixture
def reg() -> MetricsRegistry:
    return MetricsRegistry()


class TestPrimitives:
    def test_counter_only_goes_up(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_goes_both_ways(self):
        g = Gauge()
        g.set(10)
        g.dec(3)
        g.inc()
        assert g.value == 8.0

    def test_histogram_buckets_are_cumulative(self):
        h = Histogram(buckets=(1.0, 5.0))
        for v in (0.5, 0.7, 3.0, 100.0):
            h.observe(v)
        assert h.cumulative() == [2, 3, 4]
        assert h.count == 4
        assert h.sum == pytest.approx(104.2)


class TestRegistry:
    def test_same_name_and_labels_share_a_series(self, reg):
        reg.counter("hits", kind="a").inc()
        reg.counter("hits", kind="a").inc()
        reg.counter("hits", kind="b").inc()
        snap = reg.snapshot()
        assert snap["hits"]["series"]['{kind="a"}'] == 2.0
        assert snap["hits"]["series"]['{kind="b"}'] == 1.0

    def test_type_conflict_rejected(self, reg):
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")

    def test_label_order_is_canonical(self, reg):
        reg.gauge("g", b="2", a="1").set(7)
        assert list(reg.snapshot()["g"]["series"]) == ['{a="1",b="2"}']

    def test_delta_subtracts_counters_passes_gauges(self, reg):
        reg.counter("c").inc(5)
        reg.gauge("g").set(100)
        before = reg.snapshot()
        reg.counter("c").inc(3)
        reg.gauge("g").set(42)
        delta = reg.delta(before)
        assert delta["c"]["series"][""] == 3.0
        assert delta["g"]["series"][""] == 42.0

    def test_delta_histogram_and_new_series(self, reg):
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        before = reg.snapshot()
        reg.histogram("h", buckets=(1.0,)).observe(0.2)
        reg.counter("fresh").inc(7)  # unseen in `before`: reported whole
        delta = reg.delta(before)
        assert delta["h"]["series"][""]["count"] == 1
        assert delta["h"]["series"][""]["buckets"]["1"] == 1
        assert delta["fresh"]["series"][""] == 7.0

    def test_histogram_per_bucket_view(self):
        h = Histogram(buckets=(1.0, 5.0))
        for v in (0.5, 0.7, 3.0, 100.0):
            h.observe(v)
        assert h.per_bucket() == [2, 1, 1]
        assert h.cumulative() == [2, 3, 4]

    def test_snapshot_carries_bucket_counts(self, reg):
        reg.histogram("h", buckets=(1.0, 5.0)).observe(0.5)
        reg.histogram("h", buckets=(1.0, 5.0)).observe(3.0)
        hist = reg.snapshot()["h"]["series"][""]
        assert hist["bucket_counts"] == {"1": 1, "5": 1, "+Inf": 0}
        assert hist["buckets"] == {"1": 1, "5": 2, "+Inf": 2}

    def test_delta_histogram_per_bucket_counts(self, reg):
        # serving-latency comparison: the regression shows up in exactly the
        # bucket the slow requests moved into, not just the aggregate sum
        h = reg.histogram("lat", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        before = reg.snapshot()
        h.observe(0.5)
        h.observe(30.0)
        h.observe(30.0)
        delta = reg.delta(before)["lat"]["series"][""]
        assert delta["bucket_counts"] == {"0.1": 0, "1": 1, "+Inf": 2}
        assert delta["buckets"] == {"0.1": 0, "1": 1, "+Inf": 3}
        assert delta["count"] == 3
        assert delta["sum"] == pytest.approx(60.5)

    def test_delta_decumulates_old_format_snapshots(self, reg):
        # snapshots persisted before bucket_counts existed carry only the
        # cumulative buckets; delta derives the per-bucket view on the fly
        h = reg.histogram("lat", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        before = reg.snapshot()
        del before["lat"]["series"][""]["bucket_counts"]
        h.observe(30.0)
        delta = reg.delta(before)["lat"]["series"][""]
        assert delta["bucket_counts"] == {"0.1": 0, "1": 0, "+Inf": 1}
        assert delta["count"] == 1


class TestExports:
    def test_json_is_canonical_and_digest_stable(self, reg):
        reg.gauge("g", device="0").set(1.5)
        first, second = reg.to_json(), reg.to_json()
        assert first == second
        assert first.endswith("\n")
        assert json.loads(first)["g"]["series"]['{device="0"}'] == 1.5
        d = reg.digest()
        reg.gauge("g", device="0").set(2.0)
        assert reg.digest() != d

    def test_prometheus_text_format(self, reg):
        reg.counter("repro_hits_total", "Cache hits", kind="warm").inc(3)
        reg.histogram("repro_lat_seconds", "Latency",
                      buckets=(0.1, 1.0), kind="t").observe(0.05)
        text = reg.to_prometheus()
        assert "# TYPE repro_hits_total counter" in text
        assert "# HELP repro_hits_total Cache hits" in text
        assert 'repro_hits_total{kind="warm"} 3' in text
        assert 'repro_lat_seconds_bucket{kind="t",le="0.1"} 1' in text
        assert 'repro_lat_seconds_bucket{kind="t",le="+Inf"} 1' in text
        assert 'repro_lat_seconds_sum{kind="t"} 0.05' in text
        assert 'repro_lat_seconds_count{kind="t"} 1' in text

    def test_integers_render_without_decimal_point(self, reg):
        reg.gauge("g").set(1664)
        assert "g 1664\n" in reg.to_prometheus()


class TestCollectors:
    def test_collect_device_reads_stats_and_memory(self, gpu, reg):
        from repro.gpu import KernelDescriptor, OpClass

        gpu.launch(KernelDescriptor(name="k", op_class=OpClass.ELEMENTWISE,
                                    threads=1 << 16))
        gpu.h2d(np.ones(256, dtype=np.float32))
        gpu.memory.alloc(4096, label="x", phase="forward")
        metrics.collect_device(gpu, registry=reg)
        snap = reg.snapshot()
        dev = '{device="0"}'
        assert snap["repro_device_kernel_launches_total"]["series"][dev] == 1.0
        assert snap["repro_device_h2d_bytes_total"]["series"][dev] == 1024.0
        assert snap["repro_memory_live_bytes"]["series"][dev] == 4096.0
        phase = '{device="0",phase="forward"}'
        assert snap["repro_memory_phase_peak_bytes"]["series"][phase] == 4096.0

    def test_collect_profile_cache(self, reg):
        class FakeCache:
            hits, misses, stores = 3, 1, 2

        metrics.collect_profile_cache(FakeCache(), registry=reg)
        snap = reg.snapshot()
        assert snap["repro_profile_cache_hits_total"]["series"][""] == 3.0
        assert snap["repro_profile_cache_stores_total"]["series"][""] == 2.0

    def test_collect_loader_labels_by_depth(self, reg):
        report = {"workload": "ARGA", "prefetch_depth": 2, "batches": 60,
                  "edges_sampled": 1000, "sample_cost_s": 0.05,
                  "loader_stall_s": 0.002, "loader_stall_fraction": 0.02,
                  "queue_occupancy_mean": 1.3, "queue_occupancy_max": 2,
                  "epochs_per_sim_s": 20.0, "peak_live_bytes": 4096}
        metrics.collect_loader(report, registry=reg)
        snap = reg.snapshot()
        labels = '{prefetch_depth="2",workload="ARGA"}'
        assert snap["repro_loader_batches_total"]["series"][labels] == 60.0
        assert snap["repro_loader_stall_seconds"]["series"][labels] == 0.002
        assert (snap["repro_loader_queue_occupancy_max"]["series"][labels]
                == 2.0)
        # a different depth lands as a distinct label set, not an overwrite
        metrics.collect_loader({**report, "prefetch_depth": 0}, registry=reg)
        series = reg.snapshot()["repro_loader_batches_total"]["series"]
        assert len(series) == 2

    def test_observe_task(self, reg):
        metrics.observe_task("profile", 0.3, cached=False, registry=reg)
        metrics.observe_task("profile", 0.001, cached=True, registry=reg)
        snap = reg.snapshot()
        hist = snap["repro_task_wall_seconds"]["series"]['{kind="profile"}']
        assert hist["count"] == 2
        total = snap["repro_task_total"]["series"]
        assert total['{cached="false",kind="profile"}'] == 1.0
        assert total['{cached="true",kind="profile"}'] == 1.0

    def test_global_registry_reset(self):
        metrics.registry().counter("repro_test_scratch_total").inc()
        assert "repro_test_scratch_total" in metrics.registry().snapshot()
        metrics.reset()
        assert metrics.registry().snapshot() == {}

    def test_profile_collection_rides_along(self):
        """profile_workload absorbs its run into the global registry."""
        from repro.core import profile_workload

        metrics.reset()
        try:
            profile_workload("KGNNL", scale="test", epochs=1)
            snap = metrics.registry().snapshot()
            wl = '{workload="KGNNL"}'
            assert snap["repro_transfer_sparsity_ratio"]["series"][wl] >= 0.0
            assert any(k.startswith('{stall=')
                       for k in snap["repro_stall_share"]["series"])
            dev = '{device="0"}'
            assert snap["repro_device_kernel_launches_total"]["series"][dev] > 0
        finally:
            metrics.reset()
