"""Golden snapshot + determinism matrix for sharded-training reports.

Mirrors ``tests/test_serve_golden.py``: the committed
``tests/golden/shard_*.json`` snapshots pin every field of the shard
report (partition metrics, halo traffic, staging bytes, HBM peaks, the
halo-exchange trace digest), and the determinism matrix shows the report
is a pure function of its parameters — byte-identical across repeat runs,
worker counts, profile-cache warm/cold, and analysis-cache on/off.  The
capacity-frontier benchmark gate rides along, like the sample gate.
"""

import json

import pytest

from repro.core import executor
from repro.testing import golden
from repro.train.sharded import digest_shard_report, shard_report
from tests.golden_matrix import GoldenMatrix

KEYS = list(golden.SHARD_GOLDEN_KEYS)

#: fast determinism-matrix knobs: the smallest committed config
FAST = dict(parts=2, nodes=768, feat_dim=48, hidden=16, epochs=2, seed=0,
            mode="numeric")


class TestCommittedSnapshots:
    @pytest.mark.parametrize("key", KEYS)
    def test_snapshot_exists_and_is_wellformed(self, key):
        report = golden.load_shard_golden(key)
        assert report["name"] == key
        assert report["version"] == 1
        assert report["shard_digest"] == digest_shard_report(report)
        assert report["oom_events"] == 0
        assert report["gpus"] == (1 if report["offload"] else report["parts"])
        assert sum(report["partition"]["part_sizes"]) == report["nodes"]
        assert len(report["epoch_sim_times_s"]) == report["epochs"]
        if report["offload"]:
            # out-of-core staging: PCIe traffic both ways, no NVLink halos
            assert report["halo_exchanges"] == 0
            assert report["d2h_bytes"] > 0
        elif report["parts"] > 1:
            # one feature exchange plus H1 and dH1 per epoch
            assert report["halo_exchanges"] == 1 + 2 * report["epochs"]
            assert report["halo_bytes"] > 0
        if report["mode"] == "numeric":
            assert report["losses"]
            assert report["loss_final"] == report["losses"][-1]
        else:
            assert report["losses"] == []
            assert report["loss_final"] is None

    def test_fresh_runs_match_goldens(self):
        diffs = golden.verify_shard_goldens(KEYS)
        assert diffs == {key: [] for key in KEYS}

    def test_digest_drift_is_reported_last(self):
        expected = golden.load_shard_golden("ARGA-P4")
        mutated = json.loads(json.dumps(expected))
        mutated["kernels"] += 1
        mutated["shard_digest"] = digest_shard_report(mutated)
        diff = golden.compare_shard_reports(expected, mutated)
        assert any("kernels" in line for line in diff)
        assert "shard_digest" in diff[-1]

    def test_halo_trace_digest_drift_is_a_diff(self):
        expected = golden.load_shard_golden("ARGA-P4")
        mutated = json.loads(json.dumps(expected))
        mutated["halo_trace_digest"] = "0" * 64
        diff = golden.compare_shard_reports(expected, mutated)
        assert any("halo_trace_digest" in line for line in diff)


class TestDeterminism(GoldenMatrix):
    keys = KEYS

    def run_single(self):
        return shard_report("ARGA", **FAST)

    def run_suite(self, *, jobs=None, cache=None):
        return executor.shard_suite(KEYS, jobs=jobs, cache=cache)

    def run_analysis(self):
        return shard_report("ARGA", **dict(FAST, parts=4))


class TestBenchmarkGate:
    def test_committed_baseline_still_passes(self):
        with open("benchmarks/shard_baseline.json") as fh:
            baseline = json.load(fh)
        report = executor.benchmark_shard(
            ladder=tuple(baseline["ladder"]), feat_dim=baseline["feat_dim"],
            hidden=baseline["hidden"], epochs=baseline["epochs"],
            seed=baseline["seed"])
        assert executor.check_shard_regression(report, baseline) == []
        # byte-deterministic accounting: the frontier reproduces exactly
        assert report["frontier"] == baseline["frontier"]

    def test_gate_catches_lost_capacity(self):
        with open("benchmarks/shard_baseline.json") as fh:
            baseline = json.load(fh)
        broken = json.loads(json.dumps(baseline))
        ladder = broken["ladder"]
        # sharding stops buying capacity: every config's frontier collapses
        for label, cfg in broken["configs"].items():
            cfg["frontier"] = ladder[0]
        broken["frontier"] = {label: ladder[0]
                              for label in broken["frontier"]}
        failures = executor.check_shard_regression(broken, baseline)
        assert failures
        assert any("frontier" in f for f in failures)
