"""Operations emit the right kernel classes to the device."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.gpu import OpClass, SimulatedGPU
from repro.tensor import SparseTensor, Tensor, functional as F


@pytest.fixture
def recorded():
    gpu = SimulatedGPU()
    launches = []
    gpu.add_launch_listener(launches.append)
    return gpu, launches


def classes(launches):
    return [l.op_class for l in launches]


class TestKernelEmission:
    def test_cpu_tensors_emit_nothing(self, recorded):
        gpu, launches = recorded
        a = Tensor(np.ones(4))
        _ = a + a
        assert launches == []

    def test_add_emits_elementwise(self, recorded):
        gpu, launches = recorded
        a = Tensor(np.ones(4, dtype=np.float32), device=gpu, _skip_copy=True)
        _ = a + a
        assert classes(launches) == [OpClass.ELEMENTWISE]

    def test_matmul_emits_gemm(self, recorded):
        gpu, launches = recorded
        a = Tensor(np.ones((8, 8), dtype=np.float32), device=gpu, _skip_copy=True)
        _ = a @ a
        assert classes(launches) == [OpClass.GEMM]

    def test_matvec_classified_gemv(self, recorded):
        gpu, launches = recorded
        a = Tensor(np.ones((8, 8), dtype=np.float32), device=gpu, _skip_copy=True)
        v = Tensor(np.ones((8, 1), dtype=np.float32), device=gpu, _skip_copy=True)
        _ = a @ v
        assert classes(launches) == [OpClass.GEMV]

    def test_spmm_emits_spmm_with_real_indices(self, recorded):
        gpu, launches = recorded
        adj = SparseTensor(sp.random(16, 16, 0.3, random_state=0, format="csr"),
                           device=gpu)
        x = Tensor(np.ones((16, 4), dtype=np.float32), device=gpu, _skip_copy=True)
        _ = F.spmm(adj, x)
        assert classes(launches) == [OpClass.SPMM]
        assert launches[0].descriptor.access.indices is not None

    def test_conv_emits_conv(self, recorded):
        gpu, launches = recorded
        x = Tensor(np.ones((1, 2, 5, 5), dtype=np.float32), device=gpu, _skip_copy=True)
        w = Tensor(np.ones((3, 2, 3, 3), dtype=np.float32), device=gpu, _skip_copy=True)
        _ = F.conv2d(x, w)
        assert OpClass.CONV2D in classes(launches)

    def test_index_select_and_backward_scatter(self, recorded):
        gpu, launches = recorded
        a = Tensor(np.ones((8, 4), dtype=np.float32), device=gpu,
                   requires_grad=True, _skip_copy=True)
        out = F.index_select(a, np.array([0, 3, 3]))
        out.sum().backward()
        ops = classes(launches)
        assert OpClass.INDEX_SELECT in ops
        assert OpClass.SCATTER in ops

    def test_sort_family_emits_sort(self, recorded):
        gpu, launches = recorded
        a = Tensor(np.random.default_rng(0).normal(size=64).astype(np.float32),
                   device=gpu, _skip_copy=True)
        F.sort(a)
        F.argsort(a)
        F.unique(a)
        F.topk(a, 5)
        assert OpClass.SORT in classes(launches)
        assert sum(c == OpClass.SORT for c in classes(launches)) >= 4

    def test_softmax_class(self, recorded):
        gpu, launches = recorded
        a = Tensor(np.ones((4, 4), dtype=np.float32), device=gpu, _skip_copy=True)
        _ = F.softmax(a)
        assert classes(launches) == [OpClass.SOFTMAX]

    def test_embedding_class(self, recorded):
        gpu, launches = recorded
        w = Tensor(np.ones((10, 4), dtype=np.float32), device=gpu, _skip_copy=True)
        _ = F.embedding(w, np.array([1, 2]))
        assert classes(launches) == [OpClass.EMBEDDING]

    def test_permute_emits_copy(self, recorded):
        gpu, launches = recorded
        a = Tensor(np.ones((4, 5), dtype=np.float32), device=gpu, _skip_copy=True)
        _ = a.transpose()
        assert classes(launches) == [OpClass.COPY]

    def test_reshape_is_free(self, recorded):
        gpu, launches = recorded
        a = Tensor(np.ones((4, 5), dtype=np.float32), device=gpu, _skip_copy=True)
        _ = a.reshape(20)
        assert launches == []

    def test_batchnorm_class(self, recorded):
        gpu, launches = recorded
        x = Tensor(np.ones((8, 3), dtype=np.float32), device=gpu, _skip_copy=True)
        g = Tensor(np.ones(3, dtype=np.float32), device=gpu, _skip_copy=True)
        b = Tensor(np.zeros(3, dtype=np.float32), device=gpu, _skip_copy=True)
        _ = F.batch_norm(x, g, b)
        assert classes(launches) == [OpClass.BATCHNORM]


class TestNumericsMatchNumpy:
    def test_sort_values(self):
        a = Tensor(np.array([3.0, 1.0, 2.0], dtype=np.float32))
        values, idx = F.sort(a)
        np.testing.assert_allclose(values, [1, 2, 3])
        np.testing.assert_array_equal(idx, [1, 2, 0])

    def test_unique_inverse(self):
        a = Tensor(np.array([2, 1, 2, 0], dtype=np.int64))
        uniq, inv = F.unique(a, return_inverse=True)
        np.testing.assert_array_equal(uniq, [0, 1, 2])
        np.testing.assert_array_equal(uniq[inv], [2, 1, 2, 0])

    def test_topk(self):
        a = Tensor(np.array([5.0, 1.0, 3.0, 4.0], dtype=np.float32))
        values, idx = F.topk(a, 2)
        np.testing.assert_allclose(values, [5, 4])

    def test_conv2d_matches_direct_computation(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 3, 6, 6)).astype(np.float32)
        w = rng.normal(size=(4, 3, 3, 3)).astype(np.float32)
        out = F.conv2d(Tensor(x), Tensor(w), stride=2, padding=1)
        xp = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
        expect = np.zeros((2, 4, 3, 3), dtype=np.float32)
        for n in range(2):
            for o in range(4):
                for i in range(3):
                    for j in range(3):
                        patch = xp[n, :, 2 * i : 2 * i + 3, 2 * j : 2 * j + 3]
                        expect[n, o, i, j] = (patch * w[o]).sum()
        np.testing.assert_allclose(out.data, expect, rtol=1e-4, atol=1e-4)

    def test_spmm_matches_scipy(self):
        adj = SparseTensor(sp.random(6, 6, 0.5, random_state=1, format="csr"))
        x = np.random.default_rng(2).normal(size=(6, 3)).astype(np.float32)
        out = F.spmm(adj, Tensor(x))
        np.testing.assert_allclose(out.data, adj.scipy() @ x, rtol=1e-5)

    def test_sparse_transpose_cached(self):
        adj = SparseTensor(sp.random(5, 5, 0.5, random_state=3, format="csr"))
        assert adj.t() is adj.t()
        assert adj.t().t() is adj
        np.testing.assert_allclose(adj.t().scipy().toarray(),
                                   adj.scipy().T.toarray())

    def test_margin_ranking_loss(self):
        pos = Tensor(np.array([2.0, 2.0], dtype=np.float32))
        neg = Tensor(np.array([0.0, 3.0], dtype=np.float32))
        loss = F.margin_ranking_loss(pos, neg, margin=1.0)
        # relu(0-2+1)=0, relu(3-2+1)=2 -> mean 1
        assert loss.item() == pytest.approx(1.0)
